"""Property test: random structured programs vs a Python evaluator.

Hypothesis generates small ASTs of arithmetic, divergent ``if``s and
bounded ``while`` loops over a per-lane accumulator.  Each AST is lowered
twice: through the KernelBuilder onto the simulated GPU, and through a
direct Python evaluator.  Per-lane results must match exactly — this
stresses the PDOM reconvergence stack with arbitrary nesting shapes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import KernelFunction

from tests.helpers import make_device, map_kernel

# AST node encodings:
#   ("op", name, imm)      acc = acc <op> imm
#   ("if", cmp, imm, body) if acc <cmp> imm: body
#   ("while", imm, body)   while acc < imm: body + forced progress (acc += step)

_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "xor": lambda a, b: a ^ b,
    "min": min,
    "max": max,
}

_CMPS = {
    "lt": lambda a, b: a < b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
}


def _ast(depth: int):
    op_node = st.tuples(
        st.just("op"), st.sampled_from(sorted(_OPS)), st.integers(-9, 9)
    )
    if depth == 0:
        return st.lists(op_node, min_size=1, max_size=4)
    sub = _ast(depth - 1)
    if_node = st.tuples(
        st.just("if"), st.sampled_from(sorted(_CMPS)), st.integers(-20, 20), sub
    )
    while_node = st.tuples(
        st.just("while"), st.integers(0, 30), st.integers(1, 5), sub
    )
    return st.lists(st.one_of(op_node, if_node, while_node), min_size=1, max_size=4)


def emit(k, acc, nodes) -> None:
    for node in nodes:
        kind = node[0]
        if kind == "op":
            _, name, imm = node
            builder_op = {
                "add": k.iadd, "sub": k.isub, "mul": k.imul,
                "xor": k.ixor, "min": k.imin, "max": k.imax,
            }[name]
            builder_op(acc, imm, dst=acc)
        elif kind == "if":
            _, cmp_name, imm, body = node
            pred = {"lt": k.lt, "ge": k.ge, "eq": k.eq}[cmp_name](acc, imm)
            with k.if_(pred):
                emit(k, acc, body)
        else:  # while
            _, bound, step, body = node
            guard = k.mov(0)  # bounded trip count for termination
            with k.while_(lambda: k.iand(k.lt(acc, bound), k.lt(guard, 8))):
                emit(k, acc, body)
                k.iadd(acc, step, dst=acc)  # forced progress
                k.iadd(guard, 1, dst=guard)


def _wrap64(value: int) -> int:
    """Two's-complement int64 wrap-around (the GPU's register width)."""
    return ((value + (1 << 63)) % (1 << 64)) - (1 << 63)


def evaluate(value: int, nodes) -> int:
    acc = value
    for node in nodes:
        kind = node[0]
        if kind == "op":
            _, name, imm = node
            acc = _wrap64(_OPS[name](acc, imm))
        elif kind == "if":
            _, cmp_name, imm, body = node
            if _CMPS[cmp_name](acc, imm):
                acc = evaluate(acc, body)
        else:
            _, bound, step, body = node
            guard = 0
            while acc < bound and guard < 8:
                acc = evaluate(acc, body)
                acc = _wrap64(acc + step)
                guard += 1
    return acc


class TestRandomStructuredPrograms:
    @settings(max_examples=20, deadline=None)
    @given(
        nodes=_ast(depth=2),
        data=st.lists(st.integers(-30, 30), min_size=1, max_size=64),
    )
    def test_gpu_matches_evaluator(self, nodes, data):
        def body(k, v):
            acc = k.mov(v)
            emit(k, acc, nodes)
            return acc

        func = map_kernel("rand_prog", body)
        dev = make_device()
        dev.register(func)
        arr = np.asarray(data, dtype=np.int64)
        src = dev.upload(arr)
        dst = dev.alloc(len(arr))
        dev.launch(
            "rand_prog",
            grid=(len(arr) + 63) // 64,
            block=64,
            params=[len(arr), src, dst],
        )
        dev.synchronize()
        got = dev.download_ints(dst, len(arr))
        expected = np.array([evaluate(int(v), nodes) for v in data], dtype=np.int64)
        np.testing.assert_array_equal(got, expected)
