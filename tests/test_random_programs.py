"""Property tests: random structured programs vs a Python evaluator.

Hypothesis generates small ASTs of arithmetic, divergent ``if``s and
bounded ``while`` loops over a per-lane accumulator.  Each AST is lowered
twice: through the KernelBuilder onto the simulated GPU, and through a
direct Python evaluator.  Per-lane results must match exactly — this
stresses the PDOM reconvergence stack with arbitrary nesting shapes.

The memory-op differential fuzz extends the grammar with global
loads/stores at computed addresses, shared-memory staging separated by
barriers, and atomic adds, and runs every program through all three
execution cores (reference, fast and vector) with the sanitizer enabled:
results must match the evaluator exactly and the sanitizer must stay
clean.  A second, unsanitized pass compares the cores' full
:class:`~repro.sim.stats.SimStats` — that is the path where the vector
core's group dispatcher actually engages (the sanitizer forces its
per-warp fallback), so it is the differential that guards batched
execution.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction

from tests.helpers import make_device, map_kernel

# AST node encodings:
#   ("op", name, imm)      acc = acc <op> imm
#   ("if", cmp, imm, body) if acc <cmp> imm: body
#   ("while", imm, body)   while acc < imm: body + forced progress (acc += step)

_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "xor": lambda a, b: a ^ b,
    "min": min,
    "max": max,
}

_CMPS = {
    "lt": lambda a, b: a < b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
}


def _ast(depth: int):
    op_node = st.tuples(
        st.just("op"), st.sampled_from(sorted(_OPS)), st.integers(-9, 9)
    )
    if depth == 0:
        return st.lists(op_node, min_size=1, max_size=4)
    sub = _ast(depth - 1)
    if_node = st.tuples(
        st.just("if"), st.sampled_from(sorted(_CMPS)), st.integers(-20, 20), sub
    )
    while_node = st.tuples(
        st.just("while"), st.integers(0, 30), st.integers(1, 5), sub
    )
    return st.lists(st.one_of(op_node, if_node, while_node), min_size=1, max_size=4)


def emit(k, acc, nodes) -> None:
    for node in nodes:
        kind = node[0]
        if kind == "op":
            _, name, imm = node
            builder_op = {
                "add": k.iadd, "sub": k.isub, "mul": k.imul,
                "xor": k.ixor, "min": k.imin, "max": k.imax,
            }[name]
            builder_op(acc, imm, dst=acc)
        elif kind == "if":
            _, cmp_name, imm, body = node
            pred = {"lt": k.lt, "ge": k.ge, "eq": k.eq}[cmp_name](acc, imm)
            with k.if_(pred):
                emit(k, acc, body)
        else:  # while
            _, bound, step, body = node
            guard = k.mov(0)  # bounded trip count for termination
            with k.while_(lambda: k.iand(k.lt(acc, bound), k.lt(guard, 8))):
                emit(k, acc, body)
                k.iadd(acc, step, dst=acc)  # forced progress
                k.iadd(guard, 1, dst=guard)


def _wrap64(value: int) -> int:
    """Two's-complement int64 wrap-around (the GPU's register width)."""
    return ((value + (1 << 63)) % (1 << 64)) - (1 << 63)


def evaluate(value: int, nodes) -> int:
    acc = value
    for node in nodes:
        kind = node[0]
        if kind == "op":
            _, name, imm = node
            acc = _wrap64(_OPS[name](acc, imm))
        elif kind == "if":
            _, cmp_name, imm, body = node
            if _CMPS[cmp_name](acc, imm):
                acc = evaluate(acc, body)
        else:
            _, bound, step, body = node
            guard = 0
            while acc < bound and guard < 8:
                acc = evaluate(acc, body)
                acc = _wrap64(acc + step)
                guard += 1
    return acc


class TestRandomStructuredPrograms:
    @settings(max_examples=20, deadline=None)
    @given(
        nodes=_ast(depth=2),
        data=st.lists(st.integers(-30, 30), min_size=1, max_size=64),
    )
    def test_gpu_matches_evaluator(self, nodes, data):
        def body(k, v):
            acc = k.mov(v)
            emit(k, acc, nodes)
            return acc

        func = map_kernel("rand_prog", body)
        dev = make_device()
        dev.register(func)
        arr = np.asarray(data, dtype=np.int64)
        src = dev.upload(arr)
        dst = dev.alloc(len(arr))
        dev.launch(
            "rand_prog",
            grid=(len(arr) + 63) // 64,
            block=64,
            params=[len(arr), src, dst],
        )
        dev.synchronize()
        got = dev.download_ints(dst, len(arr))
        expected = np.array([evaluate(int(v), nodes) for v in data], dtype=np.int64)
        np.testing.assert_array_equal(got, expected)


# ======================================================================
# Memory-op differential fuzz
# ======================================================================
# Top-level phase encodings (uniform control flow, so barriers are legal):
#   ("ops", nodes)       per-lane arithmetic AST from _ast() above
#   ("shared", shift)    sts(tid, acc); bar(); acc += smem[(tid+shift)%B]; bar()
#   ("global", salt)     scratch[gtid*4 + (acc&3)] = acc^salt; acc += loaded back
#   ("atomic", imm)      atom_add(counter, (acc&7)+1); acc ^= imm

_BLOCK = 64


def _phases():
    ops = st.tuples(st.just("ops"), _ast(depth=1))
    shared = st.tuples(st.just("shared"), st.integers(1, _BLOCK - 1))
    global_ = st.tuples(st.just("global"), st.integers(0, 15))
    atomic = st.tuples(st.just("atomic"), st.integers(0, 31))
    return st.lists(st.one_of(ops, shared, global_, atomic), min_size=1, max_size=5)


def build_mem_fuzz(phases) -> KernelFunction:
    """Params: [n, src, dst, scratch, counter].  All block threads
    participate (inactive tails carry acc = 0) so the barriers in shared
    phases are uniform; only the final store is guarded."""
    k = KernelBuilder("mem_fuzz")
    gtid = k.gtid()
    tid = k.tid()
    param = k.param()
    n = k.ld(param, offset=0)
    src = k.ld(param, offset=1)
    dst = k.ld(param, offset=2)
    scratch = k.ld(param, offset=3)
    counter = k.ld(param, offset=4)
    acc = k.mov(0)
    with k.if_(k.lt(gtid, n)):
        k.ld(k.iadd(src, gtid), dst=acc)
    for kind, arg in phases:
        if kind == "ops":
            emit(k, acc, arg)
        elif kind == "shared":
            k.sts(tid, acc)
            k.bar()
            other = k.lds(k.imod(k.iadd(tid, arg), _BLOCK))
            k.iadd(acc, other, dst=acc)
            k.bar()
        elif kind == "global":
            addr = k.iadd(scratch, k.iadd(k.imul(gtid, 4), k.iand(acc, 3)))
            k.st(addr, k.ixor(acc, arg))
            k.iadd(acc, k.ld(addr), dst=acc)
        else:  # atomic
            k.atom_add(counter, k.iadd(k.iand(acc, 7), 1))
            k.ixor(acc, arg, dst=acc)
    with k.if_(k.lt(gtid, n)):
        k.st(k.iadd(dst, gtid), acc)
    k.exit()
    return KernelFunction("mem_fuzz", k.build(), shared_words=_BLOCK)


def evaluate_mem_fuzz(data, phases, blocks):
    """The same program over all ``blocks * _BLOCK`` threads in Python."""
    total = blocks * _BLOCK
    acc = [int(data[g]) if g < len(data) else 0 for g in range(total)]
    scratch = np.zeros(total * 4, dtype=np.int64)
    counter = 0
    for kind, arg in phases:
        if kind == "ops":
            acc = [evaluate(a, arg) for a in acc]
        elif kind == "shared":
            for b in range(blocks):
                base = b * _BLOCK
                smem = acc[base:base + _BLOCK]
                for t in range(_BLOCK):
                    acc[base + t] = _wrap64(acc[base + t] + smem[(t + arg) % _BLOCK])
        elif kind == "global":
            for g in range(total):
                value = acc[g] ^ arg
                scratch[g * 4 + (acc[g] & 3)] = value
                acc[g] = _wrap64(acc[g] + value)
        else:  # atomic
            for g in range(total):
                counter += (acc[g] & 7) + 1
                acc[g] ^= arg
    out = np.array([acc[g] for g in range(len(data))], dtype=np.int64)
    return out, scratch, counter


def _run_mem_fuzz(func, data, blocks, core, sanitize):
    """One run; returns (dst, scratch, counter, stats fingerprint)."""
    config = dataclasses.replace(GPUConfig.k20c(), core=core)
    dev = Device(config=config, mode=ExecutionMode.FLAT, sanitize=sanitize)
    dev.register(func)
    n = len(data)
    src = dev.upload(np.asarray(data, dtype=np.int64))
    dst = dev.alloc(n)
    scratch = dev.alloc(blocks * _BLOCK * 4)
    counter = dev.alloc(1)
    dev.write_int(counter.addr, 0)
    dev.launch("mem_fuzz", grid=blocks, block=_BLOCK,
               params=[n, src, dst, scratch, counter])
    dev.synchronize()
    if sanitize:
        assert dev.sanitizer_report().clean, dev.sanitizer_report().format()
    from tests.test_fast_core_differential import fingerprint

    return (
        dst.download(), scratch.download(), dev.read_int(counter.addr),
        fingerprint(dev.stats),
    )


class TestMemoryOpFuzz:
    @settings(max_examples=15, deadline=None)
    @given(
        phases=_phases(),
        data=st.lists(st.integers(-30, 30), min_size=1, max_size=2 * _BLOCK),
    )
    def test_all_cores_match_evaluator(self, phases, data):
        func = build_mem_fuzz(phases)
        blocks = (len(data) + _BLOCK - 1) // _BLOCK
        results = []
        for core in ("fast", "reference", "vector"):
            got = _run_mem_fuzz(func, data, blocks, core, sanitize=True)
            results.append(got)
        out, scr, cnt = evaluate_mem_fuzz(data, phases, blocks)
        for got_out, got_scr, got_cnt, _stats in results:
            np.testing.assert_array_equal(got_out, out)
            np.testing.assert_array_equal(got_scr, scr)
            assert got_cnt == cnt

    @settings(max_examples=15, deadline=None)
    @given(
        phases=_phases(),
        data=st.lists(st.integers(-30, 30), min_size=1, max_size=2 * _BLOCK),
    )
    def test_unsanitized_cores_agree_bit_exactly(self, phases, data):
        """Results *and* SimStats identical across cores without the
        sanitizer — the configuration where group dispatch runs."""
        func = build_mem_fuzz(phases)
        blocks = (len(data) + _BLOCK - 1) // _BLOCK
        baseline = None
        for core in ("reference", "fast", "vector"):
            out, scr, cnt, stats = _run_mem_fuzz(
                func, data, blocks, core, sanitize=False
            )
            current = (out.tolist(), scr.tolist(), cnt, stats)
            if baseline is None:
                baseline = current
            else:
                assert current == baseline, f"core {core!r} diverged"
