"""The docs/tutorial.md workload, executed for real.

Keeps the tutorial honest: this is the same count-filtered-neighbors
kernel the document builds, verified against plain Python in all three
execution models.
"""

import numpy as np
import pytest

from repro import Device, ExecutionMode, KernelBuilder, KernelFunction
from repro.workloads.common import emit_dfp, emit_dynamic_launch, upload_graph
from repro.workloads.datasets.graphs import citation_network


def build_kernel(mode, threshold=32, child_block=32) -> KernelFunction:
    k = KernelBuilder("count_filtered")
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, n)):
        indptr = k.ld(param, offset=1)
        indices = k.ld(param, offset=2)
        out = k.ld(param, offset=3)
        vptr = k.iadd(indptr, gtid)
        start = k.ld(vptr)
        end = k.ld(vptr, offset=1)
        degree = k.isub(end, start)

        def serial() -> None:
            with k.for_range(start, end) as e:
                u = k.ld(k.iadd(indices, e))
                uptr = k.iadd(indptr, u)
                udeg = k.isub(k.ld(uptr, offset=1), k.ld(uptr))
                hit = k.iand(k.gt(u, gtid), k.gt(udeg, degree))
                with k.if_(hit):
                    k.atom_add(out, 1)

        def launch() -> None:
            emit_dynamic_launch(
                k, mode, "count_child",
                [degree, start, indices, indptr, out, degree, gtid],
                degree, child_block,
            )

        emit_dfp(k, mode, degree, threshold, launch, serial)
    k.exit()
    return KernelFunction("count_filtered", k.build())


def build_child() -> KernelFunction:
    k = KernelBuilder("count_child")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, count)):
        start = k.ld(param, offset=1)
        indices = k.ld(param, offset=2)
        indptr = k.ld(param, offset=3)
        out = k.ld(param, offset=4)
        vdeg = k.ld(param, offset=5)
        vid = k.ld(param, offset=6)
        u = k.ld(k.iadd(indices, k.iadd(start, gtid)))
        uptr = k.iadd(indptr, u)
        udeg = k.isub(k.ld(uptr, offset=1), k.ld(uptr))
        hit = k.iand(k.gt(u, vid), k.gt(udeg, vdeg))
        with k.if_(hit):
            k.atom_add(out, 1)
    k.exit()
    return KernelFunction("count_child", k.build())


def reference(graph) -> int:
    degrees = graph.degrees()
    total = 0
    for v in range(graph.num_vertices):
        for u in graph.neighbors(v):
            if u > v and degrees[u] > degrees[v]:
                total += 1
    return total


@pytest.mark.parametrize(
    "mode", [ExecutionMode.FLAT, ExecutionMode.CDP, ExecutionMode.DTBL]
)
def test_tutorial_workload(mode):
    graph = citation_network(n=300, attach=4)
    dev = Device(mode=mode, latency=mode.latency_model(0.25))
    dev.register(build_kernel(mode))
    if mode.is_dynamic:
        dev.register(build_child())
    dgraph = upload_graph(dev, graph)
    out = dev.alloc(1)
    dev.launch(
        "count_filtered",
        grid=(graph.num_vertices + 127) // 128,
        block=128,
        params=[graph.num_vertices, dgraph.indptr, dgraph.indices, out],
    )
    stats = dev.synchronize()
    assert dev.read_int(out) == reference(graph)
    assert stats.cycles > 0
