"""End-to-end tests for the repro.serve daemon.

Each test boots a real daemon subprocess (``python -m repro.serve``) on
an ephemeral port and talks to it with :class:`repro.serve.ServeClient`
— the same client path scripts use.  The corpus in ``tests/golden/``
supplies exact expected ``SimStats``: a daemon result must be
bit-identical to a one-shot run of the same spec.

``REPRO_SERVE_TEST_CKPT_SLEEP`` stretches worker wall time (a sleep at
every periodic checkpoint) without touching simulated state, making
"this job is still running when ..." setups deterministic.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import select
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import ExecutionMode, GPUConfig, JobSpec
from repro.serve import JobFailed, ServeClient, ServeError

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
SCALE = 0.08
LATENCY_SCALE = 0.25


def golden_stats(name: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


def spec_for(benchmark: str, mode: str, scale: float = SCALE) -> JobSpec:
    # The golden corpus pins its core selection explicitly, so jobs that
    # compare against it must name the same config rather than rely on
    # the `core=None` default resolving to the fast core.
    config = dataclasses.replace(GPUConfig.k20c(), core="fast")
    return JobSpec.create(
        benchmark, ExecutionMode(mode), scale, LATENCY_SCALE, config=config
    )


class Daemon:
    """One daemon subprocess plus its discovered port."""

    def __init__(self, tmp_path: Path, *, workers=2, quota=8,
                 checkpoint_every=4000, cache=True, env=None) -> None:
        args = [
            sys.executable, "-m", "repro.serve", "--port", "0",
            "--workers", str(workers), "--quota", str(quota),
            "--checkpoint-every", str(checkpoint_every),
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--spool-dir", str(tmp_path / "spool"),
        ]
        if cache:
            args += ["--cache-dir", str(tmp_path / "cache")]
        else:
            args += ["--no-cache"]
        full_env = dict(os.environ)
        full_env.update(env or {})
        self.proc = subprocess.Popen(
            args, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=full_env,
        )
        self.port = self._discover_port()

    def _discover_port(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            ready, _, _ = select.select([self.proc.stdout], [], [], 0.2)
            if not ready:
                if self.proc.poll() is not None:
                    raise RuntimeError(
                        f"daemon died: {self.proc.stdout.read()}"
                    )
                continue
            line = self.proc.stdout.readline()
            match = re.search(r"listening on http://[^:]+:(\d+)", line)
            if match:
                return int(match.group(1))
        raise RuntimeError("daemon never printed its address")

    def client(self, name: str = "anon") -> ServeClient:
        return ServeClient(port=self.port, client=name, timeout=30.0)

    def stop(self) -> None:
        if self.proc.poll() is None:
            try:
                self.client().shutdown()
                self.proc.wait(timeout=10)
            except Exception:
                self.proc.kill()
                self.proc.wait(timeout=10)


@pytest.fixture
def daemon_factory(tmp_path):
    daemons = []

    def factory(**kwargs):
        daemon = Daemon(tmp_path, **kwargs)
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        daemon.stop()


class TestConcurrentClients:
    def test_two_clients_share_one_simulation_and_the_cache(
        self, daemon_factory
    ):
        """Identical concurrent submissions simulate once; results are
        bit-identical to the golden corpus; a later rerun is a cache hit."""
        daemon = daemon_factory(
            workers=2, env={"REPRO_SERVE_TEST_CKPT_SLEEP": "0.1"}
        )
        alice, bob = daemon.client("alice"), daemon.client("bob")
        spec = spec_for("bht", "flat")

        first = alice.submit(spec)
        second = bob.submit(spec)  # leader still running: dedup kicks in
        result_a = alice.result(alice.wait(first["id"])["id"])
        result_b = bob.result(bob.wait(second["id"])["id"])

        golden = golden_stats("bht-flat-fast")
        assert result_a.stats.to_dict() == golden
        assert result_b.stats.to_dict() == golden
        assert result_a.fingerprint == result_b.fingerprint
        assert {result_a.source, result_b.source} == {"run", "shared"}

        # Warm rerun from a third client: served from the shared cache,
        # terminal at submission, no worker involved.
        carol = daemon.client("carol")
        info = carol.submit(spec)
        assert info["status"] == "done"
        assert info["source"] == "cache"
        assert carol.result(info["id"]).stats.to_dict() == golden

        stats = alice.status()["stats"]
        assert stats["shared"] == 1
        assert stats["cache_hits"] == 1

    def test_sweep_submission_streams_events(self, daemon_factory):
        daemon = daemon_factory(workers=2)
        client = daemon.client("sweeper")
        infos = client.submit_sweep(
            [spec_for("bht", "flat", 0.05), spec_for("bht", "dtbl", 0.05)]
        )
        assert len(infos) == 2
        for info in infos:
            events = [event["event"] for event in client.events(info["id"])]
            assert events[0] == "queued"
            assert "started" in events
            assert events[-1] == "done"


class TestQuota:
    def test_over_quota_submission_is_rejected_429(self, daemon_factory):
        daemon = daemon_factory(
            workers=1, quota=2, cache=False,
            env={"REPRO_SERVE_TEST_CKPT_SLEEP": "0.25"},
        )
        client = daemon.client("greedy")
        # Distinct fingerprints (scales) so dedup cannot collapse them.
        first = client.submit(spec_for("bht", "flat", 0.05))
        second = client.submit(spec_for("bht", "flat", 0.06))
        with pytest.raises(ServeError) as excinfo:
            client.submit(spec_for("bht", "flat", 0.07))
        assert excinfo.value.status == 429
        assert "quota" in str(excinfo.value)

        # Another client is unaffected: quotas are per client name.
        other = daemon.client("patient")
        third = other.submit(spec_for("bht", "flat", 0.07))

        # Cancelling frees quota; resubmission is accepted.
        client.cancel(first["id"])
        client.cancel(second["id"])
        assert client.wait(first["id"])["status"] == "cancelled"
        assert client.wait(second["id"])["status"] == "cancelled"
        retry = client.submit(spec_for("bht", "flat", 0.07))
        assert retry["status"] in ("queued", "running")
        for job_id in (third["id"], retry["id"]):
            client.cancel(job_id)

    def test_cancelled_job_raises_job_failed_on_result(self, daemon_factory):
        daemon = daemon_factory(
            workers=1, cache=False,
            env={"REPRO_SERVE_TEST_CKPT_SLEEP": "0.25"},
        )
        client = daemon.client("c")
        info = client.submit(spec_for("bht", "flat"))
        client.cancel(info["id"])
        assert client.wait(info["id"])["status"] == "cancelled"
        with pytest.raises(JobFailed):
            client.result(info["id"])


class TestPreemption:
    def test_preempted_job_resumes_to_bit_identical_stats(
        self, daemon_factory
    ):
        """A long job preempted by a priority job resumes from its
        checkpoint and finishes with exactly the golden ``SimStats``."""
        daemon = daemon_factory(
            workers=1, checkpoint_every=4000, cache=False,
            env={"REPRO_SERVE_TEST_CKPT_SLEEP": "0.25"},
        )
        client = daemon.client("victim")
        long_info = client.submit(spec_for("bfs_citation", "dtbl"), priority=0)
        # Let the victim get going and bank at least one checkpoint
        # (~0.25s per 4000 cycles under the sleep hook).
        deadline = time.monotonic() + 20
        while client.job(long_info["id"])["status"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        time.sleep(0.6)

        urgent = daemon.client("urgent")
        urgent_info = urgent.submit(
            spec_for("bht", "flat", 0.05), priority=10
        )
        urgent_final = urgent.wait(urgent_info["id"], timeout=60)
        assert urgent_final["status"] == "done"

        final = client.wait(long_info["id"], timeout=120)
        assert final["status"] == "done"
        assert final["preemptions"] >= 1

        events = [event["event"] for event in client.events(long_info["id"])]
        assert "preempting" in events
        assert "requeued" in events
        assert events.count("started") >= 2

        result = client.result(long_info["id"])
        assert result.stats.to_dict() == golden_stats("bfs_citation-dtbl-fast")


class TestProtocol:
    def test_bad_spec_is_400_and_unknown_job_is_404(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = daemon.client()
        with pytest.raises(ServeError) as excinfo:
            client.submit({"benchmark": "bht"})  # missing mode
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit({"benchmark": "bht", "mode": "flat", "latency": 1})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.job("j999999")
        assert excinfo.value.status == 404

    def test_result_before_completion_is_409(self, daemon_factory):
        daemon = daemon_factory(
            workers=1, cache=False,
            env={"REPRO_SERVE_TEST_CKPT_SLEEP": "0.25"},
        )
        client = daemon.client()
        info = client.submit(spec_for("bht", "flat"))
        with pytest.raises(ServeError) as excinfo:
            client.result(info["id"])
        assert excinfo.value.status == 409
        client.cancel(info["id"])
