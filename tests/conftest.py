"""Test-suite configuration: Hypothesis profiles.

The ``ci`` profile pins the fuzz tests to a deterministic, bounded run
(fixed seed via derandomization, small example counts, no deadline) so
the CI fuzz-smoke job is reproducible and fast; ``dev`` raises the
example count for local soak runs.  Select with
``HYPOTHESIS_PROFILE=ci|dev`` (default: Hypothesis defaults, with the
per-test ``@settings`` caps in each file).
"""

from __future__ import annotations

import os

from hypothesis import settings

settings.register_profile("ci", derandomize=True, max_examples=10, deadline=None)
settings.register_profile("dev", max_examples=50, deadline=None)

_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    settings.load_profile(_profile)
