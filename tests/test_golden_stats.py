"""Golden statistics: live simulations vs the pinned corpus.

``tests/golden/*.json`` pins ``SimStats.to_dict()`` for a small
benchmark grid (see ``tools/golden_refresh.py``), including the
persistent-scheduler modes on the BFS and SSSP graph traversals — the
modes whose cross-block queue traffic is most sensitive to scheduling
drift.  These tests recompute
each grid point and compare **exactly** — one cycle of drift anywhere in
the model fails loudly, with a per-counter diff in the assertion.

Intentional behaviour changes must regenerate the corpus
(``PYTHONPATH=src python tools/golden_refresh.py``) and commit the
resulting diff alongside the change.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro import ExecutionMode, GPUConfig
from repro.workloads import get_benchmark

SCALE = 0.08
LATENCY_SCALE = 0.25
#: Pinned mode list per benchmark (must mirror tools/golden_refresh.py).
PER_BENCHMARK_MODES = {
    "bfs_citation": (
        "flat", "cdp", "dtbl", "cdpa", "cons", "persistent", "persistent-async",
    ),
    "bht": ("flat", "cdp", "dtbl", "cdpa", "cons"),
    "sssp_citation": ("flat", "persistent", "persistent-async"),
}
#: Corpus file tag -> GPUConfig.core selection.
CORES = (("ref", "reference"), ("fast", "fast"), ("vector", "vector"))
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

GRID = [
    (bench, mode, tag, core)
    for bench, modes in PER_BENCHMARK_MODES.items()
    for mode in modes
    for tag, core in CORES
]


def test_corpus_is_exactly_the_pinned_grid():
    """No missing and no stale golden files."""
    expected = {f"{b}-{m}-{t}.json" for b, m, t, _ in GRID}
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual == expected


@pytest.mark.parametrize(
    "bench,mode,tag,core", GRID,
    ids=[f"{b}-{m}-{t}" for b, m, t, _ in GRID],
)
def test_stats_match_golden(bench, mode, tag, core):
    golden = json.loads(
        (GOLDEN_DIR / f"{bench}-{mode}-{tag}.json").read_text()
    )
    workload = get_benchmark(bench, ExecutionMode(mode), SCALE)
    config = dataclasses.replace(GPUConfig.k20c(), core=core)
    result = workload.execute(config=config, latency_scale=LATENCY_SCALE)
    live = json.loads(json.dumps(result.stats.to_dict()))
    if live != golden:
        drifted = {
            key: (golden.get(key), live.get(key))
            for key in set(golden) | set(live)
            if golden.get(key) != live.get(key)
        }
        pytest.fail(
            f"{bench} {mode} ({core}) drifted from the golden corpus; "
            f"changed counters (golden, live): {drifted}"
        )
