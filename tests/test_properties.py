"""Property-based tests (hypothesis) on core data structures and the
functional correctness of the SIMT execution engine."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Device, GPUConfig, KernelBuilder, KernelFunction
from repro.config import SEGMENT_WORDS, WARP_SIZE
from repro.memory import Cache, GlobalMemory, coalesce_addresses
from repro.memory.dram import DramController

from tests.helpers import map_kernel, run_map_kernel


# ----------------------------------------------------------------------
# Coalescer properties
# ----------------------------------------------------------------------
class TestCoalescerProperties:
    @given(st.lists(st.integers(0, 1 << 30), min_size=1, max_size=WARP_SIZE))
    def test_segment_count_bounds(self, addrs):
        segs = coalesce_addresses(np.asarray(addrs, dtype=np.int64))
        assert 1 <= segs.size <= len(addrs)

    @given(st.lists(st.integers(0, 1 << 30), min_size=1, max_size=WARP_SIZE))
    def test_every_address_covered(self, addrs):
        arr = np.asarray(addrs, dtype=np.int64)
        segs = set(coalesce_addresses(arr).tolist())
        assert all(a // SEGMENT_WORDS in segs for a in addrs)

    @given(st.lists(st.integers(0, 1 << 30), min_size=1, max_size=WARP_SIZE))
    def test_permutation_invariant(self, addrs):
        arr = np.asarray(addrs, dtype=np.int64)
        rng = np.random.default_rng(0)
        shuffled = arr.copy()
        rng.shuffle(shuffled)
        assert coalesce_addresses(arr).tolist() == coalesce_addresses(shuffled).tolist()

    @given(st.integers(0, 1 << 24), st.integers(1, WARP_SIZE))
    def test_contiguous_run_is_minimal(self, base, length):
        arr = base + np.arange(length, dtype=np.int64)
        segs = coalesce_addresses(arr)
        lo = base // SEGMENT_WORDS
        hi = (base + length - 1) // SEGMENT_WORDS
        assert segs.size == hi - lo + 1


# ----------------------------------------------------------------------
# Cache properties
# ----------------------------------------------------------------------
class TestCacheProperties:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_hits_plus_misses_is_accesses(self, lines):
        cache = Cache(size_bytes=16 * 128, line_bytes=128, assoc=2)
        for line in lines:
            cache.access(line)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(lines)

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_immediate_reaccess_always_hits(self, lines):
        cache = Cache(size_bytes=16 * 128, line_bytes=128, assoc=2)
        for line in lines:
            cache.access(line)
            assert cache.access(line) is True

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=64))
    def test_working_set_within_capacity_never_conflicts(self, lines):
        # 8 distinct lines into a 16-line cache: after the first touch of
        # each line, everything hits.
        cache = Cache(size_bytes=16 * 128, line_bytes=128, assoc=16)
        seen = set()
        for line in lines:
            hit = cache.access(line)
            assert hit == (line in seen)
            seen.add(line)


# ----------------------------------------------------------------------
# DRAM properties
# ----------------------------------------------------------------------
class TestDramProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1 << 20), st.booleans()),
            min_size=1,
            max_size=100,
        )
    )
    def test_completion_after_arrival_and_activity_bounded(self, requests):
        dram = DramController(GPUConfig.k20c())
        arrival = 0
        last_completion = 0
        for segment, is_write in requests:
            completion = dram.service(segment, is_write, arrival)
            assert completion > arrival
            last_completion = max(last_completion, completion)
            arrival += 3
        stats = dram.stats
        assert stats.commands == len(requests)
        assert 0 < stats.n_activity <= last_completion
        assert 0.0 < stats.efficiency <= 1.0

    @given(st.lists(st.integers(0, 1 << 16), min_size=2, max_size=60))
    def test_same_bank_never_overlaps(self, segments):
        cfg = GPUConfig.k20c()
        dram = DramController(cfg)
        completions = []
        for i, segment in enumerate(segments):
            completions.append(dram.service(segment, False, i))
        # Per-bank service slots are exclusive: total busy time across all
        # banks is at least commands * min-service.
        busy_min = len(segments) * cfg.dram_row_hit_cycles
        assert max(completions) >= busy_min / cfg.dram_banks


# ----------------------------------------------------------------------
# Allocator properties
# ----------------------------------------------------------------------
class TestAllocatorProperties:
    @given(st.lists(st.integers(1, 64), min_size=1, max_size=60))
    def test_allocations_are_disjoint(self, sizes):
        mem = GlobalMemory(64 * 64 + 1)
        spans = []
        for size in sizes:
            base = mem.alloc(size)
            spans.append((base, base + size))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        assert all(s >= 1 for s, _ in spans)  # null word reserved


# ----------------------------------------------------------------------
# SIMT execution vs NumPy oracle
# ----------------------------------------------------------------------
_EXPR = {
    "add": (lambda k, v, c: k.iadd(v, c), lambda v, c: v + c),
    "sub": (lambda k, v, c: k.isub(v, c), lambda v, c: v - c),
    "mul": (lambda k, v, c: k.imul(v, c), lambda v, c: v * c),
    "min": (lambda k, v, c: k.imin(v, c), lambda v, c: np.minimum(v, c)),
    "max": (lambda k, v, c: k.imax(v, c), lambda v, c: np.maximum(v, c)),
    "xor": (lambda k, v, c: k.ixor(v, c), lambda v, c: v ^ c),
}


class TestExecutionOracle:
    @settings(max_examples=12, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(sorted(_EXPR)), st.integers(-100, 100)),
            min_size=1,
            max_size=6,
        ),
        data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=80),
    )
    def test_random_alu_chain_matches_numpy(self, ops, data):
        def body(k, v):
            reg = v
            for name, imm in ops:
                reg = _EXPR[name][0](k, reg, imm)
            return reg

        func = map_kernel("chain", body)
        out = run_map_kernel(func, np.asarray(data, dtype=np.int64))
        expected = np.asarray(data, dtype=np.int64)
        for name, imm in ops:
            expected = _EXPR[name][1](expected, np.int64(imm))
        np.testing.assert_array_equal(out, expected)

    @settings(max_examples=8, deadline=None)
    @given(
        trips=st.lists(st.integers(0, 12), min_size=1, max_size=64),
    )
    def test_divergent_loops_match_python(self, trips):
        def body(k, v):
            acc = k.mov(0)
            with k.for_range(0, v) as i:
                k.iadd(acc, k.imul(i, 2), dst=acc)
            return acc

        func = map_kernel("loops", body)
        out = run_map_kernel(func, np.asarray(trips, dtype=np.int64))
        expected = [sum(2 * i for i in range(t)) for t in trips]
        np.testing.assert_array_equal(out, expected)

    @settings(max_examples=8, deadline=None)
    @given(data=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=96))
    def test_gather_store_roundtrip(self, data):
        func = map_kernel("copy", lambda k, v: k.mov(v))
        out = run_map_kernel(func, np.asarray(data, dtype=np.int64))
        np.testing.assert_array_equal(out, data)
