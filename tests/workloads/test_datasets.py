"""Dataset generator invariants."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    amr_grid,
    cage15_like,
    citation_network,
    darpa_packets,
    flight_network,
    graph500_like,
    join_tables,
    movielens_like,
    random_points,
    random_strings,
    usa_road,
)


GRAPH_GENERATORS = [
    lambda: citation_network(n=300),
    lambda: usa_road(n=400),
    lambda: cage15_like(n=250),
    lambda: graph500_like(n=250),
    lambda: flight_network(n=250),
]


class TestGraphs:
    @pytest.mark.parametrize("gen", GRAPH_GENERATORS)
    def test_csr_well_formed(self, gen):
        graph = gen()
        graph.validate()
        assert graph.num_vertices > 0
        assert graph.num_edges > 0

    @pytest.mark.parametrize("gen", GRAPH_GENERATORS)
    def test_deterministic(self, gen):
        a, b = gen(), gen()
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_citation_is_heavy_tailed(self):
        graph = citation_network(n=800)
        degrees = graph.degrees()
        assert degrees.max() > 6 * degrees.mean()

    def test_usa_road_low_degree(self):
        graph = usa_road(n=900)
        assert graph.degrees().max() <= 4

    def test_graph500_balanced(self):
        graph = graph500_like(n=500)
        degrees = graph.degrees()
        assert degrees.std() < 0.5 * degrees.mean()

    def test_flight_few_hubs(self):
        graph = flight_network(n=400, hubs=8)
        degrees = graph.degrees()
        big = (degrees >= 32).sum()
        assert 0 < big <= 10  # only the hubs are large

    def test_symmetry_of_coloring_graphs(self):
        for graph in (graph500_like(n=200), cage15_like(n=200)):
            adjacency = {
                v: set(graph.neighbors(v).tolist()) for v in range(graph.num_vertices)
            }
            for v, neighbors in adjacency.items():
                for u in neighbors:
                    assert v in adjacency[u], f"edge {v}->{u} not symmetric"

    def test_weights_when_requested(self):
        graph = citation_network(n=200, weighted=True)
        assert graph.weights is not None
        assert graph.weights.min() >= 1

    def test_no_self_loops(self):
        for gen in GRAPH_GENERATORS:
            graph = gen()
            for v in range(graph.num_vertices):
                assert v not in graph.neighbors(v)


class TestNonGraphData:
    def test_amr_grid_shape(self):
        grid = amr_grid(side=12)
        assert grid.num_cells == 144
        assert grid.energy.shape == (144,)
        assert (grid.energy > 0).all()
        assert (grid.energy > grid.threshold).any()  # some hot cells

    def test_points_in_unit_square(self):
        pts = random_points(n=500)
        assert pts.count == 500
        assert pts.x.min() >= 0 and pts.x.max() <= 1
        assert pts.y.min() >= 0 and pts.y.max() <= 1
        assert (pts.mass > 0).all()

    def test_darpa_packets_structure(self):
        packets = darpa_packets(n=40)
        assert packets.count == 40
        assert packets.alphabet == 256
        assert all(p.min() >= 0 and p.max() < 256 for p in packets.packets)
        assert len(packets.patterns) >= 1

    def test_random_strings_small_alphabet(self):
        packets = random_strings(n=30, alphabet=8)
        for p in packets.packets:
            assert p.min() >= ord("a")
            assert p.max() < ord("a") + 8

    def test_ratings_csr_consistency(self):
        data = movielens_like(num_users=60, num_items=30)
        assert data.item_indptr[-1] == data.num_ratings
        assert data.user_indptr[-1] == data.num_ratings
        # Same multiset of ratings in both layouts.
        assert sorted(data.item_ratings.tolist()) == sorted(data.user_ratings.tolist())

    def test_ratings_power_law(self):
        data = movielens_like(num_users=200, num_items=100)
        pops = np.diff(data.item_indptr)
        assert pops.max() > 2.5 * pops.mean()
        heavier = movielens_like(
            num_users=200, num_items=100, popularity_exponent=1.0
        )
        heavy_pops = np.diff(heavier.item_indptr)
        assert heavy_pops.max() > pops.max()  # exponent controls the skew

    def test_join_uniform_vs_gaussian_skew(self):
        uniform = join_tables("uniform", r_size=800, s_size=100)
        gauss = join_tables("gaussian", r_size=800, s_size=100)
        u_counts = np.bincount(uniform.r_keys, minlength=uniform.num_keys)
        g_counts = np.bincount(gauss.r_keys, minlength=gauss.num_keys)
        assert g_counts.max() > 2 * u_counts.max()

    def test_join_unknown_distribution(self):
        with pytest.raises(ValueError):
            join_tables("zipf")
