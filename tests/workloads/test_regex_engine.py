"""Tests for the pattern-matching substrate (NFA -> DFA tables)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.regex_engine import (
    build_ac_dfa,
    build_anchored_dfa,
    count_matches,
)


def text(s: str) -> np.ndarray:
    return np.frombuffer(s.encode(), dtype=np.uint8).astype(np.int64)


class TestAnchoredDfa:
    def test_single_pattern_anchored(self):
        dfa = build_anchored_dfa(["abc"])
        t = text("xxabcxx")
        assert dfa.matches_at(t, 2)
        assert not dfa.matches_at(t, 0)
        assert not dfa.matches_at(t, 3)

    def test_multiple_patterns(self):
        dfa = build_anchored_dfa(["abc", "abd", "zz"])
        t = text("abdzz")
        assert dfa.matches_at(t, 0)  # abd
        assert dfa.matches_at(t, 3)  # zz
        assert not dfa.matches_at(t, 1)

    def test_shared_prefixes_share_states(self):
        separate = build_anchored_dfa(["abcdef"])
        shared = build_anchored_dfa(["abcdef", "abcxyz"])
        # Shared prefix "abc" reuses 3 states: 6+3 pattern states + root + dead.
        assert shared.num_states == separate.num_states + 3

    def test_match_at_end_boundary(self):
        dfa = build_anchored_dfa(["ab"])
        t = text("zab")
        assert dfa.matches_at(t, 1)
        assert not dfa.matches_at(t, 2)  # truncated window

    def test_dead_state_traps(self):
        dfa = build_anchored_dfa(["abc"])
        state = dfa.step(0, ord("a"))
        dead = dfa.step(state, ord("z"))
        assert dead == 1
        assert dfa.step(dead, ord("a")) == 1

    def test_empty_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            build_anchored_dfa([])
        with pytest.raises(WorkloadError):
            build_anchored_dfa([""])

    def test_out_of_alphabet_rejected(self):
        with pytest.raises(WorkloadError):
            build_anchored_dfa(["abc"], alphabet=8)

    def test_table_layout(self):
        dfa = build_anchored_dfa(["ab"], alphabet=128)
        assert dfa.transitions.shape == (dfa.num_states * 128,)
        assert dfa.accepting.shape == (dfa.num_states,)
        assert dfa.max_pattern_len == 2


class TestCountMatches:
    def test_counts_start_positions(self):
        dfa = build_anchored_dfa(["aa"])
        assert count_matches(dfa, text("aaa"), ["aa"]) == 2  # positions 0, 1

    def test_overlapping_patterns(self):
        dfa = build_anchored_dfa(["ab", "ba"])
        assert count_matches(dfa, text("abab"), ["ab", "ba"]) == 3

    def test_matches_python_reference(self):
        rng = np.random.default_rng(5)
        patterns = ["abca", "caa"]
        dfa = build_anchored_dfa(patterns)
        for _ in range(20):
            t = rng.integers(ord("a"), ord("d"), size=60).astype(np.int64)
            s = "".join(chr(c) for c in t)
            expected = sum(
                1
                for i in range(len(s))
                if any(s.startswith(p, i) for p in patterns)
            )
            assert count_matches(dfa, t, patterns) == expected


class TestPatternSyntax:
    def test_wildcard(self):
        dfa = build_anchored_dfa(["a.c"])
        assert dfa.matches_at(text("abc"), 0)
        assert dfa.matches_at(text("azc"), 0)
        assert not dfa.matches_at(text("abd"), 0)

    def test_character_class(self):
        dfa = build_anchored_dfa(["[abc]x"])
        for ch in "abc":
            assert dfa.matches_at(text(ch + "x"), 0)
        assert not dfa.matches_at(text("dx"), 0)

    def test_class_range(self):
        dfa = build_anchored_dfa(["[a-d]z"])
        assert dfa.matches_at(text("bz"), 0)
        assert not dfa.matches_at(text("ez"), 0)

    def test_negated_class(self):
        dfa = build_anchored_dfa(["[^x]y"])
        assert dfa.matches_at(text("ay"), 0)
        assert not dfa.matches_at(text("xy"), 0)

    def test_escape(self):
        dfa = build_anchored_dfa([r"a\.b"])
        assert dfa.matches_at(text("a.b"), 0)
        assert not dfa.matches_at(text("axb"), 0)

    def test_mixed_literal_and_wildcard_patterns(self):
        dfa = build_anchored_dfa(["ab", "a.c"])
        assert dfa.matches_at(text("ab"), 0)  # literal wins at len 2
        assert dfa.matches_at(text("axc"), 0)  # wildcard at len 3
        assert not dfa.matches_at(text("axd"), 0)

    def test_parse_errors(self):
        from repro.workloads.regex_engine import parse_pattern

        with pytest.raises(WorkloadError):
            parse_pattern("a[bc", 128)  # unterminated class
        with pytest.raises(WorkloadError):
            parse_pattern("a\\", 128)  # dangling escape
        with pytest.raises(WorkloadError):
            parse_pattern("[z-a]", 128)  # inverted range
        with pytest.raises(WorkloadError):
            parse_pattern("", 128)

    def test_unanchored_with_wildcards(self):
        dfa = build_ac_dfa(["n..dle"])
        state = 0
        found = False
        for symbol in text("xxnoodlexx"):
            state = dfa.step(state, int(symbol))
            found = found or bool(dfa.accepting[state])
        assert found


class TestAcDfa:
    def test_unanchored_scan_finds_embedded_match(self):
        dfa = build_ac_dfa(["needle"])
        state = 0
        found = False
        for symbol in text("xxxneedlexxx"):
            state = dfa.step(state, int(symbol))
            if dfa.accepting[state]:
                found = True
        assert found

    def test_failure_links_recover(self):
        # "aab" requires falling back from "aa" to "a" on the second 'a'.
        dfa = build_ac_dfa(["aab"])
        state = 0
        hits = 0
        for symbol in text("aaab"):
            state = dfa.step(state, int(symbol))
            hits += int(dfa.accepting[state])
        assert hits == 1

    def test_no_dead_ends(self):
        dfa = build_ac_dfa(["ab", "bc"])
        # Every transition leads to a valid state (AC never traps).
        assert dfa.transitions.min() >= 0
        assert dfa.transitions.max() < dfa.num_states
