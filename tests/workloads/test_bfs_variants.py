"""BFS expansion-variant equivalence: same distances, different engines."""

import numpy as np
import pytest

from repro import Device, ExecutionMode
from repro.workloads.bfs import BfsWorkload
from repro.workloads.datasets.graphs import cage15_like, citation_network, usa_road


def distances(graph, mode, expansion="thread", source=0):
    workload = BfsWorkload(
        "bfs_var", mode, graph, source=source, expansion=expansion
    )
    device = Device(mode=mode, latency=mode.latency_model(0.25))
    for func in workload.build_kernels():
        device.register(func)
    workload.setup(device)
    workload.run(device)
    device.synchronize(max_cycles=200_000_000)
    got = device.download_ints(workload.dist_addr, graph.num_vertices)
    workload.check(device)
    return got


class TestVariantEquivalence:
    @pytest.mark.parametrize("seed", [3, 7, 19])
    def test_all_engines_agree_on_citation(self, seed):
        graph = citation_network(n=180, attach=4, seed=seed)
        reference = distances(graph, ExecutionMode.FLAT, "thread")
        for mode, expansion in (
            (ExecutionMode.FLAT, "warp"),
            (ExecutionMode.FLAT, "persistent"),
            (ExecutionMode.DTBL_IDEAL, "thread"),
            (ExecutionMode.CDP_IDEAL, "thread"),
        ):
            got = distances(graph, mode, expansion)
            np.testing.assert_array_equal(
                got, reference, err_msg=f"{mode.value}/{expansion} diverged"
            )

    def test_nonzero_source(self):
        graph = cage15_like(n=150, seed=9)
        a = distances(graph, ExecutionMode.FLAT, "thread", source=42)
        b = distances(graph, ExecutionMode.FLAT, "persistent", source=42)
        np.testing.assert_array_equal(a, b)

    def test_long_diameter_graph(self):
        # A lattice has a long BFS tail: many near-empty frontiers.
        graph = usa_road(n=100)
        a = distances(graph, ExecutionMode.FLAT, "thread")
        b = distances(graph, ExecutionMode.FLAT, "warp")
        np.testing.assert_array_equal(a, b)
        assert a.max() > 5  # genuinely long paths
