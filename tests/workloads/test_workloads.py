"""End-to-end correctness of every benchmark in every execution mode.

Each workload's ``check`` compares device results against a pure-Python
reference; these tests run small datasets so the whole matrix stays fast.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.runtime import ExecutionMode
from repro.workloads.amr import AmrWorkload
from repro.workloads.bfs import BfsWorkload
from repro.workloads.bht import BarnesHutWorkload
from repro.workloads.clr import ColoringWorkload
from repro.workloads.datasets import (
    amr_grid,
    cage15_like,
    citation_network,
    darpa_packets,
    join_tables,
    movielens_like,
    random_points,
    random_strings,
    usa_road,
)
from repro.workloads.join import JoinWorkload
from repro.workloads.pre import RecommendationWorkload
from repro.workloads.regx import RegexWorkload
from repro.workloads.sssp import SsspWorkload

MODES = [
    ExecutionMode.FLAT,
    ExecutionMode.CDP,
    ExecutionMode.CDP_IDEAL,
    ExecutionMode.DTBL,
    ExecutionMode.DTBL_IDEAL,
]

# All workload runs verify against the Python reference inside execute().
LS = 0.25


@pytest.mark.parametrize("mode", MODES)
class TestAllModes:
    def test_bfs(self, mode):
        graph = citation_network(n=220, attach=4)
        BfsWorkload("bfs", mode, graph).execute(latency_scale=LS)

    def test_sssp(self, mode):
        graph = cage15_like(n=150, weighted=True)
        SsspWorkload("sssp", mode, graph).execute(latency_scale=LS)

    def test_clr(self, mode):
        graph = citation_network(n=180, seed=9)
        ColoringWorkload("clr", mode, graph).execute(latency_scale=LS)

    def test_amr(self, mode):
        AmrWorkload("amr", mode, amr_grid(side=8)).execute(latency_scale=LS)

    def test_join(self, mode):
        data = join_tables("gaussian", r_size=400, s_size=200)
        JoinWorkload("join", mode, data).execute(latency_scale=LS)

    def test_regx(self, mode):
        packets = darpa_packets(n=36, min_len=40, max_len=90)
        RegexWorkload("regx", mode, packets).execute(latency_scale=LS)

    def test_pre(self, mode):
        data = movielens_like(num_users=80, num_items=40)
        RecommendationWorkload("pre", mode, data).execute(latency_scale=LS)

    def test_bht(self, mode):
        points = random_points(n=120)
        BarnesHutWorkload("bht", mode, points).execute(latency_scale=LS)


class TestWorkloadBehaviour:
    def test_bfs_unreachable_vertices_stay_inf(self):
        # Two disconnected lattice components: BFS from 0 must not reach
        # the second one.
        from repro.workloads.common import INF
        from repro.workloads.datasets.graphs import Graph

        g1 = usa_road(n=49)
        n = g1.num_vertices
        # Duplicate the graph as a second component.
        indptr = np.concatenate([g1.indptr, g1.indptr[1:] + g1.num_edges])
        indices = np.concatenate([g1.indices, g1.indices + n])
        graph = Graph(indptr=indptr, indices=indices, name="two_islands")
        workload = BfsWorkload("bfs_islands", ExecutionMode.FLAT, graph)
        result = workload.execute()
        assert result.stats.cycles > 0
        expected = workload.reference_distances()
        assert (expected[n:] == INF).all()

    def test_sssp_matches_dijkstra_not_just_bfs(self):
        # Weighted shortest paths differ from hop counts on this graph.
        graph = citation_network(n=150, weighted=True)
        workload = SsspWorkload("sssp", ExecutionMode.FLAT, graph)
        dist = workload.reference_distances()
        bfs_ref = BfsWorkload("bfs", ExecutionMode.FLAT, graph).reference_distances()
        assert (dist != bfs_ref).any()
        workload.execute()

    def test_clr_produces_proper_coloring(self):
        graph = cage15_like(n=120, seed=11)
        workload = ColoringWorkload("clr", ExecutionMode.DTBL_IDEAL, graph)
        workload.execute(latency_scale=LS)
        assert workload.rounds >= 1

    def test_amr_counts_levels(self):
        workload = AmrWorkload("amr", ExecutionMode.FLAT, amr_grid(side=10))
        workload.execute()
        counts, checksum = workload.reference()
        assert counts[0] > 0  # some root cells refine
        assert checksum > 0

    def test_amr_rejects_deep_grids(self):
        with pytest.raises(ValueError):
            AmrWorkload("amr", ExecutionMode.FLAT, amr_grid(side=8, max_depth=3))

    def test_join_empty_probe_result_possible(self):
        data = join_tables("uniform", r_size=64, s_size=64, num_keys=4000)
        JoinWorkload("join", ExecutionMode.FLAT, data).execute()

    def test_regx_string_has_dense_matches(self):
        packets = random_strings(n=20)
        workload = RegexWorkload("regx", ExecutionMode.FLAT, packets)
        counts = workload.reference_counts()
        assert counts.sum() > 0

    def test_dynamic_launch_counts_equal_across_mechanisms(self):
        # The paper's fair-comparison rule: CDP and DTBL launch for the
        # same DFPs, so dynamic-launch counts must match exactly.
        graph = citation_network(n=260, attach=5)
        cdp = BfsWorkload("bfs", ExecutionMode.CDP_IDEAL, graph).execute(latency_scale=LS)
        dtbl = BfsWorkload("bfs", ExecutionMode.DTBL_IDEAL, graph).execute(latency_scale=LS)
        assert len(cdp.stats.dynamic_launches()) == len(dtbl.stats.dynamic_launches())

    def test_flat_mode_never_launches(self):
        graph = citation_network(n=200, attach=5)
        result = BfsWorkload("bfs", ExecutionMode.FLAT, graph).execute()
        assert len(result.stats.dynamic_launches()) == 0

    def test_expect_raises_workload_error(self):
        workload = BfsWorkload("bfs", ExecutionMode.FLAT, citation_network(n=64))
        with pytest.raises(WorkloadError):
            workload.expect(False, "boom")


class TestOptimizedKernels:
    """The peephole optimizer must preserve every workload's results."""

    def test_bfs_optimized_matches_reference(self):
        graph = citation_network(n=200, attach=4)
        result = BfsWorkload("bfs_opt", ExecutionMode.DTBL_IDEAL, graph).execute(
            latency_scale=LS, optimize_kernels=True
        )
        assert result.stats.cycles > 0  # check() inside execute verified it

    def test_amr_optimized_matches_reference(self):
        AmrWorkload("amr_opt", ExecutionMode.FLAT, amr_grid(side=8)).execute(
            optimize_kernels=True
        )

    def test_join_optimized_matches_reference(self):
        data = join_tables("gaussian", r_size=300, s_size=150)
        JoinWorkload("join_opt", ExecutionMode.CDP_IDEAL, data).execute(
            latency_scale=LS, optimize_kernels=True
        )


class TestRegexPipelineWithExtendedSyntax:
    """Wildcard/class patterns flow through the full GPU pipeline: the
    verification kernels walk whatever DFA table the engine produces."""

    def test_wildcard_patterns_on_device(self):
        from repro.workloads.datasets.strings import PacketSet
        import numpy as np

        rng = np.random.default_rng(71)
        packets = [
            rng.integers(ord("a"), ord("e"), size=int(rng.integers(40, 90))).astype(np.int64)
            for _ in range(24)
        ]
        data = PacketSet(
            packets=packets,
            patterns=["a.c", "b[cd]d", "d\\.x"],
            alphabet=128,
        )
        for mode in (ExecutionMode.FLAT, ExecutionMode.DTBL_IDEAL):
            RegexWorkload("regx_wild", mode, data).execute(latency_scale=LS)


class TestPersistentThreadsBfs:
    """The Section 6 persistent-threads baseline."""

    def test_distances_correct(self):
        graph = citation_network(n=250, attach=4)
        BfsWorkload(
            "bfs_pt", ExecutionMode.FLAT, graph, expansion="persistent"
        ).execute(max_cycles=100_000_000)

    def test_disconnected_graph_terminates(self):
        # Quiescence detection must not hang when most vertices are
        # unreachable (tiny worklist, many idle workers).
        graph = usa_road(n=36)
        BfsWorkload(
            "bfs_pt2", ExecutionMode.FLAT, graph, source=0, expansion="persistent"
        ).execute(max_cycles=100_000_000)

    def test_rejected_in_dynamic_modes(self):
        graph = citation_network(n=64)
        with pytest.raises(ValueError):
            BfsWorkload("x", ExecutionMode.DTBL, graph, expansion="persistent")

    def test_unknown_expansion_rejected(self):
        graph = citation_network(n=64)
        with pytest.raises(ValueError):
            BfsWorkload("x", ExecutionMode.FLAT, graph, expansion="blocks")
