"""Shared workload helpers and edge-case datasets."""

import numpy as np
import pytest

from repro import Device, ExecutionMode, KernelBuilder, KernelFunction
from repro.workloads.bfs import BfsWorkload
from repro.workloads.common import INF, DeviceGraph, emit_dfp, emit_dynamic_launch, upload_graph
from repro.workloads.datasets.graphs import Graph, citation_network
from repro.isa import Opcode

from tests.helpers import make_device


class TestUploadGraph:
    def test_roundtrip(self):
        graph = citation_network(n=100)
        dev = make_device()
        dgraph = upload_graph(dev, graph)
        assert isinstance(dgraph, DeviceGraph)
        np.testing.assert_array_equal(
            dev.download_ints(dgraph.indptr, graph.num_vertices + 1), graph.indptr
        )
        np.testing.assert_array_equal(
            dev.download_ints(dgraph.indices, graph.num_edges), graph.indices
        )
        assert dgraph.weights == 0  # unweighted

    def test_weighted(self):
        graph = citation_network(n=80, weighted=True)
        dev = make_device()
        dgraph = upload_graph(dev, graph)
        assert dgraph.weights != 0
        np.testing.assert_array_equal(
            dev.download_ints(dgraph.weights, graph.num_edges), graph.weights
        )

    def test_empty_graph(self):
        graph = Graph(
            indptr=np.zeros(4, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            name="empty",
        )
        dev = make_device()
        dgraph = upload_graph(dev, graph)
        assert dgraph.num_edges == 0


class TestEmitDfp:
    def test_flat_mode_emits_only_serial(self):
        k = KernelBuilder("t")
        count = k.mov(100)
        emitted = []
        emit_dfp(
            k,
            ExecutionMode.FLAT,
            count,
            threshold=32,
            launch_fn=lambda: emitted.append("launch"),
            serial_fn=lambda: emitted.append("serial"),
        )
        assert emitted == ["serial"]

    def test_dynamic_mode_emits_both_paths(self):
        k = KernelBuilder("t")
        count = k.mov(100)
        emitted = []
        emit_dfp(
            k,
            ExecutionMode.DTBL,
            count,
            threshold=32,
            launch_fn=lambda: emitted.append("launch"),
            serial_fn=lambda: emitted.append("serial"),
        )
        assert emitted == ["launch", "serial"]

    def test_launch_sequence_shape(self):
        k = KernelBuilder("t")
        count = k.mov(64)
        emit_dynamic_launch(k, ExecutionMode.CDP, "child", [count, 1, 2], count, 32)
        ops = [i.op for i in k.program.instructions]
        assert Opcode.GET_PARAM_BUF in ops
        assert Opcode.STREAM_CREATE in ops  # CDP creates a stream (Fig. 3a)
        assert Opcode.LAUNCH_DEVICE in ops
        assert ops.count(Opcode.ST) == 3  # one per parameter

    def test_dtbl_launch_has_no_stream(self):
        k = KernelBuilder("t")
        count = k.mov(64)
        emit_dynamic_launch(k, ExecutionMode.DTBL, "child", [count], count, 32)
        ops = [i.op for i in k.program.instructions]
        assert Opcode.STREAM_CREATE not in ops
        assert Opcode.LAUNCH_AGG in ops

    def test_flat_launch_rejected(self):
        k = KernelBuilder("t")
        count = k.mov(64)
        with pytest.raises(ValueError):
            emit_dynamic_launch(k, ExecutionMode.FLAT, "child", [count], count, 32)


class TestEdgeDatasets:
    def test_bfs_from_isolated_source(self):
        # Source with no outgoing edges: BFS finishes after one level and
        # every other vertex stays at INF.
        indptr = np.array([0, 0, 1, 2], dtype=np.int64)
        indices = np.array([2, 1], dtype=np.int64)
        graph = Graph(indptr=indptr, indices=indices, name="isolated")
        workload = BfsWorkload("bfs_iso", ExecutionMode.FLAT, graph, source=0)
        workload.execute()
        expected = workload.reference_distances()
        assert expected[0] == 0
        assert (expected[1:] == INF).all()

    def test_bfs_single_vertex(self):
        graph = Graph(
            indptr=np.array([0, 0], dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            name="singleton",
        )
        BfsWorkload("bfs_one", ExecutionMode.FLAT, graph).execute()


class TestRegisterOccupancy:
    def test_register_demand_limits_residency(self):
        # A register-hungry kernel must fit fewer blocks per SMX.
        def build(regs_target: int) -> KernelFunction:
            k = KernelBuilder("hog")
            acc = k.mov(0)
            regs = [k.mov(i) for i in range(regs_target)]
            for r in regs:
                k.iadd(acc, r, dst=acc)
            k.exit()
            return KernelFunction("hog", k.build())

        lean = build(4)
        hungry = build(120)  # ~250 32-bit regs/thread
        assert hungry.regs_per_thread > lean.regs_per_thread

        from repro.sim.gpu import GPU

        gpu = GPU()
        smx = gpu.smxs[0]
        count = 0
        while smx.can_accept(hungry, (256, 1, 1)):
            smx.add_block(hungry, (100, 1, 1), (256, 1, 1), count, 0, None, None, 0)
            count += 1
        # 65536 regs / (256 threads x ~250 regs) ≈ 1 block.
        assert count < 4
