"""Checkpoint/restore: file format, validation and round-trip identity.

Two layers of coverage:

* **file layer** — save/load/quarantine semantics on real checkpoint
  documents: atomic writes, magic/salt/format/fingerprint validation,
  truncation and corruption handling;
* **round-trip identity** — a run interrupted at a checkpoint and
  resumed in a *replayed* host program finishes bit-identical to an
  uninterrupted run: statistics, global memory, outputs and sanitizer
  state.  Property-tested over random programs, interrupt points and
  both simulation cores (à la ``tests/test_random_programs.py``), plus
  a workload-level sweep with the sanitizer on.
"""

import dataclasses
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionMode, GPUConfig
from repro.state import (
    CheckpointError,
    capture_document,
    checkpoint_path_for,
    load_checkpoint,
    prepare_resume,
    quarantine_checkpoint,
    save_checkpoint,
)
from repro.workloads import get_benchmark

from ..helpers import make_device, map_kernel

SCALE = 0.08


class Interrupt(Exception):
    pass


# ----------------------------------------------------------------------
# A tiny deterministic host program, replayable for resume.
# ----------------------------------------------------------------------
def _build(data, mult, add, mode=ExecutionMode.FLAT, fast=False,
           sanitize=True):
    """Fresh device + registered map kernel + uploaded inputs."""
    config = dataclasses.replace(
        GPUConfig.k20c(), core=("fast" if fast else "reference"), sanitize=sanitize
    )
    dev = make_device(mode, config=config)
    func = map_kernel(
        "ckpt_prop", lambda k, v: k.iadd(k.imul(v, mult), add)
    )
    dev.register(func)
    n = len(data)
    src = dev.upload(np.asarray(data, dtype=np.int64))
    dst = dev.alloc(n)
    return dev, func, n, src, dst


def _launch(dev, func, n, src, dst):
    dev.launch(
        func.name, grid=(n + 127) // 128, block=128, params=[n, src, dst]
    )


def _final_state(dev, dst, n):
    gpu = dev.gpu
    return {
        "out": dev.download_ints(dst, n).tolist(),
        "stats": gpu.stats.to_dict(),
        "memory": gpu.memory.i.copy(),
        "sanitizer": gpu.sanitizer.report.to_dict() if gpu.sanitizer else None,
    }


def _capture_one(every=20, stop_at=1, **build_kwargs):
    """Run the tiny program until its ``stop_at``-th checkpoint.

    Returns ``(doc, path)``: the captured document (as handed to the
    ``on_checkpoint`` callback) and the checkpoint file on disk.
    """
    path = Path(tempfile.mkdtemp()) / "unit.ckpt"
    data = list(range(64))
    seen = []

    def grab(doc):
        seen.append(doc)
        if len(seen) >= stop_at:
            raise Interrupt()

    dev, func, n, src, dst = _build(data, 3, 7, **build_kwargs)
    dev.configure_checkpoint(every, path=str(path), on_checkpoint=grab)
    _launch(dev, func, n, src, dst)
    with pytest.raises(Interrupt):
        dev.synchronize()
    assert path.exists()
    return seen[-1], path


# ----------------------------------------------------------------------
# File layer
# ----------------------------------------------------------------------
class TestCheckpointFiles:
    def test_checkpoint_path_for(self, tmp_path):
        path = checkpoint_path_for(tmp_path, "abc123")
        assert path == tmp_path / "abc123.ckpt"

    def test_save_load_roundtrip(self, tmp_path):
        doc, _ = _capture_one()
        path = tmp_path / "roundtrip.ckpt"
        save_checkpoint(path, doc)
        loaded = load_checkpoint(path)
        for key in ("format", "salt", "run_index", "cycle", "config",
                    "memory_words", "sanitize"):
            assert loaded[key] == doc[key]
        assert set(loaded["state"]) == set(doc["state"])
        # Atomic write leaves no temporaries behind.
        assert [p.name for p in tmp_path.iterdir()] == ["roundtrip.ckpt"]

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_load_rejects_non_checkpoint_bytes(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_load_rejects_corrupt_payload(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(b"REPRO-CKPT\x00garbage-not-zlib")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_load_rejects_truncated_file(self, tmp_path):
        doc, _ = _capture_one()
        path = tmp_path / "torn.ckpt"
        save_checkpoint(path, doc)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_load_rejects_stale_salt(self, tmp_path):
        doc, _ = _capture_one()
        path = tmp_path / "stale.ckpt"
        save_checkpoint(path, dict(doc, salt="some-older-code-version"))
        with pytest.raises(CheckpointError, match="stale"):
            load_checkpoint(path)

    def test_load_rejects_unknown_format(self, tmp_path):
        doc, _ = _capture_one()
        path = tmp_path / "future.ckpt"
        save_checkpoint(path, dict(doc, format=999))
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)

    def test_load_enforces_fingerprint_binding(self, tmp_path):
        doc, _ = _capture_one()
        path = tmp_path / "bound.ckpt"
        save_checkpoint(path, dict(doc, fingerprint="job-a"))
        assert load_checkpoint(path, fingerprint="job-a")["cycle"] == doc["cycle"]
        with pytest.raises(CheckpointError, match="different job"):
            load_checkpoint(path, fingerprint="job-b")

    def test_quarantine_moves_file_aside(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"junk")
        target = quarantine_checkpoint(path)
        assert target == tmp_path / "bad.ckpt.corrupt"
        assert target.exists() and not path.exists()

    def test_quarantine_missing_file_returns_none(self, tmp_path):
        assert quarantine_checkpoint(tmp_path / "gone.ckpt") is None


# ----------------------------------------------------------------------
# Capture/restore validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_capture_refuses_attached_tracer(self):
        dev, func, n, src, dst = _build(list(range(8)), 2, 1)
        dev.gpu.tracer = object()
        with pytest.raises(CheckpointError, match="tracer"):
            capture_document(dev.gpu)

    def test_prepare_resume_refuses_config_mismatch(self):
        doc, _ = _capture_one(sanitize=True)
        dev, *_ = _build(list(range(64)), 3, 7, sanitize=False)
        with pytest.raises(CheckpointError):
            prepare_resume(dev.gpu, doc)

    def test_prepare_resume_refuses_replay_already_past(self):
        doc, _ = _capture_one()
        dev, func, n, src, dst = _build(list(range(64)), 3, 7)
        _launch(dev, func, n, src, dst)
        dev.synchronize()  # the replay's run 1 already completed
        with pytest.raises(CheckpointError, match="already past"):
            prepare_resume(dev.gpu, doc)


# ----------------------------------------------------------------------
# Round-trip identity: random programs, both cores
# ----------------------------------------------------------------------
class TestRoundTripProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=192),
        mult=st.integers(min_value=-7, max_value=7),
        add=st.integers(min_value=-100, max_value=100),
        every=st.integers(min_value=20, max_value=300),
        stop_at=st.integers(min_value=1, max_value=3),
        fast=st.booleans(),
        mode=st.sampled_from([ExecutionMode.FLAT, ExecutionMode.DTBL]),
        data=st.data(),
    )
    def test_interrupt_resume_bit_identical(
        self, n, mult, add, every, stop_at, fast, mode, data
    ):
        values = data.draw(
            st.lists(
                st.integers(min_value=-(2**31), max_value=2**31),
                min_size=n, max_size=n,
            )
        )

        # Golden: one uninterrupted, uncheckpointed run.
        dev, func, _, src, dst = _build(values, mult, add, mode, fast)
        _launch(dev, func, n, src, dst)
        dev.synchronize()
        golden = _final_state(dev, dst, n)

        # Interrupt at the stop_at-th checkpoint (if the program runs
        # long enough to reach it; otherwise the clean completion below
        # must still match the golden run).
        path = Path(tempfile.mkdtemp()) / "prop.ckpt"

        def bomb(doc):
            bomb.count += 1
            if bomb.count >= stop_at:
                raise Interrupt()

        bomb.count = 0
        dev, func, _, src, dst = _build(values, mult, add, mode, fast)
        dev.configure_checkpoint(every, path=str(path), on_checkpoint=bomb)
        _launch(dev, func, n, src, dst)
        try:
            dev.synchronize()
            interrupted = False
        except Interrupt:
            interrupted = True

        if interrupted:
            # Replay the host program and resume from the file.
            doc = load_checkpoint(path)
            dev, func, _, src, dst = _build(values, mult, add, mode, fast)
            _launch(dev, func, n, src, dst)
            prepare_resume(dev.gpu, doc)
            dev.synchronize()

        final = _final_state(dev, dst, n)
        assert final["out"] == golden["out"]
        assert final["stats"] == golden["stats"]
        assert np.array_equal(final["memory"], golden["memory"])
        assert final["sanitizer"] == golden["sanitizer"]


# ----------------------------------------------------------------------
# Round-trip identity: real workloads, sanitizer on
# ----------------------------------------------------------------------
def _workload(bench, mode, fast):
    workload = get_benchmark(bench, ExecutionMode(mode), SCALE)
    config = dataclasses.replace(
        GPUConfig.k20c(), core=("fast" if fast else "reference"), sanitize=True
    )
    return workload, config


@pytest.fixture(scope="module")
def clean_workload_stats():
    cache = {}

    def get(bench, mode, fast):
        key = (bench, mode, fast)
        if key not in cache:
            workload, config = _workload(bench, mode, fast)
            result = workload.execute(config=config, latency_scale=0.25)
            cache[key] = (
                result.stats.to_dict(),
                result.sanitizer.to_dict(),
            )
        return cache[key]

    return get


class TestWorkloadRoundTrip:
    @pytest.mark.parametrize("fast", [False, True], ids=["ref", "fast"])
    @pytest.mark.parametrize(
        "bench,mode",
        [("bht", "cdp"), ("bht", "dtbl"), ("bfs_citation", "dtbl")],
    )
    def test_sanitized_workload_resumes_bit_identical(
        self, tmp_path, clean_workload_stats, bench, mode, fast
    ):
        from repro.exec import JobSpec

        def bomb(doc):
            raise Interrupt()

        def spec(config, resume):
            return JobSpec.create(
                bench, ExecutionMode(mode), SCALE, 0.25, config=config,
                checkpoint_every=4_000, checkpoint_dir=str(tmp_path),
                resume=resume,
            )

        workload, config = _workload(bench, mode, fast)
        with pytest.raises(Interrupt):
            workload.execute_spec(spec(config, False), on_checkpoint=bomb)

        workload, config = _workload(bench, mode, fast)
        result = workload.execute_spec(spec(config, True))
        stats, sanitizer = clean_workload_stats(bench, mode, fast)
        assert result.stats.to_dict() == stats
        assert result.sanitizer.to_dict() == sanitizer
