"""Tests for the Table 2 / Table 3 configuration objects."""

import dataclasses

import pytest

from repro.config import (
    SEGMENT_BYTES,
    SEGMENT_WORDS,
    WARP_SIZE,
    WORD_BYTES,
    GPUConfig,
    LatencyModel,
)
from repro.errors import ConfigError


class TestGPUConfigTable2:
    """The k20c() configuration must match the paper's Table 2 exactly."""

    def setup_method(self):
        self.cfg = GPUConfig.k20c()

    def test_smx_clock(self):
        assert self.cfg.smx_clock_mhz == 706

    def test_memory_clock(self):
        assert self.cfg.memory_clock_mhz == 2600

    def test_num_smx(self):
        assert self.cfg.num_smx == 13

    def test_max_resident_blocks(self):
        assert self.cfg.max_resident_blocks == 16

    def test_max_resident_threads(self):
        assert self.cfg.max_resident_threads == 2048

    def test_registers(self):
        assert self.cfg.registers_per_smx == 65536

    def test_l1_and_shared(self):
        assert self.cfg.l1_size == 16 * 1024
        assert self.cfg.shared_mem_size == 48 * 1024

    def test_max_concurrent_kernels(self):
        assert self.cfg.max_concurrent_kernels == 32

    def test_max_resident_warps(self):
        assert self.cfg.max_resident_warps == 64


class TestGPUConfigValidation:
    def test_zero_smx_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_smx=0)

    def test_non_warp_multiple_threads_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(max_resident_threads=1000)

    def test_non_power_of_two_agt_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(agt_entries=1000)

    def test_with_agt_entries(self):
        cfg = GPUConfig.k20c().with_agt_entries(512)
        assert cfg.agt_entries == 512
        assert GPUConfig.k20c().agt_entries == 1024  # original untouched

    def test_agt_sram_bytes(self):
        # Section 4.3: 1024 entries x 20 B = 20 KB.
        assert GPUConfig.k20c().agt_sram_bytes == 20 * 1024

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GPUConfig.k20c().num_smx = 5  # type: ignore[misc]


class TestCoreSelection:
    """The three-way execution-core switch and its deprecated alias."""

    def test_default_resolves_to_fast(self):
        cfg = GPUConfig.k20c()
        assert cfg.core is None
        assert cfg.execution_core == "fast"

    def test_explicit_cores_resolve_to_themselves(self):
        for core in ("reference", "fast", "vector"):
            cfg = dataclasses.replace(GPUConfig.k20c(), core=core)
            assert cfg.execution_core == core

    def test_unknown_core_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(GPUConfig.k20c(), core="warp-speed")

    def test_fast_core_alias_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning):
            cfg = dataclasses.replace(GPUConfig.k20c(), fast_core=True)
        assert cfg.execution_core == "fast"
        with pytest.warns(DeprecationWarning):
            cfg = dataclasses.replace(GPUConfig.k20c(), fast_core=False)
        assert cfg.execution_core == "reference"

    def test_alias_conflict_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(
                GPUConfig.k20c(), core="reference", fast_core=True
            )

    def test_alias_agreement_accepted_without_warning(self):
        # `core` set: the alias is redundant but consistent, no warning.
        cfg = dataclasses.replace(GPUConfig.k20c(), core="fast", fast_core=True)
        assert cfg.execution_core == "fast"
        # The vector core subsumes the fast core, so fast_core=True with
        # core="vector" is a consistent upgrade, not a conflict.
        cfg = dataclasses.replace(
            GPUConfig.k20c(), core="vector", fast_core=True
        )
        assert cfg.execution_core == "vector"

    def test_cores_fingerprint_distinctly(self):
        fps = {
            dataclasses.replace(GPUConfig.k20c(), core=core).fingerprint()
            for core in ("reference", "fast", "vector")
        }
        fps.add(GPUConfig.k20c().fingerprint())
        assert len(fps) == 4


class TestLatencyModelTable3:
    """Measured latencies must match the paper's Table 3."""

    def setup_method(self):
        self.lat = LatencyModel.measured_k20c()

    def test_stream_create(self):
        assert self.lat.stream_create == 7165

    def test_param_buffer_linear_model(self):
        # b = 8023, A = 129 per calling thread.
        assert self.lat.param_buffer_cycles(1) == 8023 + 129
        assert self.lat.param_buffer_cycles(32) == 8023 + 129 * 32

    def test_launch_device_linear_model(self):
        # b = 12187, A = 1592 per calling thread.
        assert self.lat.launch_device_cycles(1) == 12187 + 1592
        assert self.lat.launch_device_cycles(32) == 12187 + 1592 * 32

    def test_no_callers_is_free(self):
        assert self.lat.param_buffer_cycles(0) == 0
        assert self.lat.launch_device_cycles(0) == 0

    def test_kernel_dispatch(self):
        assert self.lat.kernel_dispatch == 283

    def test_kde_search_pipelined(self):
        assert self.lat.kde_search_cycles(32) == 32

    def test_ideal_is_all_zero(self):
        ideal = LatencyModel.ideal()
        assert ideal.stream_create == 0
        assert ideal.param_buffer_cycles(32) == 0
        assert ideal.launch_device_cycles(32) == 0
        assert ideal.kernel_dispatch == 0
        assert ideal.kde_search_cycles(32) == 0
        assert ideal.agt_probe == 0


class TestConstants:
    def test_warp_size(self):
        assert WARP_SIZE == 32

    def test_segment_geometry(self):
        assert SEGMENT_BYTES == 128
        assert WORD_BYTES == 8
        assert SEGMENT_WORDS == 16
