"""CUDA-style launch sugar."""

import numpy as np
import pytest

from repro import Device, KernelBuilder, KernelFunction
from repro.errors import LaunchError
from repro.runtime.sugar import bind

from tests.helpers import map_kernel


class TestSugar:
    def make(self):
        dev = Device()
        func = map_kernel("double", lambda k, v: k.imul(v, 2))
        kernel = bind(dev, func)
        return dev, kernel

    def test_bracket_call_launches(self):
        dev, kernel = self.make()
        src = dev.upload(np.arange(100))
        dst = dev.alloc(100)
        kernel[2, 64](100, src, dst)
        dev.synchronize()
        np.testing.assert_array_equal(dev.download_ints(dst, 100), np.arange(100) * 2)

    def test_stream_component(self):
        dev, kernel = self.make()
        src = dev.upload(np.arange(10))
        dst = dev.alloc(10)
        kernel[1, 32, 3](10, src, dst)  # stream 3
        dev.synchronize()
        np.testing.assert_array_equal(dev.download_ints(dst, 10), np.arange(10) * 2)

    def test_bad_config_rejected(self):
        _, kernel = self.make()
        with pytest.raises(LaunchError):
            kernel[5]  # missing block
        with pytest.raises(LaunchError):
            kernel[1, 2, 3, 4]

    def test_bind_registers_once(self):
        dev = Device()
        func = map_kernel("k", lambda k, v: k.mov(v))
        a = bind(dev, func)
        b = bind(dev, func)  # same function object: fine
        assert a.name == b.name == "k"

    def test_bind_conflicting_name_rejected(self):
        dev = Device()
        bind(dev, map_kernel("k", lambda k, v: k.mov(v)))
        with pytest.raises(LaunchError):
            bind(dev, map_kernel("k", lambda k, v: k.iadd(v, 1)))

    def test_repr(self):
        _, kernel = self.make()
        assert "double" in repr(kernel)
