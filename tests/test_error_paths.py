"""Failure injection: error paths must fail loudly and informatively."""

import numpy as np
import pytest

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction
from repro.errors import (
    ExecutionError,
    LaunchError,
    MemoryError_,
    SimulationError,
)

from tests.helpers import make_device


class TestMemoryFaults:
    def test_wild_load_faults(self):
        k = KernelBuilder("wild")
        k.ld(k.mov(1 << 40))
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("wild", k.build()))
        dev.launch("wild", grid=1, block=32)
        with pytest.raises(ExecutionError, match="out of range"):
            dev.synchronize()

    def test_negative_store_faults(self):
        k = KernelBuilder("neg")
        k.st(k.mov(-5), 1)
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("neg", k.build()))
        dev.launch("neg", grid=1, block=32)
        with pytest.raises(ExecutionError):
            dev.synchronize()

    def test_shared_overflow_faults(self):
        k = KernelBuilder("shof")
        k.sts(k.mov(100), 1)
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("shof", k.build(), shared_words=8))
        dev.launch("shof", grid=1, block=32)
        with pytest.raises(ExecutionError, match="shared"):
            dev.synchronize()

    def test_atomic_out_of_range(self):
        k = KernelBuilder("atof")
        k.atom_add(k.mov(1 << 40), 1)
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("atof", k.build()))
        dev.launch("atof", grid=1, block=32)
        with pytest.raises(ExecutionError, match="atomic"):
            dev.synchronize()

    def test_device_memory_exhaustion(self):
        dev = Device(memory_words=4096)
        with pytest.raises(MemoryError_, match="out of simulated global memory"):
            dev.alloc(100_000)


class TestLaunchFaults:
    def test_oversized_block_rejected_at_host(self):
        dev = make_device()
        k = KernelBuilder("k")
        k.exit()
        dev.register(KernelFunction("k", k.build()))
        with pytest.raises(LaunchError):
            dev.launch("k", grid=1, block=4096)

    def test_oversized_device_launch_faults(self):
        # A child block exceeding the limit is rejected when the device
        # launch command is validated.
        k = KernelBuilder("parent")
        tid = k.tid()
        with k.if_(k.eq(tid, 0)):
            buf = k.get_param_buffer(1)
            k.launch_agg("parent", buf, agg=1, block=4096)
        k.exit()
        dev = Device(mode=ExecutionMode.DTBL_IDEAL)
        dev.register(KernelFunction("parent", k.build()))
        dev.launch("parent", grid=1, block=32)
        with pytest.raises(LaunchError):
            dev.synchronize()

    def test_unknown_child_kernel_faults(self):
        k = KernelBuilder("parent")
        tid = k.tid()
        with k.if_(k.eq(tid, 0)):
            buf = k.get_param_buffer(1)
            k.launch_agg("missing", buf, agg=1, block=32)
        k.exit()
        dev = Device(mode=ExecutionMode.DTBL_IDEAL)
        dev.register(KernelFunction("parent", k.build()))
        dev.launch("parent", grid=1, block=32)
        with pytest.raises(KeyError):
            dev.synchronize()


class TestDiagnostics:
    def test_watchdog_message_mentions_cycles(self):
        k = KernelBuilder("forever")
        i = k.mov(0)
        with k.while_(lambda: k.ge(i, 0)):
            k.iadd(i, 1, dst=i)
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("forever", k.build()))
        dev.launch("forever", grid=1, block=32)
        with pytest.raises(SimulationError, match="watchdog"):
            dev.synchronize(max_cycles=30_000)

    def test_errors_share_base_class(self):
        from repro.errors import ReproError

        for exc in (ExecutionError, LaunchError, MemoryError_, SimulationError):
            assert issubclass(exc, ReproError)
