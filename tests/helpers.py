"""Shared test utilities: tiny kernels and devices."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction


def make_device(
    mode: ExecutionMode = ExecutionMode.FLAT,
    config: Optional[GPUConfig] = None,
    **kwargs,
) -> Device:
    """A K20c-configured device (tests that want speed pass GPUConfig.small())."""
    return Device(config=config or GPUConfig.k20c(), mode=mode, **kwargs)


def map_kernel(name: str, body) -> KernelFunction:
    """Kernel over params [n, in_addr, out_addr]: out[i] = body(k, in[i]).

    ``body(k, value_reg)`` must return the register holding the result and
    may emit arbitrary instructions through the builder ``k``.
    """
    k = KernelBuilder(name)
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, n)):
        src = k.ld(param, offset=1)
        dst = k.ld(param, offset=2)
        value = k.ld(k.iadd(src, gtid))
        result = body(k, value)
        k.st(k.iadd(dst, gtid), result)
    k.exit()
    return KernelFunction(name, k.build())


def run_map_kernel(
    func: KernelFunction,
    data: np.ndarray,
    mode: ExecutionMode = ExecutionMode.FLAT,
    block: int = 128,
    config: Optional[GPUConfig] = None,
) -> np.ndarray:
    """Run a map kernel built by :func:`map_kernel` over ``data``."""
    dev = make_device(mode, config)
    dev.register(func)
    n = len(data)
    src = dev.upload(np.asarray(data, dtype=np.int64))
    dst = dev.alloc(max(1, n))
    dev.launch(func.name, grid=(n + block - 1) // block, block=block, params=[n, src, dst])
    dev.synchronize()
    return dev.download_ints(dst, n)


def reduce_kernel(name: str = "sum_reduce") -> KernelFunction:
    """Kernel over params [n, in_addr, out_addr]: atomically sums in[0:n]."""
    k = KernelBuilder(name)
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, n)):
        src = k.ld(param, offset=1)
        out = k.ld(param, offset=2)
        value = k.ld(k.iadd(src, gtid))
        k.atom_add(out, value)
    k.exit()
    return KernelFunction(name, k.build())
