"""Crash recovery: checkpointed sweeps resume bit-identically.

The sweep engine's retry path is exercised with the
``REPRO_EXEC_TEST_CRASH_AFTER_CKPT`` hook (see :mod:`repro.exec.pool`):
the first checkpoint any worker writes also creates a sentinel file and
kills the worker *after* the checkpoint landed, so the retried attempt
must resume from it.  Every recovered payload is compared bit-for-bit
against an uninterrupted serial run.

The checkpoint policy rides on the :class:`~repro.exec.JobSpec` itself
(``checkpoint_every``/``checkpoint_dir``/``resume``); one test keeps the
deprecated ``execute_job`` keyword bundle covered.
"""

import pytest

from repro.exec import JobSpec, SweepEngine, execute_job, run_job
from repro.runtime import ExecutionMode
from repro.state import checkpoint_path_for

SCALE = 0.08
CKPT_EVERY = 4_000


class Interrupt(Exception):
    pass


def _job(**policy):
    return JobSpec.create("bht", ExecutionMode.DTBL, SCALE, 0.25, **policy)


def _ck_job(tmp_path, resume=False):
    return _job(
        checkpoint_every=CKPT_EVERY, checkpoint_dir=str(tmp_path),
        resume=resume,
    )


@pytest.fixture(scope="module")
def clean_payload():
    """The golden payload: one uninterrupted, uncheckpointed run."""
    return run_job(_job()).to_payload()


class TestCrashRecovery:
    def test_worker_killed_after_checkpoint_resumes(
        self, tmp_path, monkeypatch, clean_payload
    ):
        """A worker that dies right after checkpointing costs one retry;
        the retry resumes mid-flight and finishes bit-identically."""
        sentinel = tmp_path / "crash.sentinel"
        ckdir = tmp_path / "ckpts"
        monkeypatch.setenv("REPRO_EXEC_TEST_CRASH_AFTER_CKPT", str(sentinel))
        engine = SweepEngine(max_workers=2)
        (payload,) = engine.run([_ck_job(ckdir)])
        assert sentinel.exists(), "the injected crash never fired"
        assert engine.stats.retries >= 1
        assert payload["stats"] == clean_payload["stats"]
        # Completion deletes the checkpoint so a rerun starts fresh.
        assert not list(ckdir.glob("*.ckpt"))

    def test_serial_interrupt_then_resume(self, tmp_path, clean_payload):
        """The serial path resumes from its own checkpoint."""
        job = _ck_job(tmp_path)

        def bomb(doc):
            raise Interrupt()

        with pytest.raises(Interrupt):
            run_job(job, on_checkpoint=bomb)
        path = checkpoint_path_for(str(tmp_path), job.fingerprint())
        assert path.exists(), "interrupt left no checkpoint behind"
        payload = run_job(_ck_job(tmp_path, resume=True)).to_payload()
        assert payload["stats"] == clean_payload["stats"]
        assert not path.exists()

    def test_corrupt_checkpoint_quarantined_then_fresh_run(
        self, tmp_path, clean_payload
    ):
        """Undecodable checkpoint bytes: quarantine, then run fresh."""
        path = checkpoint_path_for(tmp_path, _job().fingerprint())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"REPRO-CKPT\x00garbage-not-zlib")
        payload = run_job(_ck_job(tmp_path, resume=True)).to_payload()
        assert payload["stats"] == clean_payload["stats"]
        assert not path.exists()
        assert path.with_suffix(".ckpt.corrupt").exists()

    def test_truncated_checkpoint_quarantined_then_fresh_run(
        self, tmp_path, clean_payload
    ):
        """A torn/truncated real checkpoint is quarantined, not trusted."""
        job = _ck_job(tmp_path)

        def bomb(doc):
            raise Interrupt()

        with pytest.raises(Interrupt):
            run_job(job, on_checkpoint=bomb)
        path = checkpoint_path_for(str(tmp_path), job.fingerprint())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        payload = run_job(_ck_job(tmp_path, resume=True)).to_payload()
        assert payload["stats"] == clean_payload["stats"]
        assert path.with_suffix(".ckpt.corrupt").exists()

    def test_resume_without_checkpoint_runs_fresh(self, tmp_path, clean_payload):
        """``resume=True`` with no file present is a plain fresh run."""
        payload = run_job(_ck_job(tmp_path, resume=True)).to_payload()
        assert payload["stats"] == clean_payload["stats"]

    def test_foreign_fingerprint_checkpoint_rejected(
        self, tmp_path, clean_payload
    ):
        """A checkpoint bound to another job's fingerprint is never
        resumed from: it is quarantined and the job runs fresh."""
        job = _ck_job(tmp_path)

        def bomb(doc):
            raise Interrupt()

        with pytest.raises(Interrupt):
            run_job(job, on_checkpoint=bomb)
        # Present the real checkpoint under a different job's path.
        other = JobSpec.create("bht", ExecutionMode.CDP, SCALE, 0.25)
        mine = checkpoint_path_for(str(tmp_path), job.fingerprint())
        theirs = checkpoint_path_for(str(tmp_path), other.fingerprint())
        mine.rename(theirs)
        payload = run_job(
            other.with_policy(
                checkpoint_every=CKPT_EVERY, checkpoint_dir=str(tmp_path),
                resume=True,
            )
        ).to_payload()
        clean_other = run_job(other).to_payload()
        assert payload["stats"] == clean_other["stats"]
        assert theirs.with_suffix(".ckpt.corrupt").exists()

    def test_legacy_execute_job_keyword_bundle_still_recovers(
        self, tmp_path, clean_payload
    ):
        """The deprecated keyword path warns but behaves identically."""
        job = _job()

        def bomb(doc):
            raise Interrupt()

        with pytest.raises(Interrupt):
            with pytest.warns(DeprecationWarning):
                execute_job(
                    job, checkpoint_every=CKPT_EVERY,
                    checkpoint_dir=str(tmp_path), on_checkpoint=bomb,
                )
        with pytest.warns(DeprecationWarning):
            payload = execute_job(
                job, checkpoint_every=CKPT_EVERY,
                checkpoint_dir=str(tmp_path), resume=True,
            )
        assert payload["stats"] == clean_payload["stats"]
