"""Job/config fingerprinting: stability and sensitivity."""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.config import SEGMENT_BYTES, GPUConfig
from repro.errors import ConfigError
from repro.exec import SweepJob
from repro.exec import fingerprint as fp_module
from repro.runtime import ExecutionMode


def _mutated(field: dataclasses.Field, value):
    """A different, validator-legal value for one GPUConfig field."""
    if field.name == "warp_scheduler":
        return "rr" if value == "gto" else "gto"
    if field.name == "core":
        return "vector" if value != "vector" else "fast"
    if field.name == "fast_core":
        return True  # deprecated alias: constructing it warns
    if isinstance(value, bool):
        return not value
    if field.name == "max_resident_threads":
        return value + 32  # must stay a warp-size multiple
    if field.name == "agt_entries":
        return value * 2  # must stay a power of two
    return value + 1


class TestConfigFingerprint:
    def test_stable_within_process(self):
        assert GPUConfig.k20c().fingerprint() == GPUConfig().fingerprint()
        assert GPUConfig.small().fingerprint() == GPUConfig.small().fingerprint()

    def test_stable_across_process_boundary(self):
        """The same config hashes identically in a fresh interpreter."""
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "from repro.config import GPUConfig;"
            "print(GPUConfig.k20c().fingerprint())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == GPUConfig.k20c().fingerprint()

    def test_sensitive_to_every_field(self):
        """Changing any one field changes the fingerprint.

        ``l2_line`` is excluded: the validator pins it to the coalescing
        segment size, so it has exactly one legal value.
        """
        base = GPUConfig.k20c()
        base_fp = base.fingerprint()
        seen = {base_fp}
        for field in dataclasses.fields(GPUConfig):
            if field.name == "l2_line":
                assert base.l2_line == SEGMENT_BYTES
                continue
            mutation = {field.name: _mutated(field, getattr(base, field.name))}
            if field.name == "fast_core":
                with pytest.warns(DeprecationWarning):
                    variant = dataclasses.replace(base, **mutation)
            else:
                variant = dataclasses.replace(base, **mutation)
            variant_fp = variant.fingerprint()
            assert variant_fp != base_fp, f"insensitive to {field.name}"
            assert variant_fp not in seen, f"collision on {field.name}"
            seen.add(variant_fp)

    def test_round_trip_preserves_fingerprint(self):
        cfg = GPUConfig.small()
        assert GPUConfig.from_dict(cfg.to_dict()).fingerprint() == cfg.fingerprint()

    def test_from_dict_rejects_unknown_fields(self):
        data = GPUConfig.k20c().to_dict()
        data["warp_width"] = 64
        with pytest.raises(ConfigError):
            GPUConfig.from_dict(data)


class TestSweepJobFingerprint:
    def _job(self, **overrides) -> SweepJob:
        defaults = dict(
            benchmark="bfs_citation",
            mode=ExecutionMode.DTBL,
            scale=0.5,
            latency_scale=0.25,
            config=None,
            verify=True,
        )
        defaults.update(overrides)
        return SweepJob.create(**defaults)

    def test_identical_jobs_identical_keys(self):
        assert self._job().fingerprint() == self._job().fingerprint()

    def test_none_config_is_canonical_default(self):
        explicit = self._job(config=GPUConfig.k20c())
        assert self._job().fingerprint() == explicit.fingerprint()

    @pytest.mark.parametrize("override", [
        {"benchmark": "bht"},
        {"mode": ExecutionMode.CDP},
        {"scale": 0.25},
        {"latency_scale": 0.5},
        {"verify": False},
        {"config": GPUConfig.k20c().with_agt_entries(512)},
    ])
    def test_sensitive_to_each_dimension(self, override):
        assert self._job().fingerprint() != self._job(**override).fingerprint()

    def test_sensitive_to_sanitize_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = self._job().fingerprint()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert self._job().fingerprint() != plain

    def test_sensitive_to_config_sanitize_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sanitized = dataclasses.replace(GPUConfig.k20c(), sanitize=True)
        assert self._job().fingerprint() != self._job(config=sanitized).fingerprint()

    def test_code_version_salt(self, monkeypatch):
        before = self._job().fingerprint()
        monkeypatch.setattr(fp_module, "CODE_VERSION", "repro-0.0.0:test")
        assert self._job().fingerprint() != before

    def test_key_shape(self):
        key = self._job().fingerprint()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")
