"""Sweep engine: parallel/serial parity, crash retry, fallback, timeout."""

import pytest

from repro.errors import WorkloadError
from repro.exec import SweepEngine, SweepError, SweepJob, execute_job
from repro.runtime import ExecutionMode

SCALE = 0.08


def _jobs(*pairs):
    return [
        SweepJob.create(name, mode, SCALE, 0.25)
        for name, mode in pairs
    ]


GRID = [
    ("bfs_citation", ExecutionMode.FLAT),
    ("bfs_citation", ExecutionMode.DTBL),
    ("bht", ExecutionMode.FLAT),
    ("bht", ExecutionMode.CDP),
]


@pytest.fixture(scope="module")
def serial_payloads():
    return [execute_job(job) for job in _jobs(*GRID)]


class TestParity:
    def test_parallel_bit_identical_to_serial(self, serial_payloads):
        engine = SweepEngine(max_workers=2)
        parallel = engine.run(_jobs(*GRID))
        assert [p["stats"] for p in parallel] == [
            p["stats"] for p in serial_payloads
        ]
        assert engine.stats.completed == len(GRID)
        assert engine.stats.from_workers == len(GRID)

    def test_single_worker_runs_in_process(self, serial_payloads):
        engine = SweepEngine(max_workers=1)
        results = engine.run(_jobs(*GRID))
        assert engine.stats.in_process == len(GRID)
        assert engine.stats.from_workers == 0
        assert [p["stats"] for p in results] == [
            p["stats"] for p in serial_payloads
        ]

    def test_results_in_input_order(self, serial_payloads):
        engine = SweepEngine(max_workers=3)
        shuffled = _jobs(*GRID[::-1])
        results = engine.run(shuffled)
        assert [p["stats"] for p in results] == [
            p["stats"] for p in serial_payloads[::-1]
        ]

    def test_empty_sweep(self):
        assert SweepEngine(max_workers=2).run([]) == []

    def test_progress_events(self):
        events = []
        engine = SweepEngine(max_workers=2)
        engine.run(_jobs(*GRID), progress=events.append)
        done = [e for e in events if e.kind == "done"]
        assert len(done) == len(GRID)
        assert sorted(e.completed for e in done) == [1, 2, 3, 4]
        assert all(e.total == len(GRID) for e in done)


class TestFaultHandling:
    def test_crashed_worker_is_retried(self, tmp_path, monkeypatch,
                                       serial_payloads):
        """A worker that dies once costs a retry, not the sweep."""
        monkeypatch.setenv(
            "REPRO_EXEC_TEST_CRASH", str(tmp_path / "sentinel")
        )
        engine = SweepEngine(max_workers=2)
        (payload,) = engine.run(_jobs(GRID[0]))
        assert engine.stats.retries >= 1
        assert engine.stats.pool_rebuilds >= 1
        assert payload["stats"] == serial_payloads[0]["stats"]

    def test_retries_exhausted_falls_back_in_process(self, monkeypatch,
                                                     serial_payloads):
        """Workers that always die degrade to in-process execution."""
        monkeypatch.setenv("REPRO_EXEC_TEST_CRASH", "always")
        engine = SweepEngine(max_workers=2, max_retries=1)
        (payload,) = engine.run(_jobs(GRID[0]))
        assert engine.stats.fallbacks >= 1
        assert engine.stats.in_process == 1
        assert payload["stats"] == serial_payloads[0]["stats"]

    def test_fallback_disabled_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_TEST_CRASH", "always")
        engine = SweepEngine(max_workers=2, max_retries=0, fallback=False)
        with pytest.raises(SweepError):
            engine.run(_jobs(GRID[0]))

    def test_pool_creation_failure_falls_back(self, serial_payloads):
        def broken_factory():
            raise OSError("no processes for you")

        engine = SweepEngine(max_workers=2, executor_factory=broken_factory)
        results = engine.run(_jobs(*GRID[:2]))
        assert engine.stats.in_process == 2
        assert engine.stats.fallbacks == 2
        assert [p["stats"] for p in results] == [
            p["stats"] for p in serial_payloads[:2]
        ]

    def test_job_timeout_recovers(self, monkeypatch, serial_payloads):
        """A hung worker is killed and the job completes in-process."""
        monkeypatch.setenv("REPRO_EXEC_TEST_HANG", "30")
        engine = SweepEngine(
            max_workers=2, job_timeout=0.4, max_retries=0
        )
        (payload,) = engine.run(_jobs(GRID[0]))
        assert engine.stats.timeouts >= 1
        assert engine.stats.in_process == 1
        assert payload["stats"] == serial_payloads[0]["stats"]

    def test_simulation_errors_propagate_not_retried(self):
        """Deterministic workload failures are not infrastructure."""
        engine = SweepEngine(max_workers=2)
        bad = [SweepJob.create("no_such_benchmark", ExecutionMode.FLAT,
                               SCALE, 0.25)]
        with pytest.raises(WorkloadError):
            engine.run(bad)
        assert engine.stats.retries == 0
