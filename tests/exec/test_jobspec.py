"""The canonical JobSpec/JobResult model and its legacy shims."""

from __future__ import annotations

import argparse

import pytest

from repro import ExecutionMode, GPUConfig
from repro.exec import (
    JobResult,
    JobSpec,
    SpecError,
    SweepEngine,
    SweepJob,
    execute_job,
    run_job,
)


def small_spec(**overrides) -> JobSpec:
    base = dict(
        benchmark="bht", mode=ExecutionMode.FLAT,
        scale=0.05, latency_scale=0.25,
    )
    base.update(overrides)
    return JobSpec.create(**base)


class TestIdentity:
    def test_sweepjob_is_an_alias(self):
        assert SweepJob is JobSpec

    def test_policy_fields_do_not_change_the_fingerprint(self, tmp_path):
        spec = small_spec()
        stamped = spec.with_policy(
            checkpoint_every=1000, checkpoint_dir=str(tmp_path), resume=True
        )
        assert stamped.fingerprint() == spec.fingerprint()
        assert stamped.checkpoint_every == 1000
        assert stamped.resume is True

    def test_default_config_and_explicit_k20c_are_one_key(self):
        assert (
            small_spec().fingerprint()
            == small_spec(config=GPUConfig.k20c()).fingerprint()
        )

    def test_identity_fields_change_the_fingerprint(self):
        base = small_spec().fingerprint()
        assert small_spec(scale=0.06).fingerprint() != base
        assert small_spec(mode=ExecutionMode.DTBL).fingerprint() != base
        assert small_spec(verify=False).fingerprint() != base

    def test_every_mode_fingerprints_distinctly(self):
        # The compiler-optimized modes run the same device runtime as
        # plain CDP; the cache key must still separate all of them.
        prints = {
            mode: small_spec(mode=mode).fingerprint()
            for mode in ExecutionMode
        }
        assert len(set(prints.values())) == len(ExecutionMode)


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        {"benchmark": ""},
        {"scale": 0.0},
        {"scale": -1.0},
        {"latency_scale": 0.0},
        {"checkpoint_every": 0},
    ])
    def test_bad_fields_raise_spec_error(self, overrides):
        with pytest.raises(SpecError):
            small_spec(**overrides).validate()

    def test_resume_requires_a_checkpoint_dir(self):
        with pytest.raises(SpecError):
            small_spec(resume=True).validate()

    def test_spec_error_is_a_value_error(self):
        assert issubclass(SpecError, ValueError)


class TestWireFormat:
    def test_roundtrip_preserves_identity_and_policy(self, tmp_path):
        spec = small_spec(
            checkpoint_every=500, checkpoint_dir=str(tmp_path), resume=True
        )
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_minimal_document_defaults(self):
        spec = JobSpec.from_dict({"benchmark": "bht", "mode": "dtbl"})
        assert spec.mode is ExecutionMode.DTBL
        assert spec.scale == 1.0
        assert spec.verify is True
        assert spec.config == GPUConfig.k20c()

    def test_unknown_fields_fail_loudly(self):
        with pytest.raises(SpecError, match="latency"):
            JobSpec.from_dict(
                {"benchmark": "bht", "mode": "flat", "latency": 0.5}
            )

    def test_missing_required_fields(self):
        with pytest.raises(SpecError, match="mode"):
            JobSpec.from_dict({"benchmark": "bht"})

    def test_bad_mode_name(self):
        with pytest.raises(SpecError, match="mode"):
            JobSpec.from_dict({"benchmark": "bht", "mode": "warp9"})


class TestFromArgs:
    def make_args(self, **overrides):
        namespace = argparse.Namespace(
            scale=0.05, latency_scale=0.25, no_verify=False,
            checkpoint_every=None, resume=False,
        )
        for key, value in overrides.items():
            setattr(namespace, key, value)
        return namespace

    def test_reads_the_shared_flag_set(self, tmp_path):
        spec = JobSpec.from_args(
            self.make_args(no_verify=True, checkpoint_every=2000),
            "bht", ExecutionMode.CDP, checkpoint_dir=str(tmp_path),
        )
        assert spec.benchmark == "bht"
        assert spec.mode is ExecutionMode.CDP
        assert spec.verify is False
        assert spec.checkpoint_every == 2000
        assert spec.checkpoint_dir == str(tmp_path)

    def test_validates(self):
        with pytest.raises(SpecError):
            JobSpec.from_args(self.make_args(scale=0.0), "bht",
                              ExecutionMode.FLAT)


class TestExecution:
    def test_run_job_returns_a_job_result(self):
        spec = small_spec()
        result = run_job(spec)
        assert isinstance(result, JobResult)
        assert result.cycles > 0
        assert result.fingerprint == spec.fingerprint()
        assert result.source == "run"

    def test_payload_roundtrip_is_exact(self):
        result = run_job(small_spec())
        clone = JobResult.from_payload(result.to_payload())
        assert clone.stats.to_dict() == result.stats.to_dict()
        assert clone.source == "cache"

    def test_spec_policy_checkpoints_and_resumes(self, tmp_path):
        """The spec's checkpoint policy drives periodic snapshots, and a
        completed run cleans its checkpoint file up."""
        spec = small_spec(
            checkpoint_every=1000, checkpoint_dir=str(tmp_path)
        )
        baseline = run_job(small_spec())
        seen = []
        checkpointed = run_job(spec, on_checkpoint=seen.append)
        assert len(seen) >= baseline.cycles // 1000 - 1
        assert not list(tmp_path.glob("*.ckpt"))  # removed on success
        resumed = run_job(spec.with_policy(resume=True))
        assert checkpointed.stats.to_dict() == baseline.stats.to_dict()
        assert resumed.stats.to_dict() == baseline.stats.to_dict()


class TestLegacyShims:
    def test_execute_job_checkpoint_kwargs_warn_but_work(self, tmp_path):
        spec = small_spec()
        with pytest.warns(DeprecationWarning, match="execute_job"):
            payload = execute_job(
                spec, checkpoint_every=1000, checkpoint_dir=str(tmp_path)
            )
        assert payload["stats"] == run_job(spec).stats.to_dict()

    def test_execute_job_without_policy_kwargs_is_silent(self, recwarn):
        execute_job(small_spec())
        assert not [
            warning for warning in recwarn.list
            if issubclass(warning.category, DeprecationWarning)
        ]

    def test_engine_level_checkpoint_kwargs_warn(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="SweepEngine"):
            SweepEngine(
                max_workers=1, checkpoint_every=1000,
                checkpoint_dir=str(tmp_path),
            )

    def test_workload_execute_checkpoint_kwargs_warn(self, tmp_path):
        from repro.workloads import get_benchmark

        workload = get_benchmark("bht", ExecutionMode.FLAT, 0.05)
        with pytest.warns(DeprecationWarning, match="execute"):
            workload.execute(
                latency_scale=0.25, checkpoint_every=1000,
                checkpoint_path=tmp_path / "x.ckpt",
            )
