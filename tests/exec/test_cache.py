"""On-disk result cache: round trips, robustness, atomicity."""

import json
import threading

import pytest

from repro.exec import ResultCache
from repro.exec.cache import ENTRY_FORMAT

KEY = "ab" * 32
OTHER = "cd" * 32

PAYLOAD = {"stats": {"cycles": 123, "launches": [{"kind": "host_kernel"}]},
           "wall_seconds": 1.5, "sanitizer": None}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_store_load(self, cache):
        cache.store(KEY, PAYLOAD)
        assert cache.load(KEY) == PAYLOAD
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_miss(self, cache):
        assert cache.load(KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_overwrite_same_key(self, cache):
        cache.store(KEY, PAYLOAD)
        cache.store(KEY, {"wall_seconds": 2.0})
        assert cache.load(KEY) == {"wall_seconds": 2.0}

    def test_keys_are_independent(self, cache):
        cache.store(KEY, PAYLOAD)
        assert cache.load(OTHER) is None
        assert cache.load(KEY) == PAYLOAD

    def test_entry_count_and_clear(self, cache):
        cache.store(KEY, PAYLOAD)
        cache.store(OTHER, PAYLOAD)
        assert cache.entry_count() == 2
        assert cache.clear() == 2
        assert cache.entry_count() == 0
        assert cache.load(KEY) is None

    def test_rejects_non_fingerprint_keys(self, cache):
        with pytest.raises(ValueError):
            cache.load("../../etc/passwd")
        with pytest.raises(ValueError):
            cache.store("short", PAYLOAD)


class TestRobustness:
    def test_corrupt_json_is_quarantined_not_fatal(self, cache):
        cache.store(KEY, PAYLOAD)
        path = cache.path_for(KEY)
        path.write_text("{not json at all", encoding="utf-8")
        assert cache.load(KEY) is None
        assert cache.stats.quarantined == 1
        assert not path.exists()
        corpse = path.with_suffix(".json.corrupt")
        assert corpse.exists()
        # The slot is reusable after quarantine.
        cache.store(KEY, PAYLOAD)
        assert cache.load(KEY) == PAYLOAD

    def test_truncated_entry_is_quarantined(self, cache):
        cache.store(KEY, PAYLOAD)
        path = cache.path_for(KEY)
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[: len(raw) // 2], encoding="utf-8")
        assert cache.load(KEY) is None
        assert cache.stats.quarantined == 1

    def test_entry_with_wrong_key_is_quarantined(self, cache):
        cache.store(KEY, PAYLOAD)
        entry = json.loads(cache.path_for(KEY).read_text(encoding="utf-8"))
        entry["key"] = OTHER
        cache.path_for(KEY).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(KEY) is None
        assert cache.stats.quarantined == 1

    def test_format_version_mismatch_is_invalidated(self, cache):
        cache.store(KEY, PAYLOAD)
        entry = json.loads(cache.path_for(KEY).read_text(encoding="utf-8"))
        entry["format"] = ENTRY_FORMAT + 1
        cache.path_for(KEY).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(KEY) is None
        assert cache.stats.invalidated == 1
        assert not cache.path_for(KEY).exists()

    def test_invalidate_missing_entry_is_harmless(self, cache):
        cache.invalidate(KEY)
        assert cache.stats.invalidated == 1

    def test_no_temp_droppings_after_stores(self, cache):
        for i in range(10):
            cache.store(KEY, {"i": i})
        leftovers = [
            p for p in cache.root.rglob("*") if p.is_file()
            and not p.name.endswith(".json")
        ]
        assert leftovers == []


class TestAtomicity:
    def test_concurrent_writers_never_clobber(self, cache):
        """Interleaved writers + readers: every read is one complete entry.

        Entries are written via unique temp file + ``os.replace``, so a
        reader can observe either complete payload but never a torn or
        half-written one (which would surface as a quarantine).
        """
        payload_a = {"who": "a", "blob": ["x"] * 500}
        payload_b = {"who": "b", "blob": ["y"] * 500}
        stop = threading.Event()
        errors = []

        def writer(payload):
            while not stop.is_set():
                cache.store(KEY, payload)

        def reader():
            mine = ResultCache(cache.root)  # independent stats
            while not stop.is_set():
                got = mine.load(KEY)
                if got is not None and got not in (payload_a, payload_b):
                    errors.append(got)
            if mine.stats.quarantined:
                errors.append(f"quarantined {mine.stats.quarantined}")

        threads = [
            threading.Thread(target=writer, args=(payload_a,)),
            threading.Thread(target=writer, args=(payload_b,)),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        threading.Event().wait(0.6)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.load(KEY) in (payload_a, payload_b)
