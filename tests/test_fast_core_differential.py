"""Differential tests: the fast core must be stat-exact with the reference.

The event-driven execution core (``GPUConfig.core="fast"``, the default)
is a pure performance feature: every statistic the simulator reports —
total cycles, per-launch timelines, coalescing histogram, DRAM row
activity, occupancy integrals, divergence counts — must be *bit
identical* to the reference interpreter (``core="reference"``).  These
tests run full workloads and targeted micro-kernels under both cores and
compare a complete fingerprint of :class:`~repro.sim.stats.SimStats`.
The SoA vector core (``core="vector"``) gets the same treatment in
:mod:`tests.test_random_programs` and the golden corpus.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction
from repro.workloads.registry import get_benchmark

from tests.helpers import reduce_kernel


def fingerprint(stats):
    """Every externally observable statistic, as a comparable value."""
    c = stats.coalescing
    d = stats.dram
    return {
        "cycles": stats.cycles,
        "issued": stats.issued_instructions,
        "lanes": stats.active_lane_sum,
        "rwc": stats.resident_warp_cycles,
        "coalescing": (
            c.warp_accesses,
            c.transactions,
            c.lanes,
            tuple(c.histogram.tolist()),
        ),
        "dram": (d.n_read, d.n_write, d.row_hits, d.row_misses, d.n_activity),
        "footprint": (stats.footprint_bytes, stats.peak_footprint_bytes),
        "agg": (
            stats.agg_matched,
            stats.agg_unmatched,
            stats.agt_hash_hits,
            stats.agt_hash_spills,
        ),
        "branches": (stats.branches_uniform, stats.branches_diverged),
        "completed": (stats.blocks_completed, stats.kernels_completed),
        "launches": tuple(
            (
                r.kind,
                r.kernel_name,
                r.launch_cycle,
                r.first_exec_cycle,
                r.fully_distributed_cycle,
                r.completed_cycle,
                r.total_blocks,
                r.total_threads,
                r.param_bytes,
                r.record_bytes,
            )
            for r in stats.launches
        ),
    }


def _config(fast: bool) -> GPUConfig:
    return dataclasses.replace(GPUConfig.small(), core=("fast" if fast else "reference"))


def _workload_fingerprint(name: str, mode: ExecutionMode, fast: bool, scale: float):
    workload = get_benchmark(name, mode, scale=scale)
    result = workload.execute(config=_config(fast), latency_scale=0.25)
    return fingerprint(result.stats)


MODES = [ExecutionMode.FLAT, ExecutionMode.CDP, ExecutionMode.DTBL]


class TestWorkloadDifferential:
    """Full benchmark workloads, both cores, all three execution modes."""

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_bfs_citation(self, mode):
        assert _workload_fingerprint("bfs_citation", mode, True, 0.2) == (
            _workload_fingerprint("bfs_citation", mode, False, 0.2)
        )

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_join_uniform(self, mode):
        assert _workload_fingerprint("join_uniform", mode, True, 0.15) == (
            _workload_fingerprint("join_uniform", mode, False, 0.15)
        )

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_amr(self, mode):
        assert _workload_fingerprint("amr", mode, True, 0.15) == (
            _workload_fingerprint("amr", mode, False, 0.15)
        )

    @pytest.mark.parametrize(
        "mode",
        [ExecutionMode.CDP_IDEAL, ExecutionMode.DTBL_IDEAL],
        ids=lambda m: m.value,
    )
    def test_ideal_latency_variants(self, mode):
        assert _workload_fingerprint("bfs_citation", mode, True, 0.2) == (
            _workload_fingerprint("bfs_citation", mode, False, 0.2)
        )


# ----------------------------------------------------------------------
# Micro-kernel differentials: stress specific interpreter paths.
# ----------------------------------------------------------------------
def _run_kernel(func: KernelFunction, fast: bool, n: int = 512, block: int = 64):
    dev = Device(config=_config(fast))
    dev.register(func)
    data = dev.upload(np.arange(n, dtype=np.int64) % 97)
    out = dev.alloc(max(n, 1))
    dev.launch(
        func.name,
        grid=(n + block - 1) // block,
        block=block,
        params=[n, data, out],
    )
    dev.synchronize()
    return fingerprint(dev.stats), out.download()


def _divergent_kernel() -> KernelFunction:
    """Nested data-dependent branches + a divergent loop (PDOM stress)."""
    k = KernelBuilder("diverge")
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, n)):
        src = k.ld(param, offset=1)
        dst = k.ld(param, offset=2)
        value = k.ld(k.iadd(src, gtid))
        acc = k.mov(0)
        with k.while_(lambda: k.gt(value, 0)):
            with k.if_(k.gt(k.iand(value, 1), 0)):
                k.iadd(acc, value, dst=acc)
            k.ishr(value, 1, dst=value)
        k.st(k.iadd(dst, gtid), acc)
    k.exit()
    return KernelFunction("diverge", k.build())


def _barrier_kernel() -> KernelFunction:
    """Shared-memory reversal across a block-wide barrier."""
    k = KernelBuilder("barrier")
    gtid = k.gtid()
    tid = k.tid()
    param = k.param()
    n = k.ld(param, offset=0)
    src = k.ld(param, offset=1)
    dst = k.ld(param, offset=2)
    with k.if_(k.lt(gtid, n)):
        k.sts(tid, k.ld(k.iadd(src, gtid)))
    k.bar()
    with k.if_(k.lt(gtid, n)):
        rev = k.isub(k.isub(k.ntid(), 1), tid)
        k.st(k.iadd(dst, gtid), k.lds(rev))
    k.exit()
    return KernelFunction("barrier", k.build(), shared_words=64)


class TestMicroKernelDifferential:
    def test_divergence(self):
        fast, out_fast = _run_kernel(_divergent_kernel(), fast=True)
        ref, out_ref = _run_kernel(_divergent_kernel(), fast=False)
        assert fast == ref
        np.testing.assert_array_equal(out_fast, out_ref)

    def test_barriers_and_shared_memory(self):
        fast, out_fast = _run_kernel(_barrier_kernel(), fast=True)
        ref, out_ref = _run_kernel(_barrier_kernel(), fast=False)
        assert fast == ref
        np.testing.assert_array_equal(out_fast, out_ref)

    def test_conflicting_atomics(self):
        """All lanes hammer one address: lane-serialization order matters."""
        results = []
        for fast in (True, False):
            dev = Device(config=_config(fast))
            dev.register(reduce_kernel())
            n = 700
            data = dev.upload(np.arange(n, dtype=np.int64))
            out = dev.upload(np.zeros(1, dtype=np.int64))
            dev.launch("sum_reduce", grid=6, block=128, params=[n, data, out])
            dev.synchronize()
            results.append((fingerprint(dev.stats), int(out.download()[0])))
        assert results[0] == results[1]
        assert results[0][1] == n * (n - 1) // 2


# ----------------------------------------------------------------------
# Fusion-adversarial differentials: programs engineered so superblock
# fusion must bail out (divergent entry, predicated branches splitting a
# candidate run, regions abutting reconvergence points and barriers, the
# sanitizer forcing per-instruction fallback) while staying stat-exact.
# ----------------------------------------------------------------------
def _decoded_region_starts(func: KernelFunction):
    from repro.sim.fast_warp import decode_program

    _table, _ni, _nf, regions = decode_program(func.program)
    return set(regions) if regions else set()


def _divergent_entry_kernel() -> KernelFunction:
    """A fused region inside a branch body: partial-mask entry whenever
    some lanes fail the bounds predicate."""
    k = KernelBuilder("div_entry")
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    src = k.ld(param, offset=1)
    dst = k.ld(param, offset=2)
    with k.if_(k.lt(gtid, n)):
        value = k.ld(k.iadd(src, gtid))
        a = k.imul(value, 3)
        b = k.iadd(a, 7)
        c = k.ixor(b, gtid)
        k.st(k.iadd(dst, gtid), c)
    k.exit()
    return KernelFunction("div_entry", k.build())


def _predicated_split_kernel() -> KernelFunction:
    """A predicated branch in the middle of an otherwise fusable ALU run
    splits the candidate region; the masked body must stay exact."""
    k = KernelBuilder("pred_split")
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    dst = k.ld(param, offset=2)
    a = k.iadd(gtid, 1)
    b = k.imul(a, 5)
    p = k.lt(k.iand(b, 7), 4)
    with k.if_(p):
        k.iadd(b, 1, dst=b)
    c = k.ixor(b, a)
    d = k.imod(c, 97)
    with k.if_(k.lt(gtid, n)):
        k.st(k.iadd(dst, gtid), d)
    k.exit()
    return KernelFunction("pred_split", k.build())


def _reconv_barrier_kernel() -> KernelFunction:
    """Fusable runs starting exactly at a reconvergence pc and abutting a
    barrier on both sides."""
    k = KernelBuilder("reconv_bar")
    gtid = k.gtid()
    tid = k.tid()
    param = k.param()
    n = k.ld(param, offset=0)
    src = k.ld(param, offset=1)
    dst = k.ld(param, offset=2)
    with k.if_(k.lt(k.iand(gtid, 3), 2)):
        k.sts(tid, gtid)
    # Reconvergence point: a fusable run starts at the join pc.
    a = k.imul(gtid, 7)
    b = k.iadd(a, 11)
    k.bar()
    # Run immediately after the barrier.
    c = k.ixor(b, tid)
    d = k.iand(c, 1023)
    with k.if_(k.lt(gtid, n)):
        k.st(k.iadd(dst, gtid), k.iadd(d, k.ld(k.iadd(src, gtid))))
    k.exit()
    return KernelFunction("reconv_bar", k.build(), shared_words=64)


class TestFusionAdversarial:
    def test_divergent_entry(self):
        # n=500 with block 64: the last block enters the region with a
        # partial mask, every other block with a full one.
        fast, out_fast = _run_kernel(_divergent_entry_kernel(), True, n=500)
        ref, out_ref = _run_kernel(_divergent_entry_kernel(), False, n=500)
        assert fast == ref
        np.testing.assert_array_equal(out_fast, out_ref)

    def test_predicated_branch_splits_region(self):
        func = _predicated_split_kernel()
        starts = _decoded_region_starts(func)
        assert len(starts) >= 2, "the predicated branch should split the run"
        fast, out_fast = _run_kernel(_predicated_split_kernel(), True)
        ref, out_ref = _run_kernel(_predicated_split_kernel(), False)
        assert fast == ref
        np.testing.assert_array_equal(out_fast, out_ref)

    def test_regions_abutting_reconvergence_and_barrier(self):
        func = _reconv_barrier_kernel()
        reconv_pcs = {
            instr.reconv
            for instr in func.program.instructions
            if isinstance(instr.reconv, int)
        }
        starts = _decoded_region_starts(func)
        # The builder materializes the reconvergence point as a JOIN (not
        # fusable), so the adjacent region starts right behind it.
        assert starts & {pc + 1 for pc in reconv_pcs}, (
            "a region should start immediately after a reconv pc"
        )
        fast, out_fast = _run_kernel(_reconv_barrier_kernel(), True, n=200)
        ref, out_ref = _run_kernel(_reconv_barrier_kernel(), False, n=200)
        assert fast == ref
        np.testing.assert_array_equal(out_fast, out_ref)

    @pytest.mark.parametrize(
        "make", [_divergent_entry_kernel, _reconv_barrier_kernel],
        ids=["div_entry", "reconv_bar"],
    )
    def test_sanitize_forces_fallback_identical_reports(self, make):
        """sanitize=True disables fusion; stats AND SanitizerReports must
        stay identical between the two cores."""
        results = []
        for fast in (True, False):
            dev = Device(config=_config(fast), sanitize=True)
            dev.register(make())
            n = 300
            data = dev.upload(np.arange(n, dtype=np.int64) % 97)
            out = dev.alloc(n)
            dev.launch(make().name, grid=5, block=64, params=[n, data, out])
            dev.synchronize()
            report = dev.sanitizer_report()
            results.append(
                (fingerprint(dev.stats), report.format(), dict(report.counts))
            )
        assert results[0] == results[1]


def test_fast_core_is_default():
    assert GPUConfig().execution_core == "fast"
    assert GPUConfig.k20c().execution_core == "fast"
