"""Command-line entry points."""

import pytest

from repro.harness.__main__ import main as harness_main
from repro.harness.runner import clear_cache
from repro.workloads.__main__ import main as workloads_main


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Default on-disk caches land in a temp dir, never the repo."""
    monkeypatch.chdir(tmp_path)


class TestWorkloadsCli:
    def test_list(self, capsys):
        assert workloads_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "bfs_citation" in out
        assert "join_gaussian" in out

    def test_run_single(self, capsys):
        code = workloads_main(
            ["bfs_citation", "--mode", "flat", "--scale", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "[flat]" in out

    def test_run_multi_mode(self, capsys):
        code = workloads_main(
            ["join_uniform", "--mode", "flat", "dtbli", "--scale", "0.15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[flat]" in out and "[dtbli]" in out
        assert "speedup" in out

    def test_no_cache_writes_nothing(self, tmp_path):
        code = workloads_main(
            ["bht", "--mode", "flat", "--scale", "0.1", "--no-cache"]
        )
        assert code == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_warm_cache_identical_output(self, tmp_path, capsys):
        argv = [
            "bht", "--mode", "flat", "dtbl", "--scale", "0.1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert workloads_main(argv) == 0
        cold = capsys.readouterr().out
        assert (tmp_path / "cache").is_dir()
        assert workloads_main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_bad_jobs_errors(self):
        with pytest.raises(SystemExit):
            workloads_main(["bht", "--jobs", "0"])


class TestHarnessCli:
    def test_static_table(self, capsys):
        assert harness_main(["--figure", "table2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "706MHz" in out

    def test_overhead(self, capsys):
        assert harness_main(["--figure", "overhead", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "AGT SRAM" in out

    def test_single_grid_figure_scaled(self, capsys):
        code = harness_main(
            [
                "--figure", "11",
                "--benchmarks", "bfs_citation",
                "--scale", "0.1",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Speedup over Flat" in out

    def test_parallel_grid_matches_serial(self, tmp_path, capsys):
        """--jobs 2 renders the same figure as the in-process path."""
        base = [
            "--figure", "11",
            "--benchmarks", "bfs_citation",
            "--scale", "0.1",
            "--quiet",
            "--no-cache",
        ]
        assert harness_main(base) == 0
        serial = capsys.readouterr().out
        clear_cache()  # force the second pass through the worker pool
        assert harness_main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_stats_reported(self, tmp_path, capsys):
        code = harness_main(
            [
                "--figure", "11",
                "--benchmarks", "bht",
                "--scale", "0.1",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[cache] hits=" in out

    def test_unknown_figure_errors(self):
        with pytest.raises(SystemExit):
            harness_main(["--figure", "nope"])

    def test_bad_jobs_errors(self):
        with pytest.raises(SystemExit):
            harness_main(["--jobs", "0"])
