"""Command-line entry points."""

import pytest

from repro.harness.__main__ import main as harness_main
from repro.workloads.__main__ import main as workloads_main


class TestWorkloadsCli:
    def test_list(self, capsys):
        assert workloads_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "bfs_citation" in out
        assert "join_gaussian" in out

    def test_run_single(self, capsys):
        code = workloads_main(
            ["bfs_citation", "--mode", "flat", "--scale", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "[flat]" in out

    def test_run_multi_mode(self, capsys):
        code = workloads_main(
            ["join_uniform", "--mode", "flat", "dtbli", "--scale", "0.15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[flat]" in out and "[dtbli]" in out
        assert "speedup" in out


class TestHarnessCli:
    def test_static_table(self, capsys):
        assert harness_main(["--figure", "table2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "706MHz" in out

    def test_overhead(self, capsys):
        assert harness_main(["--figure", "overhead", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "AGT SRAM" in out

    def test_single_grid_figure_scaled(self, capsys):
        code = harness_main(
            [
                "--figure", "11",
                "--benchmarks", "bfs_citation",
                "--scale", "0.1",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Speedup over Flat" in out

    def test_unknown_figure_errors(self):
        with pytest.raises(SystemExit):
            harness_main(["--figure", "nope"])
