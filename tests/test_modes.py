"""Execution-mode semantics."""

import pytest

from repro.config import LatencyModel
from repro.runtime import ExecutionMode


class TestModes:
    def test_mode_classification(self):
        assert ExecutionMode.CDP.uses_cdp
        assert ExecutionMode.CDP_IDEAL.uses_cdp
        assert ExecutionMode.DTBL.uses_dtbl
        assert ExecutionMode.DTBL_IDEAL.uses_dtbl
        assert not ExecutionMode.FLAT.uses_cdp
        assert not ExecutionMode.FLAT.uses_dtbl

    def test_dynamic_flag(self):
        assert not ExecutionMode.FLAT.is_dynamic
        assert all(
            mode.is_dynamic for mode in ExecutionMode if mode is not ExecutionMode.FLAT
        )

    def test_ideal_flag(self):
        assert ExecutionMode.CDP_IDEAL.ideal
        assert ExecutionMode.DTBL_IDEAL.ideal
        assert not ExecutionMode.CDP.ideal

    def test_latency_models(self):
        assert ExecutionMode.CDP.latency_model() == LatencyModel.measured_k20c()
        assert ExecutionMode.CDP_IDEAL.latency_model() == LatencyModel.ideal()

    def test_latency_scaling(self):
        scaled = ExecutionMode.CDP.latency_model(scale=0.5)
        full = LatencyModel.measured_k20c()
        assert scaled.launch_device_base == round(full.launch_device_base * 0.5)
        assert scaled.kde_search_per_entry == full.kde_search_per_entry  # unscaled

    def test_ideal_ignores_scale(self):
        assert ExecutionMode.DTBL_IDEAL.latency_model(scale=0.1) == LatencyModel.ideal()

    def test_from_name(self):
        assert ExecutionMode.from_name("dtbl") is ExecutionMode.DTBL
        assert ExecutionMode.from_name("CDPI") is ExecutionMode.CDP_IDEAL
        with pytest.raises(ValueError):
            ExecutionMode.from_name("warp-speed")

    def test_parse(self):
        assert ExecutionMode.parse("cdpa") is ExecutionMode.CDP_AGG
        assert ExecutionMode.parse("CONS") is ExecutionMode.CONSOLIDATED

    def test_parse_error_lists_valid_modes(self):
        with pytest.raises(ValueError) as excinfo:
            ExecutionMode.parse("warp-speed")
        message = str(excinfo.value)
        assert "warp-speed" in message
        for mode in ExecutionMode:
            assert mode.value in message

    def test_compiler_optimized_flag(self):
        assert ExecutionMode.CDP_AGG.compiler_optimized
        assert ExecutionMode.CONSOLIDATED.compiler_optimized
        assert not ExecutionMode.CDP.compiler_optimized
        # The optimized modes build from the CDP kernel shape and run on
        # the real (non-ideal) CDP launch latencies.
        assert ExecutionMode.CDP_AGG.uses_cdp
        assert ExecutionMode.CONSOLIDATED.uses_cdp
        assert not ExecutionMode.CDP_AGG.ideal
        assert not ExecutionMode.CONSOLIDATED.ideal

    def test_comparison_order_covers_every_mode_once(self):
        order = ExecutionMode.comparison_order()
        assert order[0] is ExecutionMode.FLAT
        assert sorted(m.value for m in order) == sorted(
            m.value for m in ExecutionMode
        )

    def test_scale_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            LatencyModel.measured_k20c().scaled(0)


class TestPersistentModes:
    """Classification of the persistent task-parallel scheduler modes."""

    def test_persistent_flag(self):
        assert ExecutionMode.PERSISTENT.persistent
        assert ExecutionMode.PERSISTENT_ASYNC.persistent
        assert not any(
            m.persistent
            for m in ExecutionMode
            if m not in (ExecutionMode.PERSISTENT, ExecutionMode.PERSISTENT_ASYNC)
        )

    def test_persistent_builds_from_the_cdp_kernel_shape(self):
        # The workloads build their canonical CDP launch sites; the
        # persist rewrite turns those sites into queue pushes.
        assert ExecutionMode.PERSISTENT.uses_cdp
        assert ExecutionMode.PERSISTENT_ASYNC.uses_cdp
        assert not ExecutionMode.PERSISTENT.uses_dtbl
        assert not ExecutionMode.PERSISTENT.compiler_optimized
        assert not ExecutionMode.PERSISTENT_ASYNC.compiler_optimized
        assert not ExecutionMode.PERSISTENT.ideal
        assert ExecutionMode.PERSISTENT.is_dynamic

    def test_persistent_latency_model_is_measured(self):
        assert (
            ExecutionMode.PERSISTENT.latency_model()
            == LatencyModel.measured_k20c()
        )

    def test_parse_round_trip(self):
        for mode in (ExecutionMode.PERSISTENT, ExecutionMode.PERSISTENT_ASYNC):
            assert ExecutionMode.parse(mode.value) is mode

    def test_comparison_order_has_nine_modes(self):
        order = ExecutionMode.comparison_order()
        assert len(order) == 9
        assert order[-2:] == (
            ExecutionMode.PERSISTENT,
            ExecutionMode.PERSISTENT_ASYNC,
        )


class TestPersistentEquivalence:
    """The mode-equivalence net: persistent scheduling must reproduce the
    flat results bit for bit on every workload (``verify=True`` checks
    the device output against the same pure-Python reference every other
    mode is held to), leave the task queue drained, and agree exactly
    across all three execution cores."""

    SCALE = 0.05
    LATENCY_SCALE = 0.25

    @pytest.mark.parametrize("mode_name", ["persistent", "persistent-async"])
    @pytest.mark.parametrize("bench", sorted(__import__("repro.workloads", fromlist=["BENCHMARKS"]).BENCHMARKS))
    def test_every_workload_matches_flat(self, bench, mode_name):
        from repro.workloads import get_benchmark

        wl = get_benchmark(bench, ExecutionMode.parse(mode_name), scale=self.SCALE)
        result = wl.execute(latency_scale=self.LATENCY_SCALE)
        assert result.cycles > 0

    @pytest.mark.parametrize(
        "bench,mode_name",
        [
            ("bfs_citation", "persistent"),
            ("bfs_citation", "persistent-async"),
            ("bht", "persistent"),
        ],
    )
    def test_three_cores_agree_exactly(self, bench, mode_name):
        import dataclasses

        from repro.config import GPUConfig
        from repro.workloads import get_benchmark

        stats = {}
        for core in ("reference", "fast", "vector"):
            config = dataclasses.replace(GPUConfig.k20c(), core=core)
            wl = get_benchmark(
                bench, ExecutionMode.parse(mode_name), scale=self.SCALE
            )
            data = wl.execute(
                config=config, latency_scale=self.LATENCY_SCALE
            ).stats.to_dict()
            data.pop("config")  # records the core name itself
            stats[core] = data
        assert stats["reference"] == stats["fast"] == stats["vector"]
