"""Execution-mode semantics."""

import pytest

from repro.config import LatencyModel
from repro.runtime import ExecutionMode


class TestModes:
    def test_mode_classification(self):
        assert ExecutionMode.CDP.uses_cdp
        assert ExecutionMode.CDP_IDEAL.uses_cdp
        assert ExecutionMode.DTBL.uses_dtbl
        assert ExecutionMode.DTBL_IDEAL.uses_dtbl
        assert not ExecutionMode.FLAT.uses_cdp
        assert not ExecutionMode.FLAT.uses_dtbl

    def test_dynamic_flag(self):
        assert not ExecutionMode.FLAT.is_dynamic
        assert all(
            mode.is_dynamic for mode in ExecutionMode if mode is not ExecutionMode.FLAT
        )

    def test_ideal_flag(self):
        assert ExecutionMode.CDP_IDEAL.ideal
        assert ExecutionMode.DTBL_IDEAL.ideal
        assert not ExecutionMode.CDP.ideal

    def test_latency_models(self):
        assert ExecutionMode.CDP.latency_model() == LatencyModel.measured_k20c()
        assert ExecutionMode.CDP_IDEAL.latency_model() == LatencyModel.ideal()

    def test_latency_scaling(self):
        scaled = ExecutionMode.CDP.latency_model(scale=0.5)
        full = LatencyModel.measured_k20c()
        assert scaled.launch_device_base == round(full.launch_device_base * 0.5)
        assert scaled.kde_search_per_entry == full.kde_search_per_entry  # unscaled

    def test_ideal_ignores_scale(self):
        assert ExecutionMode.DTBL_IDEAL.latency_model(scale=0.1) == LatencyModel.ideal()

    def test_from_name(self):
        assert ExecutionMode.from_name("dtbl") is ExecutionMode.DTBL
        assert ExecutionMode.from_name("CDPI") is ExecutionMode.CDP_IDEAL
        with pytest.raises(ValueError):
            ExecutionMode.from_name("warp-speed")

    def test_parse(self):
        assert ExecutionMode.parse("cdpa") is ExecutionMode.CDP_AGG
        assert ExecutionMode.parse("CONS") is ExecutionMode.CONSOLIDATED

    def test_parse_error_lists_valid_modes(self):
        with pytest.raises(ValueError) as excinfo:
            ExecutionMode.parse("warp-speed")
        message = str(excinfo.value)
        assert "warp-speed" in message
        for mode in ExecutionMode:
            assert mode.value in message

    def test_compiler_optimized_flag(self):
        assert ExecutionMode.CDP_AGG.compiler_optimized
        assert ExecutionMode.CONSOLIDATED.compiler_optimized
        assert not ExecutionMode.CDP.compiler_optimized
        # The optimized modes build from the CDP kernel shape and run on
        # the real (non-ideal) CDP launch latencies.
        assert ExecutionMode.CDP_AGG.uses_cdp
        assert ExecutionMode.CONSOLIDATED.uses_cdp
        assert not ExecutionMode.CDP_AGG.ideal
        assert not ExecutionMode.CONSOLIDATED.ideal

    def test_comparison_order_covers_every_mode_once(self):
        order = ExecutionMode.comparison_order()
        assert order[0] is ExecutionMode.FLAT
        assert sorted(m.value for m in order) == sorted(
            m.value for m in ExecutionMode
        )

    def test_scale_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            LatencyModel.measured_k20c().scaled(0)
