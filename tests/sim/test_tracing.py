"""Execution tracing and profiling."""

import numpy as np

from repro import KernelBuilder, KernelFunction
from repro.isa.instructions import Opcode
from repro.sim.tracing import InstructionTrace, OpcodeProfiler

from tests.helpers import make_device, map_kernel


def run_traced(tracer, n=100):
    func = map_kernel("traced", lambda k, v: k.imul(v, 2))
    dev = make_device()
    dev.attach_tracer(tracer)
    dev.register(func)
    src = dev.upload(np.arange(n))
    dst = dev.alloc(n)
    dev.launch("traced", grid=2, block=64, params=[n, src, dst])
    dev.synchronize()
    return dev


class TestOpcodeProfiler:
    def test_counts_per_kernel(self):
        profiler = OpcodeProfiler()
        run_traced(profiler)
        profile = profiler.kernels["traced"]
        assert profile.issues > 0
        assert profile.by_opcode[Opcode.IMUL] == 4  # one per warp
        assert profile.by_opcode[Opcode.EXIT] == 4

    def test_activity_matches_stats(self):
        profiler = OpcodeProfiler()
        dev = run_traced(profiler)
        profile = profiler.kernels["traced"]
        assert abs(profile.warp_activity_pct - dev.stats.warp_activity_pct) < 1e-9

    def test_report_text(self):
        profiler = OpcodeProfiler()
        run_traced(profiler)
        report = profiler.report()
        assert "traced" in report
        assert "ld" in report  # loads dominate this kernel's top opcodes
        assert "warp activity" in report


class TestInstructionTrace:
    def test_records_in_cycle_order(self):
        trace = InstructionTrace()
        run_traced(trace)
        cycles = [r.cycle for r in trace.records]
        assert cycles == sorted(cycles)

    def test_ring_capacity(self):
        trace = InstructionTrace(capacity=10)
        run_traced(trace)
        assert len(trace.records) == 10

    def test_of_kernel_filter(self):
        trace = InstructionTrace()
        run_traced(trace)
        assert trace.of_kernel("traced")
        assert not trace.of_kernel("other")

    def test_format(self):
        trace = InstructionTrace()
        run_traced(trace)
        text = trace.format(limit=5)
        assert len(text.splitlines()) == 5
        assert "traced" in text


class TestNoTracerOverheadPath:
    def test_runs_without_tracer(self):
        # The default (tracer=None) path must work unchanged.
        func = map_kernel("plain", lambda k, v: k.iadd(v, 1))
        device = make_device()
        device.register(func)
        src = device.upload(np.arange(10))
        dst = device.alloc(10)
        device.launch("plain", grid=1, block=32, params=[10, src, dst])
        device.synchronize()
        np.testing.assert_array_equal(device.download_ints(dst, 10), np.arange(10) + 1)
