"""Unit tests for KMU / HWQ / Kernel Distributor / SMX resource logic."""

import numpy as np
import pytest

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction
from repro.errors import LaunchError
from repro.sim.gpu import GPU
from repro.sim.hwq import HostLaunchSpec, HostQueues
from repro.sim.kernel import KernelFunction as KF, as_dims, dims_total
from repro.sim.kernel_distributor import KernelDistributor
from repro.sim.stats import LaunchKind, LaunchRecord


def tiny_kernel(name="k") -> KernelFunction:
    k = KernelBuilder(name)
    k.nop()
    k.exit()
    return KernelFunction(name, k.build())


def record() -> LaunchRecord:
    return LaunchRecord(LaunchKind.HOST_KERNEL, "k", 0, 1, 32)


class TestDims:
    def test_as_dims_int(self):
        assert as_dims(5) == (5, 1, 1)

    def test_as_dims_tuple(self):
        assert as_dims((2, 3)) == (2, 3, 1)
        assert as_dims((2, 3, 4)) == (2, 3, 4)

    def test_as_dims_rejects_bad(self):
        with pytest.raises(LaunchError):
            as_dims((1, 2, 3, 4))
        with pytest.raises(LaunchError):
            as_dims(0)

    def test_dims_total(self):
        assert dims_total((2, 3, 4)) == 24


class TestKernelFunction:
    def test_register_demand_inferred(self):
        func = tiny_kernel()
        assert func.regs_per_thread >= 0

    def test_block_validation(self):
        func = tiny_kernel()
        func.validate_block((256, 1, 1), 2048)
        with pytest.raises(LaunchError):
            func.validate_block((4096, 1, 1), 2048)

    def test_warps_per_block(self):
        func = tiny_kernel()
        assert func.warps_per_block((32, 1, 1)) == 1
        assert func.warps_per_block((33, 1, 1)) == 2
        assert func.warps_per_block((64, 2, 1)) == 4


class TestKernelDistributor:
    def test_allocate_until_full(self):
        dist = KernelDistributor(4)
        func = tiny_kernel()
        entries = [
            dist.allocate(func, (1, 1, 1), (32, 1, 1), 0, record(), None)
            for _ in range(4)
        ]
        assert not dist.has_free
        with pytest.raises(LaunchError):
            dist.allocate(func, (1, 1, 1), (32, 1, 1), 0, record(), None)
        dist.free(entries[2])
        assert dist.has_free

    def test_find_eligible_matches_func_and_block(self):
        dist = KernelDistributor(4)
        func_a = tiny_kernel("a")
        func_b = tiny_kernel("b")
        dist.allocate(func_a, (1, 1, 1), (32, 1, 1), 0, record(), None)
        assert dist.find_eligible(func_a, (32, 1, 1)) is not None
        assert dist.find_eligible(func_a, (64, 1, 1)) is None
        assert dist.find_eligible(func_b, (32, 1, 1)) is None

    def test_peak_occupancy_tracked(self):
        dist = KernelDistributor(4)
        func = tiny_kernel()
        e1 = dist.allocate(func, (1, 1, 1), (32, 1, 1), 0, record(), None)
        e2 = dist.allocate(func, (1, 1, 1), (32, 1, 1), 0, record(), None)
        dist.free(e1)
        dist.free(e2)
        assert dist.peak_occupied == 2
        assert dist.occupied == 0


class TestHostQueues:
    def spec(self, stream):
        return HostLaunchSpec("k", (1, 1, 1), (32, 1, 1), 0, stream)

    def test_stream_order_preserved(self):
        queues = HostQueues(4)
        a, b = self.spec(0), self.spec(0)
        queues.enqueue(a)
        queues.enqueue(b)
        head = queues.next_dispatchable()
        assert head is a
        queues.mark_dispatched(a)
        # Same HWQ blocked until head completes.
        assert queues.next_dispatchable() is None
        queues.head_completed(0)
        assert queues.next_dispatchable() is b

    def test_independent_streams_concurrent(self):
        queues = HostQueues(4)
        a, b = self.spec(0), self.spec(1)
        queues.enqueue(a)
        queues.enqueue(b)
        queues.mark_dispatched(queues.next_dispatchable())
        # Stream 1 maps to a different HWQ and stays dispatchable.
        assert queues.next_dispatchable() is b

    def test_excess_streams_share_hwqs(self):
        queues = HostQueues(2)
        a, b = self.spec(0), self.spec(2)  # 2 % 2 == 0: same HWQ
        queues.enqueue(a)
        queues.enqueue(b)
        queues.mark_dispatched(queues.next_dispatchable())
        assert queues.next_dispatchable() is None  # serialized

    def test_create_stream_ids_unique(self):
        queues = HostQueues(4)
        ids = {queues.create_stream() for _ in range(10)}
        assert len(ids) == 10


class TestSmxResources:
    def test_block_admission_limits(self):
        gpu = GPU(config=GPUConfig.small())
        smx = gpu.smxs[0]
        func = tiny_kernel()
        gpu.register_kernel(func)
        # Fill the SMX with max-size blocks.
        accepted = 0
        while smx.can_accept(func, (64, 1, 1)):
            smx.add_block(func, (100, 1, 1), (64, 1, 1), accepted, 0, None, None, 0)
            accepted += 1
        limit_by_blocks = GPUConfig.small().max_resident_blocks
        limit_by_threads = GPUConfig.small().max_resident_threads // 64
        assert accepted == min(limit_by_blocks, limit_by_threads)

    def test_add_block_rejects_when_full(self):
        gpu = GPU(config=GPUConfig.small())
        smx = gpu.smxs[0]
        func = tiny_kernel()
        while smx.can_accept(func, (64, 1, 1)):
            smx.add_block(func, (100, 1, 1), (64, 1, 1), 0, 0, None, None, 0)
        with pytest.raises(LaunchError):
            smx.add_block(func, (100, 1, 1), (64, 1, 1), 0, 0, None, None, 0)

    def test_shared_memory_limits_blocks(self):
        gpu = GPU()
        smx = gpu.smxs[0]
        # Each block claims 20KB of the 48KB shared memory: only 2 fit.
        func = KernelFunction("shared_hog", tiny_kernel().program, shared_words=2560)
        count = 0
        while smx.can_accept(func, (32, 1, 1)):
            smx.add_block(func, (10, 1, 1), (32, 1, 1), count, 0, None, None, 0)
            count += 1
        assert count == 2


class TestGpuApi:
    def test_unknown_kernel_rejected(self):
        dev = Device()
        with pytest.raises(LaunchError):
            dev.launch("nope", grid=1, block=32)

    def test_duplicate_kernel_rejected(self):
        dev = Device()
        dev.register(tiny_kernel())
        with pytest.raises(LaunchError):
            dev.register(tiny_kernel())

    def test_param_typing(self):
        dev = Device()
        addr = dev.gpu.write_params([7, 2.5, -1])
        assert dev.gpu.memory.i[addr] == 7
        assert dev.gpu.memory.f[addr + 1] == 2.5
        assert dev.gpu.memory.i[addr + 2] == -1

    def test_cycles_accumulate_across_launches(self):
        dev = Device()
        dev.register(tiny_kernel())
        dev.launch("k", grid=1, block=32)
        first = dev.synchronize().cycles
        dev.launch("k", grid=1, block=32)
        second = dev.synchronize().cycles
        assert second > first

    def test_watchdog_triggers(self):
        from repro.errors import SimulationError

        k = KernelBuilder("spin")
        i = k.mov(0)
        with k.while_(lambda: k.ge(i, 0)):  # never terminates
            k.iadd(i, 1, dst=i)
        k.exit()
        dev = Device()
        dev.register(KernelFunction("spin", k.build()))
        dev.launch("spin", grid=1, block=32)
        with pytest.raises(SimulationError):
            dev.synchronize(max_cycles=50_000)
