"""Post-run invariant checking across workload types."""

import pytest

from repro import Device, ExecutionMode
from repro.errors import SimulationError
from repro.sim.validation import check_drained
from repro.workloads.amr import AmrWorkload
from repro.workloads.bfs import BfsWorkload
from repro.workloads.datasets import amr_grid, citation_network, join_tables
from repro.workloads.join import JoinWorkload


def run_and_check(workload, mode):
    device = Device(mode=mode, latency=mode.latency_model(0.25))
    for func in workload.build_kernels():
        device.register(func)
    workload.setup(device)
    workload.run(device)
    device.synchronize()
    workload.check(device)
    check_drained(device.gpu)


class TestDrainInvariants:
    @pytest.mark.parametrize(
        "mode",
        [ExecutionMode.FLAT, ExecutionMode.CDP, ExecutionMode.DTBL,
         ExecutionMode.DTBL_IDEAL],
    )
    def test_bfs_drains_cleanly(self, mode):
        graph = citation_network(n=200, attach=4)
        run_and_check(BfsWorkload("bfs", mode, graph), mode)

    def test_nested_amr_drains_cleanly(self):
        mode = ExecutionMode.DTBL
        run_and_check(AmrWorkload("amr", mode, amr_grid(side=10)), mode)

    def test_join_drains_cleanly(self):
        mode = ExecutionMode.CDP_IDEAL
        data = join_tables("gaussian", r_size=400, s_size=300)
        run_and_check(JoinWorkload("join", mode, data), mode)

    def test_detects_leaked_resources(self):
        # Manually corrupt the accounting: the checker must notice.
        device = Device()
        device.gpu.smxs[0].free_threads -= 32
        with pytest.raises(SimulationError, match="thread slots leaked"):
            check_drained(device.gpu)

    def test_detects_unfinished_launch(self):
        from repro.sim.stats import LaunchKind, LaunchRecord

        device = Device()
        device.gpu.stats.launches.append(
            LaunchRecord(LaunchKind.DEVICE_KERNEL, "ghost", 0, 1, 32)
        )
        with pytest.raises(SimulationError, match="never completed"):
            check_drained(device.gpu)

    def test_clean_device_passes(self):
        check_drained(Device().gpu)
