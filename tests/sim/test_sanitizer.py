"""Negative tests for the execution sanitizer.

Every detector has a seeded-violation program that must trigger it, and
every scenario runs under both execution cores (reference ``Warp`` and
``FastWarp``) asserting the *identical* structured findings — the
sanitizer is part of the stat-exact contract between the two cores.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import (
    Device,
    ExecutionMode,
    GPUConfig,
    KernelBuilder,
    KernelFunction,
    SanitizerReport,
)
from repro.errors import ConfigError


def _device(fast: bool, mode: ExecutionMode = ExecutionMode.FLAT, sanitize=True) -> Device:
    config = dataclasses.replace(GPUConfig.k20c(), core=("fast" if fast else "reference"))
    return Device(config=config, mode=mode, sanitize=sanitize)


def run_both(scenario, mode: ExecutionMode = ExecutionMode.FLAT) -> SanitizerReport:
    """Run ``scenario(device)`` under both cores; findings must be identical."""
    reports = []
    for fast in (True, False):
        dev = _device(fast, mode)
        scenario(dev)
        reports.append(dev.sanitizer_report())
    fast_report, ref_report = reports
    assert fast_report.counts == ref_report.counts
    assert fast_report.findings == ref_report.findings
    return fast_report


def _launch(dev, func, grid=1, block=32, params=()):
    dev.register(func)
    dev.launch(func.name, grid=grid, block=block, params=list(params))
    dev.synchronize()


# ----------------------------------------------------------------------
# Clean baseline
# ----------------------------------------------------------------------
class TestCleanPrograms:
    def test_racefree_map_kernel_is_clean(self):
        def scenario(dev):
            k = KernelBuilder("clean_map")
            out = k.ld(k.param())
            gtid = k.gtid()
            k.st(k.iadd(out, gtid), k.imul(gtid, 3))
            buf = dev.alloc(64)
            _launch(dev, KernelFunction("clean_map", k.build()),
                    grid=2, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.clean
        assert report.total() == 0
        assert report.format() == "sanitizer: clean (no findings)"

    def test_same_value_flag_stores_are_tolerated(self):
        # The graph-coloring idiom: many threads (and divergent lanes of
        # one warp) clear the same flag word with the same value.
        def scenario(dev):
            k = KernelBuilder("flag_clear")
            flag = k.ld(k.param())
            k.st(flag, 0)
            buf = dev.alloc(1)
            dev.write_int(buf.addr, 1)
            _launch(dev, KernelFunction("flag_clear", k.build()),
                    grid=2, block=64, params=[buf.addr])

        assert run_both(scenario).clean

    def test_atomic_contention_is_tolerated(self):
        # Atomic-vs-atomic and the SSSP idiom of a plain reset racing an
        # atomic claim are treated as synchronization, not races.
        def scenario(dev):
            k = KernelBuilder("atomic_mix")
            word = k.ld(k.param())
            k.atom_add(word, 1)
            with k.if_(k.eq(k.gtid(), 0)):
                k.st(word, 0)  # plain reset of the atomically-updated word
            buf = dev.alloc(1)
            dev.write_int(buf.addr, 0)
            _launch(dev, KernelFunction("atomic_mix", k.build()),
                    grid=2, block=32, params=[buf.addr])

        assert run_both(scenario).clean


# ----------------------------------------------------------------------
# Data races
# ----------------------------------------------------------------------
class TestDataRace:
    def test_conflicting_stores_to_one_word(self):
        def scenario(dev):
            k = KernelBuilder("racy")
            out = k.ld(k.param())
            k.st(out, k.gtid())  # every thread stores a *different* value
            buf = dev.alloc(1)
            scenario.addr = buf.addr
            _launch(dev, KernelFunction("racy", k.build()),
                    grid=2, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("data-race", 0) > 0
        finding = report.by_kind("data-race")[0]
        assert finding.kernel == "racy"
        assert finding.pc >= 0
        assert finding.address == scenario.addr
        assert finding.lanes  # the offending lanes are recorded

    def test_store_racing_prior_read(self):
        def scenario(dev):
            k = KernelBuilder("rw_race")
            base = k.ld(k.param())
            gtid = k.gtid()
            k.ld(base)  # every thread reads word 0 ...
            with k.if_(k.eq(gtid, 33)):
                k.st(base, 7)  # ... then a thread in another warp writes it
            buf = dev.alloc(1)
            dev.write_int(buf.addr, 1)
            _launch(dev, KernelFunction("rw_race", k.build()),
                    grid=1, block=64, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("data-race", 0) > 0
        assert "read" in report.by_kind("data-race")[0].detail

    def test_divergent_lanes_storing_different_values(self):
        def scenario(dev):
            k = KernelBuilder("lane_race")
            out = k.ld(k.param())
            k.st(k.iadd(out, k.imod(k.gtid(), 2)), k.gtid())
            buf = dev.alloc(2)
            _launch(dev, KernelFunction("lane_race", k.build()),
                    grid=1, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("data-race", 0) > 0


# ----------------------------------------------------------------------
# Shared-memory races
# ----------------------------------------------------------------------
class TestSharedRace:
    def test_unbarriered_shared_store_conflict(self):
        def scenario(dev):
            k = KernelBuilder("smem_race")
            k.sts(0, k.tid())  # all threads store to shared word 0
            func = KernelFunction("smem_race", k.build(), shared_words=4)
            _launch(dev, func, grid=1, block=64)

        report = run_both(scenario)
        assert report.counts.get("shared-race", 0) > 0
        assert report.by_kind("shared-race")[0].address == 0

    def test_barriered_shared_exchange_is_clean(self):
        def scenario(dev):
            k = KernelBuilder("smem_ok")
            out = k.ld(k.param())
            tid = k.tid()
            k.sts(tid, k.imul(tid, 2))
            k.bar()
            other = k.lds(k.imod(k.iadd(tid, 1), 64))
            k.st(k.iadd(out, k.gtid()), other)
            buf = dev.alloc(64)
            func = KernelFunction("smem_ok", k.build(), shared_words=64)
            _launch(dev, func, grid=1, block=64, params=[buf.addr])

        assert run_both(scenario).clean


# ----------------------------------------------------------------------
# Allocator checks
# ----------------------------------------------------------------------
class TestMemoryChecks:
    def test_oob_read_past_allocation(self):
        def scenario(dev):
            k = KernelBuilder("oob_read")
            base = k.ld(k.param())
            k.ld(base, offset=100)  # far past the 4-word allocation
            buf = dev.alloc(4)
            dev.write_int(buf.addr, 0)
            scenario.addr = buf.addr + 100
            _launch(dev, KernelFunction("oob_read", k.build()),
                    grid=1, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("oob", 0) > 0
        assert report.by_kind("oob")[0].address == scenario.addr

    def test_use_after_free(self):
        def scenario(dev):
            k = KernelBuilder("uaf")
            base = k.ld(k.param())
            k.ld(base)
            buf = dev.alloc(8)
            dev.alloc(4)  # pin the bump pointer: free() below can't roll back
            dev.write_int(buf.addr, 3)
            addr = buf.addr
            dev.free(buf)
            scenario.addr = addr
            _launch(dev, KernelFunction("uaf", k.build()),
                    grid=1, block=32, params=[addr])

        report = run_both(scenario)
        assert report.counts.get("use-after-free", 0) > 0
        assert report.by_kind("use-after-free")[0].address == scenario.addr

    def test_uninitialized_read(self):
        def scenario(dev):
            k = KernelBuilder("uninit")
            base = k.ld(k.param())
            k.ld(base)  # nothing ever wrote this allocation
            buf = dev.alloc(4)
            _launch(dev, KernelFunction("uninit", k.build()),
                    grid=1, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("uninit-read", 0) > 0

    def test_initialized_read_is_clean(self):
        def scenario(dev):
            k = KernelBuilder("init_ok")
            base = k.ld(k.param())
            k.ld(base)
            buf = dev.alloc(4)
            dev.write_int(buf.addr, 42)
            _launch(dev, KernelFunction("init_ok", k.build()),
                    grid=1, block=32, params=[buf.addr])

        assert run_both(scenario).clean


# ----------------------------------------------------------------------
# Barrier divergence
# ----------------------------------------------------------------------
class TestBarrierDivergence:
    def test_bar_under_divergence(self):
        def scenario(dev):
            k = KernelBuilder("divergent_bar")
            with k.if_(k.lt(k.tid(), 16)):  # half the warp can never arrive
                k.bar()
            _launch(dev, KernelFunction("divergent_bar", k.build()),
                    grid=1, block=32)

        report = run_both(scenario)
        assert report.counts.get("barrier-divergence", 0) > 0
        finding = report.by_kind("barrier-divergence")[0]
        assert "partial active mask" in finding.detail
        assert finding.lanes  # the lanes that can never arrive

    def test_warp_exit_with_sibling_at_barrier(self):
        def scenario(dev):
            k = KernelBuilder("exit_bar")
            with k.if_(k.lt(k.tid(), 32)):  # warp 0 barriers, warp 1 exits
                k.bar()
            _launch(dev, KernelFunction("exit_bar", k.build()),
                    grid=1, block=64)

        report = run_both(scenario)
        assert report.counts.get("barrier-divergence", 0) > 0


# ----------------------------------------------------------------------
# Device-launch validation
# ----------------------------------------------------------------------
class TestBadLaunch:
    @pytest.mark.parametrize("mode", [ExecutionMode.CDP, ExecutionMode.DTBL])
    def test_zero_dim_device_launch(self, mode):
        def scenario(dev):
            child = KernelBuilder("child")
            child.exit()
            k = KernelBuilder("parent")
            with k.if_(k.eq(k.gtid(), 0)):
                buf = k.get_param_buffer(1)
                k.st(buf, 7, offset=0)
                zero = k.mov(0)
                if mode is ExecutionMode.DTBL:
                    k.launch_agg("child", buf, agg=zero, block=32)
                else:
                    k.stream_create()
                    k.launch_device("child", buf, grid=zero, block=32)
            k.exit()
            dev.register(KernelFunction("child", child.build()))
            _launch(dev, KernelFunction("parent", k.build()), grid=1, block=32)

        report = run_both(scenario, mode=mode)
        assert report.counts.get("bad-launch", 0) > 0
        assert "non-positive dimension" in report.by_kind("bad-launch")[0].detail


# ----------------------------------------------------------------------
# Reporting API
# ----------------------------------------------------------------------
class TestReportingAPI:
    def _racy_kernel(self):
        k = KernelBuilder("racy")
        k.st(k.ld(k.param()), k.gtid())
        return KernelFunction("racy", k.build())

    def _clean_kernel(self):
        k = KernelBuilder("clean")
        out = k.ld(k.param())
        k.st(k.iadd(out, k.gtid()), 1)
        return KernelFunction("clean", k.build())

    def test_sanitizer_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.FLAT)
        assert not dev.sanitizing
        with pytest.raises(ConfigError):
            dev.sanitizer_report()

    def test_event_report_requires_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.FLAT)
        dev.register(self._clean_kernel())
        buf = dev.alloc(64)
        event = dev.launch("clean", grid=1, block=32, params=[buf.addr])
        dev.synchronize()
        with pytest.raises(ConfigError):
            event.sanitizer_report()

    def test_event_report_windows_findings(self):
        dev = _device(fast=True)
        dev.register(self._racy_kernel())
        dev.register(self._clean_kernel())
        racy_buf = dev.alloc(1)
        clean_buf = dev.alloc(64)
        racy = dev.launch("racy", grid=1, block=32, params=[racy_buf.addr])
        dev.synchronize()
        clean = dev.launch("clean", grid=1, block=32, params=[clean_buf.addr])
        dev.synchronize()
        assert not racy.sanitizer_report().clean
        assert clean.sanitizer_report().clean
        # The device-wide report keeps everything.
        assert dev.sanitizer_report().counts.get("data-race", 0) > 0

    def test_report_counts_every_occurrence_but_dedups_sites(self):
        dev = _device(fast=True)
        dev.register(self._racy_kernel())
        buf = dev.alloc(1)
        for _ in range(3):
            dev.launch("racy", grid=1, block=32, params=[buf.addr])
            dev.synchronize()
        report = dev.sanitizer_report()
        # One (kind, kernel, pc) site, many occurrences.
        assert len(report.by_kind("data-race")) == 1
        assert report.counts["data-race"] > len(report.by_kind("data-race"))
        assert "data-race" in report.format()

    def test_env_var_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.FLAT)
        assert dev.sanitizing

    def test_sanitizer_does_not_change_results_or_timing(self):
        def run(sanitize):
            dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.FLAT,
                         sanitize=sanitize)
            dev.register(self._racy_kernel())
            buf = dev.alloc(1)
            dev.launch("racy", grid=1, block=32, params=[buf.addr])
            stats = dev.synchronize()
            return dev.read_int(buf.addr), stats.cycles

        assert run(True) == run(False)


# ----------------------------------------------------------------------
# Task-queue protocol defects (repro.isa.taskqueue)
# ----------------------------------------------------------------------
class TestTaskQueueDefects:
    """The queue's ordering protocol is load-bearing: each seeded defect
    knob removes one ordering and must produce sanitizer findings, while
    the clean protocol stays silent (see tests/isa/test_taskqueue_fuzz.py
    for the functional differential)."""

    @staticmethod
    def _queue(dev, capacity, uploaded=True):
        import repro.isa.taskqueue as tq

        shape = tq.QueueLayout(0, capacity, 1)
        if uploaded:
            return dataclasses.replace(
                shape, base=int(dev.upload(shape.init_image()))
            )
        # Sparse init: header and sequence words only, so the ring's
        # payload words stay uninitialized in the sanitizer's shadow.
        arr = dev.alloc(shape.total_words)
        q = dataclasses.replace(shape, base=arr.addr)
        for off in range(tq.HEADER_WORDS):
            dev.write_int(q.field(off), capacity if off == tq.OFF_CAPACITY else 0)
        for i in range(capacity):
            dev.write_int(q.slot(i), i)
        return q

    def test_plain_reserve_is_a_data_race(self):
        # Non-atomic ticket reservation: two blocks read the same ticket
        # and collide on the reservation word and one slot's payload.
        from repro.isa.taskqueue import emit_enqueue

        def scenario(dev):
            q = self._queue(dev, 4)
            k = KernelBuilder("tq_plain_reserve")
            emit_enqueue(k, q, [k.iadd(k.ctaid(), 500)], defect="plain-reserve")
            _launch(dev, KernelFunction("tq_plain_reserve", k.build()),
                    grid=2, block=1)

        report = run_both(scenario)
        assert report.counts.get("data-race", 0) > 0

    # Note on the third defect knob, ``publish-before-store``: it swaps
    # the payload store past the sequence publish, which on real
    # hardware (store buffers, relaxed ordering) is the classic dropped
    # release fence.  The simulated cores are in-order and the late
    # store retires a couple of cycles after the publish — always before
    # any consumer's dependent load can arrive through the memory
    # latency model — so neither the sanitizer nor the functional
    # differential can observe it in-sim.  The knob stays for
    # documentation; the observable per-primitive defects are covered
    # below (enqueue: plain-reserve, dequeue: skip-empty-check).

    def test_runtime_plain_reserve_defect_is_caught(self):
        # The full equivalence net — watchdog, drain invariants,
        # sanitizer, output verify — must catch a seeded protocol defect
        # when driven through the real PersistentRuntime on a
        # child-launching workload, not just on a micro-kernel.  With a
        # de-atomized reservation two workers can claim the same ticket,
        # wedging the sequenced ring (watchdog) and racing on the slot
        # payload (sanitizer); the deterministic simulator makes the
        # outcome reproducible.
        from repro.errors import ReproError
        from repro.runtime.persistent import (
            PersistentRuntime,
            PersistentRuntimeError,
        )
        from repro.workloads import get_benchmark

        wl = get_benchmark("bht", ExecutionMode.PERSISTENT, scale=0.05)
        device = Device(
            config=GPUConfig.k20c(),
            mode=ExecutionMode.PERSISTENT,
            sanitize=True,
        )
        runtime = PersistentRuntime(device, defect="plain-reserve")
        kernels = runtime.transform(wl.build_kernels())
        for func in kernels:
            device.register(func)
        wl.setup(device)
        caught = []
        try:
            wl.run(device)
            device.synchronize(max_cycles=2_000_000)
            runtime.verify_drained()
            wl.check(device)
        except (ReproError, PersistentRuntimeError) as exc:
            caught.append(type(exc).__name__)
        if not device.sanitizer_report().clean:
            caught.append(
                f"sanitizer:{dict(device.sanitizer_report().counts)}"
            )
        assert caught, (
            "plain-reserve escaped every net: no exception, drained "
            "books, verified output, clean sanitizer"
        )

    def test_skip_empty_check_is_an_uninit_read(self):
        # Claiming from an empty queue without the sequence wait reads a
        # ring record no store ever wrote.
        from repro.isa.taskqueue import emit_dequeue_sync

        def scenario(dev):
            q = self._queue(dev, 4, uploaded=False)
            sink = dev.alloc(1)
            k = KernelBuilder("tq_skip_empty")

            def on_item(fields, ticket):
                k.st(sink.addr, fields[0])

            emit_dequeue_sync(k, q, on_item, defect="skip-empty-check")
            k.exit()
            _launch(dev, KernelFunction("tq_skip_empty", k.build()),
                    grid=1, block=1)
            scenario.payload_addr = q.slot(0) + 1

        report = run_both(scenario)
        assert report.counts.get("uninit-read", 0) > 0
        assert any(f.address == scenario.payload_addr
                   for f in report.by_kind("uninit-read"))

    def test_clean_protocol_is_clean(self):
        from repro.isa.taskqueue import OFF_FINISHED, emit_dequeue_sync, emit_enqueue

        def scenario(dev):
            q = self._queue(dev, 2)
            out = dev.alloc(4)
            k = KernelBuilder("tq_clean_pair")

            def produce():
                with k.for_range(0, 4) as j:
                    emit_enqueue(k, q, [k.iadd(j, 900)])

            def consume():
                done = k.mov(0)
                with k.while_(lambda: k.lt(done, 4)):
                    def on_item(fields, ticket):
                        k.st(k.iadd(out.addr, ticket), fields[0])
                        k.atom_add(q.field(OFF_FINISHED), 1)
                        k.iadd(done, 1, dst=done)
                    emit_dequeue_sync(k, q, on_item)

            k.if_else(k.eq(k.ctaid(), 0), produce, consume)
            k.exit()
            _launch(dev, KernelFunction("tq_clean_pair", k.build()),
                    grid=2, block=1)

        assert run_both(scenario).clean

    @pytest.mark.parametrize("mode_name", ["persistent", "persistent-async"])
    def test_persistent_mode_benchmark_is_clean(self, mode_name):
        from repro.workloads import get_benchmark

        config = dataclasses.replace(GPUConfig.k20c(), sanitize=True)
        wl = get_benchmark("bfs_citation", ExecutionMode.parse(mode_name),
                           scale=0.04)
        result = wl.execute(config=config, latency_scale=0.25)
        assert result.sanitizer is not None and result.sanitizer.clean
