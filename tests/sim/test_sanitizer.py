"""Negative tests for the execution sanitizer.

Every detector has a seeded-violation program that must trigger it, and
every scenario runs under both execution cores (reference ``Warp`` and
``FastWarp``) asserting the *identical* structured findings — the
sanitizer is part of the stat-exact contract between the two cores.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import (
    Device,
    ExecutionMode,
    GPUConfig,
    KernelBuilder,
    KernelFunction,
    SanitizerReport,
)
from repro.errors import ConfigError


def _device(fast: bool, mode: ExecutionMode = ExecutionMode.FLAT, sanitize=True) -> Device:
    config = dataclasses.replace(GPUConfig.k20c(), core=("fast" if fast else "reference"))
    return Device(config=config, mode=mode, sanitize=sanitize)


def run_both(scenario, mode: ExecutionMode = ExecutionMode.FLAT) -> SanitizerReport:
    """Run ``scenario(device)`` under both cores; findings must be identical."""
    reports = []
    for fast in (True, False):
        dev = _device(fast, mode)
        scenario(dev)
        reports.append(dev.sanitizer_report())
    fast_report, ref_report = reports
    assert fast_report.counts == ref_report.counts
    assert fast_report.findings == ref_report.findings
    return fast_report


def _launch(dev, func, grid=1, block=32, params=()):
    dev.register(func)
    dev.launch(func.name, grid=grid, block=block, params=list(params))
    dev.synchronize()


# ----------------------------------------------------------------------
# Clean baseline
# ----------------------------------------------------------------------
class TestCleanPrograms:
    def test_racefree_map_kernel_is_clean(self):
        def scenario(dev):
            k = KernelBuilder("clean_map")
            out = k.ld(k.param())
            gtid = k.gtid()
            k.st(k.iadd(out, gtid), k.imul(gtid, 3))
            buf = dev.alloc(64)
            _launch(dev, KernelFunction("clean_map", k.build()),
                    grid=2, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.clean
        assert report.total() == 0
        assert report.format() == "sanitizer: clean (no findings)"

    def test_same_value_flag_stores_are_tolerated(self):
        # The graph-coloring idiom: many threads (and divergent lanes of
        # one warp) clear the same flag word with the same value.
        def scenario(dev):
            k = KernelBuilder("flag_clear")
            flag = k.ld(k.param())
            k.st(flag, 0)
            buf = dev.alloc(1)
            dev.write_int(buf.addr, 1)
            _launch(dev, KernelFunction("flag_clear", k.build()),
                    grid=2, block=64, params=[buf.addr])

        assert run_both(scenario).clean

    def test_atomic_contention_is_tolerated(self):
        # Atomic-vs-atomic and the SSSP idiom of a plain reset racing an
        # atomic claim are treated as synchronization, not races.
        def scenario(dev):
            k = KernelBuilder("atomic_mix")
            word = k.ld(k.param())
            k.atom_add(word, 1)
            with k.if_(k.eq(k.gtid(), 0)):
                k.st(word, 0)  # plain reset of the atomically-updated word
            buf = dev.alloc(1)
            dev.write_int(buf.addr, 0)
            _launch(dev, KernelFunction("atomic_mix", k.build()),
                    grid=2, block=32, params=[buf.addr])

        assert run_both(scenario).clean


# ----------------------------------------------------------------------
# Data races
# ----------------------------------------------------------------------
class TestDataRace:
    def test_conflicting_stores_to_one_word(self):
        def scenario(dev):
            k = KernelBuilder("racy")
            out = k.ld(k.param())
            k.st(out, k.gtid())  # every thread stores a *different* value
            buf = dev.alloc(1)
            scenario.addr = buf.addr
            _launch(dev, KernelFunction("racy", k.build()),
                    grid=2, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("data-race", 0) > 0
        finding = report.by_kind("data-race")[0]
        assert finding.kernel == "racy"
        assert finding.pc >= 0
        assert finding.address == scenario.addr
        assert finding.lanes  # the offending lanes are recorded

    def test_store_racing_prior_read(self):
        def scenario(dev):
            k = KernelBuilder("rw_race")
            base = k.ld(k.param())
            gtid = k.gtid()
            k.ld(base)  # every thread reads word 0 ...
            with k.if_(k.eq(gtid, 33)):
                k.st(base, 7)  # ... then a thread in another warp writes it
            buf = dev.alloc(1)
            dev.write_int(buf.addr, 1)
            _launch(dev, KernelFunction("rw_race", k.build()),
                    grid=1, block=64, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("data-race", 0) > 0
        assert "read" in report.by_kind("data-race")[0].detail

    def test_divergent_lanes_storing_different_values(self):
        def scenario(dev):
            k = KernelBuilder("lane_race")
            out = k.ld(k.param())
            k.st(k.iadd(out, k.imod(k.gtid(), 2)), k.gtid())
            buf = dev.alloc(2)
            _launch(dev, KernelFunction("lane_race", k.build()),
                    grid=1, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("data-race", 0) > 0


# ----------------------------------------------------------------------
# Shared-memory races
# ----------------------------------------------------------------------
class TestSharedRace:
    def test_unbarriered_shared_store_conflict(self):
        def scenario(dev):
            k = KernelBuilder("smem_race")
            k.sts(0, k.tid())  # all threads store to shared word 0
            func = KernelFunction("smem_race", k.build(), shared_words=4)
            _launch(dev, func, grid=1, block=64)

        report = run_both(scenario)
        assert report.counts.get("shared-race", 0) > 0
        assert report.by_kind("shared-race")[0].address == 0

    def test_barriered_shared_exchange_is_clean(self):
        def scenario(dev):
            k = KernelBuilder("smem_ok")
            out = k.ld(k.param())
            tid = k.tid()
            k.sts(tid, k.imul(tid, 2))
            k.bar()
            other = k.lds(k.imod(k.iadd(tid, 1), 64))
            k.st(k.iadd(out, k.gtid()), other)
            buf = dev.alloc(64)
            func = KernelFunction("smem_ok", k.build(), shared_words=64)
            _launch(dev, func, grid=1, block=64, params=[buf.addr])

        assert run_both(scenario).clean


# ----------------------------------------------------------------------
# Allocator checks
# ----------------------------------------------------------------------
class TestMemoryChecks:
    def test_oob_read_past_allocation(self):
        def scenario(dev):
            k = KernelBuilder("oob_read")
            base = k.ld(k.param())
            k.ld(base, offset=100)  # far past the 4-word allocation
            buf = dev.alloc(4)
            dev.write_int(buf.addr, 0)
            scenario.addr = buf.addr + 100
            _launch(dev, KernelFunction("oob_read", k.build()),
                    grid=1, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("oob", 0) > 0
        assert report.by_kind("oob")[0].address == scenario.addr

    def test_use_after_free(self):
        def scenario(dev):
            k = KernelBuilder("uaf")
            base = k.ld(k.param())
            k.ld(base)
            buf = dev.alloc(8)
            dev.alloc(4)  # pin the bump pointer: free() below can't roll back
            dev.write_int(buf.addr, 3)
            addr = buf.addr
            dev.free(buf)
            scenario.addr = addr
            _launch(dev, KernelFunction("uaf", k.build()),
                    grid=1, block=32, params=[addr])

        report = run_both(scenario)
        assert report.counts.get("use-after-free", 0) > 0
        assert report.by_kind("use-after-free")[0].address == scenario.addr

    def test_uninitialized_read(self):
        def scenario(dev):
            k = KernelBuilder("uninit")
            base = k.ld(k.param())
            k.ld(base)  # nothing ever wrote this allocation
            buf = dev.alloc(4)
            _launch(dev, KernelFunction("uninit", k.build()),
                    grid=1, block=32, params=[buf.addr])

        report = run_both(scenario)
        assert report.counts.get("uninit-read", 0) > 0

    def test_initialized_read_is_clean(self):
        def scenario(dev):
            k = KernelBuilder("init_ok")
            base = k.ld(k.param())
            k.ld(base)
            buf = dev.alloc(4)
            dev.write_int(buf.addr, 42)
            _launch(dev, KernelFunction("init_ok", k.build()),
                    grid=1, block=32, params=[buf.addr])

        assert run_both(scenario).clean


# ----------------------------------------------------------------------
# Barrier divergence
# ----------------------------------------------------------------------
class TestBarrierDivergence:
    def test_bar_under_divergence(self):
        def scenario(dev):
            k = KernelBuilder("divergent_bar")
            with k.if_(k.lt(k.tid(), 16)):  # half the warp can never arrive
                k.bar()
            _launch(dev, KernelFunction("divergent_bar", k.build()),
                    grid=1, block=32)

        report = run_both(scenario)
        assert report.counts.get("barrier-divergence", 0) > 0
        finding = report.by_kind("barrier-divergence")[0]
        assert "partial active mask" in finding.detail
        assert finding.lanes  # the lanes that can never arrive

    def test_warp_exit_with_sibling_at_barrier(self):
        def scenario(dev):
            k = KernelBuilder("exit_bar")
            with k.if_(k.lt(k.tid(), 32)):  # warp 0 barriers, warp 1 exits
                k.bar()
            _launch(dev, KernelFunction("exit_bar", k.build()),
                    grid=1, block=64)

        report = run_both(scenario)
        assert report.counts.get("barrier-divergence", 0) > 0


# ----------------------------------------------------------------------
# Device-launch validation
# ----------------------------------------------------------------------
class TestBadLaunch:
    @pytest.mark.parametrize("mode", [ExecutionMode.CDP, ExecutionMode.DTBL])
    def test_zero_dim_device_launch(self, mode):
        def scenario(dev):
            child = KernelBuilder("child")
            child.exit()
            k = KernelBuilder("parent")
            with k.if_(k.eq(k.gtid(), 0)):
                buf = k.get_param_buffer(1)
                k.st(buf, 7, offset=0)
                zero = k.mov(0)
                if mode is ExecutionMode.DTBL:
                    k.launch_agg("child", buf, agg=zero, block=32)
                else:
                    k.stream_create()
                    k.launch_device("child", buf, grid=zero, block=32)
            k.exit()
            dev.register(KernelFunction("child", child.build()))
            _launch(dev, KernelFunction("parent", k.build()), grid=1, block=32)

        report = run_both(scenario, mode=mode)
        assert report.counts.get("bad-launch", 0) > 0
        assert "non-positive dimension" in report.by_kind("bad-launch")[0].detail


# ----------------------------------------------------------------------
# Reporting API
# ----------------------------------------------------------------------
class TestReportingAPI:
    def _racy_kernel(self):
        k = KernelBuilder("racy")
        k.st(k.ld(k.param()), k.gtid())
        return KernelFunction("racy", k.build())

    def _clean_kernel(self):
        k = KernelBuilder("clean")
        out = k.ld(k.param())
        k.st(k.iadd(out, k.gtid()), 1)
        return KernelFunction("clean", k.build())

    def test_sanitizer_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.FLAT)
        assert not dev.sanitizing
        with pytest.raises(ConfigError):
            dev.sanitizer_report()

    def test_event_report_requires_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.FLAT)
        dev.register(self._clean_kernel())
        buf = dev.alloc(64)
        event = dev.launch("clean", grid=1, block=32, params=[buf.addr])
        dev.synchronize()
        with pytest.raises(ConfigError):
            event.sanitizer_report()

    def test_event_report_windows_findings(self):
        dev = _device(fast=True)
        dev.register(self._racy_kernel())
        dev.register(self._clean_kernel())
        racy_buf = dev.alloc(1)
        clean_buf = dev.alloc(64)
        racy = dev.launch("racy", grid=1, block=32, params=[racy_buf.addr])
        dev.synchronize()
        clean = dev.launch("clean", grid=1, block=32, params=[clean_buf.addr])
        dev.synchronize()
        assert not racy.sanitizer_report().clean
        assert clean.sanitizer_report().clean
        # The device-wide report keeps everything.
        assert dev.sanitizer_report().counts.get("data-race", 0) > 0

    def test_report_counts_every_occurrence_but_dedups_sites(self):
        dev = _device(fast=True)
        dev.register(self._racy_kernel())
        buf = dev.alloc(1)
        for _ in range(3):
            dev.launch("racy", grid=1, block=32, params=[buf.addr])
            dev.synchronize()
        report = dev.sanitizer_report()
        # One (kind, kernel, pc) site, many occurrences.
        assert len(report.by_kind("data-race")) == 1
        assert report.counts["data-race"] > len(report.by_kind("data-race"))
        assert "data-race" in report.format()

    def test_env_var_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.FLAT)
        assert dev.sanitizing

    def test_sanitizer_does_not_change_results_or_timing(self):
        def run(sanitize):
            dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.FLAT,
                         sanitize=sanitize)
            dev.register(self._racy_kernel())
            buf = dev.alloc(1)
            dev.launch("racy", grid=1, block=32, params=[buf.addr])
            stats = dev.synchronize()
            return dev.read_int(buf.addr), stats.cycles

        assert run(True) == run(False)
