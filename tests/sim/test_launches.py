"""Device-side launching: CDP kernels and DTBL aggregated groups."""

import numpy as np
import pytest

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction
from repro.config import LatencyModel
from repro.sim.stats import LaunchKind


def child_sum_kernel() -> KernelFunction:
    """Child: params [count, base, out]; atomically sums base[0:count]."""
    k = KernelBuilder("child")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, count)):
        base = k.ld(param, offset=1)
        out = k.ld(param, offset=2)
        k.atom_add(out, k.ld(k.iadd(base, gtid)))
    k.exit()
    return KernelFunction("child", k.build())


def parent_kernel(use_dtbl: bool, threshold: int = 0) -> KernelFunction:
    """Parent: params [nitems, counts, bases, out]; one launch per item."""
    k = KernelBuilder("parent")
    gtid = k.gtid()
    param = k.param()
    nitems = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, nitems)):
        counts = k.ld(param, offset=1)
        bases = k.ld(param, offset=2)
        out = k.ld(param, offset=3)
        cnt = k.ld(k.iadd(counts, gtid))
        base = k.ld(k.iadd(bases, gtid))
        with k.if_(k.gt(cnt, threshold)):
            buf = k.get_param_buffer(3)
            k.st(buf, cnt, offset=0)
            k.st(buf, base, offset=1)
            k.st(buf, out, offset=2)
            blocks = k.idiv(k.iadd(cnt, 31), 32)
            if use_dtbl:
                k.launch_agg("child", buf, agg=blocks, block=32)
            else:
                k.stream_create()
                k.launch_device("child", buf, grid=blocks, block=32)
    k.exit()
    return KernelFunction("parent", k.build())


def run_nested(mode: ExecutionMode, nitems: int = 100, seed: int = 3):
    dev = Device(mode=mode)
    dev.register(child_sum_kernel())
    dev.register(parent_kernel(mode.uses_dtbl))
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 70, nitems)
    bases = np.zeros(nitems, dtype=np.int64)
    total = 0
    for i, c in enumerate(counts):
        arr = rng.integers(0, 50, c)
        total += int(arr.sum())
        bases[i] = dev.upload(arr)
    caddr = dev.upload(counts)
    baddr = dev.upload(bases)
    out = dev.alloc(1)
    dev.launch("parent", grid=2, block=64, params=[nitems, caddr, baddr, out])
    stats = dev.synchronize()
    return dev, out, total, stats


class TestCdpLaunch:
    def test_functional_result(self):
        dev, out, total, _ = run_nested(ExecutionMode.CDP)
        assert dev.read_int(out) == total

    def test_launch_records_created(self):
        _, _, _, stats = run_nested(ExecutionMode.CDP)
        dyn = stats.dynamic_launches()
        assert len(dyn) == 100
        assert all(r.kind is LaunchKind.DEVICE_KERNEL for r in dyn)
        assert all(r.first_exec_cycle is not None for r in dyn)
        assert all(r.completed_cycle is not None for r in dyn)

    def test_waiting_time_positive_with_latency(self):
        _, _, _, stats = run_nested(ExecutionMode.CDP)
        assert stats.avg_waiting_cycles > 0

    def test_ideal_faster_than_measured(self):
        _, _, _, measured = run_nested(ExecutionMode.CDP)
        _, _, _, ideal = run_nested(ExecutionMode.CDP_IDEAL)
        assert ideal.cycles < measured.cycles

    def test_footprint_rises_and_falls(self):
        _, _, _, stats = run_nested(ExecutionMode.CDP)
        assert stats.peak_footprint_bytes > 0
        assert stats.footprint_bytes == 0  # everything released at the end


class TestDtblLaunch:
    def test_functional_result(self):
        dev, out, total, _ = run_nested(ExecutionMode.DTBL)
        assert dev.read_int(out) == total

    def test_agg_records(self):
        _, _, _, stats = run_nested(ExecutionMode.DTBL_IDEAL)
        dyn = stats.dynamic_launches()
        assert len(dyn) == 100
        kinds = {r.kind for r in dyn}
        assert LaunchKind.AGG_GROUP in kinds

    def test_coalescing_match_rate_high_when_dense(self):
        _, _, _, stats = run_nested(ExecutionMode.DTBL_IDEAL)
        # With zero launch latency all launches land close together, so
        # nearly all groups find the eligible kernel (paper: ~98%).
        assert stats.agg_match_rate > 0.9

    def test_dtbl_beats_cdp(self):
        _, _, _, cdp = run_nested(ExecutionMode.CDP)
        _, _, _, dtbl = run_nested(ExecutionMode.DTBL)
        assert dtbl.cycles < cdp.cycles

    def test_dtbl_footprint_below_cdp(self):
        _, _, _, cdp = run_nested(ExecutionMode.CDP_IDEAL)
        _, _, _, dtbl = run_nested(ExecutionMode.DTBL_IDEAL)
        assert dtbl.peak_footprint_bytes < cdp.peak_footprint_bytes

    def test_mismatched_block_shape_falls_back_to_device_kernel(self):
        # A group whose TB shape differs from every active kernel cannot
        # coalesce and must be launched as a device kernel.
        k = KernelBuilder("parent")
        param = k.param()
        tid = k.tid()
        with k.if_(k.eq(tid, 0)):
            buf = k.get_param_buffer(3)
            k.st(buf, 1, offset=0)
            k.st(buf, k.ld(param, offset=0), offset=1)
            k.st(buf, k.ld(param, offset=1), offset=2)
            k.launch_agg("child", buf, agg=1, block=64)  # parent uses 32
        k.exit()
        parent = KernelFunction("parent", k.build())
        dev = Device(mode=ExecutionMode.DTBL_IDEAL)
        dev.register(child_sum_kernel())
        dev.register(parent)
        data = dev.upload(np.array([41], dtype=np.int64))
        out = dev.alloc(1)
        dev.launch("parent", grid=1, block=32, params=[data, out])
        stats = dev.synchronize()
        assert dev.read_int(out) == 41
        assert stats.agg_unmatched >= 1


class TestNestedDepth:
    def test_recursive_agg_launch(self):
        # A kernel that launches itself until depth exhausts.
        k = KernelBuilder("recurse")
        param = k.param()
        tid = k.tid()
        depth = k.ld(param, offset=0)
        out = k.ld(param, offset=1)
        with k.if_(k.eq(tid, 0)):
            k.atom_add(out, 1)
            with k.if_(k.gt(depth, 0)):
                buf = k.get_param_buffer(2)
                k.st(buf, k.isub(depth, 1), offset=0)
                k.st(buf, out, offset=1)
                k.launch_agg("recurse", buf, agg=1, block=32)
        k.exit()
        func = KernelFunction("recurse", k.build())
        dev = Device(mode=ExecutionMode.DTBL_IDEAL)
        dev.register(func)
        out = dev.alloc(1)
        dev.launch("recurse", grid=1, block=32, params=[6, out])
        dev.synchronize()
        assert dev.read_int(out) == 7  # root + 6 nested generations


class TestConcurrencyLimit:
    def test_kde_limit_respected(self):
        # More pending device kernels than KDE entries: peak occupancy of
        # the distributor must never exceed max_concurrent_kernels.
        _, _, _, stats = run_nested(ExecutionMode.CDP_IDEAL, nitems=128)
        # (the distributor itself asserts; this is a smoke check)
        assert stats.kernels_completed >= 128


class TestHostStreams:
    def test_same_stream_serializes(self):
        k = KernelBuilder("mark")
        param = k.param()
        tid = k.tid()
        out = k.ld(param, offset=0)
        value = k.ld(param, offset=1)
        with k.if_(k.eq(tid, 0)):
            k.atom_exch(out, value)
        k.exit()
        func = KernelFunction("mark", k.build())
        dev = Device()
        dev.register(func)
        out = dev.alloc(1)
        dev.launch("mark", grid=1, block=32, params=[out, 1], stream=0)
        dev.launch("mark", grid=1, block=32, params=[out, 2], stream=0)
        dev.synchronize()
        assert dev.read_int(out) == 2  # in-order within a stream
