"""Local memory, shared-memory bank conflicts, shuffle and vote."""

import numpy as np
import pytest

from repro import Device, GPUConfig, KernelBuilder, KernelFunction
from repro.errors import ExecutionError

from tests.helpers import make_device


def run_kernel(func, params, grid=1, block=64, device=None):
    dev = device or make_device()
    dev.register(func)
    dev.launch(func.name, grid=grid, block=block, params=params)
    dev.synchronize()
    return dev


class TestLocalMemory:
    def test_local_roundtrip_is_private_per_thread(self):
        # Each thread writes its gtid at local[0..3], reads back, sums.
        k = KernelBuilder("local")
        gtid = k.gtid()
        param = k.param()
        out = k.ld(param, offset=0)
        for i in range(4):
            k.stl(i, k.iadd(gtid, i))
        acc = k.mov(0)
        with k.for_range(0, 4) as i:
            k.iadd(acc, k.ldl(i), dst=acc)
        k.st(k.iadd(out, gtid), acc)
        k.exit()
        func = KernelFunction("local", k.build(), local_words=4)
        dev = make_device()
        dev.register(func)
        out = dev.alloc(128)
        dev.launch("local", grid=2, block=64, params=[out])
        dev.synchronize()
        got = dev.download_ints(out, 128)
        expected = 4 * np.arange(128) + 6
        np.testing.assert_array_equal(got, expected)

    def test_local_stack_push_pop(self):
        # LIFO behaviour with a data-dependent stack pointer.
        k = KernelBuilder("stack")
        gtid = k.gtid()
        param = k.param()
        out = k.ld(param, offset=0)
        sp = k.mov(0)
        with k.for_range(0, 5) as i:
            k.stl(sp, k.imul(k.iadd(gtid, i), 2))
            k.iadd(sp, 1, dst=sp)
        acc = k.mov(0)
        with k.while_(lambda: k.gt(sp, 0)):
            k.iadd(sp, -1, dst=sp)
            k.iadd(acc, k.ldl(sp), dst=acc)
        k.st(k.iadd(out, gtid), acc)
        k.exit()
        func = KernelFunction("stack", k.build(), local_words=8)
        dev = make_device()
        dev.register(func)
        out = dev.alloc(64)
        dev.launch("stack", grid=1, block=64, params=[out])
        dev.synchronize()
        got = dev.download_ints(out, 64)
        expected = np.array([sum(2 * (g + i) for i in range(5)) for g in range(64)])
        np.testing.assert_array_equal(got, expected)

    def test_local_out_of_range_faults(self):
        k = KernelBuilder("oob")
        k.ldl(10)
        k.exit()
        func = KernelFunction("oob", k.build(), local_words=4)
        dev = make_device()
        dev.register(func)
        dev.launch("oob", grid=1, block=32)
        with pytest.raises(ExecutionError):
            dev.synchronize()

    def test_local_words_limit_enforced(self):
        from repro.errors import SimulationError

        k = KernelBuilder("big")
        k.nop()
        k.exit()
        func = KernelFunction("big", k.build(), local_words=10_000)
        dev = make_device()
        dev.register(func)
        dev.launch("big", grid=1, block=32)
        # No SMX can ever accept this block: the simulator deadlocks and
        # reports it rather than hanging.
        with pytest.raises(SimulationError):
            dev.synchronize()

    def test_uniform_offset_coalesces(self):
        # Interleaved local layout: lane-uniform offsets are contiguous.
        k = KernelBuilder("coal")
        k.stl(0, 7)
        k.ldl(0)
        k.exit()
        func = KernelFunction("coal", k.build(), local_words=2)
        dev = make_device()
        dev.register(func)
        dev.launch("coal", grid=1, block=32)
        stats = dev.synchronize()
        # One warp store + one warp load over contiguous lanes: at most 3
        # segments each (256B possibly unaligned), far below the 32 of a
        # scattered access.
        assert stats.coalescing.average_transactions <= 3.0


class TestBankConflicts:
    def _shared_kernel(self, stride: int) -> KernelFunction:
        k = KernelBuilder(f"bank_{stride}")
        tid = k.tid()
        k.sts(k.imul(tid, stride), tid)
        k.bar()
        k.lds(k.imul(tid, stride))
        k.exit()
        return KernelFunction(
            f"bank_{stride}", k.build(), shared_words=32 * stride + 1
        )

    def _cycles(self, stride: int) -> int:
        dev = make_device()
        dev.register(self._shared_kernel(stride))
        dev.launch(f"bank_{stride}", grid=1, block=32)
        return dev.synchronize().cycles

    def test_stride_32_conflicts_cost_more(self):
        # Stride 1: conflict-free.  Stride 32: all lanes hit bank 0.
        assert self._cycles(32) > self._cycles(1) + 100

    def test_broadcast_is_free(self):
        # All lanes reading the same address broadcast without conflict.
        k = KernelBuilder("bcast")
        k.sts(0, 1)
        k.bar()
        k.lds(0)
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("bcast", k.build(), shared_words=4))
        dev.launch("bcast", grid=1, block=32)
        broadcast = dev.synchronize().cycles
        assert broadcast < self._cycles(32)


class TestShuffleVote:
    def _run(self, build_body, block=32):
        k = KernelBuilder("wp")
        gtid = k.gtid()
        param = k.param()
        out = k.ld(param, offset=0)
        result = build_body(k, gtid)
        k.st(k.iadd(out, gtid), result)
        k.exit()
        func = KernelFunction("wp", k.build())
        dev = make_device()
        dev.register(func)
        out = dev.alloc(block)
        dev.launch("wp", grid=1, block=block, params=[out])
        dev.synchronize()
        return dev.download_ints(out, block)

    def test_shfl_idx_reverse(self):
        got = self._run(lambda k, g: k.shfl_idx(k.imul(g, 10), k.isub(31, g)))
        np.testing.assert_array_equal(got, 10 * (31 - np.arange(32)))

    def test_shfl_down_reduction(self):
        # Classic warp tree-reduction: lane 0 ends with the warp sum.
        def body(k, g):
            value = k.mov(g)
            for delta in (16, 8, 4, 2, 1):
                k.iadd(value, k.shfl_down(value, delta), dst=value)
            return value

        got = self._run(body)
        assert got[0] == sum(range(32))

    def test_vote_any_all(self):
        def body(k, g):
            any_big = k.vote_any(k.gt(g, 30))    # lane 31 only -> 1
            all_pos = k.vote_all(k.ge(g, 0))     # everyone -> 1
            all_big = k.vote_all(k.gt(g, 0))     # lane 0 fails -> 0
            return k.iadd(k.imul(any_big, 100), k.iadd(k.imul(all_pos, 10), all_big))

        got = self._run(body)
        assert (got == 110).all()

    def test_ballot(self):
        got = self._run(lambda k, g: k.ballot(k.eq(k.imod(g, 2), 0)))
        expected = sum(1 << i for i in range(0, 32, 2))
        assert (got == expected).all()

    def test_ballot_respects_active_mask(self):
        # Only even lanes execute the ballot: odd lanes contribute 0 bits.
        def body(k, g):
            result = k.mov(-1)
            with k.if_(k.eq(k.imod(g, 2), 0)):
                k.ballot(k.ge(g, 0), dst=result)
            return result

        got = self._run(body)
        expected = sum(1 << i for i in range(0, 32, 2))
        assert (got[::2] == expected).all()
        assert (got[1::2] == -1).all()
