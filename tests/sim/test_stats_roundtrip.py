"""Exact serialization round trips for SimStats and its components."""

import json

import pytest

from repro.config import GPUConfig
from repro.memory.coalescing import CoalescingStats
from repro.memory.dram import DramStats
from repro.runtime import ExecutionMode
from repro.sim.sanitizer import SanitizerFinding, SanitizerReport
from repro.sim.stats import LaunchKind, LaunchRecord, SimStats
from repro.workloads import get_benchmark


def json_round_trip(data: dict) -> dict:
    return json.loads(json.dumps(data))


class TestSimStatsRoundTrip:
    @pytest.mark.parametrize("mode", [
        ExecutionMode.FLAT, ExecutionMode.CDP, ExecutionMode.DTBL,
    ])
    def test_real_run_exact(self, mode):
        """to_dict -> JSON -> from_dict -> to_dict is the identity."""
        workload = get_benchmark("bfs_citation", mode, 0.08)
        stats = workload.execute(latency_scale=0.25).stats
        data = stats.to_dict()
        rebuilt = SimStats.from_dict(json_round_trip(data))
        assert rebuilt.to_dict() == data
        # Derived metrics (what the figures consume) follow exactly.
        assert rebuilt.summary() == stats.summary()
        assert rebuilt.config == stats.config
        assert len(rebuilt.launches) == len(stats.launches)
        assert [r.kind for r in rebuilt.launches] == [
            r.kind for r in stats.launches
        ]

    def test_nested_counters_preserved(self):
        workload = get_benchmark("bht", ExecutionMode.DTBL, 0.08)
        stats = workload.execute(latency_scale=0.25).stats
        rebuilt = SimStats.from_dict(json_round_trip(stats.to_dict()))
        assert rebuilt.dram.to_dict() == stats.dram.to_dict()
        assert rebuilt.coalescing.to_dict() == stats.coalescing.to_dict()
        assert (rebuilt.coalescing.histogram == stats.coalescing.histogram).all()
        assert rebuilt.dram.efficiency == stats.dram.efficiency


class TestComponentRoundTrips:
    def test_launch_record_with_nones(self):
        record = LaunchRecord(
            kind=LaunchKind.AGG_GROUP,
            kernel_name="child",
            launch_cycle=10,
            total_blocks=4,
            total_threads=128,
            param_bytes=64,
            record_bytes=256,
            first_exec_cycle=None,
            fully_distributed_cycle=None,
            completed_cycle=None,
        )
        rebuilt = LaunchRecord.from_dict(json_round_trip(record.to_dict()))
        assert rebuilt == record
        assert rebuilt.waiting_cycles is None

    def test_launch_record_completed(self):
        record = LaunchRecord(
            kind=LaunchKind.DEVICE_KERNEL, kernel_name="k",
            launch_cycle=5, total_blocks=1, total_threads=32,
            first_exec_cycle=40, fully_distributed_cycle=41,
            completed_cycle=99,
        )
        rebuilt = LaunchRecord.from_dict(json_round_trip(record.to_dict()))
        assert rebuilt == record
        assert rebuilt.waiting_cycles == 35

    def test_dram_stats(self):
        stats = DramStats(n_read=10, n_write=4, row_hits=8, row_misses=6,
                          n_activity=50)
        rebuilt = DramStats.from_dict(json_round_trip(stats.to_dict()))
        assert rebuilt == stats
        assert rebuilt.efficiency == stats.efficiency

    def test_coalescing_stats(self):
        stats = CoalescingStats()
        stats.record(lanes=32, transactions=2)
        stats.record(lanes=7, transactions=7)
        rebuilt = CoalescingStats.from_dict(json_round_trip(stats.to_dict()))
        assert rebuilt.to_dict() == stats.to_dict()
        assert rebuilt.average_transactions == stats.average_transactions

    def test_coalescing_histogram_shape_checked(self):
        data = CoalescingStats().to_dict()
        data["histogram"] = [0, 1, 2]
        with pytest.raises(ValueError):
            CoalescingStats.from_dict(data)


class TestSanitizerReportRoundTrip:
    def _finding(self, kind="data-race", pc=7):
        return SanitizerFinding(
            kind=kind, cycle=123, smx=2, kernel="bfs_child", pc=pc,
            address=4096, lanes=(0, 3, 31), detail="conflicting store",
        )

    def test_empty_report(self):
        report = SanitizerReport()
        rebuilt = SanitizerReport.from_dict(json_round_trip(report.to_dict()))
        assert rebuilt.clean
        assert rebuilt.to_dict() == report.to_dict()

    def test_report_with_findings(self):
        report = SanitizerReport(max_records=8)
        report.add(self._finding())
        report.add(self._finding())  # same site: counted, not re-recorded
        report.add(self._finding(kind="oob", pc=9))
        rebuilt = SanitizerReport.from_dict(json_round_trip(report.to_dict()))
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.counts == {"data-race": 2, "oob": 1}
        assert len(rebuilt.findings) == 2
        assert rebuilt.findings[0] == report.findings[0]
        assert not rebuilt.clean
        assert rebuilt.total() == 3

    def test_site_dedup_survives_round_trip(self):
        report = SanitizerReport()
        report.add(self._finding())
        rebuilt = SanitizerReport.from_dict(json_round_trip(report.to_dict()))
        rebuilt.add(self._finding())  # same site again
        assert len(rebuilt.findings) == 1
        assert rebuilt.counts["data-race"] == 2

    def test_sanitized_run_report_round_trips(self):
        """A real sanitized simulation's report serializes exactly."""
        config = GPUConfig(sanitize=True)
        workload = get_benchmark("bfs_citation", ExecutionMode.DTBL, 0.08)
        result = workload.execute(config=config, latency_scale=0.25)
        assert result.sanitizer is not None
        assert result.sanitizer.clean
        rebuilt = SanitizerReport.from_dict(
            json_round_trip(result.sanitizer.to_dict())
        )
        assert rebuilt.to_dict() == result.sanitizer.to_dict()

    def test_unsanitized_run_has_no_report(self):
        workload = get_benchmark("bfs_citation", ExecutionMode.FLAT, 0.08)
        result = workload.execute(latency_scale=0.25)
        assert result.sanitizer is None
