"""Atomics and block barriers under contention."""

import numpy as np

from repro import KernelBuilder, KernelFunction

from tests.helpers import make_device, reduce_kernel


def launch_single(func, params, grid, block):
    dev = make_device()
    dev.register(func)
    dev.launch(func.name, grid=grid, block=block, params=params)
    dev.synchronize()
    return dev


class TestAtomics:
    def test_atom_add_counts_all_threads(self):
        k = KernelBuilder("count")
        param = k.param()
        out = k.ld(param, offset=0)
        k.atom_add(out, 1)
        k.exit()
        func = KernelFunction("count", k.build())
        dev = make_device()
        dev.register(func)
        out = dev.alloc(1)
        dev.launch("count", grid=5, block=96, params=[out])
        dev.synchronize()
        assert dev.read_int(out) == 5 * 96

    def test_atom_add_returns_unique_slots(self):
        # Classic queue-append: each thread reserves a unique index.
        k = KernelBuilder("reserve")
        gtid = k.gtid()
        param = k.param()
        counter = k.ld(param, offset=0)
        slots = k.ld(param, offset=1)
        idx = k.atom_add(counter, 1)
        k.st(k.iadd(slots, idx), gtid)
        k.exit()
        func = KernelFunction("reserve", k.build())
        dev = make_device()
        dev.register(func)
        n = 4 * 64
        counter = dev.alloc(1)
        slots = dev.alloc(n)
        dev.launch("reserve", grid=4, block=64, params=[counter, slots])
        dev.synchronize()
        assert dev.read_int(counter) == n
        got = np.sort(dev.download_ints(slots, n))
        np.testing.assert_array_equal(got, np.arange(n))

    def test_atom_min_max(self):
        k = KernelBuilder("minmax")
        gtid = k.gtid()
        param = k.param()
        lo = k.ld(param, offset=0)
        hi = k.ld(param, offset=1)
        k.atom_min(lo, gtid)
        k.atom_max(hi, gtid)
        k.exit()
        func = KernelFunction("minmax", k.build())
        dev = make_device()
        dev.register(func)
        lo = dev.alloc(1)
        hi = dev.alloc(1)
        dev.write_int(lo, 1 << 40)
        dev.write_int(hi, -1)
        dev.launch("minmax", grid=3, block=64, params=[lo, hi])
        dev.synchronize()
        assert dev.read_int(lo) == 0
        assert dev.read_int(hi) == 3 * 64 - 1

    def test_atom_cas_claims_once(self):
        # All threads CAS 0->1 on one flag and count successful claims.
        k = KernelBuilder("cas")
        param = k.param()
        flag = k.ld(param, offset=0)
        winners = k.ld(param, offset=1)
        old = k.atom_cas(flag, 0, 1)
        with k.if_(k.eq(old, 0)):
            k.atom_add(winners, 1)
        k.exit()
        func = KernelFunction("cas", k.build())
        dev = make_device()
        dev.register(func)
        flag = dev.alloc(1)
        winners = dev.alloc(1)
        dev.launch("cas", grid=4, block=128, params=[flag, winners])
        dev.synchronize()
        assert dev.read_int(flag) == 1
        assert dev.read_int(winners) == 1

    def test_atom_exch_and_or(self):
        k = KernelBuilder("exor")
        gtid = k.gtid()
        param = k.param()
        bits = k.ld(param, offset=0)
        last = k.ld(param, offset=1)
        k.atom_or(bits, k.ishl(1, k.imod(gtid, 60)))
        k.atom_exch(last, gtid)
        k.exit()
        func = KernelFunction("exor", k.build())
        dev = make_device()
        dev.register(func)
        bits = dev.alloc(1)
        last = dev.alloc(1)
        dev.launch("exor", grid=2, block=32, params=[bits, last])
        dev.synchronize()
        assert dev.read_int(bits) == (1 << 60) - 1
        assert 0 <= dev.read_int(last) < 64


class TestBarriers:
    def test_barrier_orders_shared_memory(self):
        # Stage 1: thread t writes shared[t]; barrier; stage 2: thread t
        # reads shared[t^1] — correct only if the barrier is honoured.
        k = KernelBuilder("barrier")
        tid = k.tid()
        param = k.param()
        out = k.ld(param, offset=0)
        k.sts(tid, k.imul(tid, 3))
        k.bar()
        partner = k.ixor(tid, 1)
        value = k.lds(partner)
        k.st(k.iadd(out, k.iadd(k.imul(k.ctaid(), k.ntid()), tid)), value)
        k.exit()
        func = KernelFunction("barrier", k.build(), shared_words=256)
        dev = make_device()
        dev.register(func)
        block = 128
        out = dev.alloc(2 * block)
        dev.launch("barrier", grid=2, block=block, params=[out])
        dev.synchronize()
        got = dev.download_ints(out, 2 * block)
        tids = np.tile(np.arange(block), 2)
        np.testing.assert_array_equal(got, (tids ^ 1) * 3)

    def test_multi_barrier_rounds(self):
        # Iterative doubling in shared memory with a barrier between rounds.
        k = KernelBuilder("scan")
        tid = k.tid()
        param = k.param()
        out = k.ld(param, offset=0)
        k.sts(tid, 1)
        k.bar()
        for stride in (1, 2, 4, 8, 16, 32):
            val = k.lds(tid)
            prev_idx = k.isub(tid, stride)
            with k.if_(k.ge(prev_idx, 0)):
                prev = k.lds(prev_idx)
                k.iadd(val, prev, dst=val)
            k.bar()
            k.sts(tid, val)
            k.bar()
        k.st(k.iadd(out, tid), k.lds(tid))
        k.exit()
        func = KernelFunction("scan", k.build(), shared_words=64)
        dev = make_device()
        dev.register(func)
        out = dev.alloc(64)
        dev.launch("scan", grid=1, block=64, params=[out])
        dev.synchronize()
        got = dev.download_ints(out, 64)
        np.testing.assert_array_equal(got, np.arange(1, 65))  # inclusive scan of ones


class TestReduceHelper:
    def test_reduce_kernel(self):
        func = reduce_kernel()
        dev = make_device()
        dev.register(func)
        data = np.arange(500)
        src = dev.upload(data)
        out = dev.alloc(1)
        dev.launch(func.name, grid=4, block=128, params=[500, src, out])
        dev.synchronize()
        assert dev.read_int(out) == data.sum()
