"""Concurrent kernel execution (Section 2.3) and occupancy accounting."""

import numpy as np

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction


def spin_kernel(name: str, iters: int) -> KernelFunction:
    """Busy kernel: every thread loops ``iters`` times, then bumps out[0]."""
    k = KernelBuilder(name)
    param = k.param()
    out = k.ld(param, offset=0)
    acc = k.mov(0)
    with k.for_range(0, iters) as i:
        k.iadd(acc, i, dst=acc)
    tid = k.tid()
    with k.if_(k.eq(tid, 0)):
        k.atom_add(out, 1)
    k.exit()
    return KernelFunction(name, k.build())


class TestConcurrentKernels:
    def test_independent_streams_overlap(self):
        # Two kernels in different streams must overlap: their combined
        # runtime is well below twice a single kernel's runtime.
        def run(kernel_count: int) -> int:
            dev = Device()
            dev.register(spin_kernel("spin", 600))
            out = dev.alloc(1)
            for i in range(kernel_count):
                dev.launch("spin", grid=4, block=128, params=[out], stream=i)
            stats = dev.synchronize()
            assert dev.read_int(out) == 4 * kernel_count
            return stats.cycles

        one = run(1)
        four = run(4)
        assert four < 2.5 * one  # 4 kernels in ~the time of <2.5

    def test_same_stream_does_not_overlap(self):
        def run(stream_ids) -> int:
            dev = Device()
            dev.register(spin_kernel("spin", 600))
            out = dev.alloc(1)
            for stream in stream_ids:
                dev.launch("spin", grid=4, block=128, params=[out], stream=stream)
            return dev.synchronize().cycles

        serialized = run([0, 0, 0])
        overlapped = run([0, 1, 2])
        assert overlapped < serialized

    def test_blocks_of_different_kernels_share_an_smx(self):
        # A 1-SMX GPU running two small kernels concurrently: both finish,
        # which requires co-residency of their blocks.
        config = GPUConfig(
            num_smx=1,
            max_resident_blocks=8,
            max_resident_threads=512,
            registers_per_smx=65536,
            agt_entries=64,
        )
        dev = Device(config=config)
        dev.register(spin_kernel("a", 100))
        dev.register(spin_kernel("b", 100))
        out_a = dev.alloc(1)
        out_b = dev.alloc(1)
        dev.launch("a", grid=2, block=64, params=[out_a], stream=0)
        dev.launch("b", grid=2, block=64, params=[out_b], stream=1)
        dev.synchronize()
        assert dev.read_int(out_a) == 2
        assert dev.read_int(out_b) == 2

    def test_occupancy_tracks_resident_warps(self):
        dev = Device()
        dev.register(spin_kernel("spin", 400))
        out = dev.alloc(1)
        dev.launch("spin", grid=26, block=256, params=[out])
        stats = dev.synchronize()
        assert stats.smx_occupancy_pct > 1.0
        assert stats.smx_occupancy_pct <= 100.0

    def test_more_blocks_than_capacity_drain_in_waves(self):
        # 13 SMXs x 16 blocks = 208 resident max; launch 400 blocks.
        dev = Device()
        dev.register(spin_kernel("spin", 50))
        out = dev.alloc(1)
        dev.launch("spin", grid=400, block=64, params=[out])
        dev.synchronize()
        assert dev.read_int(out) == 400
        assert dev.stats.blocks_completed == 400
