"""PDOM reconvergence stress: deep nesting and pathological masks."""

import numpy as np

from repro import KernelBuilder, KernelFunction

from tests.helpers import make_device, map_kernel, run_map_kernel


class TestDeepNesting:
    def test_six_level_nested_ifs(self):
        # Each level splits the surviving lanes by one more bit.
        def body(k, v):
            acc = k.mov(0)

            def nest(level):
                if level == 6:
                    k.iadd(acc, 1, dst=acc)
                    return
                bit = k.iand(k.ishr(v, level), 1)
                with k.if_(k.eq(bit, 1)):
                    nest(level + 1)

            nest(0)
            return acc

        func = map_kernel("deep", body)
        data = np.arange(64)
        out = run_map_kernel(func, data)
        expected = (data & 63) == 63  # all six low bits set
        np.testing.assert_array_equal(out, expected.astype(int))

    def test_loop_inside_loop_with_divergent_bounds(self):
        def body(k, v):
            acc = k.mov(0)
            outer = k.imod(v, 5)
            with k.for_range(0, outer) as i:
                inner = k.imod(k.iadd(v, i), 4)
                with k.for_range(0, inner) as j:
                    k.iadd(acc, k.imul(i, j), dst=acc)
            return acc

        func = map_kernel("loops2", body)
        data = np.arange(96)
        out = run_map_kernel(func, data)
        expected = []
        for v in data:
            total = 0
            for i in range(v % 5):
                for j in range((v + i) % 4):
                    total += i * j
            expected.append(total)
        np.testing.assert_array_equal(out, expected)

    def test_single_lane_survives_to_depth(self):
        # Divergence down to one active lane, then heavy work, then full
        # reconvergence: the post-join instruction must see all 32 lanes.
        k = KernelBuilder("lone")
        tid = k.tid()
        param = k.param()
        out = k.ld(param, offset=0)
        with k.if_(k.eq(tid, 17)):
            with k.for_range(0, 50) as i:
                k.atom_add(out, 1)
        k.atom_add(k.iadd(out, 1), 1)  # everyone, post-reconvergence
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("lone", k.build()))
        out = dev.alloc(2)
        dev.launch("lone", grid=1, block=32, params=[out])
        dev.synchronize()
        assert dev.read_int(out) == 50
        assert dev.read_int(out + 1) == 32

    def test_alternating_if_else_ladder(self):
        def body(k, v):
            acc = k.mov(0)
            for bit in range(4):
                k.if_else(
                    k.eq(k.iand(k.ishr(v, bit), 1), 1),
                    lambda b=bit: k.iadd(acc, 1 << b, dst=acc),
                    lambda b=bit: k.isub(acc, 1 << b, dst=acc),
                )
            return acc

        func = map_kernel("ladder", body)
        data = np.arange(48)
        out = run_map_kernel(func, data)
        expected = []
        for v in data:
            total = 0
            for bit in range(4):
                total += (1 << bit) if (v >> bit) & 1 else -(1 << bit)
            expected.append(total)
        np.testing.assert_array_equal(out, expected)

    def test_empty_then_branch(self):
        # An if whose body emits nothing still reconverges correctly.
        def body(k, v):
            with k.if_(k.lt(v, 10)):
                pass
            return k.iadd(v, 1)

        func = map_kernel("empty_if", body)
        data = np.arange(32)
        out = run_map_kernel(func, data)
        np.testing.assert_array_equal(out, data + 1)

    def test_break_like_pattern(self):
        # Emulated break: loop guard anded with a flag lanes clear early.
        def body(k, v):
            acc = k.mov(0)
            go = k.mov(1)
            i = k.mov(0)
            with k.while_(lambda: k.iand(k.lt(i, 20), k.ne(go, 0))):
                k.iadd(acc, i, dst=acc)
                with k.if_(k.ge(acc, v)):
                    k.mov(0, dst=go)  # "break"
                k.iadd(i, 1, dst=i)
            return acc

        func = map_kernel("brk", body)
        data = (np.arange(64) * 3) % 50
        out = run_map_kernel(func, data)
        expected = []
        for v in data:
            acc = 0
            for i in range(20):
                acc += i
                if acc >= v:
                    break
            expected.append(acc)
        np.testing.assert_array_equal(out, expected)
