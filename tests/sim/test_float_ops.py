"""Floating-point ISA coverage: ALU ops, memory views, conversions."""

import numpy as np
import pytest

from repro import Device, KernelBuilder, KernelFunction

from tests.helpers import make_device


def run_float_map(body, data: np.ndarray) -> np.ndarray:
    """out[i] = body(k, f[i]) over a float64 array."""
    k = KernelBuilder("fmap")
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, n)):
        src = k.ld(param, offset=1)
        dst = k.ld(param, offset=2)
        value = k.fld(k.iadd(src, gtid))
        result = body(k, value)
        k.fst(k.iadd(dst, gtid), result)
    k.exit()
    func = KernelFunction("fmap", k.build())
    dev = make_device()
    dev.register(func)
    arr = np.asarray(data, dtype=np.float64)
    src = dev.upload(arr)
    dst = dev.alloc(len(arr))
    dev.launch("fmap", grid=(len(arr) + 63) // 64, block=64, params=[len(arr), src, dst])
    dev.synchronize()
    return dev.download_floats(dst, len(arr))


class TestFloatAlu:
    def setup_method(self):
        self.data = np.linspace(-4.0, 4.0, 40)

    def test_fadd_fsub(self):
        out = run_float_map(lambda k, v: k.fsub(k.fadd(v, 1.5), 0.25), self.data)
        np.testing.assert_allclose(out, self.data + 1.25)

    def test_fmul_fdiv(self):
        out = run_float_map(lambda k, v: k.fdiv(k.fmul(v, 6.0), 3.0), self.data)
        np.testing.assert_allclose(out, self.data * 2.0)

    def test_fmin_fmax_clamp(self):
        out = run_float_map(lambda k, v: k.fmin(k.fmax(v, -1.0), 1.0), self.data)
        np.testing.assert_allclose(out, np.clip(self.data, -1.0, 1.0))

    def test_fneg_fabs(self):
        out = run_float_map(lambda k, v: k.fneg(k.fabs(v)), self.data)
        np.testing.assert_allclose(out, -np.abs(self.data))

    def test_fsqrt_of_abs(self):
        out = run_float_map(lambda k, v: k.fsqrt(v), self.data)
        np.testing.assert_allclose(out, np.sqrt(np.abs(self.data)))

    def test_fmov_identity(self):
        out = run_float_map(lambda k, v: k.fmov(v), self.data)
        np.testing.assert_allclose(out, self.data)

    def test_fdiv_by_zero_guarded(self):
        out = run_float_map(lambda k, v: k.fdiv(v, 0.0), self.data)
        # The simulator guards division by zero (divisor treated as 1).
        np.testing.assert_allclose(out, self.data)


class TestConversions:
    def test_itof_ftoi_truncates(self):
        data = np.array([0.0, 1.9, -1.9, 2.5, 1e6 + 0.7])
        out = run_float_map(lambda k, v: k.itof(k.ftoi(v)), data)
        np.testing.assert_allclose(out, np.trunc(data))

    def test_int_regs_promote_in_float_context(self):
        def body(k, v):
            i = k.ftoi(v)
            return k.fadd(i, 0.5)  # int reg read through the float path

        out = run_float_map(body, np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(out, [1.5, 2.5, 3.5])


class TestFloatCompare:
    def test_flt_fge(self):
        k = KernelBuilder("fcmp")
        gtid = k.gtid()
        param = k.param()
        n = k.ld(param, offset=0)
        with k.if_(k.lt(gtid, n)):
            src = k.ld(param, offset=1)
            dst = k.ld(param, offset=2)
            v = k.fld(k.iadd(src, gtid))
            below = k.flt_(v, 0.0)
            above = k.fge_(v, 2.0)
            k.st(k.iadd(dst, gtid), k.iadd(k.imul(below, 10), above))
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("fcmp", k.build()))
        data = np.array([-1.0, 0.0, 1.0, 2.0, 3.0])
        src = dev.upload(data)
        dst = dev.alloc(5)
        dev.launch("fcmp", grid=1, block=32, params=[5, src, dst])
        dev.synchronize()
        np.testing.assert_array_equal(dev.download_ints(dst, 5), [10, 0, 0, 1, 1])
