"""Timeline sampling of machine state."""

import numpy as np
import pytest

from repro import Device, ExecutionMode
from repro.sim.timeline import TimelineSampler
from repro.workloads.bfs import BfsWorkload
from repro.workloads.datasets.graphs import citation_network

from tests.helpers import make_device, map_kernel


def run_sampled(interval=200):
    func = map_kernel("tl", lambda k, v: k.imul(v, 3))
    dev = make_device()
    sampler = TimelineSampler(dev.gpu, interval=interval)
    dev.attach_tracer(sampler)
    dev.register(func)
    n = 2000
    src = dev.upload(np.arange(n))
    dst = dev.alloc(n)
    dev.launch("tl", grid=16, block=128, params=[n, src, dst])
    dev.synchronize()
    return sampler


class TestSampler:
    def test_samples_collected_in_order(self):
        sampler = run_sampled()
        assert len(sampler.samples) >= 2
        cycles = sampler.series("cycle")
        assert cycles == sorted(cycles)

    def test_interval_respected(self):
        sampler = run_sampled(interval=300)
        cycles = sampler.series("cycle")
        assert all(b - a >= 300 for a, b in zip(cycles, cycles[1:]))

    def test_resident_warps_positive_mid_run(self):
        sampler = run_sampled()
        assert sampler.peak("resident_warps") > 0
        assert sampler.peak("kde_occupied") >= 1

    def test_invalid_interval(self):
        dev = make_device()
        with pytest.raises(ValueError):
            TimelineSampler(dev.gpu, interval=0)

    def test_resample_and_sparkline(self):
        sampler = run_sampled(interval=100)
        series = sampler.resample("resident_warps", buckets=10)
        assert len(series) == 10
        spark = sampler.sparkline("resident_warps", buckets=10)
        assert len(spark) == 10

    def test_empty_sampler(self):
        dev = make_device()
        sampler = TimelineSampler(dev.gpu)
        assert sampler.resample("resident_warps") == []
        assert sampler.sparkline("resident_warps") == ""
        assert sampler.peak("cycle") == 0


class TestDtblTimeline:
    def test_agt_occupancy_visible_during_dtbl_run(self):
        graph = citation_network(n=400, attach=5)
        workload = BfsWorkload("bfs_tl", ExecutionMode.DTBL_IDEAL, graph)
        device = Device(
            mode=ExecutionMode.DTBL_IDEAL,
            latency=ExecutionMode.DTBL_IDEAL.latency_model(),
        )
        sampler = TimelineSampler(device.gpu, interval=50)
        device.attach_tracer(sampler)
        for func in workload.build_kernels():
            device.register(func)
        workload.setup(device)
        workload.run(device)
        device.synchronize()
        workload.check(device)
        assert sampler.peak("agt_occupied") >= 1
