"""SIMT / PDOM reconvergence behaviour and warp-activity accounting."""

import numpy as np

from repro import ExecutionMode, GPUConfig, KernelBuilder, KernelFunction

from tests.helpers import make_device, map_kernel, run_map_kernel


def run_and_stats(func, data, block=64):
    dev = make_device()
    dev.register(func)
    n = len(data)
    src = dev.upload(np.asarray(data, dtype=np.int64))
    dst = dev.alloc(n)
    dev.launch(func.name, grid=(n + block - 1) // block, block=block, params=[n, src, dst])
    stats = dev.synchronize()
    return dev.download_ints(dst, n), stats


class TestReconvergence:
    def test_divergent_if_reconverges(self):
        # Half the lanes take the branch; all must write the epilogue value.
        def body(k, v):
            out = k.mov(1000)
            with k.if_(k.lt(k.imod(v, 2), 1)):
                k.iadd(out, 1, dst=out)
            k.iadd(out, 10, dst=out)  # post-reconvergence: everyone
            return out

        func = map_kernel("div_if", body)
        data = np.arange(64)
        out, _ = run_and_stats(func, data)
        expected = np.where(data % 2 == 0, 1011, 1010)
        np.testing.assert_array_equal(out, expected)

    def test_uniform_branch_no_divergence_cost(self):
        # A branch all lanes take together must not reduce warp activity.
        def body(k, v):
            out = k.mov(0)
            with k.if_(k.ge(v, 0)):  # always true
                k.iadd(out, 5, dst=out)
            return out

        func = map_kernel("uni", body)
        data = np.arange(64)
        out, stats = run_and_stats(func, data)
        np.testing.assert_array_equal(out, np.full(64, 5))
        assert stats.warp_activity_pct == 100.0

    def test_divergence_lowers_warp_activity(self):
        # Per-lane loop trip counts 0..31 serialize heavily.
        def body(k, v):
            acc = k.mov(0)
            with k.for_range(0, v) as i:
                k.iadd(acc, i, dst=acc)
            return acc

        func = map_kernel("ramp", body)
        data = np.arange(64) % 32
        out, stats = run_and_stats(func, data)
        expected = np.array([v * (v - 1) // 2 for v in data])
        np.testing.assert_array_equal(out, expected)
        assert stats.warp_activity_pct < 75.0

    def test_three_level_nesting(self):
        def body(k, v):
            acc = k.mov(0)
            with k.if_(k.gt(v, 2)):
                with k.for_range(0, 3) as i:
                    with k.if_(k.eq(k.imod(k.iadd(v, i), 2), 0)):
                        k.iadd(acc, 1, dst=acc)
            return acc

        func = map_kernel("nest3", body)
        data = np.arange(48)
        out, _ = run_and_stats(func, data)
        expected = np.array(
            [sum((v + i) % 2 == 0 for i in range(3)) if v > 2 else 0 for v in data]
        )
        np.testing.assert_array_equal(out, expected)

    def test_partial_warp_tail_block(self):
        # n not a multiple of block size: tail lanes must stay inactive.
        func = map_kernel("tail", lambda k, v: k.iadd(v, 1))
        data = np.arange(100)  # grid 2 x block 64, last block half empty
        out, _ = run_and_stats(func, data, block=64)
        np.testing.assert_array_equal(out, data + 1)

    def test_while_loop_all_lanes_zero_trips(self):
        def body(k, v):
            acc = k.mov(7)
            i = k.mov(10)
            with k.while_(lambda: k.lt(i, 0)):
                k.iadd(acc, 1, dst=acc)
            return acc

        func = map_kernel("zerotrip", body)
        out, _ = run_and_stats(func, np.arange(32))
        np.testing.assert_array_equal(out, np.full(32, 7))


class TestBranchCounters:
    def test_uniform_branches_counted(self):
        func = map_kernel("u", lambda k, v: k.selp(k.ge(v, 0), v, 0))
        _, stats = run_and_stats(func, np.arange(64))
        assert stats.branches_diverged == 0
        assert stats.branches_uniform > 0
        assert stats.branch_divergence_rate == 0.0

    def test_divergent_branches_counted(self):
        def body(k, v):
            out = k.mov(0)
            with k.if_(k.lt(k.imod(v, 2), 1)):
                k.iadd(out, 1, dst=out)
            return out

        func = map_kernel("d", body)
        _, stats = run_and_stats(func, np.arange(64))
        assert stats.branches_diverged >= 2  # one per warp at least
        assert 0.0 < stats.branch_divergence_rate <= 1.0


class TestWarpActivityMetric:
    def test_activity_between_0_and_100(self):
        func = map_kernel("id", lambda k, v: k.mov(v))
        _, stats = run_and_stats(func, np.arange(96))
        assert 0.0 < stats.warp_activity_pct <= 100.0

    def test_balanced_beats_imbalanced(self):
        def loop_body(k, v):
            acc = k.mov(0)
            with k.for_range(0, v) as i:
                k.iadd(acc, i, dst=acc)
            return acc

        balanced = map_kernel("bal", loop_body)
        imbalanced = map_kernel("imb", loop_body)

        flat = np.full(64, 16)  # every lane loops 16x
        _, s_bal = run_and_stats(balanced, flat)

        skew = np.zeros(64, dtype=int)  # one lane per warp loops 512x
        skew[::32] = 512
        _, s_imb = run_and_stats(imbalanced, skew)

        assert s_bal.warp_activity_pct > s_imb.warp_activity_pct
