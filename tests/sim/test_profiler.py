"""Unit tests for the hot-path profiler (``--profile``)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import Device, GPUConfig, KernelBuilder, KernelFunction
from repro.config import WARP_SIZE
from repro.sim import HotPathProfiler
from repro.sim import profiler as profiler_mod


def _kernel() -> KernelFunction:
    k = KernelBuilder("prof")
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    src = k.ld(param, offset=1)
    dst = k.ld(param, offset=2)
    a = k.imul(gtid, 3)
    b = k.iadd(a, 7)
    c = k.ixor(b, gtid)
    with k.if_(k.lt(gtid, n)):
        k.st(k.iadd(dst, gtid), k.iadd(c, k.ld(k.iadd(src, gtid))))
    k.exit()
    return KernelFunction("prof", k.build())


def _run(profiler, fast=True, fake_clock=False):
    if fake_clock:
        profiler._clock = iter(range(10**6)).__next__
    config = dataclasses.replace(GPUConfig.small(), core=("fast" if fast else "reference"))
    dev = Device(config=config)
    dev.attach_tracer(profiler)
    dev.register(_kernel())
    n = 300
    data = dev.upload(np.arange(n, dtype=np.int64))
    out = dev.alloc(n)
    dev.launch("prof", grid=5, block=64, params=[n, data, out])
    dev.synchronize()
    return dev.stats, out.download()


class TestHotPathProfiler:
    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "reference"])
    def test_totals_match_simstats(self, fast):
        prof = HotPathProfiler()
        stats, _ = _run(prof, fast=fast)
        assert prof.total_issues == stats.issued_instructions
        assert prof.total_lanes == stats.active_lane_sum
        assert sum(c.issues for c in prof.opcodes.values()) == prof.total_issues

    def test_fused_issues_expand_to_member_opcodes(self):
        prof = HotPathProfiler()
        _run(prof, fast=True)
        assert prof.fused_executions > 0
        assert prof.fused_instructions == sum(
            r.executions * r.length for r in prof.regions.values()
        )
        assert prof.fused_instructions == sum(
            c.fused_issues for c in prof.opcodes.values()
        )
        for (kernel, start), cost in prof.regions.items():
            assert kernel == "prof"
            assert cost.length == len(cost.ops) >= 2

    def test_profiling_does_not_change_results_or_stats(self):
        prof = HotPathProfiler()
        stats_prof, out_prof = _run(prof, fast=True)
        stats_plain, out_plain = _run_plain()
        assert stats_prof.cycles == stats_plain.cycles
        assert stats_prof.issued_instructions == stats_plain.issued_instructions
        np.testing.assert_array_equal(out_prof, out_plain)

    def test_host_time_attribution_accumulates(self):
        prof = HotPathProfiler()
        _run(prof, fast=True, fake_clock=True)
        total = sum(c.host_seconds for c in prof.opcodes.values()) + sum(
            c.host_seconds for c in prof.regions.values()
        )
        # The fake clock advances 1s per callback; all but the last tick
        # must be attributed somewhere.
        assert total > 0

    def test_to_dict_and_report_are_consistent(self):
        prof = HotPathProfiler()
        _run(prof, fast=True)
        doc = prof.to_dict()
        assert doc["total_issues"] == prof.total_issues
        assert sum(e["issues"] for e in doc["opcodes"].values()) == doc["total_issues"]
        assert doc["fused_instructions"] == sum(
            r["executions"] * r["length"] for r in doc["regions"]
        )
        text = prof.report()
        assert "hot-path profile" in text
        assert "fused regions" in text


def _run_plain():
    config = dataclasses.replace(GPUConfig.small(), core="fast")
    dev = Device(config=config)
    dev.register(_kernel())
    n = 300
    data = dev.upload(np.arange(n, dtype=np.int64))
    out = dev.alloc(n)
    dev.launch("prof", grid=5, block=64, params=[n, data, out])
    dev.synchronize()
    return dev.stats, out.download()


class TestGlobalActivation:
    def test_activate_installs_on_new_gpus(self):
        prof = profiler_mod.activate()
        try:
            config = dataclasses.replace(GPUConfig.small(), core="fast")
            dev = Device(config=config)
            dev.register(_kernel())
            n = 100
            data = dev.upload(np.arange(n, dtype=np.int64))
            out = dev.alloc(n)
            dev.launch("prof", grid=2, block=64, params=[n, data, out])
            dev.synchronize()
        finally:
            profiler_mod.deactivate()
        assert prof.total_issues == dev.stats.issued_instructions
        assert profiler_mod.active_profiler() is None

    def test_deactivated_gpus_have_no_tracer(self):
        config = dataclasses.replace(GPUConfig.small(), core="fast")
        dev = Device(config=config)
        assert dev.gpu.tracer is None
