"""Statistics bookkeeping."""

import pytest

from repro.config import GPUConfig
from repro.sim.stats import LaunchKind, LaunchRecord, SimStats


class TestLaunchRecord:
    def test_waiting_cycles(self):
        record = LaunchRecord(LaunchKind.AGG_GROUP, "k", 100, 2, 64)
        assert record.waiting_cycles is None
        record.first_exec_cycle = 180
        assert record.waiting_cycles == 80

    def test_pending_bytes(self):
        record = LaunchRecord(
            LaunchKind.DEVICE_KERNEL, "k", 0, 1, 32, param_bytes=56, record_bytes=2048
        )
        assert record.pending_bytes == 2104


class TestSimStats:
    def setup_method(self):
        self.stats = SimStats(GPUConfig.k20c())

    def test_warp_activity(self):
        self.stats.record_issue(32)
        self.stats.record_issue(16)
        assert self.stats.warp_activity_pct == pytest.approx(75.0)

    def test_warp_activity_empty(self):
        assert self.stats.warp_activity_pct == 0.0

    def test_footprint_peak(self):
        self.stats.add_footprint(100)
        self.stats.add_footprint(200)
        self.stats.release_footprint(150)
        self.stats.add_footprint(50)
        assert self.stats.peak_footprint_bytes == 300
        assert self.stats.footprint_bytes == 200

    def test_occupancy(self):
        cfg = GPUConfig.k20c()
        self.stats.cycles = 100
        full = 100 * cfg.num_smx * cfg.max_resident_warps
        self.stats.resident_warp_cycles = full // 2
        assert self.stats.smx_occupancy_pct == pytest.approx(50.0)

    def test_avg_waiting_ignores_unstarted(self):
        r1 = LaunchRecord(LaunchKind.AGG_GROUP, "k", 0, 1, 32)
        r1.first_exec_cycle = 40
        r2 = LaunchRecord(LaunchKind.AGG_GROUP, "k", 0, 1, 32)  # never ran
        host = LaunchRecord(LaunchKind.HOST_KERNEL, "k", 0, 1, 32)
        host.first_exec_cycle = 1000
        self.stats.launches.extend([r1, r2, host])
        assert self.stats.avg_waiting_cycles == 40.0  # host excluded

    def test_match_rate(self):
        self.stats.agg_matched = 98
        self.stats.agg_unmatched = 2
        assert self.stats.agg_match_rate == pytest.approx(0.98)

    def test_launches_by_kernel(self):
        host = LaunchRecord(LaunchKind.HOST_KERNEL, "parent", 0, 4, 512)
        child1 = LaunchRecord(LaunchKind.AGG_GROUP, "child", 10, 2, 64)
        child1.first_exec_cycle = 30
        child2 = LaunchRecord(LaunchKind.DEVICE_KERNEL, "child", 20, 1, 32)
        child2.first_exec_cycle = 60
        self.stats.launches.extend([host, child1, child2])
        rollup = self.stats.launches_by_kernel()
        assert rollup["parent"]["host"] == 1
        assert rollup["child"]["agg"] == 1
        assert rollup["child"]["device"] == 1
        assert rollup["child"]["blocks"] == 3
        assert rollup["child"]["avg_wait"] == pytest.approx(30.0)
        assert rollup["parent"]["avg_wait"] == 0.0

    def test_summary_keys(self):
        summary = self.stats.summary()
        for key in (
            "cycles",
            "warp_activity_pct",
            "dram_efficiency",
            "smx_occupancy_pct",
            "avg_waiting_cycles",
            "peak_footprint_bytes",
            "dynamic_launches",
            "agg_match_rate",
        ):
            assert key in summary
