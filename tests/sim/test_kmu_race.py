"""Regression: KMU dispatch must reserve KDE entries.

Scheduling a dispatch checks for a free Kernel Distributor entry, but the
activation lands ``kernel_dispatch`` cycles later; without reservation a
second dispatch decision made in between could promise the same entry and
over-allocate (this crashed a full-grid run during development).  A tiny
KDE plus a flood of device launches makes the window easy to hit.
"""

import dataclasses

import numpy as np
import pytest

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction


def flood_kernels():
    child = KernelBuilder("child")
    param = child.param()
    out = child.ld(param, offset=0)
    tid = child.tid()
    with child.if_(child.eq(tid, 0)):
        child.atom_add(out, 1)
    child.exit()

    parent = KernelBuilder("parent")
    gtid = parent.gtid()
    p = parent.param()
    out = parent.ld(p, offset=0)
    buf = parent.get_param_buffer(1)
    parent.st(buf, out)
    parent.stream_create()
    parent.launch_device("child", buf, grid=1, block=32)
    parent.exit()
    return KernelFunction("child", child.build()), KernelFunction("parent", parent.build())


class TestKmuReservation:
    @pytest.mark.parametrize("kde_entries", [2, 4, 32])
    def test_flood_never_overallocates(self, kde_entries):
        config = dataclasses.replace(
            GPUConfig.k20c(), max_concurrent_kernels=kde_entries
        )
        dev = Device(config=config, mode=ExecutionMode.CDP)
        child, parent = flood_kernels()
        dev.register(child)
        dev.register(parent)
        out = dev.alloc(1)
        # 128 threads each launch a child: far more pending kernels than
        # KDE entries, with the 283-cycle dispatch latency in play.
        dev.launch("parent", grid=4, block=32, params=[out])
        dev.synchronize()
        assert dev.read_int(out) == 128
        assert dev.stats.kernels_completed == 1 + 128  # parent + children
        assert dev.gpu.distributor.peak_occupied <= kde_entries

    def test_host_and_device_launch_interleaving(self):
        config = dataclasses.replace(GPUConfig.k20c(), max_concurrent_kernels=2)
        dev = Device(config=config, mode=ExecutionMode.CDP)
        child, parent = flood_kernels()
        dev.register(child)
        dev.register(parent)
        out = dev.alloc(1)
        for stream in range(6):
            dev.launch("parent", grid=1, block=32, params=[out], stream=stream)
        dev.synchronize()
        assert dev.read_int(out) == 192  # 6 blocks x 32 launching threads
