"""2D/3D launch geometry: tid/ctaid decomposition and coverage."""

import numpy as np
import pytest

from repro import Device, KernelBuilder, KernelFunction
from repro.isa import Special

from tests.helpers import make_device


def coords_kernel() -> KernelFunction:
    """Writes flat_id = f(tid, ctaid) into out so the host can check the
    full 3D decomposition."""
    k = KernelBuilder("coords")
    param = k.param()
    out = k.ld(param, offset=0)
    tx = k.special(Special.TID_X)
    ty = k.special(Special.TID_Y)
    tz = k.special(Special.TID_Z)
    nx = k.special(Special.NTID_X)
    ny = k.special(Special.NTID_Y)
    cx = k.special(Special.CTAID_X)
    cy = k.special(Special.CTAID_Y)
    cz = k.special(Special.CTAID_Z)
    gx = k.special(Special.NCTAID_X)
    gy = k.special(Special.NCTAID_Y)
    # linear thread id within block
    tlin = k.iadd(tx, k.imul(nx, k.iadd(ty, k.imul(ny, tz))))
    # linear block id within grid
    block = k.iadd(cx, k.imul(gx, k.iadd(cy, k.imul(gy, cz))))
    nz = k.special(Special.NTID_Z)
    threads_per_block = k.imul(nx, k.imul(ny, nz))
    flat = k.iadd(tlin, k.imul(block, threads_per_block))
    k.st(k.iadd(out, flat), k.iadd(flat, 1000))
    k.exit()
    return KernelFunction("coords", k.build())


class TestGeometry:
    @pytest.mark.parametrize(
        "grid,block",
        [
            ((2, 3), (8, 4)),
            ((2, 2, 2), (4, 4, 2)),
            (5, 64),
            ((1, 1, 4), (32, 1, 2)),
        ],
    )
    def test_every_thread_covered_exactly_once(self, grid, block):
        dev = make_device()
        dev.register(coords_kernel())

        def total(dims):
            if isinstance(dims, int):
                return dims
            result = 1
            for d in dims:
                result *= d
            return result

        n = total(grid) * total(block)
        out = dev.alloc(n)
        dev.launch("coords", grid=grid, block=block, params=[out])
        dev.synchronize()
        got = dev.download_ints(out, n)
        np.testing.assert_array_equal(got, np.arange(n) + 1000)

    def test_gtid_matches_manual_flattening_1d(self):
        k = KernelBuilder("g")
        param = k.param()
        out = k.ld(param, offset=0)
        gtid = k.gtid()
        manual = k.iadd(k.tid(), k.imul(k.ctaid(), k.ntid()))
        k.st(k.iadd(out, gtid), k.isub(gtid, manual))
        k.exit()
        dev = make_device()
        dev.register(KernelFunction("g", k.build()))
        out = dev.alloc(256)
        dev.launch("g", grid=4, block=64, params=[out])
        dev.synchronize()
        assert (dev.download_ints(out, 256) == 0).all()

    def test_non_warp_multiple_block(self):
        # 2D block of 6x7 = 42 threads: 2 warps, second mostly inactive.
        dev = make_device()
        dev.register(coords_kernel())
        n = 2 * 42
        out = dev.alloc(n)
        dev.launch("coords", grid=2, block=(6, 7), params=[out])
        dev.synchronize()
        np.testing.assert_array_equal(dev.download_ints(out, n), np.arange(n) + 1000)


class TestGeometryCache:
    """The warp-geometry memo must stay bounded (LRU) and correct."""

    def test_cache_is_bounded_lru(self):
        from repro.sim import fast_warp

        fast_warp._GEOM_CACHE.clear()
        limit = fast_warp._GEOM_CACHE_LIMIT
        # Insert far more distinct shapes than the cache may hold.
        for bx in range(1, limit + 50):
            fast_warp._geometry(bx, 1, bx, 0)
        assert len(fast_warp._GEOM_CACHE) <= limit
        # The newest keys survive, the oldest were evicted.
        assert (limit + 49, 1, limit + 49, 0) in fast_warp._GEOM_CACHE
        assert (1, 1, 1, 0) not in fast_warp._GEOM_CACHE

    def test_hit_refreshes_recency(self):
        from repro.sim import fast_warp

        fast_warp._GEOM_CACHE.clear()
        limit = fast_warp._GEOM_CACHE_LIMIT
        for bx in range(1, limit + 1):
            fast_warp._geometry(bx, 1, bx, 0)
        # Touch the oldest entry, then overflow by one: the second-oldest
        # must be the eviction victim instead.
        fast_warp._geometry(1, 1, 1, 0)
        fast_warp._geometry(limit + 1, 1, limit + 1, 0)
        assert (1, 1, 1, 0) in fast_warp._GEOM_CACHE
        assert (2, 1, 2, 0) not in fast_warp._GEOM_CACHE

    def test_cached_arrays_are_immutable_and_exact(self):
        from repro.config import WARP_SIZE
        from repro.sim import fast_warp

        fast_warp._GEOM_CACHE.clear()
        a = fast_warp._geometry(6, 7, 42, 1)
        b = fast_warp._geometry(6, 7, 42, 1)
        assert a is b  # shared, not recomputed
        init_mask, tid_x, tid_y, tid_z, clamped, active = a
        assert active == int(init_mask.sum())
        with pytest.raises(ValueError):
            tid_x[0] = 99
        linear = 1 * WARP_SIZE + np.arange(WARP_SIZE)
        np.testing.assert_array_equal(init_mask, linear < 42)
