"""State-dump debugging helpers."""

import numpy as np

from repro import Device, KernelBuilder, KernelFunction
from repro.sim.debug import dump_state, dump_warp

from tests.helpers import make_device


def paused_device():
    """A device stopped mid-flight: launch work but don't run to idle."""
    k = KernelBuilder("spin")
    param = k.param()
    out = k.ld(param, offset=0)
    acc = k.mov(0)
    with k.for_range(0, 2000) as i:
        k.iadd(acc, i, dst=acc)
    k.atom_add(out, acc)
    k.exit()
    dev = make_device()
    dev.register(KernelFunction("spin", k.build()))
    out = dev.alloc(1)
    dev.launch("spin", grid=30, block=128, params=[out])
    # Prime the machine without draining it: run the event loop briefly by
    # stepping the GPU manually for a bounded number of cycles.
    gpu = dev.gpu
    import heapq

    # 283 cycles of KMU dispatch latency precede any execution.
    for _ in range(600):
        while gpu._events and gpu._events[0][0] <= gpu.cycle:
            heapq.heappop(gpu._events)[2](gpu.cycle)
        for smx in gpu.smxs:
            smx.tick(gpu.cycle)
        gpu.cycle += 1
    return dev


class TestDumpState:
    def test_mid_flight_snapshot(self):
        dev = paused_device()
        text = dump_state(dev.gpu)
        assert "Kernel Distributor" in text
        assert "spin" in text
        assert "SMX" in text
        assert "FCFS queue" in text
        assert "AGT" in text

    def test_idle_snapshot(self):
        dev = make_device()
        text = dump_state(dev.gpu)
        assert "0/32 entries" in text
        assert "(empty)" in text

    def test_dump_warp(self):
        dev = paused_device()
        warp = dev.gpu.smxs[0].blocks[0].warps[0]
        text = dump_warp(warp)
        assert "frame[0]" in text
        assert "kernel=spin" in text
