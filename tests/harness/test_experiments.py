"""Experiment generators: structure and static tables."""

import pytest

from repro.harness.experiments import (
    DYNAMIC_MODES,
    Experiment,
    mode_column,
    figure6_warp_activity,
    figure10_memory_footprint,
    figure11_speedup,
    overhead_analysis,
    table2_configuration,
    table3_latency,
    table4_benchmarks,
)
from repro.harness.runner import ALL_MODES, run_grid


@pytest.fixture(scope="module")
def small_grid():
    return run_grid(benchmarks=["bfs_citation", "join_gaussian"], scale=0.12)


class TestStaticTables:
    def test_table2_rows(self):
        exp = table2_configuration()
        assert exp.experiment_id == "Table 2"
        assert len(exp.rows) == 8

    def test_table3_rows(self):
        exp = table3_latency()
        flat_costs = {row[0]: row[1] for row in exp.rows}
        assert flat_costs["Kernel dispatching"] == 283

    def test_table4_lists_all(self):
        exp = table4_benchmarks()
        assert len(exp.rows) == 16

    def test_overhead(self):
        exp = overhead_analysis()
        assert exp.summary["AGT SRAM bytes"] == 20480

    def test_render_includes_paper_values(self):
        text = overhead_analysis().render()
        assert "paper:" in text


class TestGridFigures:
    def test_fig6_structure(self, small_grid):
        exp = figure6_warp_activity(small_grid)
        assert isinstance(exp, Experiment)
        assert {row[0] for row in exp.rows} == {"bfs_citation", "join_gaussian"}
        assert "avg warp-activity gain (DTBL - flat, pp)" in exp.summary

    def test_fig10_structure(self, small_grid):
        exp = figure10_memory_footprint(small_grid)
        for _name, cdp, dtbl, reduction in exp.rows:
            assert cdp >= 0 and dtbl >= 0
            assert reduction == pytest.approx(100.0 * (cdp - dtbl) / cdp, abs=0.1)

    def test_fig11_structure(self, small_grid):
        exp = figure11_speedup(small_grid)
        assert exp.headers == ["benchmark"] + [
            mode_column(mode) for mode in DYNAMIC_MODES
        ]
        assert exp.headers == [
            "benchmark", "CDPI", "DTBLI", "CDP", "DTBL", "CDPA", "CONS",
            "PERSISTENT", "PERSISTENT-ASYNC",
        ]
        for row in exp.rows:
            assert all(value > 0 for value in row[1:])

    def test_all_modes_present(self, small_grid):
        for mode in ALL_MODES:
            assert small_grid.has("bfs_citation", mode)
