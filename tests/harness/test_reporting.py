"""Tests for report formatting helpers."""

import pytest

from repro.harness.reporting import format_table, geomean, mean


class TestFormatTable:
    def test_basic_render(self):
        out = format_table("Title", ["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.500" in out
        assert "x" in out

    def test_alignment(self):
        out = format_table("T", ["col"], [[123456], [1]])
        rows = out.splitlines()[-2:]
        assert len(rows[0]) == len(rows[1])

    def test_note(self):
        out = format_table("T", ["c"], [[1]], note="a footnote")
        assert out.endswith("a footnote")


class TestFormatBars:
    def test_bar_lengths_proportional(self):
        from repro.harness.reporting import format_bars

        out = format_bars("T", ["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 10

    def test_mismatched_lengths_rejected(self):
        from repro.harness.reporting import format_bars

        with pytest.raises(ValueError):
            format_bars("T", ["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        from repro.harness.reporting import format_bars

        assert "1.5x" in format_bars("T", ["a"], [1.5], unit="x")


class TestAggregates:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_geomean_skips_nonpositive(self):
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0
