"""Harness runner: grid orchestration and memoization."""

import pytest

from repro.errors import WorkloadError
from repro.harness.runner import (
    BenchmarkRun,
    GridResults,
    clear_cache,
    run_benchmark,
    run_grid,
)
from repro.runtime import ExecutionMode
from repro.workloads import benchmark_names


SCALE = 0.08  # tiny datasets: the grid tests stay fast


class TestRunBenchmark:
    def test_returns_run(self):
        run = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        assert isinstance(run, BenchmarkRun)
        assert run.cycles > 0
        assert run.wall_seconds >= 0

    def test_memoized(self):
        first = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        second = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        assert first is second

    def test_cache_cleared(self):
        first = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        clear_cache()
        second = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        assert first is not second
        assert first.cycles == second.cycles  # deterministic simulation

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            run_benchmark("nope", ExecutionMode.FLAT)


class TestRunGrid:
    def test_grid_subset(self):
        grid = run_grid(
            benchmarks=["bfs_citation"],
            modes=(ExecutionMode.FLAT, ExecutionMode.DTBL_IDEAL),
            scale=SCALE,
        )
        assert grid.benchmarks() == ["bfs_citation"]
        assert grid.has("bfs_citation", ExecutionMode.FLAT)
        assert grid.has("bfs_citation", ExecutionMode.DTBL_IDEAL)
        assert not grid.has("bfs_citation", ExecutionMode.CDP)

    def test_speedup(self):
        grid = run_grid(
            benchmarks=["bfs_citation"],
            modes=(ExecutionMode.FLAT, ExecutionMode.DTBL_IDEAL),
            scale=SCALE,
        )
        speedup = grid.speedup("bfs_citation", ExecutionMode.DTBL_IDEAL)
        assert speedup > 0

    def test_registry_covers_table4(self):
        names = benchmark_names()
        assert len(names) == 16
        apps = {name.split("_")[0] for name in names}
        assert apps == {"amr", "bht", "bfs", "clr", "regx", "pre", "join", "sssp"}
