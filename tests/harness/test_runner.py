"""Harness runner: grid orchestration, memoization, cache + pool wiring."""

import pytest

from repro.config import GPUConfig
from repro.errors import WorkloadError
from repro.exec import ResultCache, SweepEngine
from repro.harness import runner as runner_module
from repro.harness.runner import (
    BenchmarkRun,
    GridResults,
    clear_cache,
    run_benchmark,
    run_grid,
)
from repro.runtime import ExecutionMode
from repro.workloads import benchmark_names


SCALE = 0.08  # tiny datasets: the grid tests stay fast


class TestRunBenchmark:
    def test_returns_run(self):
        run = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        assert isinstance(run, BenchmarkRun)
        assert run.cycles > 0
        assert run.wall_seconds >= 0

    def test_memoized(self):
        first = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        second = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        assert first is second

    def test_cache_cleared(self):
        first = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        clear_cache()
        second = run_benchmark("bfs_citation", ExecutionMode.FLAT, scale=SCALE)
        assert first is not second
        assert first.cycles == second.cycles  # deterministic simulation

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            run_benchmark("nope", ExecutionMode.FLAT)

    def test_memo_key_includes_latency_scale(self):
        """Grids differing only in latency scale never alias."""
        slow = run_benchmark(
            "bfs_citation", ExecutionMode.CDP, scale=SCALE, latency_scale=0.25
        )
        fast = run_benchmark(
            "bfs_citation", ExecutionMode.CDP, scale=SCALE, latency_scale=0.05
        )
        assert slow is not fast
        assert slow.cycles != fast.cycles

    def test_memo_key_includes_dataset_scale(self):
        small = run_benchmark("bht", ExecutionMode.FLAT, scale=SCALE)
        smaller = run_benchmark("bht", ExecutionMode.FLAT, scale=SCALE / 2)
        assert small is not smaller
        assert small.cycles != smaller.cycles

    def test_none_config_aliases_explicit_default(self):
        """config=None and the default config are one memo entry."""
        implicit = run_benchmark("bht", ExecutionMode.FLAT, scale=SCALE)
        explicit = run_benchmark(
            "bht", ExecutionMode.FLAT, scale=SCALE, config=GPUConfig.k20c()
        )
        assert implicit is explicit

    def test_use_cache_false_bypasses_memo(self):
        first = run_benchmark(
            "bht", ExecutionMode.FLAT, scale=SCALE, use_cache=False
        )
        second = run_benchmark(
            "bht", ExecutionMode.FLAT, scale=SCALE, use_cache=False
        )
        assert first is not second
        assert first.cycles == second.cycles


class TestRunGrid:
    def test_grid_subset(self):
        grid = run_grid(
            benchmarks=["bfs_citation"],
            modes=(ExecutionMode.FLAT, ExecutionMode.DTBL_IDEAL),
            scale=SCALE,
        )
        assert grid.benchmarks() == ["bfs_citation"]
        assert grid.has("bfs_citation", ExecutionMode.FLAT)
        assert grid.has("bfs_citation", ExecutionMode.DTBL_IDEAL)
        assert not grid.has("bfs_citation", ExecutionMode.CDP)

    def test_speedup(self):
        grid = run_grid(
            benchmarks=["bfs_citation"],
            modes=(ExecutionMode.FLAT, ExecutionMode.DTBL_IDEAL),
            scale=SCALE,
        )
        speedup = grid.speedup("bfs_citation", ExecutionMode.DTBL_IDEAL)
        assert speedup > 0

    def test_registry_covers_table4(self):
        names = benchmark_names()
        assert len(names) == 16
        apps = {name.split("_")[0] for name in names}
        assert apps == {"amr", "bht", "bfs", "clr", "regx", "pre", "join", "sssp"}


SUBGRID = dict(
    benchmarks=["bfs_citation", "bht"],
    modes=(ExecutionMode.FLAT, ExecutionMode.DTBL),
    scale=SCALE,
)


def _grid_dicts(grid):
    return {
        (name, mode): grid.get(name, mode).stats.to_dict()
        for name in grid.benchmarks()
        for mode in SUBGRID["modes"]
    }


class TestDiskCache:
    def test_warm_cache_runs_zero_simulations(self, tmp_path, monkeypatch):
        """A warm rerun decodes every cell from disk; nothing simulates."""
        cache = ResultCache(tmp_path / "cache")
        cold = run_grid(cache=cache, **SUBGRID)
        assert cache.stats.stores == 4

        clear_cache()

        def exploding_execute(job):
            raise AssertionError(f"simulated {job.label()} on a warm cache")

        monkeypatch.setattr(runner_module, "run_job", exploding_execute)
        warm_cache = ResultCache(tmp_path / "cache")
        warm = run_grid(cache=warm_cache, **SUBGRID)
        assert warm_cache.stats.hits == 4
        assert warm_cache.stats.misses == 0
        assert _grid_dicts(warm) == _grid_dicts(cold)

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path):
        run_grid(cache=None, **SUBGRID)
        assert list(tmp_path.iterdir()) == []  # nothing was ever written

    def test_cache_off_by_default_in_library(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_benchmark("bht", ExecutionMode.FLAT, scale=SCALE)
        assert list(tmp_path.iterdir()) == []

    def test_memo_miss_disk_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_benchmark(
            "bht", ExecutionMode.FLAT, scale=SCALE, cache=cache,
            use_cache=False,
        )
        second = run_benchmark(
            "bht", ExecutionMode.FLAT, scale=SCALE, cache=cache,
            use_cache=False,
        )
        assert cache.stats.hits == 1
        assert second.stats.to_dict() == first.stats.to_dict()

    def test_undecodable_entry_is_invalidated_and_rerun(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_benchmark(
            "bht", ExecutionMode.FLAT, scale=SCALE, cache=cache,
            use_cache=False,
        )
        # Corrupt the payload structurally (valid JSON, missing stats).
        import json

        (path,) = list((tmp_path / "cache").glob("??/*.json"))
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["payload"] = {"wall_seconds": 1.0}
        path.write_text(json.dumps(entry), encoding="utf-8")
        run = run_benchmark(
            "bht", ExecutionMode.FLAT, scale=SCALE, cache=cache,
            use_cache=False,
        )
        assert cache.stats.invalidated == 1
        assert run.cycles > 0


class TestParallelGrid:
    def test_pool_grid_bit_identical_to_serial(self):
        """--jobs N produces SimStats bit-identical to the serial path."""
        clear_cache()
        serial = run_grid(jobs=1, **SUBGRID)
        clear_cache()
        parallel = run_grid(jobs=4, **SUBGRID)
        assert _grid_dicts(parallel) == _grid_dicts(serial)

    def test_parallel_grid_with_cache_warms_it(self, tmp_path):
        clear_cache()
        cache = ResultCache(tmp_path / "cache")
        run_grid(jobs=2, cache=cache, **SUBGRID)
        assert cache.stats.stores == 4
        clear_cache()
        warm = ResultCache(tmp_path / "cache")
        run_grid(jobs=2, cache=warm, **SUBGRID)
        assert warm.stats.hits == 4
        assert warm.stats.stores == 0

    def test_seeded_worker_crash_retries_without_failing(
        self, tmp_path, monkeypatch
    ):
        """A worker crash mid-grid costs a retry, not the sweep."""
        clear_cache()
        serial = run_grid(jobs=1, **SUBGRID)
        clear_cache()
        monkeypatch.setenv(
            "REPRO_EXEC_TEST_CRASH", str(tmp_path / "crash-sentinel")
        )
        engine = SweepEngine(max_workers=2)
        crashed = run_grid(jobs=2, engine=engine, **SUBGRID)
        assert engine.stats.retries >= 1
        assert _grid_dicts(crashed) == _grid_dicts(serial)

    def test_always_crashing_workers_fall_back_in_process(
        self, monkeypatch
    ):
        """Retry exhaustion degrades to in-process, still completing."""
        clear_cache()
        serial = run_grid(jobs=1, **SUBGRID)
        clear_cache()
        monkeypatch.setenv("REPRO_EXEC_TEST_CRASH", "always")
        engine = SweepEngine(max_workers=2, max_retries=0)
        fallen = run_grid(jobs=2, engine=engine, **SUBGRID)
        assert engine.stats.fallbacks == 4
        assert engine.stats.in_process == 4
        assert _grid_dicts(fallen) == _grid_dicts(serial)
