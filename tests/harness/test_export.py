"""Export of experiment results to CSV / JSON."""

import csv
import json

from repro.harness.experiments import Experiment, table2_configuration
from repro.harness.export import (
    experiment_to_csv,
    experiment_to_dict,
    experiments_to_json,
    write_experiments,
)


def sample_experiment() -> Experiment:
    return Experiment(
        experiment_id="Figure 99",
        title="Sample",
        headers=["benchmark", "value"],
        rows=[["a", 1.5], ["b", 2]],
        summary={"avg": 1.75},
        paper={"avg": 2.0},
        note="a note",
    )


class TestCsv:
    def test_roundtrip(self):
        text = experiment_to_csv(sample_experiment())
        rows = list(csv.reader(text.splitlines()))
        assert rows[0] == ["benchmark", "value"]
        assert rows[1] == ["a", "1.5"]
        assert rows[2] == ["b", "2"]

    def test_real_experiment(self):
        text = experiment_to_csv(table2_configuration())
        assert "706MHz" in text


class TestJson:
    def test_dict_fields(self):
        data = experiment_to_dict(sample_experiment())
        assert data["experiment_id"] == "Figure 99"
        assert data["summary"]["avg"] == 1.75
        assert data["paper"]["avg"] == 2.0

    def test_json_serializable(self):
        text = experiments_to_json([sample_experiment(), table2_configuration()])
        parsed = json.loads(text)
        assert len(parsed) == 2


class TestWriteFiles:
    def test_writes_csv_and_json(self, tmp_path):
        paths = write_experiments([sample_experiment()], tmp_path)
        names = {p.name for p in paths}
        assert "figure_99.csv" in names
        assert "experiments.json" in names
        combined = json.loads((tmp_path / "experiments.json").read_text())
        assert combined[0]["title"] == "Sample"
