"""Tests for the warp memory coalescer."""

import numpy as np

from repro.config import SEGMENT_WORDS, WARP_SIZE
from repro.memory import CoalescingStats, coalesce_addresses


class TestCoalescing:
    def test_consecutive_words_coalesce(self):
        # 32 consecutive 8-byte words = 256 bytes = 2 x 128B segments.
        addrs = np.arange(WARP_SIZE, dtype=np.int64)
        assert coalesce_addresses(addrs).size == 2

    def test_same_address_is_one_transaction(self):
        addrs = np.full(WARP_SIZE, 1234, dtype=np.int64)
        assert coalesce_addresses(addrs).size == 1

    def test_fully_scattered_is_one_per_lane(self):
        # Strided by one segment each: no two lanes share a segment.
        addrs = np.arange(WARP_SIZE, dtype=np.int64) * SEGMENT_WORDS
        assert coalesce_addresses(addrs).size == WARP_SIZE

    def test_empty_mask(self):
        addrs = np.empty(0, dtype=np.int64)
        assert coalesce_addresses(addrs).size == 0

    def test_alignment_split(self):
        # 32 consecutive words starting mid-segment span 3 segments.
        addrs = np.arange(WARP_SIZE, dtype=np.int64) + SEGMENT_WORDS // 2
        assert coalesce_addresses(addrs).size == 3

    def test_segments_are_sorted_unique(self):
        addrs = np.array([100, 5, 100, 5, 200], dtype=np.int64) * SEGMENT_WORDS
        segs = coalesce_addresses(addrs)
        assert list(segs) == sorted(set(segs))


class TestCoalescingStats:
    def test_average(self):
        stats = CoalescingStats()
        stats.record(32, 2)
        stats.record(32, 32)
        assert stats.average_transactions == 17.0
        assert stats.histogram[2] == 1
        assert stats.histogram[32] == 1

    def test_empty_average(self):
        assert CoalescingStats().average_transactions == 0.0
