"""Tests for the functional global-memory store and allocator."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.memory import GlobalMemory


class TestAllocator:
    def test_word_zero_reserved_as_null(self):
        mem = GlobalMemory(1024)
        assert mem.alloc(4) != 0

    def test_sequential_allocation(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(10)
        b = mem.alloc(10)
        assert b == a + 10

    def test_exhaustion_raises(self):
        mem = GlobalMemory(64)
        with pytest.raises(MemoryError_):
            mem.alloc(64)

    def test_zero_alloc_rejected(self):
        mem = GlobalMemory(64)
        with pytest.raises(MemoryError_):
            mem.alloc(0)

    def test_bytes_in_use(self):
        mem = GlobalMemory(1024)
        mem.alloc(10)
        assert mem.bytes_in_use == 11 * 8  # null word + 10


class TestFree:
    def test_lifo_free_reclaims_words(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(10)
        mem.free(a)
        assert mem.alloc(10) == a  # the words were actually reclaimed

    def test_non_lifo_free_keeps_high_water_mark(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(10)
        b = mem.alloc(10)
        mem.free(a)  # not the most recent allocation
        assert mem.live_range(a) is None
        assert mem.live_range(b) == 10
        # The bump pointer cannot roll back past b.
        assert mem.alloc(4) == b + 10

    def test_double_free_raises(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(10)
        mem.free(a)
        with pytest.raises(MemoryError_, match="double free"):
            mem.free(a)

    def test_interior_pointer_free_raises(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(10)
        with pytest.raises(MemoryError_, match="not a live allocation"):
            mem.free(a + 1)

    def test_never_allocated_free_raises(self):
        mem = GlobalMemory(1024)
        with pytest.raises(MemoryError_):
            mem.free(512)

    def test_extent_mismatch_raises(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(10)
        with pytest.raises(MemoryError_, match="extent mismatch"):
            mem.free(a, words=4)

    def test_free_then_realloc_reuses_lifo_range(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(8)
        b = mem.alloc(16)
        mem.free(b)
        mem.free(a)  # LIFO order: both roll back
        assert mem.alloc(24) == a
        assert mem.live_range(a) == 24

    def test_live_range_reports_extents(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(3)
        assert mem.live_range(a) == 3
        assert mem.live_range(a + 1) is None


class TestViews:
    def test_int_float_views_share_storage(self):
        mem = GlobalMemory(64)
        addr = mem.alloc(1)
        mem.f[addr] = 1.0
        # Bit pattern of 1.0 as int64.
        assert mem.i[addr] == np.float64(1.0).view(np.int64)

    def test_alloc_array_int(self):
        mem = GlobalMemory(1024)
        base = mem.alloc_array(np.arange(16))
        np.testing.assert_array_equal(mem.read_ints(base, 16), np.arange(16))

    def test_alloc_array_float(self):
        mem = GlobalMemory(1024)
        values = np.linspace(0.0, 1.0, 8)
        base = mem.alloc_array(values)
        np.testing.assert_allclose(mem.read_floats(base, 8), values)

    def test_scalar_roundtrip(self):
        mem = GlobalMemory(64)
        addr = mem.alloc(2)
        mem.write_int(addr, -7)
        mem.write_float(addr + 1, 2.5)
        assert mem.read_int(addr) == -7
        assert mem.read_float(addr + 1) == 2.5

    def test_bounds_checked(self):
        mem = GlobalMemory(64)
        with pytest.raises(MemoryError_):
            mem.read_int(64)
        with pytest.raises(MemoryError_):
            mem.write_int(-1, 0)
        with pytest.raises(MemoryError_):
            mem.read_ints(60, 8)
