"""Tests for the DRAM controller and the paper's DRAM-efficiency metric."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.memory import DramController, MemorySubsystem


def controller():
    return DramController(GPUConfig.k20c())


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = controller()
        dram.service(segment=0, is_write=False, arrival=0)
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 0

    def test_same_row_hits(self):
        dram = controller()
        dram.service(0, False, 0)
        dram.service(1, False, 10)  # same 2KB row (16 segments per row)
        assert dram.stats.row_hits == 1

    def test_row_conflict_misses(self):
        cfg = GPUConfig.k20c()
        dram = DramController(cfg)
        rows_per_seg = cfg.dram_row_bytes // 128
        dram.service(0, False, 0)
        # Jump many rows ahead but land in the same bank.
        far = rows_per_seg * cfg.dram_banks
        dram.service(far, False, 100)
        assert dram.stats.row_misses == 2

    def test_bank_serialization(self):
        cfg = GPUConfig.k20c()
        dram = DramController(cfg)
        dram.service(0, False, 0)  # row miss occupies the bank
        c2 = dram.service(1, False, 0)  # same bank: waits for the slot
        # The second access starts only after the miss slot frees the bank,
        # so its completion exceeds a from-zero row hit.
        assert c2 > cfg.dram_hit_latency

    def test_bus_throughput_bound(self):
        cfg = GPUConfig.k20c()
        dram = DramController(cfg)
        completions = [
            dram.service(seg * 1024, False, 0) for seg in range(16)
        ]  # all different banks/rows, same arrival
        # The shared command bus issues one command per dram_bus_cycles.
        assert max(completions) >= 15 * cfg.dram_bus_cycles

    def test_commands_counted_by_kind(self):
        dram = controller()
        dram.service(0, False, 0)
        dram.service(1, True, 5)
        assert dram.stats.n_read == 1
        assert dram.stats.n_write == 1
        assert dram.stats.commands == 2


class TestEfficiencyMetric:
    def test_zero_when_no_traffic(self):
        assert controller().stats.efficiency == 0.0

    def test_activity_union_no_double_count(self):
        dram = controller()
        # Two overlapping requests: activity must be the interval union.
        done1 = dram.service(0, False, 0)
        dram.service(1, False, 1)
        assert dram.stats.n_activity <= max(
            done1, dram.stats.n_activity + 1
        )  # sanity: union bounded
        assert dram.stats.efficiency > 0.0

    def test_dense_row_hits_more_efficient_than_scattered(self):
        cfg = GPUConfig.k20c()
        rows_per_seg = cfg.dram_row_bytes // 128

        dense = DramController(cfg)
        for i in range(64):
            dense.service(i % rows_per_seg, False, i)

        scattered = DramController(cfg)
        for i in range(64):
            # New row in the same bank every time: all misses.
            scattered.service((i * rows_per_seg * cfg.dram_banks), False, i)

        assert dense.stats.efficiency > scattered.stats.efficiency

    def test_efficiency_bounded(self):
        dram = controller()
        for i in range(100):
            dram.service(i % 4, False, i * 3)
        assert 0.0 < dram.stats.efficiency <= 1.0


class TestMemorySubsystem:
    def test_l2_hit_is_fast(self):
        cfg = GPUConfig.k20c()
        mem = MemorySubsystem(cfg)
        segs = np.array([0], dtype=np.int64)
        first = mem.warp_access(segs, False, 0)
        second = mem.warp_access(segs, False, first)
        assert second - first == cfg.l2_hit_latency
        assert first > cfg.l2_hit_latency  # the miss went to DRAM

    def test_write_traffic_counted(self):
        mem = MemorySubsystem(GPUConfig.k20c())
        mem.warp_access(np.array([1000], dtype=np.int64), True, 0)
        assert mem.dram_stats.n_write == 1

    def test_completion_is_max_over_transactions(self):
        mem = MemorySubsystem(GPUConfig.k20c())
        few = MemorySubsystem(GPUConfig.k20c())
        many_done = mem.warp_access(np.arange(32, dtype=np.int64) * 1024, False, 0)
        few_done = few.warp_access(np.array([0], dtype=np.int64), False, 0)
        assert many_done > few_done

    def test_read_latency_single(self):
        mem = MemorySubsystem(GPUConfig.k20c())
        done = mem.read_latency(5, 100)
        assert done > 100
