"""Tests for the set-associative LRU cache."""

import pytest

from repro.errors import ConfigError
from repro.memory import Cache


def small_cache(assoc=2, sets=4, line=128):
    return Cache(size_bytes=line * assoc * sets, line_bytes=line, assoc=assoc)


class TestGeometry:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            Cache(0, 128, 8)
        with pytest.raises(ConfigError):
            Cache(128, 128, 2)  # one line, assoc 2

    def test_sets_computed(self):
        cache = small_cache(assoc=2, sets=4)
        assert cache.num_sets == 4
        assert cache.assoc == 2


class TestBehaviour:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_lru_eviction(self):
        cache = small_cache(assoc=2, sets=1, line=128)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 0 becomes MRU; LRU is 1
        cache.access(2)  # evicts 1
        assert cache.access(0) is True
        assert cache.access(1) is False
        assert cache.stats.evictions >= 1

    def test_set_mapping_isolates(self):
        cache = small_cache(assoc=1, sets=4)
        cache.access(0)
        cache.access(1)  # different set, no conflict
        assert cache.access(0) is True

    def test_conflict_in_same_set(self):
        cache = small_cache(assoc=1, sets=4)
        cache.access(0)
        cache.access(4)  # same set (0 % 4 == 4 % 4), evicts 0
        assert cache.access(0) is False

    def test_flush(self):
        cache = small_cache()
        cache.access(7)
        cache.flush()
        assert cache.access(7) is False

    def test_hit_rate(self):
        cache = small_cache()
        cache.access(3)
        cache.access(3)
        cache.access(3)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_contents_by_set(self):
        cache = small_cache(assoc=2, sets=2)
        cache.access(0)
        cache.access(2)
        contents = cache.contents_by_set()
        assert 0 in contents
