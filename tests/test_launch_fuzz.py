"""Differential fuzz for device-side launches (CDP and DTBL).

Hypothesis draws a list of per-parent work sizes ("degrees"); each parent
thread either serializes its pocket of work (flat mode, or below the DFP
threshold) or launches a child grid for it through the mode's mechanism —
``cudaStreamCreate`` + ``cudaLaunchDevice`` for CDP, ``cudaLaunchAggGroup``
for DTBL — using the same ``emit_dfp`` / ``emit_dynamic_launch`` helpers
as the benchmark suite.  Parent and child memory effects must match the
flat-equivalent execution and a pure-Python model exactly, under both
execution cores, with the sanitizer enabled and clean.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction
from repro.workloads.common import emit_dfp, emit_dynamic_launch

_THRESHOLD = 4
_CHILD_BLOCK = 16
_PARENT_BLOCK = 32


def build_child() -> KernelFunction:
    """One thread per work item: out[i] = parent_id * 100 + i."""
    k = KernelBuilder("fuzz_child")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, count)):
        outbase = k.ld(param, offset=1)
        pid = k.ld(param, offset=2)
        k.st(k.iadd(outbase, gtid), k.iadd(k.imul(pid, 100), gtid))
    k.exit()
    return KernelFunction("fuzz_child", k.build())


def build_parent(mode: ExecutionMode) -> KernelFunction:
    """Params: [n, degrees, offsets, out, parent_out]."""
    k = KernelBuilder("fuzz_parent")
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, n)):
        degrees = k.ld(param, offset=1)
        offsets = k.ld(param, offset=2)
        out = k.ld(param, offset=3)
        parent_out = k.ld(param, offset=4)
        degree = k.ld(k.iadd(degrees, gtid))
        outbase = k.iadd(out, k.ld(k.iadd(offsets, gtid)))
        # The parent's own memory effect, present in every mode.
        k.st(k.iadd(parent_out, gtid), k.iadd(k.imul(degree, 2), 1))

        def serial() -> None:
            with k.for_range(0, degree) as i:
                k.st(k.iadd(outbase, i), k.iadd(k.imul(gtid, 100), i))

        def launch() -> None:
            emit_dynamic_launch(
                k, mode, "fuzz_child", [degree, outbase, gtid], degree, _CHILD_BLOCK
            )

        emit_dfp(k, mode, degree, _THRESHOLD, launch, serial)
    k.exit()
    return KernelFunction("fuzz_parent", k.build())


def run_mode(mode: ExecutionMode, degrees, fast: bool):
    """Returns (out, parent_out) after a full run; sanitizer must be clean."""
    n = len(degrees)
    offsets = np.concatenate([[0], np.cumsum(degrees)[:-1]]).astype(np.int64)
    total = int(np.sum(degrees))
    config = dataclasses.replace(GPUConfig.k20c(), core=("fast" if fast else "reference"))
    dev = Device(config=config, mode=mode, sanitize=True)
    dev.register(build_parent(mode))
    if mode.is_dynamic:
        dev.register(build_child())
    deg_arr = dev.upload(np.asarray(degrees, dtype=np.int64))
    off_arr = dev.upload(offsets)
    out = dev.alloc(max(1, total))
    parent_out = dev.alloc(n)
    dev.launch(
        "fuzz_parent",
        grid=(n + _PARENT_BLOCK - 1) // _PARENT_BLOCK,
        block=_PARENT_BLOCK,
        params=[n, deg_arr, off_arr, out, parent_out],
    )
    dev.synchronize()
    assert dev.sanitizer_report().clean, dev.sanitizer_report().format()
    return dev.download_ints(out.addr, total), parent_out.download()


def python_model(degrees):
    """The flat-equivalent memory effects, computed directly."""
    out = []
    for t, d in enumerate(degrees):
        out.extend(t * 100 + i for i in range(d))
    parent_out = np.array([2 * d + 1 for d in degrees], dtype=np.int64)
    return np.array(out, dtype=np.int64), parent_out


class TestDeviceLaunchFuzz:
    @settings(max_examples=10, deadline=None)
    @given(degrees=st.lists(st.integers(0, 40), min_size=1, max_size=10))
    def test_dynamic_modes_match_flat_equivalent(self, degrees):
        expected_out, expected_parent = python_model(degrees)
        flat_out, flat_parent = run_mode(ExecutionMode.FLAT, degrees, fast=True)
        np.testing.assert_array_equal(flat_out, expected_out)
        np.testing.assert_array_equal(flat_parent, expected_parent)
        for mode in (ExecutionMode.CDP, ExecutionMode.DTBL):
            for fast in (True, False):
                got_out, got_parent = run_mode(mode, degrees, fast=fast)
                np.testing.assert_array_equal(got_out, flat_out)
                np.testing.assert_array_equal(got_parent, flat_parent)

    def test_nested_launch_over_threshold_boundary(self):
        # Deterministic pin: degrees straddling the DFP threshold exercise
        # both the serial and the launched path in one grid.
        degrees = [0, _THRESHOLD - 1, _THRESHOLD, 33, 1, 40]
        expected_out, expected_parent = python_model(degrees)
        for mode in (ExecutionMode.FLAT, ExecutionMode.CDP, ExecutionMode.DTBL):
            got_out, got_parent = run_mode(mode, degrees, fast=True)
            np.testing.assert_array_equal(got_out, expected_out)
            np.testing.assert_array_equal(got_parent, expected_parent)
