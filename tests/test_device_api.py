"""Device host-API surface: memory utilities and events."""

import numpy as np
import pytest

from repro import Device
from repro.errors import MemoryError_

from tests.helpers import make_device, map_kernel


class TestMemoryUtilities:
    def test_memset(self):
        dev = make_device()
        addr = dev.alloc(16)
        dev.memset(addr, 7, 16)
        np.testing.assert_array_equal(dev.download_ints(addr, 16), np.full(16, 7))

    def test_memset_bounds_checked(self):
        dev = Device(memory_words=1024)
        addr = dev.alloc(8)
        with pytest.raises(MemoryError_):
            dev.memset(addr, 0, 100_000)

    def test_copy_device(self):
        dev = make_device()
        src = dev.upload(np.arange(32))
        dst = dev.alloc(32)
        dev.copy_device(dst, src, 32)
        np.testing.assert_array_equal(dev.download_ints(dst, 32), np.arange(32))

    def test_copy_overlapping_is_safe(self):
        dev = make_device()
        base = dev.upload(np.arange(16))
        dev.copy_device(base + 4, base, 8)  # overlapping ranges
        np.testing.assert_array_equal(
            dev.download_ints(base + 4, 8), np.arange(8)
        )

    def test_download_floats(self):
        dev = make_device()
        addr = dev.upload(np.linspace(0, 1, 10))
        np.testing.assert_allclose(dev.download_floats(addr, 10), np.linspace(0, 1, 10))


class TestEvents:
    def test_elapsed_between_launches(self):
        dev = make_device()
        func = map_kernel("work", lambda k, v: k.imul(v, 2))
        dev.register(func)
        n = 1000
        src = dev.upload(np.arange(n))
        dst = dev.alloc(n)
        dev.record_event("start")
        dev.launch("work", grid=8, block=128, params=[n, src, dst])
        dev.synchronize()
        dev.record_event("end")
        elapsed = dev.elapsed_cycles("start", "end")
        assert elapsed > 0
        assert elapsed == dev.cycles  # started at cycle 0

    def test_missing_event(self):
        dev = make_device()
        dev.record_event("a")
        with pytest.raises(KeyError, match="never recorded"):
            dev.elapsed_cycles("a", "nope")
