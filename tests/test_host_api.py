"""The redesigned host API: DeviceArray, Event, Stream, Device lifecycle."""

import numpy as np
import pytest

from repro import Device, DeviceArray, Event, ExecutionMode, GPUConfig, LatencyModel, Stream
from repro.errors import ConfigError, DeviceError, MemoryError_, SimulationError

from tests.helpers import make_device, map_kernel


def small_device(**kwargs) -> Device:
    return Device(config=GPUConfig.small(), **kwargs)


class TestDeviceArray:
    def test_round_trips_dtype_and_shape(self):
        dev = small_device()
        src = np.linspace(0.0, 1.0, 12, dtype=np.float32).reshape(3, 4)
        arr = dev.upload(src)
        out = arr.download()
        assert out.dtype == np.float32
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out, src, rtol=1e-6)

    def test_int32_round_trip(self):
        dev = small_device()
        src = np.arange(10, dtype=np.int32)
        out = dev.upload(src).download()
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, src)

    def test_is_an_int_address(self):
        dev = small_device()
        arr = dev.upload(np.arange(8))
        assert isinstance(arr, int)
        assert arr.addr == int(arr)
        assert arr.size == 8
        # Address arithmetic keeps working as with raw addresses.
        assert dev.read_int(arr + 3) == 3

    def test_alloc_defaults(self):
        dev = small_device()
        arr = dev.alloc(16)
        assert isinstance(arr, DeviceArray)
        assert arr.shape == (16,)
        assert arr.dtype == np.int64
        assert arr.download().shape == (16,)

    def test_device_download_dispatches_on_device_array(self):
        dev = small_device()
        arr = dev.upload(np.arange(5, dtype=np.int16))
        out = dev.download(arr)
        assert out.dtype == np.int16
        with pytest.raises(TypeError, match="derived from the DeviceArray"):
            dev.download(arr, count=5)

    def test_raw_address_download_requires_count(self):
        dev = small_device()
        arr = dev.upload(np.arange(5))
        with pytest.raises(TypeError, match="requires count"):
            dev.download(int(arr))
        np.testing.assert_array_equal(
            dev.download(int(arr), count=5), np.arange(5)
        )

    def test_free_reclaims_most_recent_allocation(self):
        dev = small_device()
        a = dev.alloc(32)
        b = dev.alloc(32)
        dev.free(b)
        c = dev.alloc(32)
        assert int(c) == int(b)  # LIFO rollback reused the words
        dev.free(a)  # not the top of the bump allocator: accepted, no-op
        d = dev.alloc(8)
        assert int(d) == int(c) + 32

    def test_double_free_raises(self):
        dev = small_device()
        arr = dev.alloc(16)
        dev.free(arr)
        with pytest.raises(MemoryError_, match="double free"):
            dev.free(arr)

    def test_download_after_free_raises(self):
        dev = small_device()
        arr = dev.upload(np.arange(8))
        dev.free(arr)
        with pytest.raises(MemoryError_, match="freed DeviceArray"):
            arr.download()

    def test_non_lifo_free_then_download_raises(self):
        dev = small_device()
        a = dev.upload(np.arange(8))
        b = dev.upload(np.arange(8) * 2)
        dev.free(a)  # non-LIFO: words stay allocated but the array is dead
        with pytest.raises(MemoryError_):
            a.download()
        np.testing.assert_array_equal(b.download(), np.arange(8) * 2)

    def test_raw_address_free_is_ignored(self):
        dev = small_device()
        arr = dev.alloc(16)
        dev.free(int(arr))  # raw int carries no extent: accepted, no-op
        dev.free(int(arr))  # and is not tracked, so no double-free either
        np.testing.assert_array_equal(arr.download(), np.zeros(16))


class TestEvent:
    def _launched_device(self):
        dev = small_device()
        dev.register(map_kernel("dbl", lambda k, v: k.imul(v, 2)))
        n = 256
        src = dev.upload(np.arange(n))
        dst = dev.alloc(n)
        evt = dev.launch("dbl", grid=2, block=128, params=[n, src, dst])
        return dev, evt, dst, n

    def test_wait_returns_event_and_completes(self):
        dev, evt, dst, n = self._launched_device()
        assert not evt.done
        assert evt.wait() is evt
        assert evt.done
        np.testing.assert_array_equal(dst.download(), np.arange(n) * 2)

    def test_elapsed_cycles(self):
        dev, evt, _, _ = self._launched_device()
        with pytest.raises(SimulationError, match="has not completed"):
            evt.elapsed_cycles()
        evt.wait()
        assert evt.elapsed_cycles() > 0
        record = evt.record
        assert evt.elapsed_cycles() == record.completed_cycle - record.launch_cycle

    def test_event_is_param_addr(self):
        dev, evt, _, _ = self._launched_device()
        assert isinstance(evt, Event)
        assert isinstance(evt, int)  # back-compat with the old return value
        dev.synchronize()


class TestStream:
    def test_streams_get_unique_ids(self):
        dev = small_device()
        s1, s2 = dev.stream(), dev.stream()
        assert isinstance(s1, Stream)
        assert s1.id != s2.id
        assert int(s1) == s1.id and s2.__index__() == s2.id

    def test_launch_and_synchronize_via_stream(self):
        dev = small_device()
        dev.register(map_kernel("inc", lambda k, v: k.iadd(v, 1)))
        n = 128
        src = dev.upload(np.arange(n))
        dst = dev.alloc(n)
        stream = dev.stream()
        evt = stream.launch("inc", grid=1, block=128, params=[n, src, dst])
        stream.synchronize()
        assert evt.done
        np.testing.assert_array_equal(dst.download(), np.arange(n) + 1)

    def test_same_stream_serializes(self):
        dev = small_device()
        dev.register(map_kernel("inc", lambda k, v: k.iadd(v, 1)))
        n = 128
        buf = dev.upload(np.zeros(n, dtype=np.int64))
        stream = dev.stream()
        first = stream.launch("inc", grid=1, block=128, params=[n, buf, buf])
        second = stream.launch("inc", grid=1, block=128, params=[n, buf, buf])
        second.wait()
        assert first.record.completed_cycle <= second.record.first_exec_cycle
        np.testing.assert_array_equal(buf.download(), np.full(n, 2))


class TestDeviceLifecycle:
    def test_context_manager_closes(self):
        with small_device() as dev:
            arr = dev.upload(np.arange(4))
            np.testing.assert_array_equal(arr.download(), np.arange(4))
        assert dev.closed
        with pytest.raises(DeviceError):
            dev.alloc(4)
        with pytest.raises(DeviceError):
            dev.synchronize()
        with pytest.raises(DeviceError):
            arr.download()

    def test_close_is_idempotent(self):
        dev = small_device()
        dev.close()
        dev.close()
        assert dev.closed


class TestModeLatencyValidation:
    def test_ideal_mode_rejects_measured_latency(self):
        with pytest.raises(ConfigError, match="ideal"):
            Device(mode=ExecutionMode.CDP_IDEAL, latency=LatencyModel.measured_k20c())

    def test_measured_mode_rejects_ideal_latency(self):
        with pytest.raises(ConfigError, match="'dtbli'"):
            Device(mode=ExecutionMode.DTBL, latency=LatencyModel.ideal())

    def test_consistent_combinations_accepted(self):
        Device(config=GPUConfig.small(), mode=ExecutionMode.CDP_IDEAL,
               latency=LatencyModel.ideal())
        Device(config=GPUConfig.small(), mode=ExecutionMode.DTBL,
               latency=LatencyModel.measured_k20c().scaled(0.25))
        Device(config=GPUConfig.small(), mode=ExecutionMode.DTBL)


class TestLegacyShims:
    def test_named_events_still_work(self):
        dev = make_device(config=GPUConfig.small())
        dev.record_event("start")
        dev.record_event("end")
        assert dev.elapsed_cycles("start", "end") == 0

    def test_download_ints_and_floats(self):
        dev = small_device()
        ints = dev.upload(np.arange(6))
        flts = dev.upload(np.linspace(0, 1, 6))
        np.testing.assert_array_equal(dev.download_ints(ints, 6), np.arange(6))
        np.testing.assert_allclose(dev.download_floats(flts, 6), np.linspace(0, 1, 6))
