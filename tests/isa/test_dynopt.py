"""Compiler-optimized dynamic parallelism (:mod:`repro.isa.dynopt`).

Synthetic parent/child kernels in the canonical CDP launch shape are
pushed through the ``cdpa`` / ``cons`` pipelines and executed on the
simulator; the transformed programs must produce bit-identical output
buffers while issuing fewer device launches.
"""

import numpy as np
import pytest

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction
from repro.isa.dynopt import (
    DynoptOptions,
    find_launch_sites,
    serialize_small_launches,
    transform_kernels,
    wrappable,
)
from repro.isa.dynopt.splice import summarize_body

BS = 32  #: child block size
STRIDE = 80  #: per-parent-thread output region (>= max child count)


def child_function(name: str = "child") -> KernelFunction:
    """Child over params [region, count, salt]: region[i] = salt + i."""
    k = KernelBuilder(name)
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=1)
    with k.if_(k.lt(gtid, count)):
        region = k.ld(param, offset=0)
        salt = k.ld(param, offset=2)
        k.st(k.iadd(region, gtid), k.iadd(salt, gtid))
    k.exit()
    return KernelFunction(name, k.build())


def parent_function(
    name: str = "parent", child: str = "child"
) -> KernelFunction:
    """Parent over params [n, counts, dst]: thread i launches ``child``
    with counts[i] work items over its own output region."""
    k = KernelBuilder(name)
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, n)):
        counts = k.ld(param, offset=1)
        dst = k.ld(param, offset=2)
        count = k.ld(k.iadd(counts, gtid))
        region = k.iadd(dst, k.imul(gtid, STRIDE))
        buf = k.get_param_buffer(3)
        k.st(buf, region, offset=0)
        k.st(buf, count, offset=1)
        k.st(buf, k.imul(gtid, 1000), offset=2)
        blocks = k.idiv(k.iadd(count, BS - 1), BS)
        k.stream_create()
        k.launch_device(child, buf, grid=blocks, block=BS)
    k.exit()
    return KernelFunction(name, k.build())


def expected_output(counts) -> np.ndarray:
    out = np.zeros(len(counts) * STRIDE, dtype=np.int64)
    for i, count in enumerate(counts):
        out[i * STRIDE : i * STRIDE + count] = i * 1000 + np.arange(count)
    return out


def run_kernels(kernels, counts, *, sanitize=False):
    """Launch the parent over ``counts`` and return (output, stats, report)."""
    dev = Device(config=GPUConfig.k20c(), mode=ExecutionMode.CDP,
                 sanitize=sanitize)
    for func in kernels:
        dev.register(func)
    n = len(counts)
    src = dev.upload(np.asarray(counts, dtype=np.int64))
    dst = dev.alloc(n * STRIDE)
    dev.memset(dst, 0, n * STRIDE)
    dev.launch("parent", grid=(n + BS - 1) // BS, block=BS,
               params=[n, src, dst])
    dev.synchronize()
    out = dev.download_ints(dst, n * STRIDE)
    report = dev.sanitizer_report() if sanitize else None
    return out, dev.stats, report


class TestSiteDiscovery:
    def test_finds_canonical_site(self):
        func = parent_function()
        sites = find_launch_sites(func.program)
        assert len(sites) == 1
        site = sites[0]
        assert site.kernel == "child"
        assert site.block_size == BS
        assert site.work is not None  # the counts[i] register

    def test_no_sites_in_child(self):
        assert find_launch_sites(child_function().program) == []


class TestWrappable:
    def test_child_is_wrappable_both_flavors(self):
        func = child_function()
        assert wrappable(func, "agg")
        assert wrappable(func, "cons")

    def test_barrier_blocks_cons(self):
        k = KernelBuilder("barrier_child")
        k.param()
        k.bar()
        k.exit()
        func = KernelFunction("barrier_child", k.build())
        assert not wrappable(func, "cons")

    def test_summary_reports_specials(self):
        summary = summarize_body(child_function().program)
        assert summary.trailing_exit
        assert not summary.has_bar


class TestSerialize:
    def test_small_launches_become_inline_loops(self):
        from repro.isa.optimizer import _definalize

        parent = parent_function()
        kernels = {"child": child_function()}
        options = DynoptOptions(serial_threshold=1 << 30)  # serialize all
        program, _extra_local = serialize_small_launches(
            _definalize(parent.program), kernels, options
        )
        counts = [5, 0, 17, 31]
        transformed = [KernelFunction("parent", program), kernels["child"]]
        out, stats, _ = run_kernels(transformed, counts)
        np.testing.assert_array_equal(out, expected_output(counts))
        # Every pocket is under the threshold: no device launch remains.
        assert len(stats.dynamic_launches()) == 0


class TestPipeline:
    @pytest.mark.parametrize("mode", ["cdpa", "cons"])
    def test_output_matches_plain_cdp(self, mode):
        counts = [5, 40, 0, 63, 32, 1, 77, 40]
        baseline, base_stats, _ = run_kernels(
            [parent_function(), child_function()], counts
        )
        np.testing.assert_array_equal(baseline, expected_output(counts))

        transformed = transform_kernels(
            [parent_function(), child_function()], mode,
            DynoptOptions(serial_threshold=0),  # isolate the aggregation
        )
        out, stats, report = run_kernels(transformed, counts, sanitize=True)
        np.testing.assert_array_equal(out, baseline)
        assert report.clean
        # One batched launch replaces the per-thread launches.
        assert len(stats.dynamic_launches()) <= 1
        # Plain CDP issues one launch per parent thread (even the empty
        # pocket goes through the launch path).
        assert len(base_stats.dynamic_launches()) == len(counts)

    def test_consolidation_packs_blocks_denser(self):
        # 8 pockets of 5 items: cdpa keeps one block per pocket (8 blocks),
        # cons repacks 40 items into ceil(40/32) = 2 blocks.
        counts = [5] * 8
        options = DynoptOptions(serial_threshold=0)
        blocks = {}
        for mode in ("cdpa", "cons"):
            transformed = transform_kernels(
                [parent_function(), child_function()], mode, options
            )
            out, stats, _ = run_kernels(transformed, counts)
            np.testing.assert_array_equal(out, expected_output(counts))
            launches = stats.dynamic_launches()
            assert len(launches) == 1
            blocks[mode] = sum(r.total_blocks for r in launches)
        assert blocks["cdpa"] == 8
        assert blocks["cons"] == 2

    def test_overflow_degrades_to_plain_launches(self):
        # Capacity 2 forces every pocket past the staging table to take
        # the plain-CDP overflow path; output must still be exact.
        counts = [40, 40, 40, 40, 40, 40]
        transformed = transform_kernels(
            [parent_function(), child_function()], "cdpa",
            DynoptOptions(serial_threshold=0, staging_capacity=2),
        )
        out, stats, report = run_kernels(transformed, counts, sanitize=True)
        np.testing.assert_array_equal(out, expected_output(counts))
        assert report.clean
        # 1 batched launch for the 2 staged pockets + 4 overflow launches.
        assert len(stats.dynamic_launches()) == 5

    def test_serialization_threshold_applies_under_cdpa(self):
        counts = [3, 2, 4, 1]  # all under the threshold
        transformed = transform_kernels(
            [parent_function(), child_function()], "cdpa",
            DynoptOptions(serial_threshold=8),
        )
        out, stats, _ = run_kernels(transformed, counts)
        np.testing.assert_array_equal(out, expected_output(counts))
        assert len(stats.dynamic_launches()) == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            transform_kernels([child_function()], "dtbl")

    def test_accepts_execution_mode_values(self):
        transformed = transform_kernels(
            [parent_function(), child_function()], ExecutionMode.CDP_AGG
        )
        names = {func.name for func in transformed}
        assert names == {"parent", "child", "child__agg"}
