"""Tests for the KernelBuilder DSL: emission shapes and execution semantics."""

import numpy as np
import pytest

from repro import ExecutionMode, KernelBuilder, KernelFunction
from repro.errors import AssemblyError
from repro.isa import Opcode

from tests.helpers import map_kernel, run_map_kernel


class TestEmission:
    def test_if_emits_branch_with_reconv(self):
        k = KernelBuilder("t")
        pred = k.lt(k.mov(1), 2)
        with k.if_(pred):
            k.nop()
        prog = k.build()
        branches = [i for i in prog.instructions if i.op == Opcode.BRA]
        assert len(branches) == 1
        assert branches[0].reconv is not None
        # The reconvergence point must be a JOIN.
        assert prog.instructions[branches[0].reconv].op == Opcode.JOIN

    def test_while_emits_back_edge(self):
        k = KernelBuilder("t")
        i = k.mov(0)
        with k.while_(lambda: k.lt(i, 5)):
            k.iadd(i, 1, dst=i)
        prog = k.build()
        branches = [ins for ins in prog.instructions if ins.op == Opcode.BRA]
        assert len(branches) == 2  # exit branch + back edge
        back = branches[1]
        assert back.pred is None
        assert back.target < prog.instructions.index(back)

    def test_for_range_rejects_bad_step(self):
        k = KernelBuilder("t")
        with pytest.raises(AssemblyError):
            with k.for_range(0, 10, step=0):
                pass

    def test_register_banks_disjoint(self):
        k = KernelBuilder("t")
        a = k.ireg()
        b = k.freg()
        assert a != b
        assert repr(a).startswith("%r")
        assert repr(b).startswith("%f")

    def test_operand_coercion_rejects_junk(self):
        k = KernelBuilder("t")
        with pytest.raises(AssemblyError):
            k.iadd("not-an-operand", 1)  # type: ignore[arg-type]

    def test_param_buffer_size_positive(self):
        k = KernelBuilder("t")
        with pytest.raises(AssemblyError):
            k.get_param_buffer(0)

    def test_launch_dims_validation(self):
        k = KernelBuilder("t")
        buf = k.get_param_buffer(1)
        with pytest.raises(AssemblyError):
            k.launch_device("c", buf, grid=(1, 1, 1, 1), block=32)


class TestExecutionSemantics:
    """End-to-end checks that DSL constructs compute what they claim."""

    def test_arithmetic_pipeline(self):
        func = map_kernel("arith", lambda k, v: k.isub(k.imul(k.iadd(v, 3), 2), 1))
        data = np.arange(50)
        out = run_map_kernel(func, data)
        np.testing.assert_array_equal(out, (data + 3) * 2 - 1)

    def test_selp(self):
        func = map_kernel("selp", lambda k, v: k.selp(k.lt(v, 10), v, 10))
        data = np.arange(25)
        out = run_map_kernel(func, data)
        np.testing.assert_array_equal(out, np.minimum(data, 10))

    def test_if_else(self):
        def body(k, v):
            result = k.mov(0)
            k.if_else(
                k.lt(v, 16),
                lambda: k.imul(v, 2, dst=result),
                lambda: k.iadd(v, 100, dst=result),
            )
            return result

        func = map_kernel("ifelse", body)
        data = np.arange(40)
        out = run_map_kernel(func, data)
        expected = np.where(data < 16, data * 2, data + 100)
        np.testing.assert_array_equal(out, expected)

    def test_data_dependent_loop(self):
        # out[i] = sum(0..v) computed with a while loop: trip count varies
        # per lane, exercising divergent loop exit.
        def body(k, v):
            acc = k.mov(0)
            i = k.mov(0)
            with k.while_(lambda: k.le(i, v)):
                k.iadd(acc, i, dst=acc)
                k.iadd(i, 1, dst=i)
            return acc

        func = map_kernel("trisum", body)
        data = np.arange(70) % 13
        out = run_map_kernel(func, data)
        expected = np.array([sum(range(v + 1)) for v in data])
        np.testing.assert_array_equal(out, expected)

    def test_nested_divergence(self):
        # Nested if inside a data-dependent loop.
        def body(k, v):
            acc = k.mov(0)
            with k.for_range(0, v) as i:
                with k.if_(k.eq(k.imod(i, 2), 0)):
                    k.iadd(acc, i, dst=acc)
            return acc

        func = map_kernel("evens", body)
        data = (np.arange(64) % 9) + 1
        out = run_map_kernel(func, data)
        expected = np.array([sum(i for i in range(v) if i % 2 == 0) for v in data])
        np.testing.assert_array_equal(out, expected)

    def test_float_math(self):
        def body(k, v):
            fv = k.itof(v)
            root = k.fsqrt(k.fmul(fv, fv))
            return k.ftoi(k.fadd(root, 0.5))

        func = map_kernel("fsqrt", body)
        data = np.arange(33)
        out = run_map_kernel(func, data)
        np.testing.assert_array_equal(out, data)  # sqrt(v*v) == v

    def test_float_compare_and_mix(self):
        def body(k, v):
            fv = k.itof(v)
            p = k.fgt_(fv, 10.0)
            return k.selp(p, 1, 0)

        func = map_kernel("fcmp", body)
        data = np.arange(20)
        out = run_map_kernel(func, data)
        np.testing.assert_array_equal(out, (data > 10).astype(int))

    def test_bit_ops(self):
        def body(k, v):
            return k.ixor(k.ior(k.iand(v, 12), k.ishl(v, 2)), k.ishr(v, 1))

        func = map_kernel("bits", body)
        data = np.arange(100)
        out = run_map_kernel(func, data)
        expected = ((data & 12) | (data << 2)) ^ (data >> 1)
        np.testing.assert_array_equal(out, expected)

    def test_register_demand_reported(self):
        k = KernelBuilder("t")
        k.iadd(k.mov(1), k.mov(2))
        n_int, n_flt = k.register_demand
        assert n_int >= 3
        assert n_flt == 0


class TestDivisionSemantics:
    """idiv/imod are floor division (Python semantics; see docs/isa.md)."""

    def test_floor_division_pinned(self):
        func = map_kernel("divneg", lambda k, v: k.idiv(v, 4))
        data = np.array([-9, -8, -1, 0, 1, 8, 9])
        out = run_map_kernel(func, data)
        np.testing.assert_array_equal(out, data // 4)  # floor, not trunc

    def test_mod_sign_follows_divisor(self):
        func = map_kernel("modneg", lambda k, v: k.imod(v, 4))
        data = np.array([-9, -1, 0, 1, 9])
        out = run_map_kernel(func, data)
        np.testing.assert_array_equal(out, data % 4)

    def test_division_by_zero_guarded(self):
        func = map_kernel("div0", lambda k, v: k.idiv(v, 0))
        data = np.array([5, 10])
        out = run_map_kernel(func, data)
        np.testing.assert_array_equal(out, data)  # divisor treated as 1
