"""Instruction encoding details."""

import pytest

from repro.isa.instructions import (
    GLOBAL_MEMORY_OPS,
    LAUNCH_OPS,
    SFU_OPS,
    Bank,
    Cmp,
    Imm,
    Instr,
    Opcode,
    Reg,
    Special,
)


class TestOperands:
    def test_reg_equality_and_hash(self):
        a = Reg(Bank.INT, 3)
        b = Reg(Bank.INT, 3)
        c = Reg(Bank.FLT, 3)
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2

    def test_imm_equality(self):
        assert Imm(5) == Imm(5)
        assert Imm(5) != Imm(5.0) or Imm(5).value == 5

    def test_reprs(self):
        assert repr(Reg(Bank.INT, 7)) == "%r7"
        assert repr(Reg(Bank.FLT, 2)) == "%f2"
        assert repr(Imm(9)) == "#9"


class TestInstr:
    def test_defaults(self):
        instr = Instr(Opcode.NOP)
        assert instr.dst is None
        assert instr.pred is None
        assert instr.offset == 0

    def test_repr_mentions_operands(self):
        instr = Instr(
            Opcode.IADD, dst=Reg(Bank.INT, 0), a=Reg(Bank.INT, 1), b=Imm(2)
        )
        text = repr(instr)
        assert "iadd" in text and "%r0" in text and "#2" in text

    def test_repr_branch(self):
        instr = Instr(
            Opcode.BRA, target="loop", pred=Reg(Bank.INT, 4), pred_sense=False
        )
        text = repr(instr)
        assert "->loop" in text and "!" in text


class TestOpcodeClasses:
    def test_memory_ops_cover_loads_stores_atomics(self):
        assert Opcode.LD in GLOBAL_MEMORY_OPS
        assert Opcode.FST in GLOBAL_MEMORY_OPS
        assert Opcode.ATOM_CAS in GLOBAL_MEMORY_OPS
        assert Opcode.LDS not in GLOBAL_MEMORY_OPS  # shared is on-chip

    def test_sfu_ops(self):
        assert SFU_OPS == {Opcode.IDIV, Opcode.IMOD, Opcode.FDIV, Opcode.FSQRT}

    def test_launch_ops(self):
        assert LAUNCH_OPS == {Opcode.LAUNCH_DEVICE, Opcode.LAUNCH_AGG}

    def test_all_opcodes_distinct(self):
        values = [op.value for op in Opcode]
        assert len(values) == len(set(values))

    def test_specials_cover_dims(self):
        names = {s.name for s in Special}
        for stem in ("TID", "NTID", "CTAID", "NCTAID"):
            for axis in "XYZ":
                assert f"{stem}_{axis}" in names
        assert "PARAM" in names and "GTID" in names

    def test_cmp_complete(self):
        assert {c.name for c in Cmp} == {"LT", "LE", "GT", "GE", "EQ", "NE"}
