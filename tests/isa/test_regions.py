"""Unit tests for straight-line region discovery (superblock fusion)."""

from __future__ import annotations

import pytest

from repro import KernelBuilder, KernelFunction
from repro.isa import control_flow_leaders, straight_line_regions
from repro.isa.instructions import Opcode
from repro.sim.fast_warp import _FUSABLE_OPS, decode_program


def _alu_fusable(pc, instr):
    return instr.op in _FUSABLE_OPS


def _build(fn) -> KernelFunction:
    k = KernelBuilder("t")
    fn(k)
    k.exit()
    return KernelFunction("t", k.build())


def test_straight_line_program_is_one_region():
    func = _build(lambda k: k.ixor(k.iadd(k.imul(k.gtid(), 3), 7), 1))
    instrs = func.program.instructions
    regions = straight_line_regions(instrs, _alu_fusable)
    # READ_SPECIAL (gtid) + imul + iadd + ixor form one maximal run.
    assert len(regions) == 1
    start, length = regions[0]
    assert start == 0
    assert length == 4
    assert instrs[length].op is Opcode.EXIT


def test_leaders_include_targets_and_reconv():
    def body(k):
        g = k.gtid()
        with k.if_(k.lt(g, 10)):
            k.iadd(g, 1)

    func = _build(body)
    instrs = func.program.instructions
    leaders = control_flow_leaders(instrs)
    assert 0 in leaders
    for instr in instrs:
        if isinstance(instr.target, int):
            assert instr.target in leaders
        if isinstance(instr.reconv, int):
            assert instr.reconv in leaders


def test_branch_splits_run_and_interior_leader_truncates():
    def body(k):
        g = k.gtid()
        a = k.iadd(g, 1)
        with k.if_(k.lt(a, 5)):
            k.imul(a, 2, dst=a)
        k.ixor(a, 3)
        k.iand(a, 7)

    func = _build(body)
    instrs = func.program.instructions
    regions = dict(straight_line_regions(instrs, _alu_fusable))
    # No region may contain the BRA or span an interior leader.
    leaders = control_flow_leaders(instrs)
    for start, length in regions.items():
        assert all(instrs[pc].op is not Opcode.BRA
                   for pc in range(start, start + length))
        assert all(pc not in leaders for pc in range(start + 1, start + length))
    assert len(regions) >= 2


def test_min_length_drops_singletons():
    def body(k):
        g = k.gtid()
        with k.if_(k.lt(g, 4)):
            k.iadd(g, 1)  # single fusable op inside the body

    func = _build(body)
    instrs = func.program.instructions
    for start, length in straight_line_regions(instrs, _alu_fusable):
        assert length >= 2
    assert straight_line_regions(instrs, _alu_fusable, min_length=1)


def test_decode_attaches_regions_to_table_rows():
    func = _build(lambda k: k.ixor(k.iadd(k.imul(k.gtid(), 3), 7), 1))
    table, _n_int, _n_flt, regions = decode_program(func.program)
    assert regions is not None
    for start, region in regions.items():
        assert table[start][3] is region
        assert region.start == start
        assert region.length == len(region.ops) == len(region.runs)
        assert region.n_alu + region.n_sfu == region.length
    # Non-start rows carry no region.
    starts = set(regions)
    for pc, row in enumerate(table):
        if pc not in starts:
            assert row[3] is None


def test_decode_without_fusable_runs_has_no_regions():
    def body(k):
        param = k.param()
        n = k.ld(param, offset=0)  # loads are never fusable
        k.st(n, 1)

    func = _build(body)
    _table, _n_int, _n_flt, regions = decode_program(func.program)
    if regions is not None:
        # The implicit READ_SPECIAL/param prelude may fuse; any region
        # must still satisfy the invariants.
        for region in regions.values():
            assert region.length >= 2
