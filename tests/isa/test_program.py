"""Tests for Program assembly and label resolution."""

import pytest

from repro.errors import AssemblyError
from repro.isa import Imm, Instr, Opcode, Program, Reg
from repro.isa.instructions import Bank


def ireg(i: int) -> Reg:
    return Reg(Bank.INT, i)


class TestLabels:
    def test_label_resolution(self):
        prog = Program("t")
        prog.label("start")
        prog.emit(Instr(Opcode.NOP))
        prog.emit(Instr(Opcode.BRA, target="start"))
        prog.finalize()
        assert prog.instructions[1].target == 0

    def test_duplicate_label_rejected(self):
        prog = Program("t")
        prog.label("a")
        with pytest.raises(AssemblyError):
            prog.label("a")

    def test_undefined_label_rejected(self):
        prog = Program("t")
        prog.emit(Instr(Opcode.BRA, target="nowhere"))
        with pytest.raises(AssemblyError):
            prog.finalize()

    def test_label_at_end_allowed(self):
        prog = Program("t")
        prog.emit(Instr(Opcode.NOP))
        prog.label("end")
        prog.emit(Instr(Opcode.BRA, target="end"))
        prog.finalize()
        assert prog.instructions[1].target == 1


class TestFinalize:
    def test_appends_exit(self):
        prog = Program("t")
        prog.emit(Instr(Opcode.NOP))
        prog.finalize()
        assert prog.instructions[-1].op == Opcode.EXIT

    def test_idempotent(self):
        prog = Program("t")
        prog.emit(Instr(Opcode.EXIT))
        prog.finalize()
        n = len(prog)
        prog.finalize()
        assert len(prog) == n

    def test_emit_after_finalize_rejected(self):
        prog = Program("t")
        prog.finalize()
        with pytest.raises(AssemblyError):
            prog.emit(Instr(Opcode.NOP))

    def test_conditional_branch_without_reconv_rejected(self):
        prog = Program("t")
        prog.label("l")
        prog.emit(Instr(Opcode.BRA, target="l", pred=ireg(0)))
        with pytest.raises(AssemblyError):
            prog.finalize()

    def test_unconditional_branch_without_reconv_ok(self):
        prog = Program("t")
        prog.label("l")
        prog.emit(Instr(Opcode.BRA, target="l"))
        prog.finalize()


class TestIntrospection:
    def test_max_register_index(self):
        prog = Program("t")
        prog.emit(Instr(Opcode.IADD, dst=ireg(5), a=ireg(1), b=Imm(3)))
        prog.emit(Instr(Opcode.FADD, dst=Reg(Bank.FLT, 2), a=Imm(1.0), b=Imm(2.0)))
        highest = prog.max_register_index()
        assert highest["int"] == 5
        assert highest["flt"] == 2

    def test_disassemble_contains_labels_and_pcs(self):
        prog = Program("mykernel")
        prog.label("top")
        prog.emit(Instr(Opcode.NOP))
        text = prog.disassemble()
        assert ".kernel mykernel" in text
        assert "top:" in text
        assert "nop" in text
