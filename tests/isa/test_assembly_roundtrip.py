"""to_assembly() / parse_program round-trips across every opcode class."""

import numpy as np
import pytest

from repro import Device, ExecutionMode, KernelBuilder, KernelFunction
from repro.isa import Opcode, parse_program

from tests.helpers import make_device


def roundtrip(program):
    text = program.to_assembly()
    reparsed = parse_program(text)
    assert reparsed.to_assembly() == text  # canonical fixpoint
    return reparsed


class TestOpClassRoundTrips:
    def test_launch_ops(self):
        k = KernelBuilder("parent")
        buf = k.get_param_buffer(2)
        k.st(buf, 1, offset=0)
        blocks = k.mov(3)
        k.launch_agg("child", buf, agg=blocks, block=32)
        k.stream_create()
        k.launch_device("child", buf, grid=(blocks, 1, 1), block=(16, 2, 1))
        prog = roundtrip(k.build())
        agg = next(i for i in prog.instructions if i.op == Opcode.LAUNCH_AGG)
        dev = next(i for i in prog.instructions if i.op == Opcode.LAUNCH_DEVICE)
        assert agg.kernel == "child"
        assert dev.block_dims[1].value == 2

    def test_shared_and_local_ops(self):
        k = KernelBuilder("mem")
        tid = k.tid()
        k.sts(tid, 5, offset=1)
        k.lds(tid, offset=1)
        k.stl(0, tid)
        k.ldl(0)
        k.bar()
        prog = roundtrip(k.build())
        ops = [i.op for i in prog.instructions]
        for expected in (Opcode.STS, Opcode.LDS, Opcode.STL, Opcode.LDL, Opcode.BAR):
            assert expected in ops

    def test_warp_primitive_ops(self):
        k = KernelBuilder("wp")
        tid = k.tid()
        k.shfl_idx(tid, 0)
        k.shfl_down(tid, 4)
        k.vote_any(tid)
        k.vote_all(tid)
        k.ballot(tid)
        roundtrip(k.build())

    def test_atomic_ops(self):
        k = KernelBuilder("at")
        addr = k.mov(100)
        k.atom_add(addr, 1)
        k.atom_min(addr, 2)
        k.atom_max(addr, 3)
        k.atom_or(addr, 4)
        k.atom_exch(addr, 5)
        k.atom_cas(addr, 0, 9)
        prog = roundtrip(k.build())
        cas = next(i for i in prog.instructions if i.op == Opcode.ATOM_CAS)
        assert cas.c is not None

    def test_float_ops(self):
        k = KernelBuilder("fl")
        a = k.fmov(1.5)
        k.fadd(a, 2.5)
        k.fsqrt(a)
        k.flt_(a, 3.0)
        k.ftoi(a)
        roundtrip(k.build())

    def test_divergent_program_executes_identically(self):
        k = KernelBuilder("div")
        gtid = k.gtid()
        param = k.param()
        out = k.ld(param, offset=0)
        acc = k.mov(0)
        with k.for_range(0, k.imod(gtid, 7)) as i:
            with k.if_(k.eq(k.imod(i, 2), 0)):
                k.iadd(acc, i, dst=acc)
        k.st(k.iadd(out, gtid), acc)
        k.exit()
        original = k.build()
        reparsed = roundtrip(original)

        def run(program):
            dev = make_device()
            dev.register(KernelFunction("div", program))
            out = dev.alloc(64)
            dev.launch("div", grid=2, block=32, params=[out])
            dev.synchronize()
            return dev.download_ints(out, 64)

        np.testing.assert_array_equal(run(original), run(reparsed))
