"""Property: the peephole optimizer never touches launch machinery.

The dynopt pipeline and the workloads both rely on the optimizer
(:func:`repro.isa.optimizer.optimize`) treating ``GET_PARAM_BUF`` /
``STREAM_CREATE`` / ``LAUNCH_DEVICE`` / ``LAUNCH_AGG`` as opaque side
effects: no pass may fold one away, reorder the sequence, or eliminate
an instruction that defines a register a launch still reads.  Random
programs with interleaved arithmetic, dead code, and 1-3 launch sites
check the invariant.
"""

from hypothesis import given, settings, strategies as st

from repro import KernelBuilder
from repro.isa.instructions import Opcode, Reg
from repro.isa.optimizer import optimize

LAUNCH_RELATED = frozenset({
    Opcode.GET_PARAM_BUF,
    Opcode.STREAM_CREATE,
    Opcode.LAUNCH_DEVICE,
    Opcode.LAUNCH_AGG,
})


@st.composite
def launchy_program(draw):
    """A program mixing arithmetic, dead defs, and CDP/DTBL launch sites."""
    k = KernelBuilder("prop")
    values = [k.gtid(), k.mov(draw(st.integers(0, 100)))]
    param = k.param()
    values.append(k.ld(param, offset=0))

    def arith():
        op = draw(st.sampled_from([k.iadd, k.imul, k.isub]))
        a = draw(st.sampled_from(values))
        b = draw(
            st.one_of(st.sampled_from(values), st.integers(0, 9))
        )
        return op(a, b)

    for _ in range(draw(st.integers(0, 8))):
        result = arith()
        if draw(st.booleans()):
            values.append(result)  # else: a dead def, fair DCE game

    for _ in range(draw(st.integers(1, 3))):
        block = draw(st.sampled_from([32, 64]))
        work = draw(st.sampled_from(values))
        buf = k.get_param_buffer(2)
        k.st(buf, work, offset=0)
        k.st(buf, draw(st.sampled_from(values)), offset=1)
        blocks = k.idiv(k.iadd(work, block - 1), block)
        if draw(st.booleans()):
            k.stream_create()
            k.launch_device("child", buf, grid=blocks, block=block)
        else:
            k.launch_agg("child", buf, agg=blocks, block=block)
        if draw(st.booleans()):
            values.append(arith())

    k.exit()
    return k.program  # unfinalized, as optimize() requires


def launch_signature(program):
    """The launch-machinery subsequence, in program order."""
    return [
        (instr.op, instr.kernel)
        for instr in program.instructions
        if instr.op in LAUNCH_RELATED
    ]


def regs_read_by(instr):
    operands = [instr.a, instr.b, instr.c, instr.pred]
    for dims in (instr.grid_dims, instr.block_dims):
        if dims:
            operands.extend(dims)
    return [op for op in operands if isinstance(op, Reg)]


class TestOptimizerPreservesLaunches:
    @settings(max_examples=60, deadline=None)
    @given(launchy_program())
    def test_launch_sequence_survives_verbatim(self, program):
        optimized = optimize(program)
        assert launch_signature(optimized) == launch_signature(program)

    @settings(max_examples=60, deadline=None)
    @given(launchy_program())
    def test_launch_operands_stay_defined(self, program):
        optimized = optimize(program)
        defined = set()
        for instr in optimized.instructions:
            if instr.op in LAUNCH_RELATED:
                for reg in regs_read_by(instr):
                    assert (reg.bank, reg.idx) in defined, (
                        f"{instr.op.name} reads r{reg.idx} "
                        f"with no prior definition"
                    )
            if isinstance(instr.dst, Reg):
                defined.add((instr.dst.bank, instr.dst.idx))

    @settings(max_examples=30, deadline=None)
    @given(launchy_program())
    def test_param_stores_survive(self, program):
        # The ST instructions filling a parameter buffer are side effects
        # the child observes; none may be eliminated.
        def st_count(p):
            return sum(1 for i in p.instructions if i.op is Opcode.ST)

        assert st_count(optimize(program)) == st_count(program)
