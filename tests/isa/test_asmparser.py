"""Text assembler: parsing, errors, and builder round-trips."""

import numpy as np
import pytest

from repro import Device, KernelBuilder, KernelFunction
from repro.errors import AssemblyError
from repro.isa import Opcode
from repro.isa.asmparser import parse_program

from tests.helpers import make_device, map_kernel, run_map_kernel


SCALE_ASM = """
.kernel scale
; out[i] = x[i] * 3 for i < n
read_special %r0 gtid
read_special %r1 param
ld %r2 %r1 off=0
setp %r3 %r0 %r2 lt
bra ->end @!%r3 reconv=end
ld %r4 %r1 off=1
iadd %r5 %r4 %r0
ld %r6 %r5
imul %r7 %r6 #3
ld %r8 %r1 off=2
iadd %r9 %r8 %r0
st %r9 %r7
end:
join
exit
"""


class TestParsing:
    def test_parse_and_execute(self):
        program = parse_program(SCALE_ASM)
        assert program.name == "scale"
        func = KernelFunction("scale", program)
        dev = make_device()
        dev.register(func)
        n = 200
        src = dev.upload(np.arange(n))
        dst = dev.alloc(n)
        dev.launch("scale", grid=4, block=64, params=[n, src, dst])
        dev.synchronize()
        np.testing.assert_array_equal(dev.download_ints(dst, n), np.arange(n) * 3)

    def test_comments_and_blank_lines(self):
        program = parse_program("""
.kernel c
; full line comment
nop   ; trailing comment
nop   # hash comment
exit
""")
        ops = [i.op for i in program.instructions]
        assert ops == [Opcode.NOP, Opcode.NOP, Opcode.EXIT]

    def test_float_immediates(self):
        program = parse_program("fadd %f0 #1.5 #2.25\nexit\n")
        instr = program.instructions[0]
        assert instr.a.value == 1.5
        assert instr.b.value == 2.25

    def test_launch_syntax(self):
        program = parse_program(
            "get_param_buf %r0 size=4\n"
            "launch_agg %r0 kernel=child agg=(%r1,1,1) block=(32)\n"
            "exit\n"
        )
        launch = program.instructions[1]
        assert launch.kernel == "child"
        assert launch.grid_dims[0].idx == 1
        assert launch.block_dims[0].value == 32

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            parse_program("frobnicate %r0\n")

    def test_missing_destination(self):
        with pytest.raises(AssemblyError, match="destination"):
            parse_program("iadd #1 #2\n")

    def test_setp_needs_comparison(self):
        with pytest.raises(AssemblyError, match="comparison"):
            parse_program("setp %r0 %r1 %r2\n")

    def test_bra_needs_target(self):
        with pytest.raises(AssemblyError, match="target"):
            parse_program("bra @%r0 reconv=x\n")

    def test_bad_operand(self):
        with pytest.raises(AssemblyError, match="bad operand"):
            parse_program("mov %r0 %%oops\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            parse_program("x:\nnop\nx:\nexit\n")


class TestRoundTrip:
    def behavior(self, func: KernelFunction, data: np.ndarray) -> np.ndarray:
        return run_map_kernel(func, data)

    @pytest.mark.parametrize(
        "body",
        [
            lambda k, v: k.iadd(k.imul(v, 5), 1),
            lambda k, v: k.selp(k.lt(v, 8), v, k.ineg(v)),
        ],
        ids=["arith", "select"],
    )
    def test_simple_roundtrip(self, body):
        original = map_kernel("rt", body)
        text = original.program.to_assembly()
        reparsed = parse_program(text)
        func2 = KernelFunction("rt", reparsed)
        data = np.arange(64)
        np.testing.assert_array_equal(
            self.behavior(original, data), self.behavior(func2, data)
        )

    def test_divergent_roundtrip(self):
        def body(k, v):
            acc = k.mov(0)
            with k.for_range(0, v) as i:
                with k.if_(k.eq(k.imod(i, 3), 0)):
                    k.iadd(acc, i, dst=acc)
            return acc

        original = map_kernel("rt_div", body)
        text = original.program.to_assembly()
        func2 = KernelFunction("rt_div", parse_program(text))
        data = np.arange(48) % 11
        np.testing.assert_array_equal(
            self.behavior(original, data), self.behavior(func2, data)
        )

    def test_to_assembly_requires_finalized(self):
        from repro.isa.program import Program

        with pytest.raises(AssemblyError):
            Program("x").to_assembly()

    def test_assembly_text_is_stable(self):
        func = map_kernel("stable", lambda k, v: k.iadd(v, 1))
        text1 = func.program.to_assembly()
        text2 = parse_program(text1).to_assembly().replace(".kernel stable", ".kernel stable")
        # Reparsing canonical text yields identical canonical text.
        assert parse_program(text1).to_assembly() == text2
