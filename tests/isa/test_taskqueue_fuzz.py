"""Differential fuzz for the device-side task-queue primitives.

Hypothesis drives the :mod:`repro.isa.taskqueue` emitters against a
pure-Python bounded-FIFO reference model:

* a single-threaded schedule of ``try_enqueue`` / ``dequeue`` ops must
  match the model *exactly* — FIFO order, per-op hit/miss and drop
  outcomes, and every descriptor counter — including overflow (drops at
  capacity), underflow (misses on empty) and ring wraparound (capacities
  far smaller than the op count);
* concurrent producer/consumer grids must conserve the payload multiset
  (everything enqueued is consumed exactly once) and leave the counters
  in the drained fixpoint, for both the synchronous CAS-claim dequeue
  and the asynchronous optimistic-ticket dequeue;
* a cross-block producer/consumer pair with a tiny ring proves the
  bounded queue applies backpressure (the producer blocks on the slot
  sequence until the consumer releases it) instead of corrupting slots.

Everything runs with the sanitizer enabled and must come back clean.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Device, ExecutionMode, GPUConfig, KernelBuilder, KernelFunction
from repro.isa.taskqueue import (
    OFF_CLAIMED,
    OFF_DROPPED,
    OFF_FINISHED,
    OFF_HIGH_WATER,
    OFF_PUBLISHED,
    OFF_RESERVED,
    QueueLayout,
    emit_dequeue_async,
    emit_dequeue_sync,
    emit_enqueue,
    emit_try_enqueue,
)


def _device(fast: bool = True) -> Device:
    config = dataclasses.replace(
        GPUConfig.k20c(), core=("fast" if fast else "reference")
    )
    return Device(config=config, mode=ExecutionMode.FLAT, sanitize=True)


def _make_queue(dev: Device, capacity: int, record_words: int = 1) -> QueueLayout:
    shape = QueueLayout(0, capacity, record_words)
    base = int(dev.upload(shape.init_image()))
    return dataclasses.replace(shape, base=base)


def _counters(dev: Device, q: QueueLayout) -> dict:
    return {
        "reserved": dev.read_int(q.field(OFF_RESERVED)),
        "published": dev.read_int(q.field(OFF_PUBLISHED)),
        "claimed": dev.read_int(q.field(OFF_CLAIMED)),
        "finished": dev.read_int(q.field(OFF_FINISHED)),
        "high_water": dev.read_int(q.field(OFF_HIGH_WATER)),
        "dropped": dev.read_int(q.field(OFF_DROPPED)),
    }


def _finish(k: KernelBuilder, q: QueueLayout) -> None:
    k.atom_add(q.field(OFF_FINISHED), 1)


# ----------------------------------------------------------------------
# Pure-Python reference model
# ----------------------------------------------------------------------
class ModelQueue:
    """Bounded FIFO mirroring the descriptor-counter semantics."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.items: list = []
        self.accepted = 0  # RESERVED == PUBLISHED (serial execution)
        self.consumed = 0  # CLAIMED == FINISHED
        self.dropped = 0
        self.high_water = 0

    def try_enqueue(self, value: int) -> int:
        if self.accepted - self.consumed >= self.capacity:
            self.dropped += 1
            return 0
        self.items.append(value)
        self.accepted += 1
        self.high_water = max(self.high_water, self.accepted - self.consumed)
        return 1

    def dequeue(self):
        if not self.items:
            return 0, -1
        self.consumed += 1
        return 1, self.items.pop(0)


# ----------------------------------------------------------------------
# Single-thread schedules: exact FIFO equality with the model
# ----------------------------------------------------------------------
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("e"), st.integers(1, 10_000)),
        st.tuples(st.just("d"), st.just(0)),
    ),
    min_size=1,
    max_size=24,
)


def _build_schedule_kernel(q: QueueLayout, ops, out: int) -> KernelFunction:
    """One thread runs the drawn schedule; op ``i`` records (flag, value)
    at ``out + 2 * i``."""
    k = KernelBuilder("tq_schedule")
    for i, (op, value) in enumerate(ops):
        cell = out + 2 * i
        if op == "e":
            ok = emit_try_enqueue(k, q, [value])
            k.st(cell, ok)
            k.st(cell, value, offset=1)
        else:

            def on_item(fields, ticket, cell=cell):
                k.st(cell, 1)
                k.st(cell, fields[0], offset=1)
                _finish(k, q)

            def on_miss(cell=cell):
                k.st(cell, 0)
                k.st(cell, -1, offset=1)

            emit_dequeue_sync(k, q, on_item, on_miss)
    k.exit()
    return KernelFunction("tq_schedule", k.build())


class TestScheduleDifferential:
    @settings(max_examples=15, deadline=None)
    @given(ops=_OPS, capacity=st.integers(1, 4))
    def test_schedule_matches_model(self, ops, capacity):
        # Tiny capacities against up-to-24-op schedules force overflow
        # drops, underflow misses and multiple ring wraparounds.
        model = ModelQueue(capacity)
        expected = []
        for op, value in ops:
            if op == "e":
                expected.append((model.try_enqueue(value), value))
            else:
                expected.append(model.dequeue())

        dev = _device()
        q = _make_queue(dev, capacity)
        out = dev.alloc(2 * len(ops))
        dev.register(_build_schedule_kernel(q, ops, out.addr))
        dev.launch("tq_schedule", grid=1, block=1)
        dev.synchronize()

        got = dev.download_ints(out.addr, 2 * len(ops))
        np.testing.assert_array_equal(
            got, np.array(expected, dtype=np.int64).reshape(-1)
        )
        c = _counters(dev, q)
        assert c["reserved"] == c["published"] == model.accepted
        assert c["claimed"] == c["finished"] == model.consumed
        assert c["dropped"] == model.dropped
        assert c["high_water"] == model.high_water <= capacity
        assert dev.sanitizer_report().clean, dev.sanitizer_report().format()

    def test_pinned_schedule_identical_on_both_cores(self):
        ops = [("e", 7), ("e", 9), ("d", 0), ("e", 11), ("d", 0), ("d", 0), ("d", 0)]
        results = []
        for fast in (True, False):
            dev = _device(fast)
            q = _make_queue(dev, 2)
            out = dev.alloc(2 * len(ops))
            dev.register(_build_schedule_kernel(q, ops, out.addr))
            dev.launch("tq_schedule", grid=1, block=1)
            dev.synchronize()
            assert dev.sanitizer_report().clean
            results.append(
                (list(dev.download_ints(out.addr, 2 * len(ops))), _counters(dev, q))
            )
        assert results[0] == results[1]


# ----------------------------------------------------------------------
# Concurrent grids: multiset conservation
# ----------------------------------------------------------------------
def _build_producer(q: QueueLayout, items: int) -> KernelFunction:
    """Every thread publishes ``items`` two-word records tagged by gtid."""
    k = KernelBuilder("tq_produce")
    gtid = k.gtid()
    with k.for_range(0, items) as j:
        value = k.iadd(k.imul(gtid, 100), j)
        emit_enqueue(k, q, [value, k.imul(value, 7)])
    k.exit()
    return KernelFunction("tq_produce", k.build())


def _build_consumer_sync(q: QueueLayout, out: int) -> KernelFunction:
    """Threads drain the queue; ticket-indexed stores need no coordination."""
    k = KernelBuilder("tq_consume")
    keep = k.mov(1)
    with k.while_(lambda: k.ne(keep, 0)):

        def on_item(fields, ticket):
            k.st(k.iadd(out, k.imul(ticket, 2)), fields[0])
            k.st(k.iadd(out, k.imul(ticket, 2)), fields[1], offset=1)
            _finish(k, q)

        def on_miss():
            k.mov(0, dst=keep)

        emit_dequeue_sync(k, q, on_item, on_miss)
    k.exit()
    return KernelFunction("tq_consume", k.build())


def _build_consumer_async(q: QueueLayout, out: int) -> KernelFunction:
    """Async drain: optimistic tickets, dead-ticket abandon at quiescence."""
    k = KernelBuilder("tq_consume_async")
    keep = k.mov(1)
    with k.while_(lambda: k.ne(keep, 0)):

        def on_item(fields, ticket):
            k.st(k.iadd(out, k.imul(ticket, 2)), fields[0])
            k.st(k.iadd(out, k.imul(ticket, 2)), fields[1], offset=1)
            _finish(k, q)

        def on_dead():
            k.mov(0, dst=keep)

        regs = emit_dequeue_async(k, q, on_item, on_dead)
        with k.if_(k.iand(k.eq(regs.got, 0), regs.quiescent)):
            k.mov(0, dst=keep)
    k.exit()
    return KernelFunction("tq_consume_async", k.build())


class TestConcurrentConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        blocks=st.integers(1, 3),
        threads=st.integers(1, 8),
        items=st.integers(0, 4),
        async_=st.booleans(),
    )
    def test_consumed_multiset_equals_enqueued(
        self, blocks, threads, items, async_
    ):
        total = blocks * threads * items
        dev = _device()
        q = _make_queue(dev, max(total, 1), record_words=2)
        out = dev.alloc(max(2 * total, 1))
        dev.register(_build_producer(q, items))
        builder = _build_consumer_async if async_ else _build_consumer_sync
        dev.register(builder(q, out.addr))
        dev.launch("tq_produce", grid=blocks, block=threads)
        dev.synchronize()
        name = "tq_consume_async" if async_ else "tq_consume"
        dev.launch(name, grid=blocks, block=threads)
        dev.synchronize()

        expected = sorted(
            (g * 100 + j, (g * 100 + j) * 7)
            for g in range(blocks * threads)
            for j in range(items)
        )
        got = dev.download_ints(out.addr, 2 * total) if total else []
        assert sorted(zip(got[0::2], got[1::2])) == expected
        c = _counters(dev, q)
        assert c["reserved"] == c["published"] == c["finished"] == total
        if async_:
            # Optimistic claims may overshoot, one dead ticket per
            # consumer thread at most.
            assert total <= c["claimed"] <= total + blocks * threads
        else:
            assert c["claimed"] == total
        assert c["dropped"] == 0
        assert c["high_water"] <= q.capacity
        assert dev.sanitizer_report().clean, dev.sanitizer_report().format()


# ----------------------------------------------------------------------
# Backpressure and wraparound across blocks
# ----------------------------------------------------------------------
def _build_pc_pair(q: QueueLayout, n: int, out: int) -> KernelFunction:
    """Block 0 produces ``n`` items through a tiny ring; block 1 consumes
    exactly ``n``, so the producer must block on slot release."""
    k = KernelBuilder("tq_pc_pair")
    ctaid = k.ctaid()

    def produce() -> None:
        with k.for_range(0, n) as j:
            emit_enqueue(k, q, [k.iadd(j, 1000)])

    def consume() -> None:
        done = k.mov(0)
        with k.while_(lambda: k.lt(done, n)):

            def on_item(fields, ticket):
                k.st(k.iadd(out, ticket), fields[0])
                _finish(k, q)
                k.iadd(done, 1, dst=done)

            emit_dequeue_sync(k, q, on_item)

    k.if_else(k.eq(ctaid, 0), produce, consume)
    k.exit()
    return KernelFunction("tq_pc_pair", k.build())


class TestBackpressureWraparound:
    def test_tiny_ring_backpressures_producer(self):
        # 10 records through a 2-slot ring: the ring wraps five times and
        # the producer can only ever be two tickets ahead of the consumer.
        n, capacity = 10, 2
        dev = _device()
        q = _make_queue(dev, capacity)
        out = dev.alloc(n)
        dev.register(_build_pc_pair(q, n, out.addr))
        dev.launch("tq_pc_pair", grid=2, block=1)
        dev.synchronize()
        np.testing.assert_array_equal(
            dev.download_ints(out.addr, n), np.arange(n) + 1000
        )
        c = _counters(dev, q)
        assert c["reserved"] == c["published"] == c["finished"] == n
        assert c["high_water"] <= capacity
        assert dev.sanitizer_report().clean, dev.sanitizer_report().format()
