"""Peephole optimizer: transformations and semantic preservation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import KernelFunction
from repro.errors import AssemblyError
from repro.isa import Imm, Opcode, Program
from repro.isa.optimizer import (
    constant_fold,
    dead_code_elimination,
    optimize,
    optimized_copy,
)

from tests.helpers import map_kernel, run_map_kernel
from tests.test_random_programs import _ast, emit, evaluate


def count_ops(program: Program, op: Opcode) -> int:
    return sum(1 for i in program.instructions if i.op == op)


class TestConstantFolding:
    def build(self, body):
        from repro import KernelBuilder

        k = KernelBuilder("t")
        body(k)
        return k.program  # unfinalized

    def test_folds_constant_chain(self):
        prog = self.build(lambda k: k.iadd(k.imul(k.mov(6), 7), 8))
        folded = constant_fold(prog)
        movs = [i for i in folded.instructions if i.op == Opcode.MOV]
        assert any(isinstance(i.a, Imm) and i.a.value == 50 for i in movs)
        assert count_ops(folded, Opcode.IMUL) == 0
        assert count_ops(folded, Opcode.IADD) == 0

    def test_identity_add_zero(self):
        prog = self.build(lambda k: k.iadd(k.tid(), 0))
        folded = constant_fold(prog)
        assert count_ops(folded, Opcode.IADD) == 0

    def test_multiply_by_zero(self):
        prog = self.build(lambda k: k.imul(k.tid(), 0))
        folded = constant_fold(prog)
        assert count_ops(folded, Opcode.IMUL) == 0

    def test_non_constant_untouched(self):
        prog = self.build(lambda k: k.iadd(k.tid(), k.tid()))
        folded = constant_fold(prog)
        assert count_ops(folded, Opcode.IADD) == 1

    def test_state_resets_at_labels(self):
        # A register constant before a label must not fold after it (a
        # branch may enter with a different value).
        from repro import KernelBuilder

        k = KernelBuilder("t")
        x = k.mov(5)
        with k.while_(lambda: k.lt(x, 10)):
            k.iadd(x, 1, dst=x)
        y = k.iadd(x, 2)  # x is NOT 5 here
        folded = constant_fold(k.program)
        adds = [i for i in folded.instructions if i.op == Opcode.IADD]
        assert len(adds) == 2  # neither add folded away


class TestDeadCode:
    def test_unused_result_removed(self):
        from repro import KernelBuilder

        k = KernelBuilder("t")
        k.imul(k.mov(3), 4)  # never used
        k.nop()
        cleaned = dead_code_elimination(k.program)
        assert count_ops(cleaned, Opcode.IMUL) == 0
        assert count_ops(cleaned, Opcode.NOP) == 1
        # One DCE pass keeps the mov (it was read by the removed imul);
        # a second pass cascades it away.
        cleaned2 = dead_code_elimination(cleaned)
        assert count_ops(cleaned2, Opcode.MOV) == 0

    def test_stores_never_removed(self):
        from repro import KernelBuilder

        k = KernelBuilder("t")
        k.st(k.mov(10), 42)
        cleaned = dead_code_elimination(k.program)
        assert count_ops(cleaned, Opcode.ST) == 1
        assert count_ops(cleaned, Opcode.MOV) == 1  # address is read

    def test_atomics_never_removed(self):
        from repro import KernelBuilder

        k = KernelBuilder("t")
        k.atom_add(k.mov(10), 1)  # result unread, but side-effecting
        cleaned = dead_code_elimination(k.program)
        assert count_ops(cleaned, Opcode.ATOM_ADD) == 1


class TestPipeline:
    def test_requires_unfinalized(self):
        prog = Program("t")
        prog.finalize()
        with pytest.raises(AssemblyError):
            optimize(prog)

    def test_optimized_copy_requires_finalized(self):
        with pytest.raises(AssemblyError):
            optimized_copy(Program("t"))

    def test_behavior_preserved_on_map_kernel(self):
        def body(k, v):
            base = k.imul(k.mov(3), k.mov(4))  # folds to 12
            waste = k.iadd(v, 99)  # dead
            return k.iadd(v, base)

        original = map_kernel("opt", body)
        optimized = KernelFunction("opt", optimized_copy(original.program))
        assert len(optimized.program) < len(original.program)
        data = np.arange(50)
        np.testing.assert_array_equal(
            run_map_kernel(original, data), run_map_kernel(optimized, data)
        )

    def test_register_demand_can_shrink(self):
        def body(k, v):
            k.imul(k.mov(3), k.mov(4))  # dead chain
            return k.mov(v)

        original = map_kernel("shrink", body)
        optimized_prog = optimized_copy(original.program)
        assert len(optimized_prog) < len(original.program)


class TestPropertyPreservation:
    @settings(max_examples=15, deadline=None)
    @given(
        nodes=_ast(depth=2),
        data=st.lists(st.integers(-25, 25), min_size=1, max_size=48),
    )
    def test_random_programs_unchanged_by_optimizer(self, nodes, data):
        def body(k, v):
            acc = k.mov(v)
            emit(k, acc, nodes)
            return acc

        original = map_kernel("rand_opt", body)
        optimized = KernelFunction("rand_opt", optimized_copy(original.program))
        arr = np.asarray(data, dtype=np.int64)
        np.testing.assert_array_equal(
            run_map_kernel(original, arr), run_map_kernel(optimized, arr)
        )
        # And the oracle agrees with both.
        expected = np.array([evaluate(int(v), nodes) for v in data], dtype=np.int64)
        np.testing.assert_array_equal(run_map_kernel(optimized, arr), expected)
