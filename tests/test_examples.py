"""Smoke tests: the shipped examples must run and verify themselves."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "verified against NumPy" in out
        assert "cycles" in out

    def test_assembler_and_tracing(self):
        out = run_example("assembler_and_tracing.py")
        assert "verified" in out
        assert "opcode profile" in out

    def test_relational_join(self):
        out = run_example("relational_join.py")
        assert "join_uniform" in out and "join_gaussian" in out
        assert "dtbl" in out

    @pytest.mark.slow
    def test_graph_traversal(self):
        out = run_example("graph_traversal.py")
        assert "dtbl" in out

    @pytest.mark.slow
    def test_occupancy_timeline(self):
        out = run_example("occupancy_timeline.py")
        assert "KDE entries occupied" in out

    @pytest.mark.slow
    def test_adaptive_mesh(self):
        out = run_example("adaptive_mesh.py")
        assert "match" in out.lower()
