"""White-box tests of the Section 4.2 scheduling pool (NAGEI / LAGEI)."""

import pytest

from repro import GPUConfig, KernelBuilder, KernelFunction
from repro.config import LatencyModel
from repro.dtbl.agt import AggregatedGroupEntry
from repro.dtbl.aggregation import AggLaunchRequest
from repro.sim.gpu import GPU
from repro.sim.stats import LaunchKind, LaunchRecord


def tiny_func(name="k", block_ok=True) -> KernelFunction:
    k = KernelBuilder(name)
    k.nop()
    k.exit()
    return KernelFunction(name, k.build())


def record(kind=LaunchKind.HOST_KERNEL) -> LaunchRecord:
    return LaunchRecord(kind, "k", 0, 1, 32)


def age(blocks=2) -> AggregatedGroupEntry:
    return AggregatedGroupEntry(
        (blocks, 1, 1), 100, record(LaunchKind.AGG_GROUP)
    )


def fresh_gpu() -> GPU:
    return GPU(config=GPUConfig.small(), latency=LatencyModel.ideal())


class TestNageiLagei:
    def make_entry(self, gpu):
        func = gpu.register_kernel(tiny_func())
        return gpu.distributor.allocate(func, (2, 1, 1), (32, 1, 1), 0, record(), None)

    def test_first_group_sets_both(self):
        gpu = fresh_gpu()
        entry = self.make_entry(gpu)
        g = age()
        entry.append_group(g)
        assert entry.nagei is g
        assert entry.lagei is g

    def test_chain_order(self):
        gpu = fresh_gpu()
        entry = self.make_entry(gpu)
        g1, g2, g3 = age(), age(), age()
        for g in (g1, g2, g3):
            entry.append_group(g)
        assert entry.nagei is g1
        assert entry.lagei is g3
        assert g1.next is g2 and g2.next is g3

    def test_nagei_advances_past_distributed(self):
        gpu = fresh_gpu()
        entry = self.make_entry(gpu)
        g1, g2 = age(blocks=1), age(blocks=1)
        entry.append_group(g1)
        entry.append_group(g2)
        g1.next_block = 1  # fully distributed
        entry.advance_nagei()
        assert entry.nagei is g2

    def test_nagei_repointed_when_pool_drained(self):
        # The paper's 'first scenario': all prior groups distributed and
        # NAGEI empty; a new group must become the new NAGEI even though
        # LAGEI still points at the drained tail.
        gpu = fresh_gpu()
        entry = self.make_entry(gpu)
        g1 = age(blocks=1)
        entry.append_group(g1)
        g1.next_block = 1
        entry.advance_nagei()
        assert entry.nagei is None
        g2 = age(blocks=1)
        entry.append_group(g2)
        assert entry.nagei is g2
        assert g1.next is g2  # chain kept intact

    def test_fully_distributed_requires_all_groups(self):
        gpu = fresh_gpu()
        entry = self.make_entry(gpu)
        entry.next_block = entry.total_blocks  # native done
        assert entry.fully_distributed
        g = age(blocks=2)
        entry.append_group(g)
        assert not entry.fully_distributed
        g.next_block = 2
        assert entry.fully_distributed

    def test_completed_counts_unlinked_groups(self):
        # A fully distributed group dropped from the NAGEI chain must
        # still hold the entry open while its TBs execute.
        gpu = fresh_gpu()
        entry = self.make_entry(gpu)
        entry.next_block = entry.total_blocks
        g = age(blocks=1)
        entry.append_group(g)
        g.next_block = 1
        g.exe_blocks = 1
        entry.agg_exe_blocks = 1
        entry.advance_nagei()
        assert entry.nagei is None
        assert not entry.completed
        entry.agg_exe_blocks = 0
        g.exe_blocks = 0
        assert entry.completed


class TestProcessAggregation:
    def test_match_links_group_and_marks(self):
        gpu = fresh_gpu()
        func = gpu.register_kernel(tiny_func())
        entry = gpu.distributor.allocate(
            func, (1, 1, 1), (32, 1, 1), 0, record(), None
        )
        request = AggLaunchRequest("k", 0, (3, 1, 1), (32, 1, 1), hw_tid=5)
        gpu.scheduler.process_aggregation([request], cycle=0)
        assert gpu.stats.agg_matched == 1
        assert entry.nagei is not None
        assert entry.nagei.total_blocks == 3
        assert entry.marked

    def test_block_shape_mismatch_falls_back(self):
        gpu = fresh_gpu()
        func = gpu.register_kernel(tiny_func())
        gpu.distributor.allocate(func, (1, 1, 1), (32, 1, 1), 0, record(), None)
        request = AggLaunchRequest("k", 0, (1, 1, 1), (64, 1, 1), hw_tid=5)
        gpu.scheduler.process_aggregation([request], cycle=0)
        assert gpu.stats.agg_unmatched == 1
        # Launched as a device kernel: with ideal dispatch latency it lands
        # straight in a second KDE entry.
        assert gpu.kmu.pending_count + gpu.distributor.occupied == 2

    def test_agt_allocation_tracked(self):
        gpu = fresh_gpu()
        func = gpu.register_kernel(tiny_func())
        gpu.distributor.allocate(func, (1, 1, 1), (32, 1, 1), 0, record(), None)
        requests = [
            AggLaunchRequest("k", 0, (1, 1, 1), (32, 1, 1), hw_tid=i)
            for i in range(5)
        ]
        gpu.scheduler.process_aggregation(requests, cycle=0)
        assert gpu.stats.agt_hash_hits == 5
        assert gpu.scheduler.agt.occupied == 5

    def test_hash_collision_spills(self):
        gpu = fresh_gpu()
        func = gpu.register_kernel(tiny_func())
        gpu.distributor.allocate(func, (1, 1, 1), (32, 1, 1), 0, record(), None)
        same_slot = gpu.config.agt_entries  # hw_tid aliases of 0
        requests = [
            AggLaunchRequest("k", 0, (1, 1, 1), (32, 1, 1), hw_tid=0),
            AggLaunchRequest("k", 0, (1, 1, 1), (32, 1, 1), hw_tid=same_slot),
        ]
        gpu.scheduler.process_aggregation(requests, cycle=0)
        assert gpu.stats.agt_hash_hits == 1
        assert gpu.stats.agt_hash_spills == 1

    def test_footprint_added_per_group(self):
        gpu = fresh_gpu()
        func = gpu.register_kernel(tiny_func())
        gpu.distributor.allocate(func, (1, 1, 1), (32, 1, 1), 0, record(), None)
        request = AggLaunchRequest("k", 0, (2, 1, 1), (32, 1, 1), hw_tid=1)
        gpu.scheduler.process_aggregation([request], cycle=0)
        assert gpu.stats.footprint_bytes == gpu.config.dtbl_pending_group_bytes
