"""Unit tests for the Aggregated Group Table and AGEs."""

import pytest

from repro.dtbl.agt import AggregatedGroupEntry, AggregatedGroupTable
from repro.errors import ConfigError
from repro.sim.stats import LaunchKind, LaunchRecord


def make_age(blocks=4) -> AggregatedGroupEntry:
    record = LaunchRecord(
        kind=LaunchKind.AGG_GROUP,
        kernel_name="k",
        launch_cycle=0,
        total_blocks=blocks,
        total_threads=blocks * 32,
    )
    return AggregatedGroupEntry((blocks, 1, 1), param_addr=100, record=record)


class TestHashAllocation:
    def test_hash_is_masked_tid(self):
        agt = AggregatedGroupTable(64)
        assert agt.hash_index(0) == 0
        assert agt.hash_index(63) == 63
        assert agt.hash_index(64) == 0
        assert agt.hash_index(65) == 1

    def test_alloc_success_and_collision(self):
        agt = AggregatedGroupTable(64)
        a = make_age()
        b = make_age()
        assert agt.try_alloc(5, a) is True
        assert a.in_agt and a.agt_index == 5
        # Same hashed slot: single-probe allocation fails (spill).
        assert agt.try_alloc(69, b) is False
        assert not b.in_agt

    def test_free_reopens_slot(self):
        agt = AggregatedGroupTable(64)
        a = make_age()
        agt.try_alloc(7, a)
        agt.free(a)
        assert agt.occupied == 0
        b = make_age()
        assert agt.try_alloc(7, b) is True

    def test_peak_tracking(self):
        agt = AggregatedGroupTable(64)
        entries = [make_age() for _ in range(10)]
        for i, age in enumerate(entries):
            agt.try_alloc(i, age)
        assert agt.peak_occupied == 10
        for age in entries:
            agt.free(age)
        assert agt.peak_occupied == 10
        assert agt.occupied == 0

    def test_free_spilled_group_is_noop(self):
        agt = AggregatedGroupTable(64)
        spilled = make_age()
        agt.free(spilled)  # never allocated; must not blow up
        assert agt.occupied == 0

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            AggregatedGroupTable(100)
        with pytest.raises(ConfigError):
            AggregatedGroupTable(0)


class TestAgeLifecycle:
    def test_distribution_progress(self):
        age = make_age(blocks=3)
        assert not age.fully_distributed
        age.next_block = 3
        assert age.fully_distributed
        age.exe_blocks = 2
        assert not age.done
        age.exe_blocks = 0
        assert age.done

    def test_linked_list(self):
        a, b, c = make_age(), make_age(), make_age()
        a.next = b
        b.next = c
        chain = []
        node = a
        while node:
            chain.append(node)
            node = node.next
        assert chain == [a, b, c]
