"""Section 4.3 overhead numbers."""

from repro.config import GPUConfig
from repro.dtbl.overhead import overhead_report


class TestOverhead:
    def test_agt_1024_is_20kb(self):
        report = overhead_report(GPUConfig.k20c())
        assert report.agt_sram_bytes == 20 * 1024

    def test_register_bytes_match_paper(self):
        report = overhead_report(GPUConfig.k20c())
        assert report.register_bytes == 1096

    def test_fraction_is_small(self):
        # Paper: about 0.5% of the shared memory + register area per SMX;
        # relative to all SMXs the fraction is well under 1%.
        report = overhead_report(GPUConfig.k20c())
        assert 0 < report.fraction_of_smx_storage < 0.01

    def test_scales_with_agt_size(self):
        small = overhead_report(GPUConfig.k20c().with_agt_entries(512))
        large = overhead_report(GPUConfig.k20c().with_agt_entries(2048))
        assert large.agt_sram_bytes == 4 * small.agt_sram_bytes

    def test_rows_render(self):
        rows = overhead_report(GPUConfig.k20c()).rows()
        assert any("AGT SRAM" in str(row[0]) for row in rows)
