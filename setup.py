"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs wheel for PEP 660 editable installs; this shim
lets `python setup.py develop` work offline.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
