#!/usr/bin/env python
"""BFS on a power-law graph under flat, CDP and DTBL execution.

This is the paper's motivating scenario (Section 3.1): vertex expansion
over a hub-heavy graph.  The flat implementation serializes each vertex's
neighbor loop inside one thread; CDP launches a device *kernel* per large
vertex; DTBL launches an aggregated *thread block* group instead.  The
example prints the metrics behind the paper's Figures 6-11 for all three.

Run:  python examples/graph_traversal.py
"""

from repro import ExecutionMode
from repro.workloads.bfs import BfsWorkload
from repro.workloads.datasets.graphs import citation_network


def main() -> None:
    graph = citation_network(n=1200, attach=4)
    degrees = graph.degrees()
    print(
        f"citation-style graph: {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges, max degree {degrees.max()}, "
        f"{(degrees >= 32).sum()} hub vertices spawn dynamic work"
    )
    print()
    header = (
        f"{'mode':8s} {'cycles':>10s} {'speedup':>8s} {'warp act%':>10s} "
        f"{'dram eff':>9s} {'occup%':>7s} {'launches':>9s} {'avg wait':>9s}"
    )
    print(header)
    print("-" * len(header))
    flat_cycles = None
    for mode in (ExecutionMode.FLAT, ExecutionMode.CDP, ExecutionMode.DTBL):
        workload = BfsWorkload("bfs_citation", mode, graph)
        stats = workload.execute(latency_scale=0.25).stats
        if flat_cycles is None:
            flat_cycles = stats.cycles
        print(
            f"{mode.value:8s} {stats.cycles:>10,} "
            f"{flat_cycles / stats.cycles:>8.2f} "
            f"{stats.warp_activity_pct:>10.1f} {stats.dram_efficiency:>9.3f} "
            f"{stats.smx_occupancy_pct:>7.2f} "
            f"{len(stats.dynamic_launches()):>9d} "
            f"{stats.avg_waiting_cycles:>9.0f}"
        )
    print()
    print("DTBL keeps CDP's control-flow/memory regularity gains but avoids")
    print("most of the launch overhead by coalescing thread blocks onto the")
    print("already-resident expansion kernel (paper Sections 4.4, 5.2).")


if __name__ == "__main__":
    main()
