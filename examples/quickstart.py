#!/usr/bin/env python
"""Quickstart: write a kernel, run it on the simulated GPU, read stats.

This example builds a SAXPY-like kernel with the KernelBuilder DSL,
launches it on a simulated Tesla K20c, verifies the result against NumPy,
and prints the simulator's performance counters.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Device, ExecutionMode, KernelBuilder, KernelFunction


def build_saxpy() -> KernelFunction:
    """out[i] = a * x[i] + y[i]  (integer fixed-point to keep it exact)."""
    k = KernelBuilder("saxpy")
    gtid = k.gtid()
    param = k.param()
    n = k.ld(param, offset=0)
    with k.if_(k.lt(gtid, n)):
        a = k.ld(param, offset=1)
        x = k.ld(param, offset=2)
        y = k.ld(param, offset=3)
        out = k.ld(param, offset=4)
        xi = k.ld(k.iadd(x, gtid))
        yi = k.ld(k.iadd(y, gtid))
        k.st(k.iadd(out, gtid), k.iadd(k.imul(a, xi), yi))
    k.exit()
    return KernelFunction("saxpy", k.build())


def main() -> None:
    device = Device(mode=ExecutionMode.FLAT)
    func = build_saxpy()
    device.register(func)
    print("Kernel listing:")
    print(func.program.disassemble())
    print()

    n = 4096
    a = 3
    x = np.arange(n)
    y = np.arange(n)[::-1].copy()
    x_addr = device.upload(x)
    y_addr = device.upload(y)
    out_addr = device.alloc(n)

    device.launch("saxpy", grid=(n + 255) // 256, block=256,
                  params=[n, a, x_addr, y_addr, out_addr])
    stats = device.synchronize()

    result = device.download_ints(out_addr, n)
    expected = a * x + y
    assert (result == expected).all(), "simulation produced a wrong result!"
    print(f"saxpy over {n} elements verified against NumPy")
    print()
    print("Simulator counters:")
    for key, value in stats.summary().items():
        print(f"  {key:24s} {value}")


if __name__ == "__main__":
    main()
