#!/usr/bin/env python
"""Skewed relational join: where dynamic parallelism pays off.

Probe-side hash join on uniform vs gaussian key distributions.  With
uniform keys every bucket is small and the flat kernel is already
balanced; gaussian keys concentrate thousands of matches in a few hot
buckets, starving most warp lanes in the flat kernel.  DTBL launches the
hot-bucket scans as aggregated thread blocks and restores warp activity —
the paper's join_gaussian result (Fig. 6: one of the largest warp
activity gains).

Run:  python examples/relational_join.py
"""

from repro import ExecutionMode
from repro.workloads.datasets.relations import join_tables
from repro.workloads.join import JoinWorkload


def main() -> None:
    for distribution in ("uniform", "gaussian"):
        data = join_tables(distribution, r_size=1600, s_size=1200)
        workload = JoinWorkload(f"join_{distribution}", ExecutionMode.FLAT, data)
        count, _ = workload.reference()
        print(f"--- join_{distribution}: |R|={data.r_size} |S|={data.s_size} "
              f"matches={count}")
        flat_cycles = None
        for mode in (ExecutionMode.FLAT, ExecutionMode.CDP, ExecutionMode.DTBL):
            stats = (
                JoinWorkload(f"join_{distribution}", mode, data)
                .execute(latency_scale=0.25)
                .stats
            )
            if flat_cycles is None:
                flat_cycles = stats.cycles
            print(
                f"  {mode.value:6s} cycles={stats.cycles:>9,} "
                f"speedup={flat_cycles/stats.cycles:5.2f} "
                f"warp_act={stats.warp_activity_pct:5.1f}% "
                f"launches={len(stats.dynamic_launches()):5d}"
            )
        print()


if __name__ == "__main__":
    main()
