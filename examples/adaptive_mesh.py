#!/usr/bin/env python
"""Adaptive mesh refinement with nested, self-coalescing launches.

AMR is the paper's Fig. 2a pattern: the refinement kernel launches *more
of itself* — every aggregated group coalesces back onto the same kernel,
so one Kernel Distributor entry absorbs an entire refinement cascade.
The example shows the cascade (cells refined per level) and compares the
launch mechanisms, including the 98%-style eligible-kernel match rate.

Run:  python examples/adaptive_mesh.py
"""

from repro import ExecutionMode
from repro.workloads.amr import AmrWorkload
from repro.workloads.datasets.mesh import amr_grid


def main() -> None:
    grid = amr_grid(side=24, hot_spots=5)
    workload = AmrWorkload("amr", ExecutionMode.FLAT, grid)
    counts, _checksum = workload.reference()
    print(
        f"energy grid {grid.side}x{grid.side}; refinement cascade: "
        + " -> ".join(f"level {lvl}: {cnt} cells" for lvl, cnt in enumerate(counts))
    )
    print()
    print(f"{'mode':8s} {'cycles':>10s} {'speedup':>8s} {'warp act%':>10s} "
          f"{'launches':>9s} {'match%':>7s} {'AGT spills':>11s}")
    flat_cycles = None
    for mode in (ExecutionMode.FLAT, ExecutionMode.CDP, ExecutionMode.DTBL):
        stats = AmrWorkload("amr", mode, grid).execute(latency_scale=0.25).stats
        if flat_cycles is None:
            flat_cycles = stats.cycles
        print(
            f"{mode.value:8s} {stats.cycles:>10,} {flat_cycles/stats.cycles:>8.2f} "
            f"{stats.warp_activity_pct:>10.1f} {len(stats.dynamic_launches()):>9d} "
            f"{100*stats.agg_match_rate:>7.1f} {stats.agt_hash_spills:>11d}"
        )
    print()
    print("Every DTBL group launched by amr_refine coalesces onto amr_refine")
    print("itself (Fig. 2a), which is why the match rate is ~100%.")


if __name__ == "__main__":
    main()
