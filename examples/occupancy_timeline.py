#!/usr/bin/env python
"""Watch the 32-entry Kernel Distributor ceiling bind CDP — and DTBL
slip past it.

Runs the skewed-join benchmark under CDP and DTBL with a timeline
sampler attached, then prints terminal sparklines of:

* resident warps (the Fig. 8 occupancy story);
* Kernel Distributor occupancy (CDP pins it at 32 during launch bursts;
  DTBL's groups coalesce onto a handful of entries);
* pending-launch memory footprint (the Fig. 10 story).

Run:  python examples/occupancy_timeline.py
"""

from repro import Device, ExecutionMode
from repro.sim.timeline import TimelineSampler
from repro.workloads.datasets.relations import join_tables
from repro.workloads.join import JoinWorkload


def run(mode: ExecutionMode):
    data = join_tables("gaussian", r_size=1600, s_size=1200)
    workload = JoinWorkload("join_gaussian", mode, data)
    device = Device(mode=mode, latency=mode.latency_model(0.25))
    sampler = TimelineSampler(device.gpu, interval=100)
    device.attach_tracer(sampler)
    for func in workload.build_kernels():
        device.register(func)
    workload.setup(device)
    workload.run(device)
    stats = device.synchronize()
    workload.check(device)
    return sampler, stats


def main() -> None:
    width = 60
    for mode in (ExecutionMode.CDP, ExecutionMode.DTBL):
        sampler, stats = run(mode)
        print(f"=== join_gaussian under {mode.value.upper()} "
              f"({stats.cycles:,} cycles) ===")
        print(f"  resident warps (peak {sampler.peak('resident_warps')}):")
        print(f"    [{sampler.sparkline('resident_warps', width)}]")
        print(f"  KDE entries occupied (peak {sampler.peak('kde_occupied')}/32):")
        print(f"    [{sampler.sparkline('kde_occupied', width)}]")
        if mode.uses_dtbl:
            print(f"  AGT entries occupied (peak {sampler.peak('agt_occupied')}):")
            print(f"    [{sampler.sparkline('agt_occupied', width)}]")
        print(f"  pending-launch footprint (peak "
              f"{sampler.peak('footprint_bytes'):,} B):")
        print(f"    [{sampler.sparkline('footprint_bytes', width)}]")
        print()
    print("CDP queues fine-grained kernels behind the 32-entry Kernel")
    print("Distributor and holds ~2KB per pending kernel; DTBL coalesces the")
    print("same launches onto the resident probe kernel's entry.")


if __name__ == "__main__":
    main()
