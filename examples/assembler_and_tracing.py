#!/usr/bin/env python
"""Tooling tour: write a kernel in assembly text, trace its execution,
and profile per-opcode issue counts.

Demonstrates three library facilities beyond the benchmark harness:

* the text assembler (`repro.isa.parse_program`) and its round-trip with
  `Program.to_assembly()`;
* the CUDA-style launch sugar (`repro.runtime.bind`);
* execution tracing (`repro.sim.tracing`).

Run:  python examples/assembler_and_tracing.py
"""

import numpy as np

from repro import Device, KernelFunction
from repro.isa import parse_program
from repro.runtime.sugar import bind
from repro.sim.tracing import InstructionTrace, OpcodeProfiler

COLLATZ_ASM = """
.kernel collatz_steps
; out[i] = number of Collatz steps from x[i] (bounded at 200)
read_special %r0 gtid
read_special %r1 param
ld %r2 %r1 off=0          ; n
setp %r3 %r0 %r2 lt
bra ->end @!%r3 reconv=end
ld %r4 %r1 off=1          ; x base
iadd %r5 %r4 %r0
ld %r6 %r5                ; v = x[gtid]
mov %r7 #0                ; steps
loop:
setp %r8 %r6 #1 gt
mov %r9 #200
setp %r10 %r7 %r9 lt
iand %r11 %r8 %r10
bra ->done @!%r11 reconv=done
imod %r12 %r6 #2
setp %r13 %r12 #0 eq
bra ->even @%r13 reconv=step
imul %r6 %r6 #3           ; odd: v = 3v + 1
iadd %r6 %r6 #1
bra ->step
even:
idiv %r6 %r6 #2           ; even: v = v / 2
step:
join
iadd %r7 %r7 #1
bra ->loop
done:
join
ld %r14 %r1 off=2         ; out base
iadd %r15 %r14 %r0
st %r15 %r7
end:
join
exit
"""


def collatz_reference(v: int) -> int:
    steps = 0
    while v > 1 and steps < 200:
        v = 3 * v + 1 if v % 2 else v // 2
        steps += 1
    return steps


def main() -> None:
    program = parse_program(COLLATZ_ASM)
    print("Round-trip check: reparsing canonical assembly is stable:",
          parse_program(program.to_assembly()).to_assembly() == program.to_assembly())
    print()

    device = Device()
    profiler = OpcodeProfiler()
    device.attach_tracer(profiler)

    kernel = bind(device, KernelFunction("collatz_steps", program))
    n = 256
    values = np.arange(1, n + 1)
    x = device.upload(values)
    out = device.alloc(n)
    kernel[(n + 127) // 128, 128](n, x, out)
    stats = device.synchronize()

    got = device.download_ints(out, n)
    expected = np.array([collatz_reference(int(v)) for v in values])
    assert (got == expected).all(), "Collatz step counts diverged from Python!"
    print(f"collatz over {n} values verified; {stats.cycles:,} cycles, "
          f"warp activity {stats.warp_activity_pct:.1f}% "
          f"(data-dependent loop trip counts diverge heavily)")
    print()
    print("Per-kernel opcode profile:")
    print(profiler.report())

    # Re-run with an instruction ring trace and show the tail.
    device2 = Device()
    trace = InstructionTrace(capacity=2000)
    device2.attach_tracer(trace)
    kernel2 = bind(device2, KernelFunction("collatz_steps", parse_program(COLLATZ_ASM)))
    x2 = device2.upload(values[:32])
    out2 = device2.alloc(32)
    kernel2[1, 32](32, x2, out2)
    device2.synchronize()
    print()
    print("Last 8 issued instructions (one warp):")
    print(trace.format(limit=8))


if __name__ == "__main__":
    main()
