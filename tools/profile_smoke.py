#!/usr/bin/env python
"""Profile smoke check: run one small workload under ``--profile`` and
verify the report is well-formed and consistent with the simulation.

Two layers:

1. **CLI**: runs ``python -m repro.workloads <bench> --profile
   --profile-json <tmp>`` in a subprocess and checks the JSON report
   parses and is internally consistent (per-opcode issues sum to the
   reported total; fused counters match the region list).
2. **In-process**: re-runs the same (benchmark, mode) with a
   :class:`~repro.sim.profiler.HotPathProfiler` installed and asserts
   the profiler's opcode issue / active-lane totals equal the
   simulation's ``SimStats`` counters *exactly* — the profiler must
   observe every issued instruction, fused or not.
3. **Vector core**: repeats the in-process check with
   ``GPUConfig.core="vector"`` and additionally requires that the
   profiler observed at least one batched group (``group_instructions
   > 0``) — i.e. the totals stay exact even when whole instruction
   regions are folded in via :meth:`on_group` rather than observed
   per-issue.

Exits non-zero on any mismatch.  Used by the CI ``profile-smoke`` step.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

BENCH = "bht"
MODE = "dtbl"
SCALE = 0.1


def fail(message: str) -> None:
    print(f"profile smoke: FAIL — {message}")
    sys.exit(1)


def check_cli_report() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "profile.json"
        command = [
            sys.executable, "-m", "repro.workloads", BENCH,
            "--mode", MODE, "--scale", str(SCALE),
            "--profile", "--profile-json", str(out), "--no-verify",
        ]
        result = subprocess.run(
            command, cwd=REPO, capture_output=True, text=True,
            env={**dict(__import__("os").environ), "PYTHONPATH": str(REPO / "src")},
        )
        if result.returncode != 0:
            fail(f"CLI run failed (exit {result.returncode}):\n{result.stderr[-2000:]}")
        if "== hot-path profile ==" not in result.stdout:
            fail("CLI output lacks the hot-path profile table")
        try:
            report = json.loads(out.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            fail(f"--profile-json report unreadable: {exc}")
        opcode_issues = sum(e["issues"] for e in report["opcodes"].values())
        if opcode_issues != report["total_issues"]:
            fail(
                f"per-opcode issues sum to {opcode_issues}, report says "
                f"{report['total_issues']}"
            )
        fused_issues = sum(e["fused_issues"] for e in report["opcodes"].values())
        if fused_issues != report["fused_instructions"]:
            fail(
                f"per-opcode fused issues sum to {fused_issues}, report "
                f"says {report['fused_instructions']}"
            )
        region_instrs = sum(
            r["executions"] * r["length"] for r in report["regions"]
        )
        if region_instrs != report["fused_instructions"]:
            fail(
                f"region executions imply {region_instrs} fused "
                f"instructions, report says {report['fused_instructions']}"
            )
        print(
            f"profile smoke: CLI report OK "
            f"({report['total_issues']:,} issues, "
            f"{report['fused_instructions']:,} fused in "
            f"{len(report['regions'])} regions)"
        )


def check_against_simstats(core=None) -> None:
    import dataclasses

    from repro.config import GPUConfig
    from repro.harness.runner import run_benchmark
    from repro.runtime.modes import ExecutionMode
    from repro.sim import profiler as profiler_mod

    config = None
    if core is not None:
        config = dataclasses.replace(GPUConfig.k20c(), core=core)
    label = f"SimStats match ({core or 'default'} core)"
    prof = profiler_mod.activate()
    try:
        run = run_benchmark(
            BENCH, ExecutionMode(MODE), scale=SCALE, config=config,
            use_cache=False, cache=None,
        )
    finally:
        profiler_mod.deactivate()
    stats = run.stats
    if prof.total_issues != stats.issued_instructions:
        fail(
            f"{label}: profiler saw {prof.total_issues} issues, SimStats "
            f"counted {stats.issued_instructions}"
        )
    if prof.total_lanes != stats.active_lane_sum:
        fail(
            f"{label}: profiler saw {prof.total_lanes} active lanes, "
            f"SimStats counted {stats.active_lane_sum}"
        )
    if core == "vector" and prof.group_instructions <= 0:
        fail(
            "vector core profiled without observing a single batched "
            "group — group dispatch never engaged"
        )
    extra = ""
    if core == "vector":
        extra = f", {prof.group_instructions:,} grouped"
    print(
        f"profile smoke: {label} OK "
        f"({stats.issued_instructions:,} issues, "
        f"{stats.active_lane_sum:,} lanes{extra})"
    )


def main() -> int:
    check_cli_report()
    check_against_simstats()
    check_against_simstats(core="vector")
    print("profile smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
