#!/usr/bin/env python
"""Regenerate the golden statistics corpus under ``tests/golden/``.

The corpus pins ``SimStats.to_dict()`` for a small benchmark grid (see
``PER_BENCHMARK_MODES``): ``bfs_citation`` across flat/cdp/dtbl, the
compiler-optimized cdpa/cons modes and the persistent-scheduler
persistent/persistent-async modes, ``bht`` across the original five, and
``sssp_citation`` pinning the persistent modes against flat — each on
all three simulation cores, at ``scale=0.08``, ``latency_scale=0.25``
on the K20c configuration.
``tests/test_golden_stats.py`` compares live simulations against these
files *exactly*: any counter drift, however small, fails the suite.

That is the point.  When a change intentionally alters simulated
behaviour (a new scheduling rule, a latency fix), regenerate the corpus
and commit the diff alongside the change, so the review shows precisely
which counters moved::

    PYTHONPATH=src python tools/golden_refresh.py

Accidental drift shows up as a test failure with no corpus diff to
explain it.
"""

import dataclasses
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.config import GPUConfig  # noqa: E402
from repro.runtime import ExecutionMode  # noqa: E402
from repro.workloads import get_benchmark  # noqa: E402

SCALE = 0.08
LATENCY_SCALE = 0.25
PER_BENCHMARK_MODES = {
    "bfs_citation": (
        "flat", "cdp", "dtbl", "cdpa", "cons", "persistent", "persistent-async",
    ),
    "bht": ("flat", "cdp", "dtbl", "cdpa", "cons"),
    "sssp_citation": ("flat", "persistent", "persistent-async"),
}
CORES = (("ref", "reference"), ("fast", "fast"), ("vector", "vector"))
GOLDEN_DIR = REPO / "tests" / "golden"


def golden_stats(bench: str, mode: str, core: str) -> dict:
    """Simulate one pinned grid point and return its stats dictionary."""
    workload = get_benchmark(bench, ExecutionMode(mode), SCALE)
    config = dataclasses.replace(GPUConfig.k20c(), core=core)
    result = workload.execute(config=config, latency_scale=LATENCY_SCALE)
    return result.stats.to_dict()


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for bench, modes in PER_BENCHMARK_MODES.items():
        for mode in modes:
            for tag, core in CORES:
                stats = golden_stats(bench, mode, core)
                path = GOLDEN_DIR / f"{bench}-{mode}-{tag}.json"
                path.write_text(
                    json.dumps(stats, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                print(f"wrote {path.relative_to(REPO)} "
                      f"(cycles={stats['cycles']:,})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
