#!/usr/bin/env python
"""Sweep-cache check: a warm harness rerun must simulate nothing.

Runs a scaled-down Figure 11 sweep twice through the harness CLI in
separate processes (so the in-process memo cannot help):

1. **cold** — ``--jobs 2`` against an empty cache directory: exercises
   the multi-process sweep engine and populates the cache;
2. **warm** — same invocation: must decode every cell from disk.

Fails if the rendered figures differ, if the warm run touched the cache
(any entry file changed), or if the warm run is not decisively faster
than the cold one (warm decodes JSON; cold simulates).

CI runs this as the ``sweep-cache`` job::

    PYTHONPATH=src python tools/sweep_cache_check.py
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent


def run_harness(cache_dir: pathlib.Path, scale: float, jobs: int) -> tuple[str, float]:
    command = [
        sys.executable, "-m", "repro.harness",
        "--figure", "11",
        "--scale", str(scale),
        "--jobs", str(jobs),
        "--cache-dir", str(cache_dir),
        "--quiet",
    ]
    start = time.perf_counter()
    result = subprocess.run(
        command, cwd=REPO, capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    elapsed = time.perf_counter() - start
    if result.returncode != 0:
        print(f"sweep-cache: harness FAILED (exit {result.returncode})")
        print(result.stdout)
        print(result.stderr, file=sys.stderr)
        sys.exit(result.returncode)
    return result.stdout, elapsed


def snapshot(cache_dir: pathlib.Path) -> dict:
    """Entry path -> (mtime_ns, size) for every cache file."""
    return {
        path: (path.stat().st_mtime_ns, path.stat().st_size)
        for path in sorted(cache_dir.rglob("*.json"))
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="warm run must be at least this many times faster",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-sweep-cache-") as tmp:
        cache_dir = pathlib.Path(tmp) / "cache"

        cold_out, cold_s = run_harness(cache_dir, args.scale, args.jobs)
        entries = snapshot(cache_dir)
        if not entries:
            print("sweep-cache: FAIL — cold run stored no cache entries")
            return 1
        print(f"sweep-cache: cold {cold_s:.1f}s, {len(entries)} entries stored")

        warm_out, warm_s = run_harness(cache_dir, args.scale, args.jobs)
        print(f"sweep-cache: warm {warm_s:.1f}s")

        if warm_out != cold_out:
            print("sweep-cache: FAIL — warm figure differs from cold figure")
            for cold_line, warm_line in zip(
                cold_out.splitlines(), warm_out.splitlines()
            ):
                if cold_line != warm_line:
                    print(f"  cold: {cold_line}")
                    print(f"  warm: {warm_line}")
            return 1

        if snapshot(cache_dir) != entries:
            print("sweep-cache: FAIL — warm run modified the cache "
                  "(it should only read; a changed entry means it simulated)")
            return 1

        if warm_s * args.min_speedup > cold_s:
            print(
                f"sweep-cache: FAIL — warm run not decisively faster "
                f"({warm_s:.1f}s vs {cold_s:.1f}s cold; "
                f"required {args.min_speedup:.0f}x)"
            )
            return 1

    print("sweep-cache: OK — warm rerun decoded everything from disk, "
          "figures identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
