#!/usr/bin/env python
"""Perf smoke check: time the Fig. 11 benchmark suite against a baseline.

Runs ``pytest benchmarks/test_fig11_speedup.py`` (which simulates the full
benchmark grid with the fast core) under ``time.perf_counter`` and compares
the wall-clock against the checked-in baseline in
``benchmarks/perf_baseline.json``.  Exits non-zero if the run regresses by
more than the baseline's ``max_regression`` fraction.

Refresh the baseline after intentional perf changes::

    PYTHONPATH=src python tools/perf_smoke.py --update

``--update`` also appends the measured wall-clock to ``BENCH_fig11.json``
at the repo root — the suite's perf trajectory, one entry per refresh
(i.e. per perf-relevant PR), oldest first.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import platform
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "perf_baseline.json"
TRAJECTORY = REPO / "BENCH_fig11.json"


def trajectory_seconds(entry) -> float:
    """Wall-clock seconds of one trajectory entry.

    Entries were bare floats before hosts/timestamps were recorded;
    both forms stay readable so the trajectory keeps its full history.
    """
    if isinstance(entry, dict):
        return float(entry["seconds"])
    return float(entry)


def record_trajectory(elapsed: float) -> None:
    """Append one suite timing to the perf trajectory file.

    Each new entry records the host it was measured on and an ISO-8601
    UTC timestamp — bare seconds spanning different machines made the
    trajectory misleading.  Older float-only entries are left as-is.
    """
    if TRAJECTORY.exists():
        doc = json.loads(TRAJECTORY.read_text())
    else:
        doc = {
            "description": "Fig. 11 benchmark-suite wall-clock trajectory "
                           "(appended by tools/perf_smoke.py --update, "
                           "oldest first; entries before host/timestamp "
                           "tracking are bare seconds)",
            "runs": [],
        }
    doc["runs"].append({
        "seconds": round(elapsed, 1),
        "host": platform.node() or "unknown",
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    })
    TRAJECTORY.write_text(json.dumps(doc, indent=2) + "\n")


def run_suite() -> float:
    command = [sys.executable, "-m", "pytest", "-q", str(REPO / "benchmarks" / "test_fig11_speedup.py")]
    start = time.perf_counter()
    result = subprocess.run(command, cwd=REPO)
    elapsed = time.perf_counter() - start
    if result.returncode != 0:
        print(f"perf smoke: benchmark suite FAILED (exit {result.returncode})")
        sys.exit(result.returncode)
    return elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline with this run"
    )
    args = parser.parse_args()

    baseline = json.loads(BASELINE.read_text())
    elapsed = run_suite()
    limit = baseline["seconds"] * (1.0 + baseline["max_regression"])
    print(
        f"perf smoke: {elapsed:.1f}s "
        f"(baseline {baseline['seconds']:.1f}s, limit {limit:.1f}s)"
    )

    if args.update:
        baseline["seconds"] = round(elapsed, 1)
        BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
        record_trajectory(elapsed)
        print(f"perf smoke: baseline updated to {baseline['seconds']}s "
              f"(appended to {TRAJECTORY.name})")
        return 0

    if elapsed > limit:
        print(
            f"perf smoke: REGRESSION — exceeded the baseline by "
            f"{elapsed / baseline['seconds'] - 1.0:+.0%} "
            f"(allowed {baseline['max_regression']:.0%}). If intentional, "
            "refresh with tools/perf_smoke.py --update"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
