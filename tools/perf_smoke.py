#!/usr/bin/env python
"""Perf smoke check: time the Fig. 11 benchmark suite against a baseline.

Runs ``pytest benchmarks/test_fig11_speedup.py`` (which simulates the full
benchmark grid with the fast core) under ``time.perf_counter`` and compares
the wall-clock against the checked-in baseline in
``benchmarks/perf_baseline.json``.  Exits non-zero if the run regresses by
more than the baseline's ``max_regression`` fraction.

Refresh the baseline after intentional perf changes::

    PYTHONPATH=src python tools/perf_smoke.py --update
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "perf_baseline.json"


def run_suite() -> float:
    command = [sys.executable, "-m", "pytest", "-q", str(REPO / "benchmarks" / "test_fig11_speedup.py")]
    start = time.perf_counter()
    result = subprocess.run(command, cwd=REPO)
    elapsed = time.perf_counter() - start
    if result.returncode != 0:
        print(f"perf smoke: benchmark suite FAILED (exit {result.returncode})")
        sys.exit(result.returncode)
    return elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline with this run"
    )
    args = parser.parse_args()

    baseline = json.loads(BASELINE.read_text())
    elapsed = run_suite()
    limit = baseline["seconds"] * (1.0 + baseline["max_regression"])
    print(
        f"perf smoke: {elapsed:.1f}s "
        f"(baseline {baseline['seconds']:.1f}s, limit {limit:.1f}s)"
    )

    if args.update:
        baseline["seconds"] = round(elapsed, 1)
        BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"perf smoke: baseline updated to {baseline['seconds']}s")
        return 0

    if elapsed > limit:
        print(
            f"perf smoke: REGRESSION — exceeded the baseline by "
            f"{elapsed / baseline['seconds'] - 1.0:+.0%} "
            f"(allowed {baseline['max_regression']:.0%}). If intentional, "
            "refresh with tools/perf_smoke.py --update"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
