#!/usr/bin/env python
"""Perf smoke check: time the Fig. 11 benchmark suite against a baseline.

Runs ``pytest benchmarks/test_fig11_speedup.py`` (which simulates the full
benchmark grid) under ``time.perf_counter`` and compares the wall-clock
against the checked-in baseline in ``benchmarks/perf_baseline.json``.
Exits non-zero if the run regresses by more than the baseline's
``max_regression`` fraction — but only when the baseline was measured on
*this* host: wall-clock seconds from one machine say nothing about
another, so a host mismatch downgrades the gate to a warning.

``--core`` selects the execution core for the suite (exported to the
pytest subprocess as ``REPRO_BENCH_CORE``; see ``benchmarks/conftest.py``).

Refresh the baseline after intentional perf changes::

    PYTHONPATH=src python tools/perf_smoke.py --update

``--update`` also appends the measured wall-clock to ``BENCH_fig11.json``
at the repo root — the suite's perf trajectory, one entry per refresh
(i.e. per perf-relevant PR), oldest first — and normalizes any legacy
bare-float entries (recorded before hosts and timestamps were tracked)
into ``{seconds, host, timestamp}`` records with ``host: "unknown"``.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "perf_baseline.json"
TRAJECTORY = REPO / "BENCH_fig11.json"


def this_host() -> str:
    return platform.node() or "unknown"


def trajectory_seconds(entry) -> float:
    """Wall-clock seconds of one trajectory entry.

    Entries were bare floats before hosts/timestamps were recorded;
    both forms stay readable so the trajectory keeps its full history.
    """
    if isinstance(entry, dict):
        return float(entry["seconds"])
    return float(entry)


def trajectory_host(entry) -> str:
    """Host one trajectory entry was measured on ("unknown" for legacy
    bare-float entries, which predate host tracking)."""
    if isinstance(entry, dict):
        return entry.get("host") or "unknown"
    return "unknown"


def normalized_entry(entry) -> dict:
    """One-shot migration of a legacy bare-float entry to record form."""
    if isinstance(entry, dict):
        return entry
    return {"seconds": float(entry), "host": "unknown", "timestamp": None}


def trajectory_trend(runs) -> None:
    """Print the trajectory, comparing only adjacent same-host entries.

    A wall-clock ratio is meaningful only between two runs on the same
    machine; across a host switch (or against a legacy entry with no
    recorded host) it measures the hardware, not the code, so those
    adjacencies print a warning instead of a speedup.
    """
    prev = None
    for entry in runs:
        seconds = trajectory_seconds(entry)
        host = trajectory_host(entry)
        core = entry.get("core", "fast") if isinstance(entry, dict) else "fast"
        line = f"perf trajectory: {seconds:7.1f}s  [{host}] core={core}"
        if prev is not None:
            prev_seconds, prev_host = prev
            if host != "unknown" and host == prev_host:
                ratio = prev_seconds / seconds if seconds else float("inf")
                line += f"  {ratio:.2f}x vs previous"
            else:
                line += (f"  (host switch from [{prev_host}] — "
                         "not comparable)")
        print(line)
        prev = (seconds, host)


def record_trajectory(elapsed: float, core: str) -> None:
    """Append one suite timing to the perf trajectory file.

    Each new entry records the host it was measured on, an ISO-8601 UTC
    timestamp and the execution core the suite ran with — bare seconds
    spanning different machines made the trajectory misleading.  Legacy
    float-only entries are migrated to records on the way through.
    """
    if TRAJECTORY.exists():
        doc = json.loads(TRAJECTORY.read_text())
    else:
        doc = {"runs": []}
    doc["description"] = (
        "Fig. 11 benchmark-suite wall-clock trajectory (appended by "
        "tools/perf_smoke.py --update, oldest first; entries migrated "
        'from before host/timestamp tracking carry host "unknown")'
    )
    doc["runs"] = [normalized_entry(entry) for entry in doc["runs"]]
    doc["runs"].append({
        "seconds": round(elapsed, 1),
        "host": this_host(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "core": core,
    })
    TRAJECTORY.write_text(json.dumps(doc, indent=2) + "\n")


def run_suite(core: str) -> float:
    command = [
        sys.executable, "-m", "pytest", "-q",
        str(REPO / "benchmarks" / "test_fig11_speedup.py"),
    ]
    env = dict(os.environ)
    env["REPRO_BENCH_CORE"] = core
    start = time.perf_counter()
    result = subprocess.run(command, cwd=REPO, env=env)
    elapsed = time.perf_counter() - start
    if result.returncode != 0:
        print(f"perf smoke: benchmark suite FAILED (exit {result.returncode})")
        sys.exit(result.returncode)
    return elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline with this run"
    )
    parser.add_argument(
        "--core",
        default=os.environ.get("REPRO_BENCH_CORE", "fast"),
        choices=("reference", "fast", "vector"),
        help="execution core for the suite (default: fast, or REPRO_BENCH_CORE)",
    )
    args = parser.parse_args()

    baseline = json.loads(BASELINE.read_text())
    elapsed = run_suite(args.core)
    limit = baseline["seconds"] * (1.0 + baseline["max_regression"])
    print(
        f"perf smoke: {elapsed:.1f}s with core={args.core} "
        f"(baseline {baseline['seconds']:.1f}s, limit {limit:.1f}s)"
    )

    if TRAJECTORY.exists():
        trajectory_trend(json.loads(TRAJECTORY.read_text())["runs"])

    if args.update:
        baseline["seconds"] = round(elapsed, 1)
        baseline["host"] = this_host()
        baseline["core"] = args.core
        BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
        record_trajectory(elapsed, args.core)
        print(f"perf smoke: baseline updated to {baseline['seconds']}s "
              f"(appended to {TRAJECTORY.name})")
        return 0

    baseline_host = baseline.get("host")
    if baseline_host != this_host():
        print(
            f"perf smoke: WARNING — baseline was measured on "
            f"[{baseline_host or 'unknown'}] but this is [{this_host()}]; "
            "wall-clock gate skipped.  Run tools/perf_smoke.py --update "
            "to re-anchor the baseline on this host."
        )
        return 0
    if elapsed > limit:
        print(
            f"perf smoke: REGRESSION — exceeded the baseline by "
            f"{elapsed / baseline['seconds'] - 1.0:+.0%} "
            f"(allowed {baseline['max_regression']:.0%}). If intentional, "
            "refresh with tools/perf_smoke.py --update"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
