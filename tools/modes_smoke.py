#!/usr/bin/env python
"""Modes smoke check: one workload under the full 9-mode grid.

Runs a small benchmark under every :class:`ExecutionMode` with the
sanitizer on and result verification enabled (each run's output buffers
are compared against the host reference — the flat-equality guarantee),
then cross-checks the stats for the orderings the platform promises:

* flat issues no dynamic launches; every dynamic mode's cycle count is
  positive and its launch counters are internally consistent;
* an ideal mode never runs slower than its measured twin (cdpi <= cdp,
  dtbli <= dtbl);
* the compiler-optimized modes (cdpa, cons) issue **at most** as many
  device launches as plain cdp — the whole point of aggregation;
* cons never uses more child blocks than cdpa for the same work —
  consolidation packs partial blocks denser.

Exits non-zero with a per-mode table on any violation.
"""

from __future__ import annotations

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import dataclasses  # noqa: E402

from repro.config import GPUConfig  # noqa: E402
from repro.runtime import ExecutionMode  # noqa: E402
from repro.workloads import get_benchmark  # noqa: E402

BENCHMARK = "bfs_cage15"
SCALE = 0.2  # large enough that the DFP thresholds actually fire
LATENCY_SCALE = 0.25


def simulate(mode: ExecutionMode):
    workload = get_benchmark(BENCHMARK, mode, SCALE)
    config = dataclasses.replace(GPUConfig.k20c(), sanitize=True)
    result = workload.execute(
        config=config, latency_scale=LATENCY_SCALE, verify=True
    )
    return result.stats


def main() -> int:
    stats = {}
    for mode in ExecutionMode.comparison_order():
        stats[mode] = simulate(mode)
        dyn = len(stats[mode].dynamic_launches())
        print(
            f"  {BENCHMARK} {mode.value:6s} "
            f"cycles={stats[mode].cycles:>9,}  dynamic_launches={dyn}"
        )

    def cycles(mode):
        return stats[mode].cycles

    def launches(mode):
        return len(stats[mode].dynamic_launches())

    def blocks(mode):
        return sum(r.total_blocks for r in stats[mode].dynamic_launches())

    failures = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    for mode in stats:
        check(cycles(mode) > 0, f"{mode.value}: no cycles simulated")
    check(launches(ExecutionMode.FLAT) == 0, "flat issued dynamic launches")
    check(
        launches(ExecutionMode.CDP) > 0,
        f"cdp issued no dynamic launches at scale {SCALE} — the smoke "
        "check needs a scale where the DFP thresholds fire",
    )
    check(
        cycles(ExecutionMode.CDP_IDEAL) <= cycles(ExecutionMode.CDP),
        "ideal cdp ran slower than measured cdp",
    )
    check(
        cycles(ExecutionMode.DTBL_IDEAL) <= cycles(ExecutionMode.DTBL),
        "ideal dtbl ran slower than measured dtbl",
    )
    for mode in (ExecutionMode.CDP_AGG, ExecutionMode.CONSOLIDATED):
        check(
            launches(mode) <= launches(ExecutionMode.CDP),
            f"{mode.value} issued more launches than plain cdp "
            f"({launches(mode)} > {launches(ExecutionMode.CDP)})",
        )
    check(
        blocks(ExecutionMode.CONSOLIDATED) <= blocks(ExecutionMode.CDP_AGG),
        "cons used more child blocks than cdpa "
        f"({blocks(ExecutionMode.CONSOLIDATED)} > "
        f"{blocks(ExecutionMode.CDP_AGG)})",
    )

    if failures:
        print("modes smoke: FAILED")
        for message in failures:
            print(f"  - {message}")
        return 1
    print(f"modes smoke: OK ({len(stats)} modes, outputs verified, "
          "sanitizer clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
