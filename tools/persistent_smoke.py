#!/usr/bin/env python
"""Persistent-scheduler smoke check (CI gate for the Atos-baseline modes).

Runs a small set of graph benchmarks under ``flat``, ``persistent`` and
``persistent-async`` with the sanitizer on and result verification
enabled, then cross-checks the shape the persistent runtime promises:

* persistent modes issue **zero** device-side dynamic launches — every
  canonical CDP launch site was rewritten into task-queue pushes, and
  the resident worker grid replaces the requested kernels (a drained
  queue is separately asserted inside ``Workload._execute``);
* the software scheduler is not free: persistent modes execute more
  instructions than flat for the same traversal (spin polling, claim
  CAS, publish/finish atomics) — the Section 6 overhead story;
* every run's outputs match the host reference (the flat-equality
  guarantee) and the sanitizer comes back clean, or ``execute`` raises.

Exits non-zero with a per-run table on any violation.
"""

from __future__ import annotations

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import dataclasses  # noqa: E402

from repro.config import GPUConfig  # noqa: E402
from repro.runtime import ExecutionMode  # noqa: E402
from repro.workloads import get_benchmark  # noqa: E402

BENCHMARKS = ("bfs_cage15", "sssp_citation", "bht")
MODES = ("flat", "persistent", "persistent-async")
SCALE = 0.1
LATENCY_SCALE = 0.25


def simulate(bench: str, mode: ExecutionMode):
    workload = get_benchmark(bench, mode, SCALE)
    config = dataclasses.replace(GPUConfig.k20c(), sanitize=True)
    result = workload.execute(
        config=config, latency_scale=LATENCY_SCALE, verify=True
    )
    return result.stats


def main() -> int:
    failures = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    for bench in BENCHMARKS:
        stats = {}
        for name in MODES:
            mode = ExecutionMode.parse(name)
            stats[name] = simulate(bench, mode)
            dyn = len(stats[name].dynamic_launches())
            print(
                f"  {bench:14s} {name:16s} "
                f"cycles={stats[name].cycles:>9,}  "
                f"instr={stats[name].issued_instructions:>9,}  "
                f"dynamic_launches={dyn}"
            )
        for name in MODES:
            check(stats[name].cycles > 0, f"{bench}/{name}: no cycles simulated")
        for name in ("persistent", "persistent-async"):
            check(
                len(stats[name].dynamic_launches()) == 0,
                f"{bench}/{name}: launch sites survived the persist rewrite",
            )
            check(
                stats[name].issued_instructions
                > stats["flat"].issued_instructions,
                f"{bench}/{name}: software scheduling executed no more "
                "instructions than flat — the queue protocol is not running",
            )

    if failures:
        print("persistent smoke: FAILED")
        for message in failures:
            print(f"  - {message}")
        return 1
    print(
        f"persistent smoke: OK ({len(BENCHMARKS)} benchmarks x "
        f"{len(MODES)} modes, outputs verified, queues drained, "
        "sanitizer clean)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
