#!/usr/bin/env python
"""CI smoke: boot the daemon, run a small sweep through it, rerun warm.

Checks the full serving loop end to end:

1. start ``python -m repro.serve`` on an ephemeral port and discover the
   address from its startup line;
2. submit a small sweep over the client, stream each job's NDJSON
   lifecycle events, and require the ``queued -> started -> done``
   progression;
3. fetch every result and cross-check it against a direct in-process
   :func:`repro.exec.run_job` of the same spec (bit-identical stats);
4. resubmit the same sweep: every job must come back ``source="cache"``
   without occupying a worker (the daemon's shared warm cache);
5. ``POST /shutdown`` and require a clean daemon exit code.

Any failure exits nonzero with a diagnostic.
"""

import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import os  # noqa: E402
import select  # noqa: E402

from repro.exec import JobSpec, run_job  # noqa: E402
from repro.runtime import ExecutionMode  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

SCALE = 0.05
LATENCY_SCALE = 0.25
SPECS = [
    JobSpec.create("bht", ExecutionMode.FLAT, SCALE, LATENCY_SCALE),
    JobSpec.create("bht", ExecutionMode.DTBL, SCALE, LATENCY_SCALE),
    JobSpec.create("bfs_citation", ExecutionMode.DTBL, SCALE, LATENCY_SCALE),
]


def start_daemon(workdir: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve", "--port", "0",
            "--workers", "2",
            "--cache-dir", str(Path(workdir) / "cache"),
            "--checkpoint-dir", str(Path(workdir) / "ckpt"),
            "--spool-dir", str(Path(workdir) / "spool"),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        ready, _, _ = select.select([proc.stdout], [], [], 0.2)
        if not ready:
            if proc.poll() is not None:
                print(f"FAIL: daemon died on startup:\n{proc.stdout.read()}")
                return None, None
            continue
        line = proc.stdout.readline()
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    print("FAIL: daemon never printed its address")
    return None, None


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as workdir:
        proc, port = start_daemon(workdir)
        if proc is None:
            return 1
        try:
            client = ServeClient(port=port, client="ci", timeout=60.0)

            # Cold sweep: every job simulates, events stream in order.
            infos = client.submit_sweep(SPECS)
            for spec, info in zip(SPECS, infos):
                events = [e["event"] for e in client.events(info["id"])]
                if events[0] != "queued" or "started" not in events \
                        or events[-1] != "done":
                    print(f"FAIL: {spec.label()} bad event stream: {events}")
                    return 1
                served = client.result(info["id"])
                direct = run_job(spec)
                if served.stats.to_dict() != direct.stats.to_dict():
                    print(f"FAIL: {spec.label()} daemon result differs "
                          f"from a direct run")
                    return 1
                print(f"[cold] {spec.label()}: {served.cycles:,} cycles "
                      f"(source={served.source}, events={events})")

            # Warm sweep: bit-identical results straight from the cache.
            for spec, info in zip(SPECS, client.submit_sweep(SPECS)):
                if info["status"] != "done" or info["source"] != "cache":
                    print(f"FAIL: warm {spec.label()} not served from "
                          f"cache: {info['status']}/{info['source']}")
                    return 1
                print(f"[warm] {spec.label()}: source=cache")

            stats = client.status()["stats"]
            if stats["cache_hits"] != len(SPECS):
                print(f"FAIL: expected {len(SPECS)} cache hits, "
                      f"got {stats['cache_hits']}")
                return 1

            client.shutdown()
            proc.wait(timeout=30)
            if proc.returncode != 0:
                print(f"FAIL: daemon exited with {proc.returncode}")
                return 1
            print("serve smoke: PASS")
            return 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
