#!/usr/bin/env python
"""CI smoke: interrupt one Fig. 11 simulation mid-run, then resume it.

One (benchmark, mode) point from the paper's speedup grid runs three
times on each simulation core:

1. **clean** — uninterrupted, no checkpointing: the golden payload;
2. **interrupted** — checkpointing every few thousand cycles, killed by
   an exception raised from the first checkpoint callback (after the
   file landed on disk, exactly like a crashed sweep worker);
3. **resumed** — ``resume=True`` against the file the kill left behind.

The resumed payload must equal the clean payload bit-for-bit, and the
checkpoint file must be cleaned up on success.  Any difference exits
nonzero with a per-counter diff.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import tempfile  # noqa: E402
import dataclasses  # noqa: E402

from repro.config import GPUConfig  # noqa: E402
from repro.exec import JobSpec, run_job  # noqa: E402
from repro.runtime import ExecutionMode  # noqa: E402
from repro.state import checkpoint_path_for  # noqa: E402

BENCH = "bfs_citation"
MODE = ExecutionMode.DTBL
SCALE = 0.1
LATENCY_SCALE = 0.25
CKPT_EVERY = 8_000


class Interrupt(Exception):
    pass


def _bomb(doc):
    raise Interrupt()


def smoke_one(fast: bool) -> bool:
    core = "fast" if fast else "ref"
    config = dataclasses.replace(GPUConfig.k20c(), core=("fast" if fast else "reference"))
    job = JobSpec.create(BENCH, MODE, SCALE, LATENCY_SCALE, config=config)
    ckdir = tempfile.mkdtemp(prefix="repro-ckpt-smoke-")
    path = checkpoint_path_for(ckdir, job.fingerprint())
    ck_job = job.with_policy(
        checkpoint_every=CKPT_EVERY, checkpoint_dir=ckdir
    )

    clean = run_job(job).to_payload()
    try:
        run_job(ck_job, on_checkpoint=_bomb)
    except Interrupt:
        pass
    else:
        print(f"[{core}] FAIL: the run never reached a checkpoint "
              f"(checkpoint_every={CKPT_EVERY} too large?)")
        return False
    if not path.exists():
        print(f"[{core}] FAIL: interrupt left no checkpoint at {path}")
        return False

    resumed = run_job(ck_job.with_policy(resume=True)).to_payload()
    if resumed["stats"] != clean["stats"]:
        golden, live = clean["stats"], resumed["stats"]
        drifted = {
            key: (golden.get(key), live.get(key))
            for key in set(golden) | set(live)
            if golden.get(key) != live.get(key)
        }
        print(f"[{core}] FAIL: resumed stats differ from the clean run; "
              f"changed counters (clean, resumed): {drifted}")
        return False
    if path.exists():
        print(f"[{core}] FAIL: checkpoint not removed after completion")
        return False
    print(f"[{core}] {BENCH} {MODE.value} scale={SCALE}: interrupt + "
          f"resume bit-identical ({clean['stats']['cycles']:,} cycles)")
    return True


def main() -> int:
    ok = True
    for fast in (False, True):
        ok = smoke_one(fast) and ok
    print("checkpoint smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
