"""Exception hierarchy for the repro package.

Every error raised by the simulator, the ISA toolchain, the device runtime,
or the workloads derives from :class:`ReproError` so callers can catch one
base type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid simulator or latency-model configuration."""


class IsaError(ReproError):
    """Base class for ISA toolchain errors."""


class AssemblyError(IsaError):
    """A program could not be assembled (bad operand, duplicate label...)."""


class ExecutionError(IsaError):
    """A functional-execution fault (bad opcode, unresolved label...)."""


class MemoryError_(ReproError):
    """A simulated-memory fault (out-of-bounds access, allocator overflow).

    Named with a trailing underscore to avoid shadowing the Python builtin.
    """


class DeviceError(ReproError):
    """An operation on a closed (or otherwise unusable) Device."""


class LaunchError(ReproError):
    """An invalid host- or device-side kernel/aggregated-group launch."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state or a watchdog limit."""


class WorkloadError(ReproError):
    """A workload was misconfigured or produced an incorrect result."""
