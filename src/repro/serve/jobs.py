"""Job management for the :mod:`repro.serve` daemon.

:class:`JobManager` owns everything between "a client submitted a
:class:`~repro.exec.JobSpec`" and "the result payload is available":

* a **priority queue** — submissions carry an integer priority; the
  highest-priority queued job runs next (FIFO within a priority);
* **per-client quotas** — each client name may have at most
  ``ServeConfig.quota`` non-terminal jobs in the daemon; submissions over
  the quota raise :class:`QuotaExceeded` (the server maps it to a
  ``429 Too Many Requests``);
* a **shared warm result cache** — one
  :class:`~repro.exec.cache.ResultCache` serves every client: a
  submission whose fingerprint is already on disk completes immediately
  (``source="cache"``) without occupying a worker;
* **leader/follower dedup** — a submission whose fingerprint matches a
  queued or running job becomes a *follower*: it consumes no worker and
  completes with the leader's payload (``source="shared"``);
* **process workers** — up to ``ServeConfig.workers`` jobs simulate
  concurrently, each in its own ``multiprocessing`` process running
  :func:`~repro.exec.jobspec.run_job` (the same single execution path as
  the CLIs and the sweep engine, which is what makes daemon results
  bit-identical to one-shot runs).  Workers spool their result to a
  private JSON file; the event loop watches each process sentinel with
  ``loop.add_reader`` — no polling;
* **checkpoint-backed preemption** — when every worker is busy and a
  higher-priority job arrives, the lowest-priority running job is
  killed and requeued with ``resume=True``.  The daemon stamps its
  checkpoint policy onto specs that carry none, so the victim resumes
  from its last periodic snapshot (:mod:`repro.state.snapshot`) and —
  because checkpoint/restore is bit-identical and the simulation is
  deterministic — finishes with exactly the ``SimStats`` an undisturbed
  run produces.

Everything runs on one asyncio event loop thread; handlers never block
on simulation work.

Test hook: ``REPRO_SERVE_TEST_CKPT_SLEEP`` (seconds) makes *worker
processes* sleep at every checkpoint, stretching wall time
deterministically without touching simulated state — the preemption
tests use it to keep a victim alive long enough to be preempted.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..exec import DEFAULT_CACHE_DIR, JobSpec, ResultCache, run_job
from ..exec.pool import _resumable

#: Default directory for daemon checkpoint files.
DEFAULT_SERVE_CHECKPOINT_DIR = ".repro-serve/checkpoints"
#: Default directory for worker result spool files.
DEFAULT_SERVE_SPOOL_DIR = ".repro-serve/spool"
#: Default checkpoint interval stamped onto submitted specs (cycles).
DEFAULT_SERVE_CHECKPOINT_EVERY = 20_000

#: Job states a client can observe.
TERMINAL = frozenset({"done", "failed", "cancelled"})


class QuotaExceeded(RuntimeError):
    """A client exceeded its concurrent-job quota (HTTP 429)."""


class UnknownJob(KeyError):
    """No job with that id (HTTP 404)."""


@dataclass
class ServeConfig:
    """Daemon policy knobs (see ``python -m repro.serve --help``)."""

    workers: int = 2
    #: Max non-terminal jobs per client name.
    quota: int = 8
    #: Result cache directory; ``None`` disables the shared cache.
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR
    #: Checkpoint policy stamped onto specs that carry none.  Periodic
    #: checkpoints are what makes preemption cheap; ``None`` disables
    #: stamping (specs may still bring their own policy).
    checkpoint_every: Optional[int] = DEFAULT_SERVE_CHECKPOINT_EVERY
    checkpoint_dir: str = DEFAULT_SERVE_CHECKPOINT_DIR
    spool_dir: str = DEFAULT_SERVE_SPOOL_DIR
    #: Infrastructure retries: a worker that dies without producing a
    #: result (OOM kill, crash) is re-run, resuming from its checkpoint.
    worker_retries: int = 1


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=path.name, suffix=".tmp", dir=path.parent)
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def _serve_worker(spec_data: dict, spool_path: str) -> None:
    """Worker-process entry: run one spec, spool the outcome as JSON.

    The spool file is the only channel back to the daemon; it is written
    atomically so the parent never reads a half-written result.  All
    exceptions — simulation errors, verification failures — are reported
    through it; only an abrupt death (kill, crash) leaves no file.
    """
    spec = JobSpec.from_dict(spec_data)
    on_checkpoint = None
    sleep = os.environ.get("REPRO_SERVE_TEST_CKPT_SLEEP")
    if sleep:
        delay = float(sleep)

        def on_checkpoint(doc, _delay=delay):
            time.sleep(_delay)

    try:
        result = run_job(_resumable(spec), on_checkpoint=on_checkpoint)
        outcome = {"ok": True, "payload": result.to_payload()}
    except BaseException as exc:  # report, don't vanish
        outcome = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    _atomic_write_json(Path(spool_path), outcome)


@dataclass
class Job:
    """One submission's full lifecycle state (daemon-internal)."""

    id: str
    client: str
    priority: int
    spec: JobSpec
    fingerprint: str
    seq: int
    status: str = "queued"
    #: ``"run"``, ``"cache"`` or ``"shared"`` once done.
    source: Optional[str] = None
    attempts: int = 0
    preemptions: int = 0
    error: Optional[str] = None
    payload: Optional[dict] = None
    events: List[dict] = field(default_factory=list)
    proc: Optional[multiprocessing.process.BaseProcess] = None
    spool: Optional[Path] = None
    #: Leader job id when this submission is a dedup follower.
    leader: Optional[str] = None
    followers: List[str] = field(default_factory=list)
    #: Why the running process is being killed (``"preempt"``,
    #: ``"cancel"`` or ``"shutdown"``); ``None`` while healthy.
    kill_reason: Optional[str] = None

    def info(self) -> dict:
        """The JSON-safe view clients see."""
        return {
            "id": self.id,
            "client": self.client,
            "priority": self.priority,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "label": self.spec.label(),
            "spec": self.spec.to_dict(),
            "source": self.source,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "error": self.error,
            "leader": self.leader,
        }


@dataclass
class ManagerStats:
    """Daemon-lifetime counters (the ``/status`` endpoint)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    shared: int = 0
    preemptions: int = 0
    retries: int = 0
    quota_rejections: int = 0


class JobManager:
    """Owns the queue, the workers and every job's state.

    All methods must be called from the event loop thread (the server's
    request handlers); :meth:`start` binds the loop.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        self.stats = ManagerStats()
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self._jobs: Dict[str, Job] = {}
        self._heap: List = []  # (-priority, seq, job_id)
        self._running: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # fingerprint -> leader job id
        self._active_per_client: Dict[str, int] = {}
        self._seq = itertools.count()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Replaced-and-set on every event append (monitor pattern);
        #: streamers snapshot it before scanning, await the snapshot.
        self._turn = asyncio.Event()
        self._closed = False
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            self._ctx = multiprocessing.get_context("spawn")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        Path(self.config.spool_dir).mkdir(parents=True, exist_ok=True)
        if self.config.checkpoint_every is not None:
            Path(self.config.checkpoint_dir).mkdir(parents=True, exist_ok=True)

    def shutdown(self) -> None:
        """Refuse new work, kill workers, cancel everything queued."""
        self._closed = True
        for job in list(self._running.values()):
            if job.kill_reason is None:
                job.kill_reason = "shutdown"
                if job.proc is not None:
                    job.proc.kill()
        for job in list(self._jobs.values()):
            if job.status == "queued" and job.id not in self._running:
                self._finish(job, "cancelled")

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _effective(self, spec: JobSpec) -> JobSpec:
        """Stamp the daemon's checkpoint policy onto policy-free specs."""
        if (
            self.config.checkpoint_every is not None
            and spec.checkpoint_every is None
            and spec.checkpoint_dir is None
        ):
            spec = spec.with_policy(
                checkpoint_every=self.config.checkpoint_every,
                checkpoint_dir=self.config.checkpoint_dir,
            )
        return spec

    def submit(self, spec, client: str = "anon", priority: int = 0) -> dict:
        """Register one job; returns its info dict immediately.

        ``spec`` is a :class:`JobSpec` or its ``to_dict`` form (the wire
        format).  Raises :class:`~repro.exec.SpecError` on a bad spec and
        :class:`QuotaExceeded` when the client is over quota.
        """
        if self._closed:
            raise RuntimeError("daemon is shutting down")
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_dict(spec)
        spec = self._effective(spec.validate())
        fingerprint = spec.fingerprint()
        seq = next(self._seq)
        job = Job(
            id=f"j{seq:06d}", client=str(client), priority=int(priority),
            spec=spec, fingerprint=fingerprint, seq=seq,
        )
        self.stats.submitted += 1

        # Warm-cache fast path: terminal instantly, never counts toward
        # the quota and never occupies a worker.
        if self.cache is not None:
            payload = self.cache.load(fingerprint)
            if payload is not None:
                self._jobs[job.id] = job
                self._event(job, "queued")
                job.payload, job.source = payload, "cache"
                self.stats.cache_hits += 1
                self._finish(job, "done")
                return job.info()

        active = self._active_per_client.get(job.client, 0)
        if active >= self.config.quota:
            self.stats.quota_rejections += 1
            raise QuotaExceeded(
                f"client {job.client!r} has {active} active jobs "
                f"(quota {self.config.quota})"
            )

        self._jobs[job.id] = job
        self._active_per_client[job.client] = active + 1
        leader_id = self._inflight.get(fingerprint)
        leader = self._jobs.get(leader_id) if leader_id else None
        if leader is not None and leader.status not in TERMINAL:
            job.leader = leader.id
            leader.followers.append(job.id)
            self._event(job, "queued", shared_with=leader.id)
        else:
            self._inflight[fingerprint] = job.id
            heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
            self._event(job, "queued")
            self._schedule()
        return job.info()

    def submit_sweep(self, specs, client: str = "anon", priority: int = 0) -> List[dict]:
        """Submit a batch atomically: all accepted or none (quota-wise)."""
        accepted: List[dict] = []
        try:
            for spec in specs:
                accepted.append(self.submit(spec, client=client, priority=priority))
        except Exception:
            for info in accepted:
                self.cancel(info["id"])
            raise
        return accepted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    def status(self) -> dict:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.status] = states.get(job.status, 0) + 1
        payload = {
            "workers": self.config.workers,
            "quota": self.config.quota,
            "running": len(self._running),
            "jobs": states,
            "stats": vars(self.stats).copy(),
        }
        if self.cache is not None:
            payload["cache"] = {
                "dir": str(self.cache.root),
                "stats": vars(self.cache.stats).copy(),
            }
        return payload

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> dict:
        job = self.get(job_id)
        if job.status in TERMINAL:
            return job.info()
        if job.id in self._running:
            if job.kill_reason is None:
                job.kill_reason = "cancel"
                job.proc.kill()
            return job.info()  # terminal once the sentinel fires
        if job.leader is not None:
            leader = self._jobs.get(job.leader)
            if leader is not None and job.id in leader.followers:
                leader.followers.remove(job.id)
            self._finish(job, "cancelled")
            return job.info()
        # Queued leader: promote a follower, then drop out of the queue
        # (the heap entry is skipped lazily once status != queued).
        self._promote_follower(job)
        self._finish(job, "cancelled")
        return job.info()

    def _promote_follower(self, leader: Job) -> None:
        """Hand a dying leader's role to its first follower, if any."""
        if self._inflight.get(leader.fingerprint) == leader.id:
            del self._inflight[leader.fingerprint]
        while leader.followers:
            heir = self._jobs.get(leader.followers.pop(0))
            if heir is None or heir.status in TERMINAL:
                continue
            heir.leader = None
            heir.followers = leader.followers
            leader.followers = []
            # The checkpoint file is keyed by fingerprint, so the heir
            # resumes whatever progress the leader had banked.
            if heir.spec.checkpoint_dir is not None:
                heir.spec = heir.spec.with_policy(resume=True)
            self._inflight[heir.fingerprint] = heir.id
            heapq.heappush(self._heap, (-heir.priority, heir.seq, heir.id))
            self._event(heir, "promoted")
            self._schedule()
            return

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _next_queued(self) -> Optional[Job]:
        while self._heap:
            _, _, job_id = self._heap[0]
            job = self._jobs.get(job_id)
            if job is None or job.status != "queued" or job_id in self._running:
                heapq.heappop(self._heap)
                continue
            return job
        return None

    def _schedule(self) -> None:
        while True:
            job = self._next_queued()
            if job is None:
                return
            if len(self._running) < self.config.workers:
                heapq.heappop(self._heap)
                self._start(job)
                continue
            # Full house: preempt the lowest-priority healthy worker if
            # the queue head outranks it.  The slot frees when the
            # victim's sentinel fires; scheduling resumes there.
            candidates = [
                j for j in self._running.values() if j.kill_reason is None
            ]
            if not candidates:
                return
            victim = min(candidates, key=lambda j: (j.priority, -j.seq))
            if job.priority <= victim.priority:
                return
            victim.kill_reason = "preempt"
            victim.proc.kill()
            self.stats.preemptions += 1
            self._event(victim, "preempting", by=job.id)
            return

    def _start(self, job: Job) -> None:
        job.status = "running"
        job.attempts += 1
        spec = job.spec if job.attempts == 1 else _resumable(job.spec)
        job.spool = Path(self.config.spool_dir) / f"{job.id}-{job.attempts}.json"
        proc = self._ctx.Process(
            target=_serve_worker,
            args=(spec.to_dict(), str(job.spool)),
            daemon=True,
        )
        proc.start()
        job.proc = proc
        self._running[job.id] = job
        self._loop.add_reader(proc.sentinel, self._on_exit, job)
        self._event(job, "started", attempt=job.attempts)

    # ------------------------------------------------------------------
    # Worker completion
    # ------------------------------------------------------------------
    def _read_spool(self, job: Job) -> Optional[dict]:
        try:
            raw = job.spool.read_text(encoding="utf-8")
            outcome = json.loads(raw)
        except (OSError, ValueError):
            return None
        finally:
            try:
                job.spool.unlink()
            except OSError:
                pass
        return outcome if isinstance(outcome, dict) else None

    def _requeue(self, job: Job, event: str) -> None:
        # Resume from the last periodic checkpoint (fingerprint-keyed
        # file; a missing one just means a fresh, still-correct start).
        if job.spec.checkpoint_dir is not None:
            job.spec = job.spec.with_policy(resume=True)
        job.status = "queued"
        heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
        self._event(job, event, resume=job.spec.resume)

    def _on_exit(self, job: Job) -> None:
        proc = job.proc
        self._loop.remove_reader(proc.sentinel)
        proc.join()
        exitcode = proc.exitcode
        self._running.pop(job.id, None)
        job.proc = None
        reason, job.kill_reason = job.kill_reason, None

        if reason in ("cancel", "shutdown"):
            if job.spool is not None:
                try:
                    job.spool.unlink()
                except OSError:
                    pass
            self._promote_follower(job)
            self._finish(job, "cancelled")
        elif reason == "preempt":
            job.preemptions += 1
            self._requeue(job, "requeued")
        else:
            outcome = self._read_spool(job)
            if outcome is None:
                if job.attempts <= self.config.worker_retries:
                    self.stats.retries += 1
                    self._requeue(job, "retrying")
                else:
                    job.error = f"worker exited with code {exitcode}"
                    self._fail(job)
            elif outcome.get("ok"):
                self._complete(job, outcome["payload"])
            else:
                job.error = str(outcome.get("error"))
                self._fail(job)
        self._schedule()

    def _complete(self, job: Job, payload: dict) -> None:
        if self.cache is not None:
            self.cache.store(job.fingerprint, payload)
        job.payload, job.source = payload, "run"
        self._finish(job, "done")
        for follower_id in job.followers:
            follower = self._jobs.get(follower_id)
            if follower is None or follower.status in TERMINAL:
                continue
            follower.payload, follower.source = payload, "shared"
            self.stats.shared += 1
            self._finish(follower, "done")
        job.followers = []

    def _fail(self, job: Job) -> None:
        self._finish(job, "failed")
        for follower_id in job.followers:
            follower = self._jobs.get(follower_id)
            if follower is None or follower.status in TERMINAL:
                continue
            follower.error = f"shared job {job.id} failed: {job.error}"
            self._finish(follower, "failed")
        job.followers = []

    def _finish(self, job: Job, status: str) -> None:
        job.status = status
        if status == "done":
            self.stats.completed += 1
        elif status == "failed":
            self.stats.failed += 1
        elif status == "cancelled":
            self.stats.cancelled += 1
        if job.leader is None and self._inflight.get(job.fingerprint) == job.id:
            del self._inflight[job.fingerprint]
        if job.source != "cache":  # cache hits were never counted active
            count = self._active_per_client.get(job.client, 0)
            if count > 1:
                self._active_per_client[job.client] = count - 1
            else:
                self._active_per_client.pop(job.client, None)
        self._event(job, status)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _event(self, job: Job, name: str, **extra) -> None:
        event = {"event": name, "job": job.id, "status": job.status,
                 "label": job.spec.label(), "ts": time.time()}
        event.update(extra)
        job.events.append(event)
        turn, self._turn = self._turn, asyncio.Event()
        turn.set()

    async def stream(self, job_id: str):
        """Async-iterate a job's events; ends after its terminal event."""
        job = self.get(job_id)
        index = 0
        while True:
            turn = self._turn  # snapshot before scanning: no lost wakeups
            while index < len(job.events):
                event = job.events[index]
                index += 1
                yield event
                if event["event"] in TERMINAL:
                    return
            await turn.wait()
