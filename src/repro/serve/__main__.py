"""Command-line entry point: run the simulation daemon.

Usage::

    python -m repro.serve                        # 127.0.0.1:8642
    python -m repro.serve --port 0 --workers 4   # ephemeral port, printed
    python -m repro.serve --no-cache --quota 2

The daemon prints one discovery line on startup::

    repro.serve listening on http://127.0.0.1:8642

and serves until ``POST /shutdown`` (or SIGINT).  See ``docs/serving.md``
for the endpoint reference and a client quickstart.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from .jobs import (
    DEFAULT_SERVE_CHECKPOINT_DIR,
    DEFAULT_SERVE_CHECKPOINT_EVERY,
    DEFAULT_SERVE_SPOOL_DIR,
    ServeConfig,
)
from ..exec import DEFAULT_CACHE_DIR
from .server import run_server


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve simulation jobs over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8642,
                        help="bind port (0: ephemeral, printed on startup)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent simulation processes")
    parser.add_argument("--quota", type=int, default=8,
                        help="max non-terminal jobs per client name")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="shared result cache directory")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="disable the shared result cache")
    parser.add_argument("--checkpoint-every", type=int,
                        default=DEFAULT_SERVE_CHECKPOINT_EVERY,
                        help="checkpoint interval stamped onto specs "
                             "without a policy (0: never stamp)")
    parser.add_argument("--checkpoint-dir",
                        default=DEFAULT_SERVE_CHECKPOINT_DIR,
                        help="daemon checkpoint directory")
    parser.add_argument("--spool-dir", default=DEFAULT_SERVE_SPOOL_DIR,
                        help="worker result spool directory")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the startup line")
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.quota < 1:
        parser.error("--quota must be >= 1")
    if args.checkpoint_every < 0:
        parser.error("--checkpoint-every must be >= 0")

    config = ServeConfig(
        workers=args.workers,
        quota=args.quota,
        cache_dir=args.cache_dir if args.cache else None,
        checkpoint_every=args.checkpoint_every or None,
        checkpoint_dir=args.checkpoint_dir,
        spool_dir=args.spool_dir,
    )
    try:
        asyncio.run(run_server(
            config, host=args.host, port=args.port, quiet=args.quiet
        ))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
