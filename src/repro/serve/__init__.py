"""repro.serve: an async simulation daemon behind the JobSpec API.

A long-running asyncio daemon that serves concurrent sweep traffic over
HTTP/JSON (stdlib only).  Clients submit :class:`~repro.exec.JobSpec`
documents — the same canonical job model the CLIs and the sweep engine
consume — and get back the same bit-identical results, because the
daemon's worker processes run the same single execution path
(:func:`repro.exec.run_job`).

Start it::

    python -m repro.serve --port 8642 --workers 4

and talk to it with :class:`ServeClient` (or plain ``curl`` — see
``docs/serving.md``).  Features: priority queue with checkpoint-backed
preemption, per-client quotas (429), one shared warm result cache,
fingerprint-level dedup of concurrent identical submissions, and NDJSON
progress-event streaming.
"""

from .client import JobFailed, ServeClient, ServeError
from .jobs import JobManager, ManagerStats, QuotaExceeded, ServeConfig, UnknownJob
from .server import ReproServer, run_server

__all__ = [
    "JobFailed",
    "JobManager",
    "ManagerStats",
    "QuotaExceeded",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "UnknownJob",
    "run_server",
]
