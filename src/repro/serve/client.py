"""Stdlib HTTP client for the :mod:`repro.serve` daemon.

:class:`ServeClient` wraps the daemon's JSON endpoints (see
:mod:`repro.serve.server`) behind the same vocabulary the rest of the
repository uses: submit :class:`~repro.exec.JobSpec`\\ s, get
:class:`~repro.exec.JobResult`\\ s back.

Quickstart::

    from repro import ExecutionMode, JobSpec
    from repro.serve import ServeClient

    client = ServeClient(port=8642, client="alice")
    info = client.submit(JobSpec.create("bht", ExecutionMode.DTBL,
                                        scale=0.1, latency_scale=0.25))
    result = client.result(client.wait(info["id"])["id"])
    print(result.stats.cycles, result.source)
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Iterator, List, Optional, Sequence, Union

from ..exec import JobResult, JobSpec

SpecLike = Union[JobSpec, dict]


class ServeError(RuntimeError):
    """An HTTP-level error from the daemon (carries ``.status``)."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error") or f"HTTP {status}")
        self.status = status
        self.payload = payload


class JobFailed(ServeError):
    """The submitted job reached a terminal non-``done`` state."""


class ServeClient:
    """Talk to one daemon; every request is a fresh connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        client: str = "anon",
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client = client
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            encoded = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if encoded else {}
            conn.request(method, path, body=encoded, headers=headers)
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8") or "{}")
        finally:
            conn.close()
        if response.status >= 400:
            raise ServeError(response.status, payload)
        return payload

    @staticmethod
    def _spec_dict(spec: SpecLike) -> dict:
        return spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: SpecLike, priority: int = 0) -> dict:
        """Submit one job; returns its info dict (``info["id"]``)."""
        return self._request("POST", "/jobs", {
            "spec": self._spec_dict(spec),
            "client": self.client,
            "priority": priority,
        })

    def submit_sweep(self, specs: Sequence[SpecLike], priority: int = 0) -> List[dict]:
        """Submit a batch; returns one info dict per spec, in order."""
        payload = self._request("POST", "/sweeps", {
            "specs": [self._spec_dict(spec) for spec in specs],
            "client": self.client,
            "priority": priority,
        })
        return payload["jobs"]

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 600.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns its final info."""
        deadline = time.monotonic() + timeout
        while True:
            info = self.job(job_id)
            if info["status"] in ("done", "failed", "cancelled"):
                return info
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {info['status']} after {timeout}s"
                )
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream a job's NDJSON lifecycle events until it is terminal."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                payload = json.loads(response.read().decode("utf-8") or "{}")
                raise ServeError(response.status, payload)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self, job_id: str) -> JobResult:
        """The finished job's :class:`~repro.exec.JobResult`.

        Raises :class:`ServeError` (409) while the job is still pending
        and :class:`JobFailed` when it failed or was cancelled.
        """
        try:
            payload = self._request("GET", f"/jobs/{job_id}/result")
        except ServeError as exc:
            if exc.payload.get("status") in ("failed", "cancelled"):
                raise JobFailed(exc.status, exc.payload) from None
            raise
        return JobResult.from_payload(
            payload["payload"],
            fingerprint=payload["fingerprint"],
            source=payload["source"],
        )

    def run(self, spec: SpecLike, priority: int = 0, timeout: float = 600.0) -> JobResult:
        """Submit, wait, fetch: the one-call convenience path."""
        info = self.submit(spec, priority=priority)
        final = self.wait(info["id"], timeout=timeout)
        if final["status"] != "done":
            raise JobFailed(409, {
                "error": f"job {final['id']} {final['status']}: {final.get('error')}",
                "status": final["status"],
            })
        return self.result(info["id"])

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def status(self) -> dict:
        return self._request("GET", "/status")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")
