"""Minimal asyncio HTTP front-end for the simulation daemon.

Stdlib-only: a hand-rolled HTTP/1.1 server on ``asyncio.start_server``
speaking JSON, plus one NDJSON streaming endpoint.  Endpoints:

====== ========================= =========================================
Method Path                      Meaning
====== ========================= =========================================
POST   ``/jobs``                 submit one spec -> ``202`` job info
POST   ``/sweeps``               submit a batch -> ``202`` list of infos
GET    ``/jobs/<id>``            job status/info
GET    ``/jobs/<id>/result``     result payload (``409`` until done)
GET    ``/jobs/<id>/events``     NDJSON stream of lifecycle events
POST   ``/jobs/<id>/cancel``     cancel (kills a running worker)
GET    ``/status``               daemon/queue/cache counters
POST   ``/shutdown``             drain and exit cleanly
====== ========================= =========================================

Request bodies are JSON: ``{"spec": {...}, "client": "...",
"priority": 0}`` for ``/jobs``; ``{"specs": [...], ...}`` for
``/sweeps`` (``spec`` objects are :meth:`repro.exec.JobSpec.to_dict`
documents).  Error mapping: bad spec/body -> ``400``, unknown job ->
``404``, result not ready -> ``409``, quota exceeded -> ``429``,
shutting down -> ``503``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..exec import SpecError
from .jobs import JobManager, QuotaExceeded, ServeConfig, UnknownJob

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _BadRequest(Exception):
    pass


async def _read_request(reader) -> Tuple[str, str, dict]:
    """Parse one request; returns ``(method, path, json_body)``."""
    line = await reader.readline()
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise _BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length") from None
    body: dict = {}
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw)
        except ValueError:
            raise _BadRequest("request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
    return method, target.split("?", 1)[0], body


def _response(status: int, payload: dict) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


class ReproServer:
    """One daemon instance: a :class:`JobManager` behind a socket."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.manager = JobManager(config)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until ``/shutdown`` (or :meth:`stop`) fires."""
        await self._stop.wait()
        self.manager.shutdown()
        self._server.close()
        await self._server.wait_closed()

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            try:
                method, path, body = await _read_request(reader)
            except (_BadRequest, asyncio.IncompleteReadError) as exc:
                writer.write(_response(400, {"error": str(exc)}))
                return
            try:
                await self._route(method, path, body, writer)
            except QuotaExceeded as exc:
                writer.write(_response(429, {
                    "error": str(exc), "quota": self.manager.config.quota,
                }))
            except UnknownJob as exc:
                writer.write(_response(404, {"error": f"unknown job {exc}"}))
            except SpecError as exc:
                writer.write(_response(400, {"error": str(exc)}))
            except (_BadRequest, TypeError, ValueError) as exc:
                writer.write(_response(400, {"error": str(exc)}))
            except RuntimeError as exc:
                writer.write(_response(503, {"error": str(exc)}))
            except Exception as exc:  # pragma: no cover - defensive
                writer.write(_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                ))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _route(self, method: str, path: str, body: dict, writer) -> None:
        manager = self.manager
        if path == "/jobs" and method == "POST":
            if "spec" not in body:
                raise _BadRequest('body must carry a "spec" object')
            info = manager.submit(
                body["spec"],
                client=str(body.get("client", "anon")),
                priority=int(body.get("priority", 0)),
            )
            writer.write(_response(202, info))
        elif path == "/sweeps" and method == "POST":
            specs = body.get("specs")
            if not isinstance(specs, list) or not specs:
                raise _BadRequest('body must carry a non-empty "specs" list')
            infos = manager.submit_sweep(
                specs,
                client=str(body.get("client", "anon")),
                priority=int(body.get("priority", 0)),
            )
            writer.write(_response(202, {"jobs": infos}))
        elif path == "/status" and method == "GET":
            writer.write(_response(200, manager.status()))
        elif path == "/shutdown" and method == "POST":
            writer.write(_response(200, {"status": "shutting down"}))
            self.stop()
        elif path.startswith("/jobs/"):
            await self._route_job(method, path, writer)
        else:
            writer.write(_response(404, {"error": f"no route {method} {path}"}))

    async def _route_job(self, method: str, path: str, writer) -> None:
        manager = self.manager
        parts = path.split("/")  # ["", "jobs", "<id>"] or + ["<verb>"]
        job_id = parts[2]
        verb = parts[3] if len(parts) > 3 else None
        if verb is None and method == "GET":
            writer.write(_response(200, manager.get(job_id).info()))
        elif verb == "result" and method == "GET":
            job = manager.get(job_id)
            if job.status == "done":
                writer.write(_response(200, {
                    "id": job.id, "fingerprint": job.fingerprint,
                    "source": job.source, "payload": job.payload,
                }))
            elif job.status in ("failed", "cancelled"):
                writer.write(_response(409, {
                    "error": f"job {job.id} {job.status}: {job.error}",
                    "status": job.status,
                }))
            else:
                writer.write(_response(409, {
                    "error": f"job {job.id} is {job.status}",
                    "status": job.status,
                }))
        elif verb == "events" and method == "GET":
            manager.get(job_id)  # 404 before committing to a stream
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            async for event in manager.stream(job_id):
                writer.write(json.dumps(event).encode("utf-8") + b"\n")
                await writer.drain()
        elif verb == "cancel" and method == "POST":
            writer.write(_response(200, manager.cancel(job_id)))
        else:
            writer.write(_response(404, {"error": f"no route {method} {path}"}))


async def run_server(
    config: Optional[ServeConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = False,
) -> None:
    """Start a daemon and serve until ``/shutdown``."""
    server = ReproServer(config, host=host, port=port)
    await server.start()
    if not quiet:
        # The discovery line tests and scripts parse; keep the format.
        print(f"repro.serve listening on http://{server.host}:{server.port}",
              flush=True)
    await server.serve_forever()
