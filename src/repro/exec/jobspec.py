"""The canonical job model: one spec, one result, one execution path.

Every way of running a simulation in this repository — the two CLIs, the
serial runner, the :class:`~repro.exec.pool.SweepEngine` worker pool, and
the :mod:`repro.serve` daemon — consumes the same :class:`JobSpec`: the
full description of *what* to simulate (benchmark, mode, dataset scale,
launch-latency scale, GPU configuration, verification) plus the execution
policy for *how* to run it (periodic checkpointing, checkpoint directory,
resume).  :func:`run_job` is the single function that turns a spec into a
:class:`JobResult`; everything else is routing.

Identity vs. policy
-------------------
Only the *what* participates in :meth:`JobSpec.fingerprint` (the
content-addressed identity reused by the result cache and the sweep
engine, built on :mod:`repro.exec.fingerprint`): two specs that differ
only in checkpoint policy describe the same simulation and share one
cache key.  The digest prefix and document layout are unchanged from the
original ``SweepJob`` model, so fingerprints — and with them all existing
cache entries and checkpoint filenames — are stable across the rename.

``SweepJob`` remains importable as an alias of :class:`JobSpec`; the
deprecated keyword bundles on :func:`repro.exec.pool.execute_job` and
:meth:`repro.workloads.base.Workload.execute` are thin shims over this
module (they emit :class:`DeprecationWarning`).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..config import GPUConfig
from ..runtime import ExecutionMode
from ..sim.sanitizer import SanitizerReport
from ..sim.stats import SimStats
from .fingerprint import digest, effective_sanitize


class SpecError(ValueError):
    """A :class:`JobSpec` failed validation."""


@dataclass(frozen=True)
class JobSpec:
    """One fully specified simulation: the unit of submission everywhere.

    The first six fields are the job's *identity* (hashed into
    :meth:`fingerprint`); the checkpoint fields are *execution policy*
    and deliberately excluded from the hash — resuming a job from a
    checkpoint must find the same cache key and checkpoint file an
    uninterrupted run would use.
    """

    benchmark: str
    mode: ExecutionMode
    scale: float
    latency_scale: float
    config: GPUConfig = field(default_factory=GPUConfig.k20c)
    verify: bool = True
    #: Snapshot the full simulator state every N cycles (``None``: never).
    checkpoint_every: Optional[int] = None
    #: Directory for ``<fingerprint>.ckpt`` files (``None``: in-memory
    #: checkpoint callbacks only, no files).
    checkpoint_dir: Optional[str] = None
    #: Continue from an existing checkpoint when one is present.
    resume: bool = False

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def document(self) -> dict:
        """The canonical JSON-safe description this job hashes to."""
        return {
            "benchmark": self.benchmark,
            "mode": self.mode.value,
            "scale": self.scale,
            "latency_scale": self.latency_scale,
            "config": self.config.to_dict(),
            "verify": self.verify,
            "sanitize": effective_sanitize(self.config),
        }

    def fingerprint(self) -> str:
        """Content hash identifying this job (includes the code salt).

        The prefix is ``"SweepJob"`` for continuity with the original
        model: every previously written cache entry and checkpoint stays
        addressable.
        """
        return digest("SweepJob", self.document())

    def label(self) -> str:
        """Short human-readable tag for progress output."""
        return f"{self.benchmark}/{self.mode.value}"

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "JobSpec":
        """Raise :class:`SpecError` on an unusable spec; returns self."""
        if not self.benchmark or not isinstance(self.benchmark, str):
            raise SpecError("benchmark must be a non-empty string")
        if not isinstance(self.mode, ExecutionMode):
            raise SpecError(f"mode must be an ExecutionMode, not {self.mode!r}")
        if not self.scale > 0:
            raise SpecError(f"scale must be > 0, got {self.scale!r}")
        if not self.latency_scale > 0:
            raise SpecError(
                f"latency_scale must be > 0, got {self.latency_scale!r}"
            )
        if not isinstance(self.config, GPUConfig):
            raise SpecError(f"config must be a GPUConfig, not {self.config!r}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise SpecError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every!r}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise SpecError("resume=True requires a checkpoint_dir")
        return self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        benchmark: str,
        mode: ExecutionMode,
        scale: float,
        latency_scale: float,
        config: Optional[GPUConfig] = None,
        verify: bool = True,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ) -> "JobSpec":
        """Build a spec, canonicalizing ``config=None`` to the default.

        ``config=None`` and ``config=GPUConfig.k20c()`` describe the same
        simulation; canonicalizing here keeps them one cache key.
        """
        return cls(
            benchmark=benchmark,
            mode=mode if isinstance(mode, ExecutionMode)
            else ExecutionMode.parse(str(mode)),
            scale=float(scale),
            latency_scale=float(latency_scale),
            config=config if config is not None else GPUConfig.k20c(),
            verify=verify,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )

    @classmethod
    def from_args(
        cls,
        args,
        benchmark: str,
        mode: ExecutionMode,
        checkpoint_dir: Optional[str] = None,
    ) -> "JobSpec":
        """Build a spec from a parsed CLI namespace (see :mod:`.cli`).

        Reads the shared flags declared by ``add_job_flags`` /
        ``add_execution_flags``: ``--scale``, ``--latency-scale``,
        ``--core``, ``--no-verify`` (when the CLI declares it), and the
        checkpoint flags.  ``checkpoint_dir`` is the *validated*
        directory from ``validate_execution_flags`` — ``None`` unless
        checkpointing or resuming was requested.
        """
        core = getattr(args, "core", None)
        config = None
        if core:
            config = dataclasses.replace(GPUConfig.k20c(), core=core)
        return cls.create(
            benchmark,
            mode,
            getattr(args, "scale", 1.0),
            getattr(args, "latency_scale", 1.0),
            config=config,
            verify=not getattr(args, "no_verify", False),
            checkpoint_every=getattr(args, "checkpoint_every", None),
            checkpoint_dir=checkpoint_dir,
            resume=bool(getattr(args, "resume", False)),
        ).validate()

    def with_policy(
        self,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume: Optional[bool] = None,
    ) -> "JobSpec":
        """A copy with the given execution-policy fields replaced.

        ``None`` leaves a field untouched (use field defaults via
        ``dataclasses.replace`` to clear one explicitly).
        """
        changes = {}
        if checkpoint_every is not None:
            changes["checkpoint_every"] = checkpoint_every
        if checkpoint_dir is not None:
            changes["checkpoint_dir"] = str(checkpoint_dir)
        if resume is not None:
            changes["resume"] = resume
        return dataclasses.replace(self, **changes) if changes else self

    # ------------------------------------------------------------------
    # Serialization (the daemon's wire format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-safe encoding (see :meth:`from_dict`)."""
        return {
            "benchmark": self.benchmark,
            "mode": self.mode.value,
            "scale": self.scale,
            "latency_scale": self.latency_scale,
            "config": self.config.to_dict(),
            "verify": self.verify,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_dir": self.checkpoint_dir,
            "resume": self.resume,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Decode :meth:`to_dict` output (or a hand-written subset).

        Only ``benchmark`` and ``mode`` are required; everything else
        defaults.  Unknown keys raise :class:`SpecError` so a client typo
        (``"latency": …``) fails loudly instead of silently simulating
        the wrong thing.
        """
        if not isinstance(data, dict):
            raise SpecError(f"spec must be an object, not {type(data).__name__}")
        known = {
            "benchmark", "mode", "scale", "latency_scale", "config",
            "verify", "checkpoint_every", "checkpoint_dir", "resume",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec fields: {sorted(unknown)}")
        missing = {"benchmark", "mode"} - set(data)
        if missing:
            raise SpecError(f"spec is missing fields: {sorted(missing)}")
        mode = data["mode"]
        try:
            mode = (
                mode if isinstance(mode, ExecutionMode)
                else ExecutionMode.parse(str(mode))
            )
        except Exception as exc:
            raise SpecError(f"unknown mode {data['mode']!r}") from exc
        config = data.get("config")
        if config is not None and not isinstance(config, GPUConfig):
            try:
                config = GPUConfig.from_dict(config)
            except Exception as exc:
                raise SpecError(f"bad config: {exc}") from exc
        checkpoint_dir = data.get("checkpoint_dir")
        return cls.create(
            str(data["benchmark"]),
            mode,
            data.get("scale", 1.0),
            data.get("latency_scale", 1.0),
            config=config,
            verify=bool(data.get("verify", True)),
            checkpoint_every=data.get("checkpoint_every"),
            checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
            resume=bool(data.get("resume", False)),
        ).validate()


@dataclass
class JobResult:
    """Outcome of one executed :class:`JobSpec`.

    ``to_payload``/``from_payload`` round-trip through the same JSON-safe
    dictionary the result cache and the worker pool have always used
    (``{"stats", "wall_seconds", "sanitizer"}``), so on-disk entries and
    inter-process payloads are unchanged.
    """

    stats: SimStats
    wall_seconds: float
    sanitizer: Optional[SanitizerReport] = None
    #: Content fingerprint of the spec that produced this result.
    fingerprint: Optional[str] = None
    #: Where the result came from: ``"run"``, ``"cache"`` or ``"shared"``
    #: (another in-flight job with the same fingerprint).
    source: str = "run"

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def to_payload(self) -> dict:
        """The JSON-safe payload dictionary (cache/wire format)."""
        return {
            "stats": self.stats.to_dict(),
            "wall_seconds": self.wall_seconds,
            "sanitizer": self.sanitizer.to_dict() if self.sanitizer else None,
        }

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        fingerprint: Optional[str] = None,
        source: str = "cache",
    ) -> "JobResult":
        """Decode a payload dictionary (raises on structural problems)."""
        sanitizer = payload.get("sanitizer")
        return cls(
            stats=SimStats.from_dict(payload["stats"]),
            wall_seconds=float(payload["wall_seconds"]),
            sanitizer=SanitizerReport.from_dict(sanitizer) if sanitizer else None,
            fingerprint=fingerprint,
            source=source,
        )


def run_job(
    spec: JobSpec,
    on_checkpoint: Optional[Callable[[dict], None]] = None,
) -> JobResult:
    """Execute one spec in the current process: THE execution path.

    The serial runner, the pool workers, the in-process fallback and the
    daemon's job processes all come through here, which is what makes
    them bit-identical.  With ``spec.checkpoint_dir`` set, the job
    checkpoints to ``<dir>/<fingerprint>.ckpt`` every
    ``spec.checkpoint_every`` cycles, and ``spec.resume`` continues from
    such a file when one exists (stale or corrupt files are quarantined
    and the job restarts).  Because the simulation is deterministic and a
    restore is bit-identical, a resumed result equals an uninterrupted
    run's.
    """
    from ..workloads import get_benchmark

    workload = get_benchmark(spec.benchmark, spec.mode, spec.scale)
    start = time.perf_counter()
    result = workload.execute_spec(spec, on_checkpoint=on_checkpoint)
    return JobResult(
        stats=result.stats,
        wall_seconds=time.perf_counter() - start,
        sanitizer=result.sanitizer,
        fingerprint=spec.fingerprint(),
        source="run",
    )
