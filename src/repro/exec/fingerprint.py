"""Deterministic content fingerprints for simulation jobs.

A *sweep job* is everything that determines a simulation's outcome: the
GPU configuration, the execution mode, the benchmark, the dataset scale,
the launch-latency scale, whether the run is sanitized, and a code-version
salt.  :meth:`SweepJob.fingerprint` hashes a canonical JSON document of
all of it, so identical jobs have identical keys across processes,
interpreter restarts and machines — the property the on-disk result cache
(:mod:`repro.exec.cache`) and the multi-process sweep engine
(:mod:`repro.exec.pool`) are built on.

The code-version salt (:data:`CODE_VERSION`) folds the package version
into every key: bumping the version orphans all previously cached results
rather than risking a stale entry produced by different simulator code.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from .. import __version__
from ..config import GPUConfig
from ..runtime import ExecutionMode

#: Salt folded into every job fingerprint.  Bump the trailing tag when a
#: change invalidates cached results without changing the package version
#: (e.g. a simulator bug fix on a maintenance branch).
CODE_VERSION = f"repro-{__version__}:fp1"


def canonical_json(obj) -> str:
    """The one canonical JSON encoding used for hashing.

    Sorted keys, no whitespace, NaN/Infinity rejected: two semantically
    equal documents always serialize to the same bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def digest(prefix: str, document) -> str:
    """SHA-256 of ``prefix`` + the canonical encoding of ``document``."""
    payload = f"{CODE_VERSION}\n{prefix}\n{canonical_json(document)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def effective_sanitize(config: GPUConfig) -> bool:
    """Whether a run under ``config`` would be sanitized *right now*.

    The sanitizer is switchable per config and globally via the
    ``REPRO_SANITIZE`` environment variable; both reach the GPU, so both
    must reach the fingerprint (a sanitized and an unsanitized run verify
    different things even though their statistics agree).
    """
    return bool(config.sanitize) or bool(os.environ.get("REPRO_SANITIZE"))


@dataclass(frozen=True)
class SweepJob:
    """One fully specified simulation: the unit of sweeping and caching."""

    benchmark: str
    mode: ExecutionMode
    scale: float
    latency_scale: float
    config: GPUConfig = field(default_factory=GPUConfig.k20c)
    verify: bool = True

    def document(self) -> dict:
        """The canonical JSON-safe description this job hashes to."""
        return {
            "benchmark": self.benchmark,
            "mode": self.mode.value,
            "scale": self.scale,
            "latency_scale": self.latency_scale,
            "config": self.config.to_dict(),
            "verify": self.verify,
            "sanitize": effective_sanitize(self.config),
        }

    def fingerprint(self) -> str:
        """Content hash identifying this job (includes the code salt)."""
        return digest("SweepJob", self.document())

    def label(self) -> str:
        """Short human-readable tag for progress output."""
        return f"{self.benchmark}/{self.mode.value}"

    @classmethod
    def create(
        cls,
        benchmark: str,
        mode: ExecutionMode,
        scale: float,
        latency_scale: float,
        config: Optional[GPUConfig] = None,
        verify: bool = True,
    ) -> "SweepJob":
        """Build a job, canonicalizing ``config=None`` to the default.

        ``config=None`` and ``config=GPUConfig.k20c()`` describe the same
        simulation; canonicalizing here keeps them one cache key (the old
        in-memory memo treated them as distinct and re-simulated).
        """
        return cls(
            benchmark=benchmark,
            mode=mode,
            scale=float(scale),
            latency_scale=float(latency_scale),
            config=config if config is not None else GPUConfig.k20c(),
            verify=verify,
        )
