"""Deterministic content fingerprints for simulation jobs.

A job's identity is everything that determines a simulation's outcome:
the GPU configuration, the execution mode, the benchmark, the dataset
scale, the launch-latency scale, and whether the run is sanitized, plus a
code-version salt.  :meth:`repro.exec.jobspec.JobSpec.fingerprint` hashes
a canonical JSON document of all of it through :func:`digest`, so
identical jobs have identical keys across processes, interpreter restarts
and machines — the property the on-disk result cache
(:mod:`repro.exec.cache`), the multi-process sweep engine
(:mod:`repro.exec.pool`) and the serving daemon (:mod:`repro.serve`) are
built on.

The code-version salt (:data:`CODE_VERSION`) folds the package version
into every key: bumping the version orphans all previously cached results
rather than risking a stale entry produced by different simulator code.

This module holds the hashing primitives; the job model itself lives in
:mod:`repro.exec.jobspec` (``SweepJob`` is re-exported below as a
backwards-compatible alias of :class:`~repro.exec.jobspec.JobSpec`).
"""

from __future__ import annotations

import hashlib
import json
import os

from .. import __version__
from ..config import GPUConfig

#: Salt folded into every job fingerprint.  Bump the trailing tag when a
#: change invalidates cached results without changing the package version
#: (e.g. a simulator bug fix on a maintenance branch).
CODE_VERSION = f"repro-{__version__}:fp2"


def canonical_json(obj) -> str:
    """The one canonical JSON encoding used for hashing.

    Sorted keys, no whitespace, NaN/Infinity rejected: two semantically
    equal documents always serialize to the same bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def digest(prefix: str, document) -> str:
    """SHA-256 of ``prefix`` + the canonical encoding of ``document``."""
    payload = f"{CODE_VERSION}\n{prefix}\n{canonical_json(document)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def effective_sanitize(config: GPUConfig) -> bool:
    """Whether a run under ``config`` would be sanitized *right now*.

    The sanitizer is switchable per config and globally via the
    ``REPRO_SANITIZE`` environment variable; both reach the GPU, so both
    must reach the fingerprint (a sanitized and an unsanitized run verify
    different things even though their statistics agree).
    """
    return bool(config.sanitize) or bool(os.environ.get("REPRO_SANITIZE"))


def __getattr__(name: str):
    # Backwards-compatible alias: the job model grew into JobSpec (which
    # adds the execution-policy fields) but hashes the same document under
    # the same prefix, so existing fingerprints are unchanged.  Resolved
    # lazily to keep this module import-order independent.
    if name == "SweepJob":
        from .jobspec import JobSpec

        return JobSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CODE_VERSION",
    "SweepJob",
    "canonical_json",
    "digest",
    "effective_sanitize",
]
