"""Shared CLI flags: every job/execution flag is declared exactly once.

``python -m repro.harness``, ``python -m repro.workloads`` and
``python -m repro.serve`` expose the same execution surface — worker
processes, the on-disk result cache, the hot-path profiler, and
checkpoint/resume — and used to duplicate the argparse wiring.  This
module is the single definition:

* :func:`add_job_flags` declares the job-shape flags (``--scale``,
  ``--latency-scale``, ``--core``, ``--sanitize``) that feed
  :meth:`repro.exec.jobspec.JobSpec.from_args`;
* :func:`add_execution_flags` declares the execution-policy flags
  (``--jobs``, ``--cache*``, ``--profile*``, ``--checkpoint*``,
  ``--resume``);
* :func:`validate_execution_flags` applies the shared consistency rules.
"""

from __future__ import annotations

import argparse
from typing import Optional

from .cache import DEFAULT_CACHE_DIR

#: Default directory for ``--checkpoint-every`` / ``--resume`` state.
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"


def add_job_flags(
    parser: argparse.ArgumentParser, latency_scale_default: float = 0.25
) -> None:
    """Declare the flags that describe the simulation jobs themselves."""
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (default 1.0)")
    parser.add_argument("--latency-scale", type=float,
                        default=latency_scale_default,
                        help="Table 3 launch-latency scale "
                             f"(default {latency_scale_default})")
    parser.add_argument("--core", default=None,
                        choices=("reference", "fast", "vector"),
                        help="execution core for every simulation "
                             "(default: the config's default core); all "
                             "three are statistic-exact")
    parser.add_argument("--sanitize", action="store_true",
                        help="run every simulation with the execution "
                             "sanitizer (race/OOB/uninit/barrier/launch "
                             "checks); any finding fails the run")


def add_execution_flags(
    parser: argparse.ArgumentParser, profile_json: bool = False
) -> None:
    """Declare the execution flags shared by both CLIs.

    ``profile_json`` additionally declares ``--profile-json`` (only the
    workloads CLI exposes a JSON profile report).
    """
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the simulation sweep "
                             "(default 1: in-process)")
    parser.add_argument("--cache", dest="cache", action="store_true",
                        default=True,
                        help="persist results in the on-disk cache (default)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="bypass the on-disk cache entirely "
                             "(no reads, no writes)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"cache directory (default {DEFAULT_CACHE_DIR})")
    parser.add_argument("--profile", action="store_true",
                        help="profile the simulation hot path (issues and "
                             "host time per opcode / fused region); forces "
                             "--jobs 1 and bypasses the result cache")
    if profile_json:
        parser.add_argument("--profile-json", metavar="PATH", default=None,
                            help="write the profile report as JSON to PATH "
                                 "(implies --profile)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="CYCLES",
                        help="checkpoint each simulation's full state every "
                             "CYCLES simulated cycles; crashed or timed-out "
                             "jobs resume from their last checkpoint")
    parser.add_argument("--checkpoint-dir", default=DEFAULT_CHECKPOINT_DIR,
                        help="checkpoint directory (default "
                             f"{DEFAULT_CHECKPOINT_DIR})")
    parser.add_argument("--resume", action="store_true",
                        help="resume interrupted simulations from existing "
                             "checkpoints in --checkpoint-dir (stale or "
                             "corrupt files are quarantined and the run "
                             "starts fresh)")


def validate_execution_flags(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> Optional[str]:
    """Apply the shared consistency rules; returns the checkpoint dir.

    Returns the effective checkpoint directory — ``None`` unless
    checkpointing or resuming was requested — after validating that

    * ``--jobs`` is positive,
    * ``--checkpoint-every`` is positive when given, and
    * ``--profile`` is not combined with checkpointing (the profiler's
      tracer state is not serializable, so a checkpoint would refuse to
      capture mid-run).
    """
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if getattr(args, "scale", 1.0) <= 0:
        parser.error("--scale must be > 0")
    if getattr(args, "latency_scale", 1.0) <= 0:
        parser.error("--latency-scale must be > 0")
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        parser.error("--checkpoint-every must be >= 1")
    if getattr(args, "profile_json", None):
        args.profile = True
    if args.profile and (args.checkpoint_every or args.resume):
        parser.error(
            "--profile cannot be combined with --checkpoint-every/--resume: "
            "profiler state is not checkpointable"
        )
    if args.checkpoint_every or args.resume:
        return args.checkpoint_dir
    return None
