"""Content-addressed on-disk store for simulation results.

Entries are JSON blobs under a cache root (default ``.repro-cache/``),
addressed by :meth:`repro.exec.jobspec.JobSpec.fingerprint` and
fanned out over 256 two-hex-digit subdirectories.  The store is safe for
concurrent writers and robust to corruption:

* **atomic writes** — every store writes a unique temporary file in the
  entry's directory and ``os.replace``-s it into place, so readers never
  observe a half-written entry and concurrent writers of the same key
  cannot clobber each other (last complete write wins; both wrote the
  same content anyway, by content-addressing);
* **corrupt-entry quarantine** — an entry that fails to parse or fails
  validation is moved aside to ``<entry>.corrupt`` and reported as a
  miss, never an exception: a truncated write (power loss, full disk)
  costs one re-simulation, not a broken sweep;
* **format versioning** — entries self-describe with
  :data:`ENTRY_FORMAT`; entries written by an incompatible cache layout
  are invalidated (removed and recounted), not misread.

:class:`CacheStats` counts hits / misses / stores / quarantines /
invalidations for reporting (``python -m repro.harness`` prints them
after a cached sweep).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: On-disk entry format version.  Bump when the entry layout changes;
#: old entries are invalidated on read.
ENTRY_FORMAT = 1

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_KEY_CHARS = set("0123456789abcdef")


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that failed to parse and were moved to ``*.corrupt``.
    quarantined: int = 0
    #: Entries removed because their payload could not be used (wrong
    #: format version, undecodable stats) — see :meth:`ResultCache.invalidate`.
    invalidated: int = 0

    def format(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} stores={self.stores} "
            f"quarantined={self.quarantined} invalidated={self.invalidated}"
        )


class CorruptEntry(Exception):
    """Internal: an on-disk entry is unreadable or fails validation."""


def _check_key(key: str) -> str:
    if len(key) < 8 or not set(key) <= _KEY_CHARS:
        raise ValueError(f"not a fingerprint key: {key!r}")
    return key


class ResultCache:
    """Content-addressed JSON blob store (see the module docstring)."""

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        _check_key(key)
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Whether an entry exists on disk (no stats, no validation)."""
        return self.path_for(key).exists()

    def load(self, key: str) -> Optional[dict]:
        """The entry's payload dictionary, or ``None`` on a miss.

        Corrupt entries are quarantined and count as misses; entries with
        a different format version are invalidated and count as misses.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self._quarantine(path)
            self.stats.misses += 1
            return None
        try:
            entry = self._decode(raw, key)
        except CorruptEntry:
            self._quarantine(path)
            self.stats.misses += 1
            return None
        if entry["format"] != ENTRY_FORMAT:
            self.invalidate(key)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["payload"]

    @staticmethod
    def _decode(raw: str, key: str) -> dict:
        try:
            entry = json.loads(raw)
        except ValueError as exc:
            raise CorruptEntry(str(exc)) from exc
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("format"), int)
            or entry.get("key") != key
            or not isinstance(entry.get("payload"), dict)
        ):
            raise CorruptEntry("entry structure invalid")
        return entry

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def store(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``.

        The temporary file lives in the final directory so ``os.replace``
        is a same-filesystem atomic rename on every platform.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": ENTRY_FORMAT, "key": key, "payload": payload}
        encoded = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def invalidate(self, key: str) -> None:
        """Drop an entry whose payload turned out to be unusable.

        Called by the read path on format mismatches and by consumers
        that fail to decode a structurally valid payload (e.g. a
        ``GPUConfig`` written by a different code version).
        """
        try:
            self.path_for(key).unlink()
        except OSError:
            pass
        self.stats.invalidated += 1

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is inspectable but inert."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass
        self.stats.quarantined += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Number of well-named entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Remove every entry (and quarantined sibling); returns count."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in list(self.root.glob("??/*.json")) + list(
            self.root.glob("??/*.json.corrupt")
        ):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
