"""Multi-process sweep engine for simulation grids.

The paper's evaluation is one 16-benchmark x 5-mode grid of independent,
deterministic simulations — an embarrassingly parallel sweep that the
harness previously ran serially.  :class:`SweepEngine` fans a list of
:class:`~repro.exec.jobspec.JobSpec`\\ s out over a
``ProcessPoolExecutor`` (the same persistent-worker-pool shape Atos
applies to irregular GPU work: workers drain a queue, dispatch never
blocks on a straggler), with the failure handling a long sweep needs:

* **per-job timeout** — in-flight submissions are capped at the worker
  count, so submission time approximates start time; a job that exceeds
  ``job_timeout`` is charged a failed attempt and the pool is rebuilt
  (the stuck worker is killed, innocent in-flight jobs are requeued
  without charge);
* **bounded retry** — a job whose worker dies (``BrokenProcessPool``)
  is requeued up to ``max_retries`` times; the pool is rebuilt around it;
* **in-process fallback** — a job out of retries, or a pool that cannot
  be created at all (``spawn`` failure, resource limits), degrades to
  plain in-process execution instead of failing the sweep;
* **streaming progress** — a callback receives a
  :class:`ProgressEvent` per completion / retry / fallback, so callers
  can print live progress without polling.

Real exceptions raised *by the simulation itself* (``WorkloadError``,
verification mismatches) are deterministic and propagate immediately —
retrying them would reproduce the failure bit-for-bit.

Each spec carries its own checkpoint policy
(:attr:`~repro.exec.jobspec.JobSpec.checkpoint_every` /
``checkpoint_dir``): workers checkpoint their job periodically and every
(re)attempt — including the in-process fallback — resumes from the last
checkpoint, so a crashed or timed-out job loses at most one checkpoint
interval of simulation within its retry budget.

Results are returned as JSON-safe payload dictionaries (produced by
:meth:`~repro.exec.jobspec.JobResult.to_payload`) in input order,
bit-identical to what a serial in-process run produces: workers serialize
``SimStats`` with :meth:`~repro.sim.stats.SimStats.to_dict`, whose round
trip is exact.

Test hooks: setting ``REPRO_EXEC_TEST_CRASH`` makes *worker processes*
(never in-process execution) die before simulating — ``always`` on every
attempt, otherwise the value is a sentinel-file path that makes exactly
the first attempt die.  ``REPRO_EXEC_TEST_HANG`` (seconds) makes workers
sleep to exercise the timeout path.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .jobspec import JobSpec, run_job


class SweepError(RuntimeError):
    """The engine could not complete a sweep (fallback disabled)."""


def _warn_legacy_checkpoint_kwargs(where: str) -> None:
    warnings.warn(
        f"passing checkpoint_every/checkpoint_dir/resume to {where} is "
        "deprecated; put the execution policy on the JobSpec itself "
        "(JobSpec.create(..., checkpoint_every=, checkpoint_dir=, resume=) "
        "or spec.with_policy(...)) and use repro.exec.run_job",
        DeprecationWarning,
        stacklevel=3,
    )


def execute_job(
    job: JobSpec,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    resume: bool = False,
    on_checkpoint=None,
) -> dict:
    """Deprecated shim: run one spec in-process; JSON-safe payload.

    The canonical path is :func:`repro.exec.jobspec.run_job`, which reads
    the checkpoint policy from the spec.  This wrapper keeps the PR-5
    keyword bundle working — merging the keywords into the spec — but
    warns when any of them is used.
    """
    if checkpoint_every is not None or checkpoint_dir is not None or resume:
        _warn_legacy_checkpoint_kwargs("execute_job")
        job = job.with_policy(
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume=resume or None,
        )
    return run_job(job, on_checkpoint=on_checkpoint).to_payload()


def _test_fault_hook(job: JobSpec) -> None:
    """Crash/hang injection for the engine's own tests (workers only)."""
    hang = os.environ.get("REPRO_EXEC_TEST_HANG")
    if hang:
        time.sleep(float(hang))
    crash = os.environ.get("REPRO_EXEC_TEST_CRASH")
    if not crash:
        return
    if crash == "always":
        os._exit(3)
    # Sentinel-file protocol: the first attempt creates the file and dies;
    # later attempts see it and proceed.
    try:
        fd = os.open(crash, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(3)


def _test_ckpt_crash_hook():
    """Kill-after-first-checkpoint injection for crash-recovery tests.

    ``REPRO_EXEC_TEST_CRASH_AFTER_CKPT`` names a sentinel file: the first
    checkpoint written by any worker creates it and kills the process
    *after* the checkpoint file landed on disk; subsequent attempts see
    the sentinel and run to completion (resuming from that checkpoint).
    """
    sentinel = os.environ.get("REPRO_EXEC_TEST_CRASH_AFTER_CKPT")
    if not sentinel:
        return None

    def on_checkpoint(doc) -> None:
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os._exit(3)

    return on_checkpoint


def _resumable(spec: JobSpec) -> JobSpec:
    """Arm resume on a spec that checkpoints to disk.

    Retried attempts — worker or fallback — must pick up from the last
    checkpoint instead of restarting; a first attempt simply finds no
    file and starts fresh.
    """
    if spec.checkpoint_dir is not None and not spec.resume:
        return spec.with_policy(resume=True)
    return spec


def _worker_entry(spec: JobSpec) -> dict:
    """What pool workers run: fault hooks (tests) + the real execution."""
    _test_fault_hook(spec)
    return run_job(
        _resumable(spec), on_checkpoint=_test_ckpt_crash_hook()
    ).to_payload()


@dataclass
class ProgressEvent:
    """One engine lifecycle notification (see :class:`SweepEngine`)."""

    #: ``"done"``, ``"retry"`` or ``"fallback"``.
    kind: str
    index: int
    job: JobSpec
    #: Result payload (``kind == "done"`` only).
    payload: Optional[dict] = None
    #: Where the completed job ran: ``"worker"`` or ``"in-process"``.
    source: str = "worker"
    attempts: int = 1
    completed: int = 0
    total: int = 0


ProgressCallback = Callable[[ProgressEvent], None]


@dataclass
class EngineStats:
    """Counters for one :meth:`SweepEngine.run` call."""

    completed: int = 0
    from_workers: int = 0
    in_process: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    fallbacks: int = 0
    timeouts: int = 0


class SweepEngine:
    """Run independent simulation jobs across worker processes."""

    #: Seconds between scheduler wakeups while futures are outstanding.
    _TICK = 0.05

    def __init__(
        self,
        max_workers: int,
        job_timeout: Optional[float] = None,
        max_retries: int = 2,
        fallback: bool = True,
        mp_context=None,
        executor_factory=None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.fallback = fallback
        # Deprecated engine-level checkpoint policy: specs carry their
        # own.  Kept as a default applied to specs that have none.
        if checkpoint_every is not None or checkpoint_dir is not None:
            _warn_legacy_checkpoint_kwargs("SweepEngine")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self._mp_context = mp_context
        self._executor_factory = executor_factory or self._default_factory
        self.stats = EngineStats()

    def _effective_spec(self, spec: JobSpec) -> JobSpec:
        """Apply the (deprecated) engine-level default checkpoint policy."""
        if spec.checkpoint_every is None and spec.checkpoint_dir is None:
            spec = spec.with_policy(
                checkpoint_every=self.checkpoint_every,
                checkpoint_dir=self.checkpoint_dir,
            )
        return spec

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _default_factory(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers, mp_context=self._mp_context
        )

    def _make_pool(self) -> Optional[ProcessPoolExecutor]:
        try:
            return self._executor_factory()
        except Exception:
            return None

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a (possibly broken or stuck) pool down without waiting.

        Workers are killed first: ``shutdown(wait=False)`` would leave a
        hung worker running forever, and its job has already been charged
        a timeout.
        """
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[JobSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[dict]:
        """Execute every spec; payloads in input order.

        Simulation errors propagate; infrastructure failures (worker
        crashes, timeouts, pool creation failure) are retried and then
        absorbed by the in-process fallback.
        """
        self.stats = EngineStats()
        jobs = [self._effective_spec(spec) for spec in jobs]
        total = len(jobs)
        results: List[Optional[dict]] = [None] * total
        if total == 0:
            return []

        def finish(index: int, payload: dict, source: str, attempts_used: int) -> None:
            results[index] = payload
            self.stats.completed += 1
            if source == "worker":
                self.stats.from_workers += 1
            else:
                self.stats.in_process += 1
            if progress is not None:
                progress(ProgressEvent(
                    kind="done", index=index, job=jobs[index], payload=payload,
                    source=source, attempts=attempts_used,
                    completed=self.stats.completed, total=total,
                ))

        def run_local(index: int, attempts_used: int) -> None:
            payload = run_job(_resumable(jobs[index])).to_payload()
            finish(index, payload, "in-process", attempts_used)

        if self.max_workers == 1:
            for i in range(total):
                run_local(i, 1)
            return [payload for payload in results if payload is not None]

        queue: deque = deque(range(total))
        attempts = [0] * total
        pool = self._make_pool()
        inflight: Dict[object, Tuple[int, float]] = {}

        def charge_failure(index: int, why: str) -> None:
            """A worker-side failure of job ``index``: retry or fall back."""
            attempts[index] += 1
            if attempts[index] <= self.max_retries:
                self.stats.retries += 1
                queue.append(index)
                if progress is not None:
                    progress(ProgressEvent(
                        kind="retry", index=index, job=jobs[index],
                        attempts=attempts[index],
                        completed=self.stats.completed, total=total,
                    ))
                return
            if not self.fallback:
                raise SweepError(
                    f"job {jobs[index].label()} failed {attempts[index]} "
                    f"worker attempts ({why}) and fallback is disabled"
                )
            self.stats.fallbacks += 1
            if progress is not None:
                progress(ProgressEvent(
                    kind="fallback", index=index, job=jobs[index],
                    attempts=attempts[index],
                    completed=self.stats.completed, total=total,
                ))
            run_local(index, attempts[index] + 1)

        def rebuild_pool(charge_suspects: bool, why: str) -> None:
            """Replace a broken/stuck pool; disposition in-flight jobs.

            Futures that completed before the pool broke are harvested;
            running jobs are requeued — billed an attempt when they are
            crash suspects (a shared worker died and any of them may have
            killed it), free when the pool is dying for unrelated reasons
            (another job's timeout).
            """
            nonlocal pool
            for future, (index, _submitted) in list(inflight.items()):
                del inflight[future]
                payload = None
                if future.done():
                    try:
                        payload = future.result()
                    except Exception:
                        payload = None
                if payload is not None:
                    finish(index, payload, "worker", attempts[index] + 1)
                elif charge_suspects:
                    charge_failure(index, why)
                else:
                    queue.append(index)
            self._kill_pool(pool)
            self.stats.pool_rebuilds += 1
            pool = self._make_pool()

        try:
            while queue or inflight:
                if pool is None:
                    # No usable pool (creation failed, or rebuilding did):
                    # degrade the rest of the sweep to in-process execution.
                    if not self.fallback:
                        raise SweepError(
                            "worker pool unavailable and fallback disabled"
                        )
                    while queue:
                        index = queue.popleft()
                        self.stats.fallbacks += 1
                        run_local(index, attempts[index] + 1)
                    continue

                # Keep at most max_workers in flight so a submission's
                # clock approximates its start time (per-job timeout).
                while queue and len(inflight) < self.max_workers:
                    index = queue.popleft()
                    try:
                        future = pool.submit(_worker_entry, jobs[index])
                    except Exception:
                        queue.appendleft(index)
                        rebuild_pool(False, "submit failed")
                        break
                    inflight[future] = (index, time.monotonic())
                if pool is None or not inflight:
                    continue

                done, _ = wait(
                    set(inflight), timeout=self._TICK,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    index, _submitted = inflight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken = True
                        charge_failure(index, "worker process died")
                    else:
                        finish(index, payload, "worker", attempts[index] + 1)
                if broken:
                    rebuild_pool(True, "worker process died")
                    continue

                if self.job_timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        (future, index)
                        for future, (index, submitted) in inflight.items()
                        if now - submitted > self.job_timeout
                    ]
                    if expired:
                        for future, index in expired:
                            del inflight[future]
                            self.stats.timeouts += 1
                            charge_failure(
                                index, f"exceeded {self.job_timeout}s timeout"
                            )
                        # Killing the stuck worker costs the whole pool;
                        # the innocent in-flight jobs ride along uncharged.
                        rebuild_pool(False, "sibling job timed out")
        finally:
            if pool is not None:
                self._kill_pool(pool)

        missing = [i for i, payload in enumerate(results) if payload is None]
        if missing:  # pragma: no cover - defensive
            raise SweepError(f"jobs never completed: {missing}")
        return [payload for payload in results if payload is not None]
