"""repro.exec: the experiment-execution subsystem.

Four layers, composed by the harness (:mod:`repro.harness.runner`) and
the serving daemon (:mod:`repro.serve`):

* :mod:`repro.exec.jobspec` — the canonical job model:
  :class:`JobSpec` (what to simulate + how to run it),
  :class:`JobResult`, and :func:`run_job`, the single in-process
  execution path every runner shares;
* :mod:`repro.exec.fingerprint` — deterministic content hashing of a
  job's identity, so identical jobs are identical keys across processes
  and runs (``SweepJob`` lives on as an alias of :class:`JobSpec`);
* :mod:`repro.exec.cache` — a content-addressed on-disk result store
  (:class:`ResultCache`) with atomic writes and corrupt-entry
  quarantine;
* :mod:`repro.exec.pool` — a multi-process sweep engine
  (:class:`SweepEngine`) with per-job timeout, bounded retry and
  in-process fallback.

``spec -> fingerprint -> cache -> pool``: a requested job is
fingerprinted, the cache is consulted, and only misses are simulated —
in parallel.

:mod:`repro.exec.cli` holds the argparse flags both command-line entry
points share, including ``--checkpoint-every``/``--resume`` backed by
:mod:`repro.state`; ``JobSpec.from_args`` turns a parsed namespace into
specs, so every flag is declared exactly once.
"""

from .cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache
from .fingerprint import CODE_VERSION, canonical_json, digest
from .jobspec import JobResult, JobSpec, SpecError, run_job
from .cli import (
    DEFAULT_CHECKPOINT_DIR,
    add_execution_flags,
    add_job_flags,
    validate_execution_flags,
)
from .pool import (
    EngineStats,
    ProgressEvent,
    SweepEngine,
    SweepError,
    execute_job,
)

#: Backwards-compatible alias (the original name of the job model).
SweepJob = JobSpec

__all__ = [
    "CODE_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CHECKPOINT_DIR",
    "CacheStats",
    "EngineStats",
    "JobResult",
    "JobSpec",
    "ProgressEvent",
    "ResultCache",
    "SpecError",
    "SweepEngine",
    "SweepError",
    "SweepJob",
    "add_execution_flags",
    "add_job_flags",
    "canonical_json",
    "digest",
    "execute_job",
    "run_job",
    "validate_execution_flags",
]
