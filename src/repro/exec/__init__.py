"""repro.exec: the experiment-execution subsystem.

Three layers, composed by the harness (:mod:`repro.harness.runner`):

* :mod:`repro.exec.fingerprint` — deterministic content hashing of a
  simulation job (:class:`SweepJob`), so identical jobs are identical
  keys across processes and runs;
* :mod:`repro.exec.cache` — a content-addressed on-disk result store
  (:class:`ResultCache`) with atomic writes and corrupt-entry
  quarantine;
* :mod:`repro.exec.pool` — a multi-process sweep engine
  (:class:`SweepEngine`) with per-job timeout, bounded retry and
  in-process fallback.

``fingerprint -> cache -> pool``: a requested job is fingerprinted, the
cache is consulted, and only misses are simulated — in parallel.

:mod:`repro.exec.cli` holds the argparse flags both command-line entry
points share, including ``--checkpoint-every``/``--resume`` backed by
:mod:`repro.state`.
"""

from .cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache
from .cli import (
    DEFAULT_CHECKPOINT_DIR,
    add_execution_flags,
    validate_execution_flags,
)
from .fingerprint import CODE_VERSION, SweepJob, canonical_json, digest
from .pool import (
    EngineStats,
    ProgressEvent,
    SweepEngine,
    SweepError,
    execute_job,
)

__all__ = [
    "CODE_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CHECKPOINT_DIR",
    "CacheStats",
    "EngineStats",
    "ProgressEvent",
    "ResultCache",
    "SweepEngine",
    "SweepError",
    "SweepJob",
    "add_execution_flags",
    "canonical_json",
    "digest",
    "execute_job",
    "validate_execution_flags",
]
