"""Experiment harness: runs the benchmark grid and regenerates every table
and figure of the paper's evaluation (Section 5).
"""

from .runner import BenchmarkRun, run_benchmark, run_grid, run_jobs, GridResults
from .experiments import (
    figure6_warp_activity,
    figure7_dram_efficiency,
    figure8_smx_occupancy,
    figure9_waiting_time,
    figure10_memory_footprint,
    figure11_speedup,
    figure12_agt_sensitivity,
    table2_configuration,
    table3_latency,
    table4_benchmarks,
)
from .reporting import format_table

__all__ = [
    "BenchmarkRun",
    "GridResults",
    "figure6_warp_activity",
    "figure7_dram_efficiency",
    "figure8_smx_occupancy",
    "figure9_waiting_time",
    "figure10_memory_footprint",
    "figure11_speedup",
    "figure12_agt_sensitivity",
    "format_table",
    "run_benchmark",
    "run_grid",
    "run_jobs",
    "table2_configuration",
    "table3_latency",
    "table4_benchmarks",
]
