"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                      # everything (minutes)
    python -m repro.harness --jobs 4             # 4 worker processes
    python -m repro.harness --benchmarks bfs_citation amr
    python -m repro.harness --scale 0.25         # quick, scaled-down pass
    python -m repro.harness --figure 11          # a single figure
    python -m repro.harness --no-cache           # ignore .repro-cache/
    python -m repro.harness --checkpoint-every 2000000 --resume

Results persist in a content-addressed on-disk cache (``--cache-dir``,
default ``.repro-cache/``): a warm rerun of any figure simulates nothing.
``--checkpoint-every`` snapshots long simulations periodically so an
interrupted sweep can ``--resume`` from where it stopped.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time

from .experiments import (
    figure6_warp_activity,
    figure7_dram_efficiency,
    figure8_smx_occupancy,
    figure9_waiting_time,
    figure10_memory_footprint,
    figure11_speedup,
    figure12_agt_sensitivity,
    overhead_analysis,
    run_all_figures,
    table2_configuration,
    table3_latency,
    table4_benchmarks,
)
from ..exec import (
    ResultCache,
    add_execution_flags,
    add_job_flags,
    validate_execution_flags,
)
from ..config import GPUConfig
from ..sim import profiler as _profiler
from .runner import DEFAULT_LATENCY_SCALE, run_grid

_GRID_FIGURES = {
    "6": figure6_warp_activity,
    "7": figure7_dram_efficiency,
    "8": figure8_smx_occupancy,
    "9": figure9_waiting_time,
    "10": figure10_memory_footprint,
    "11": figure11_speedup,
}

_STATIC = {
    "table2": table2_configuration,
    "table3": table3_latency,
    "table4": table4_benchmarks,
    "overhead": overhead_analysis,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the DTBL paper's evaluation tables/figures.",
    )
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="benchmark subset (default: all of Table 4)")
    parser.add_argument("--figure", default=None,
                        help="one of: 6-12, table2, table3, table4, overhead")
    add_job_flags(parser, latency_scale_default=DEFAULT_LATENCY_SCALE)
    add_execution_flags(parser)
    parser.add_argument("--quiet", action="store_true", help="suppress progress")
    args = parser.parse_args(argv)

    checkpoint_dir = validate_execution_flags(parser, args)
    profiler = None
    if args.profile:
        # Only in-process simulations are observed: pin one worker and
        # bypass the cache so the profiled figures actually simulate.
        args.jobs = 1
        args.cache = False
        profiler = _profiler.activate()
    cache = ResultCache(args.cache_dir) if args.cache else None

    if args.sanitize:
        # The env switch reaches every GPU the workloads construct,
        # including figure paths that build their own configs; a finding
        # raises WorkloadError out of Workload.execute with the report.
        os.environ["REPRO_SANITIZE"] = "1"

    config = None
    if args.core:
        config = dataclasses.replace(GPUConfig.k20c(), core=args.core)

    verbose = not args.quiet
    start = time.time()
    if args.figure is None:
        experiments = run_all_figures(
            scale=args.scale,
            latency_scale=args.latency_scale,
            benchmarks=args.benchmarks,
            verbose=verbose,
            agt_benchmarks=args.benchmarks
            or ["bht", "regx_string", "amr", "bfs_citation"],
            jobs=args.jobs,
            cache=cache,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            config=config,
        )
        for experiment in experiments:
            print()
            print(experiment.render())
    elif args.figure in _STATIC:
        print(_STATIC[args.figure]().render())
    elif args.figure == "12":
        print(
            figure12_agt_sensitivity(
                benchmarks=args.benchmarks
                or ["bht", "regx_string", "amr", "bfs_citation"],
                scale=args.scale,
                latency_scale=args.latency_scale,
                verbose=verbose,
                jobs=args.jobs,
                cache=cache,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=checkpoint_dir,
                core=args.core,
            ).render()
        )
    elif args.figure in _GRID_FIGURES:
        grid = run_grid(
            benchmarks=args.benchmarks,
            scale=args.scale,
            latency_scale=args.latency_scale,
            verbose=verbose,
            jobs=args.jobs,
            cache=cache,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            config=config,
        )
        print(_GRID_FIGURES[args.figure](grid).render())
    else:
        parser.error(f"unknown figure {args.figure!r}")
    if args.sanitize:
        print("sanitizer: clean (no findings across all simulations)")
    if profiler is not None:
        _profiler.deactivate()
        print()
        print(profiler.report())
    if verbose:
        if cache is not None:
            print(f"\n[cache] {cache.stats.format()} ({args.cache_dir})")
        print(f"[{time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
