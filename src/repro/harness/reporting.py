"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    note: str = "",
) -> str:
    """Render an aligned ASCII table with a title and optional footnote."""
    rendered: List[List[str]] = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [title, "=" * len(title), fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rendered)
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def format_bars(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (for CLI figure output)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    peak = max((v for v in values if v > 0), default=1.0)
    label_width = max((len(label) for label in labels), default=0)
    lines = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.rjust(label_width)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (0 for an empty sequence)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
