"""Export experiment results to CSV / JSON for plotting and archiving."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, Union

from .experiments import Experiment


def experiment_to_csv(experiment: Experiment) -> str:
    """One experiment's rows as CSV text (headers included)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(experiment.headers)
    writer.writerows(experiment.rows)
    return buffer.getvalue()


def experiment_to_dict(experiment: Experiment) -> dict:
    """JSON-ready dictionary: rows plus summary and paper expectations."""
    return {
        "experiment_id": experiment.experiment_id,
        "title": experiment.title,
        "headers": list(experiment.headers),
        "rows": [list(row) for row in experiment.rows],
        "summary": dict(experiment.summary),
        "paper": dict(experiment.paper),
        "note": experiment.note,
    }


def experiments_to_json(experiments: Iterable[Experiment], indent: int = 2) -> str:
    return json.dumps([experiment_to_dict(e) for e in experiments], indent=indent)


def write_experiments(
    experiments: Iterable[Experiment],
    directory: Union[str, Path],
) -> list:
    """Write one CSV per experiment plus a combined ``experiments.json``.

    Returns the list of paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    experiments = list(experiments)
    written = []
    for experiment in experiments:
        slug = (
            experiment.experiment_id.lower()
            .replace(" ", "_")
            .replace(".", "")
            .replace(":", "")
        )
        path = directory / f"{slug}.csv"
        path.write_text(experiment_to_csv(experiment))
        written.append(path)
    combined = directory / "experiments.json"
    combined.write_text(experiments_to_json(experiments))
    written.append(combined)
    return written
