"""Benchmark grid runner with per-process memoization.

Full-grid experiments (Figs. 6-11) all consume the same (benchmark, mode)
simulations, so :func:`run_grid` caches results per process: regenerating
every figure costs one pass over the grid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import GPUConfig
from ..runtime import ExecutionMode
from ..sim.stats import SimStats
from ..workloads import benchmark_names, get_benchmark

#: Launch-latency scale used for the evaluation grid (see DESIGN.md:
#: datasets are scaled down ~3 orders of magnitude from the paper's, so
#: the measured K20c launch latencies are shrunk to keep the
#: overhead-to-work ratio representative; all CDP:DTBL ratios from
#: Table 3 are preserved).
DEFAULT_LATENCY_SCALE = 0.25

#: Default dataset scale for the evaluation grid.
DEFAULT_SCALE = 1.0

#: The mode set evaluated in the paper's figures.
ALL_MODES: Tuple[ExecutionMode, ...] = (
    ExecutionMode.FLAT,
    ExecutionMode.CDP,
    ExecutionMode.CDP_IDEAL,
    ExecutionMode.DTBL,
    ExecutionMode.DTBL_IDEAL,
)


@dataclass
class BenchmarkRun:
    """One (benchmark, mode) simulation outcome."""

    benchmark: str
    mode: ExecutionMode
    stats: SimStats
    wall_seconds: float

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class GridResults:
    """Results of a (benchmark x mode) grid, keyed for figure generation."""

    def __init__(self) -> None:
        self._runs: Dict[Tuple[str, ExecutionMode], BenchmarkRun] = {}

    def add(self, run: BenchmarkRun) -> None:
        self._runs[(run.benchmark, run.mode)] = run

    def get(self, benchmark: str, mode: ExecutionMode) -> BenchmarkRun:
        return self._runs[(benchmark, mode)]

    def has(self, benchmark: str, mode: ExecutionMode) -> bool:
        return (benchmark, mode) in self._runs

    def benchmarks(self) -> List[str]:
        return sorted({name for name, _ in self._runs})

    def speedup(self, benchmark: str, mode: ExecutionMode) -> float:
        """Cycles(flat) / cycles(mode) for one benchmark."""
        flat = self.get(benchmark, ExecutionMode.FLAT).cycles
        other = self.get(benchmark, mode).cycles
        return flat / other if other else 0.0


_CACHE: Dict[tuple, BenchmarkRun] = {}


def run_benchmark(
    name: str,
    mode: ExecutionMode,
    scale: float = DEFAULT_SCALE,
    latency_scale: float = DEFAULT_LATENCY_SCALE,
    config: Optional[GPUConfig] = None,
    verify: bool = True,
    use_cache: bool = True,
) -> BenchmarkRun:
    """Simulate one (benchmark, mode) pair; memoized per process."""
    key = (name, mode, scale, latency_scale, config, verify)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    workload = get_benchmark(name, mode, scale)
    start = time.perf_counter()
    result = workload.execute(
        config=config, latency_scale=latency_scale, verify=verify
    )
    run = BenchmarkRun(
        benchmark=name,
        mode=mode,
        stats=result.stats,
        wall_seconds=time.perf_counter() - start,
    )
    if use_cache:
        _CACHE[key] = run
    return run


def run_grid(
    benchmarks: Optional[Iterable[str]] = None,
    modes: Iterable[ExecutionMode] = ALL_MODES,
    scale: float = DEFAULT_SCALE,
    latency_scale: float = DEFAULT_LATENCY_SCALE,
    config: Optional[GPUConfig] = None,
    verify: bool = True,
    verbose: bool = False,
) -> GridResults:
    """Simulate the full (benchmark x mode) grid."""
    grid = GridResults()
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    for name in names:
        for mode in modes:
            run = run_benchmark(
                name, mode, scale=scale, latency_scale=latency_scale,
                config=config, verify=verify,
            )
            grid.add(run)
            if verbose:
                print(
                    f"  {name:14s} {mode.value:6s} cycles={run.cycles:>10,} "
                    f"({run.wall_seconds:.1f}s)"
                )
    return grid


def clear_cache() -> None:
    """Drop memoized runs (tests use this to force fresh simulations)."""
    _CACHE.clear()
