"""Benchmark grid runner on top of the :mod:`repro.exec` subsystem.

Full-grid experiments (Figs. 6-11) all consume the same (benchmark, mode)
simulations.  Every requested simulation is reduced to a
:class:`~repro.exec.jobspec.JobSpec` and its content fingerprint,
then resolved through three layers:

1. an **in-process memo** (`_CACHE`) keyed by the fingerprint — the old
   per-process behaviour, now collision-free: the key covers the full GPU
   configuration, dataset scale, latency scale, verification and
   sanitizer state (``config=None`` and an explicit default config are
   one key, and two grids differing only in latency scale never alias);
2. an optional **on-disk result cache**
   (:class:`~repro.exec.cache.ResultCache`) — warm reruns of a grid cost
   zero simulations, across processes and machines;
3. the **sweep engine** (:class:`~repro.exec.pool.SweepEngine`) — cache
   misses fan out over ``jobs`` worker processes, falling back to
   in-process execution when ``jobs=1`` or the pool cannot run.

All three paths produce bit-identical :class:`~repro.sim.stats.SimStats`
(`tests/exec/test_pool.py` and `tests/harness/test_runner.py` assert it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import GPUConfig
from ..errors import ReproError
from ..exec import JobSpec, ResultCache, SweepEngine, run_job
from ..exec.pool import ProgressEvent, _resumable
from ..runtime import ExecutionMode
from ..sim.sanitizer import SanitizerReport
from ..sim.stats import SimStats
from ..workloads import benchmark_names

#: Launch-latency scale used for the evaluation grid (see DESIGN.md:
#: datasets are scaled down ~3 orders of magnitude from the paper's, so
#: the measured K20c launch latencies are shrunk to keep the
#: overhead-to-work ratio representative; all CDP:DTBL ratios from
#: Table 3 are preserved).
DEFAULT_LATENCY_SCALE = 0.25

#: Default dataset scale for the evaluation grid.
DEFAULT_SCALE = 1.0

#: The full comparison grid: the paper's five modes plus the
#: compiler-optimized rivals, derived from the enum so new modes join
#: the default grid automatically.
ALL_MODES: Tuple[ExecutionMode, ...] = ExecutionMode.comparison_order()


@dataclass
class BenchmarkRun:
    """One (benchmark, mode) simulation outcome."""

    benchmark: str
    mode: ExecutionMode
    stats: SimStats
    wall_seconds: float
    #: Sanitizer report when the run was sanitized (always clean —
    #: findings raise before a result exists); ``None`` otherwise.
    sanitizer: Optional[SanitizerReport] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class GridResults:
    """Results of a (benchmark x mode) grid, keyed for figure generation."""

    def __init__(self) -> None:
        self._runs: Dict[Tuple[str, ExecutionMode], BenchmarkRun] = {}

    def add(self, run: BenchmarkRun) -> None:
        self._runs[(run.benchmark, run.mode)] = run

    def get(self, benchmark: str, mode: ExecutionMode) -> BenchmarkRun:
        return self._runs[(benchmark, mode)]

    def has(self, benchmark: str, mode: ExecutionMode) -> bool:
        return (benchmark, mode) in self._runs

    def benchmarks(self) -> List[str]:
        return sorted({name for name, _ in self._runs})

    def speedup(self, benchmark: str, mode: ExecutionMode) -> float:
        """Cycles(flat) / cycles(mode) for one benchmark."""
        flat = self.get(benchmark, ExecutionMode.FLAT).cycles
        other = self.get(benchmark, mode).cycles
        return flat / other if other else 0.0


_CACHE: Dict[str, BenchmarkRun] = {}


def _run_from_payload(job: JobSpec, payload: dict) -> BenchmarkRun:
    """Decode an execution/cache payload into a :class:`BenchmarkRun`."""
    sanitizer = payload.get("sanitizer")
    return BenchmarkRun(
        benchmark=job.benchmark,
        mode=job.mode,
        stats=SimStats.from_dict(payload["stats"]),
        wall_seconds=float(payload["wall_seconds"]),
        sanitizer=SanitizerReport.from_dict(sanitizer) if sanitizer else None,
    )


def _payload_from_run(run: BenchmarkRun) -> dict:
    """Re-encode a memoized run for disk write-through."""
    return {
        "stats": run.stats.to_dict(),
        "wall_seconds": run.wall_seconds,
        "sanitizer": run.sanitizer.to_dict() if run.sanitizer else None,
    }


def _print_run(job: JobSpec, run: BenchmarkRun, note: str = "") -> None:
    suffix = f"  [{note}]" if note else ""
    print(
        f"  {job.benchmark:14s} {job.mode.value:6s} cycles={run.cycles:>10,} "
        f"({run.wall_seconds:.1f}s){suffix}"
    )


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    use_memo: bool = True,
    verbose: bool = False,
    engine: Optional[SweepEngine] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
) -> List[BenchmarkRun]:
    """Resolve each job through memo -> disk cache -> (pool | in-process).

    Returns one :class:`BenchmarkRun` per spec, in input order.  Within
    one call, duplicate fingerprints are simulated once.  ``engine``
    overrides the default :class:`SweepEngine` (tests inject fault
    configurations through it); it is only consulted when ``jobs > 1``.

    With ``checkpoint_dir`` set, simulations checkpoint their state every
    ``checkpoint_every`` cycles under ``<dir>/<fingerprint>.ckpt`` and
    every attempt — serial, worker, retry or fallback — resumes from an
    existing checkpoint (see :mod:`repro.state`).  The policy is stamped
    onto each spec (specs that already carry one keep theirs), so one
    :class:`~repro.exec.JobSpec` is the only parameter bundle the engine
    and the serial path ever see.
    """
    if checkpoint_every is not None or checkpoint_dir is not None:
        specs = [
            spec.with_policy(
                checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir
            )
            if spec.checkpoint_every is None and spec.checkpoint_dir is None
            else spec
            for spec in specs
        ]
    runs: Dict[int, BenchmarkRun] = {}
    keys = [job.fingerprint() for job in specs]
    todo: List[int] = []
    seen: Dict[str, int] = {}
    for i, (job, key) in enumerate(zip(specs, keys)):
        if use_memo and key in _CACHE:
            runs[i] = _CACHE[key]
            # Write through: the disk cache must end up covering every
            # requested job, so a warm rerun in a *fresh* process (no
            # memo) still simulates nothing.
            if cache is not None and not cache.contains(key):
                cache.store(key, _payload_from_run(runs[i]))
            if verbose:
                _print_run(job, runs[i], "memo")
            continue
        if cache is not None:
            payload = cache.load(key)
            if payload is not None:
                try:
                    run = _run_from_payload(job, payload)
                except (ReproError, KeyError, ValueError, TypeError):
                    # Structurally valid JSON whose payload cannot be
                    # decoded by this code version: drop it and re-run.
                    cache.invalidate(key)
                else:
                    runs[i] = run
                    if use_memo:
                        _CACHE[key] = run
                    if verbose:
                        _print_run(job, run, "cached")
                    continue
        if key in seen:
            continue  # duplicate of an earlier miss; filled in below
        seen[key] = i
        todo.append(i)

    if todo:
        todo_jobs = [specs[i] for i in todo]
        if jobs > 1:
            engine = engine or SweepEngine(max_workers=jobs)

            def on_event(event: ProgressEvent) -> None:
                if not verbose:
                    return
                if event.kind == "done":
                    note = "" if event.source == "worker" else event.source
                    if event.attempts > 1:
                        note = (note + f" attempt {event.attempts}").strip()
                    _print_run(
                        event.job, _run_from_payload(event.job, event.payload),
                        note,
                    )
                elif event.kind == "retry":
                    print(f"  {event.job.label()}: worker failed, retrying "
                          f"(attempt {event.attempts})")
                elif event.kind == "fallback":
                    print(f"  {event.job.label()}: retries exhausted, "
                          f"running in-process")

            payloads = engine.run(todo_jobs, progress=on_event)
        else:
            payloads = []
            for job in todo_jobs:
                payload = run_job(_resumable(job)).to_payload()
                payloads.append(payload)
                if verbose:
                    _print_run(job, _run_from_payload(job, payload))
        for i, payload in zip(todo, payloads):
            job, key = specs[i], keys[i]
            run = _run_from_payload(job, payload)
            if cache is not None:
                cache.store(key, payload)
            if use_memo:
                _CACHE[key] = run
            runs[i] = run

    # Fill duplicates of simulated keys.
    for i, key in enumerate(keys):
        if i not in runs:
            runs[i] = runs[seen[key]]
    return [runs[i] for i in range(len(specs))]


def run_benchmark(
    name: str,
    mode: ExecutionMode,
    scale: float = DEFAULT_SCALE,
    latency_scale: float = DEFAULT_LATENCY_SCALE,
    config: Optional[GPUConfig] = None,
    verify: bool = True,
    use_cache: bool = True,
    cache: Optional[ResultCache] = None,
) -> BenchmarkRun:
    """Simulate one (benchmark, mode) pair.

    ``use_cache`` controls the in-process memo; ``cache`` attaches the
    on-disk result store (both reads and writes — ``cache=None`` bypasses
    the disk entirely).
    """
    job = JobSpec.create(
        name, mode, scale, latency_scale, config=config, verify=verify
    )
    return run_jobs([job], cache=cache, use_memo=use_cache)[0]


def run_grid(
    benchmarks: Optional[Iterable[str]] = None,
    modes: Iterable[ExecutionMode] = ALL_MODES,
    scale: float = DEFAULT_SCALE,
    latency_scale: float = DEFAULT_LATENCY_SCALE,
    config: Optional[GPUConfig] = None,
    verify: bool = True,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    engine: Optional[SweepEngine] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
) -> GridResults:
    """Simulate the full (benchmark x mode) grid.

    ``jobs > 1`` fans cache misses out over that many worker processes;
    ``cache`` persists results on disk so a warm rerun simulates nothing;
    ``checkpoint_every``/``checkpoint_dir`` enable mid-run checkpointing
    with resume-on-retry (see :func:`run_jobs`).
    """
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    specs = [
        JobSpec.create(
            name, mode, scale, latency_scale, config=config, verify=verify
        )
        for name in names
        for mode in modes
    ]
    grid = GridResults()
    for run in run_jobs(
        specs, jobs=jobs, cache=cache, verbose=verbose, engine=engine,
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
    ):
        grid.add(run)
    return grid


def clear_cache() -> None:
    """Drop memoized runs (tests use this to force fresh simulations)."""
    _CACHE.clear()
