"""One function per table / figure of the paper's evaluation.

Each function consumes a :class:`~repro.harness.runner.GridResults` (or
runs the sub-grid it needs) and returns an :class:`Experiment` carrying
the regenerated rows, headline aggregates, and the paper's reported
numbers for side-by-side comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import GPUConfig, LatencyModel
from ..dtbl.overhead import overhead_report
from ..exec import JobSpec, ResultCache
from ..runtime import ExecutionMode
from ..workloads import benchmark_names, get_benchmark
from .reporting import format_table, geomean, mean
from .runner import (
    DEFAULT_LATENCY_SCALE,
    GridResults,
    run_grid,
    run_jobs,
)

FLAT = ExecutionMode.FLAT
CDP = ExecutionMode.CDP
CDPI = ExecutionMode.CDP_IDEAL
DTBL = ExecutionMode.DTBL
DTBLI = ExecutionMode.DTBL_IDEAL

#: Every non-flat mode in the enum's canonical comparison order.  The
#: Fig. 11 grid derives its columns from this, so modes added to
#: :class:`ExecutionMode` (e.g. the compiler-optimized ``cdpa`` /
#: ``cons``) appear automatically instead of being hand-listed here.
DYNAMIC_MODES = tuple(
    mode for mode in ExecutionMode.comparison_order() if mode is not FLAT
)


def mode_column(mode: ExecutionMode) -> str:
    """Table-column label for a mode (the paper's shorthand)."""
    return mode.value.upper()


@dataclass
class Experiment:
    """A regenerated table or figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[list]
    #: Headline aggregates (averages etc.) keyed by metric name.
    summary: Dict[str, float] = field(default_factory=dict)
    #: What the paper reports for the same experiment.
    paper: Dict[str, float] = field(default_factory=dict)
    note: str = ""

    def render(self) -> str:
        lines = [format_table(f"{self.experiment_id}: {self.title}", self.headers, self.rows, self.note)]
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                paper_value = self.paper.get(key)
                suffix = f"   (paper: {paper_value})" if paper_value is not None else ""
                lines.append(f"  {key}: {value:.3f}{suffix}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Tables 2-4 (static)
# ----------------------------------------------------------------------

def table2_configuration(config: Optional[GPUConfig] = None) -> Experiment:
    """Table 2: GPGPU-Sim configuration parameters."""
    cfg = config or GPUConfig.k20c()
    rows = [
        ["SMX Clock Freq.", f"{cfg.smx_clock_mhz}MHz"],
        ["Memory Clock Freq.", f"{cfg.memory_clock_mhz}MHz"],
        ["# of SMX", cfg.num_smx],
        ["Max # of Resident Thread Blocks per SMX", cfg.max_resident_blocks],
        ["Max # of Resident Threads per SMX", cfg.max_resident_threads],
        ["# of 32-bit Registers per SMX", cfg.registers_per_smx],
        ["L1 Cache / Shared Mem Size per SMX", f"{cfg.l1_size // 1024}KB / {cfg.shared_mem_size // 1024}KB"],
        ["Max # of Concurrent Kernels", cfg.max_concurrent_kernels],
    ]
    return Experiment("Table 2", "GPU Configuration Parameters", ["Parameter", "Value"], rows)


def table3_latency() -> Experiment:
    """Table 3: CDP / DTBL device-runtime latency model (cycles)."""
    lat = LatencyModel.measured_k20c()
    rows = [
        ["cudaStreamCreateWithFlags (CDP only)", lat.stream_create, "-", "-"],
        ["cudaGetParameterBuffer (CDP and DTBL)", "-", lat.param_buffer_base, lat.param_buffer_per_thread],
        ["cudaLaunchDevice (CDP only)", "-", lat.launch_device_base, lat.launch_device_per_thread],
        ["Kernel dispatching", lat.kernel_dispatch, "-", "-"],
    ]
    return Experiment(
        "Table 3",
        "Latency Modeling for CDP and DTBL (cycles; b + A*x per warp)",
        ["API", "flat", "b", "A"],
        rows,
    )


def table4_benchmarks() -> Experiment:
    """Table 4: the benchmark / input configurations."""
    rows = []
    for name in benchmark_names():
        workload = get_benchmark(name, FLAT)
        rows.append([name, workload.app_name, type(workload).__name__])
    return Experiment(
        "Table 4",
        "Benchmarks used in the experimental evaluation",
        ["Configuration", "Application", "Workload class"],
        rows,
    )


# ----------------------------------------------------------------------
# Figures 6-11 (full grid)
# ----------------------------------------------------------------------

def figure6_warp_activity(grid: GridResults) -> Experiment:
    """Fig. 6: average percentage of active threads in a warp."""
    rows = []
    deltas = []
    for name in grid.benchmarks():
        flat = grid.get(name, FLAT).stats.warp_activity_pct
        cdp = grid.get(name, CDP).stats.warp_activity_pct
        dtbl = grid.get(name, DTBL).stats.warp_activity_pct
        rows.append([name, round(flat, 1), round(cdp, 1), round(dtbl, 1)])
        deltas.append(dtbl - flat)
    exp = Experiment(
        "Figure 6",
        "Warp Activity Percentage",
        ["benchmark", "Flat", "CDP", "DTBL"],
        rows,
        summary={"avg warp-activity gain (DTBL - flat, pp)": mean(deltas)},
        paper={"avg warp-activity gain (DTBL - flat, pp)": 10.7},
    )
    return exp


def figure7_dram_efficiency(grid: GridResults) -> Experiment:
    """Fig. 7: DRAM efficiency (the paper's (n_rd+n_wr)/n_activity)."""
    rows = []
    cdp_gain = []
    dtbl_gain = []
    for name in grid.benchmarks():
        flat = grid.get(name, FLAT).stats.dram_efficiency
        cdp = grid.get(name, CDP).stats.dram_efficiency
        dtbl = grid.get(name, DTBL).stats.dram_efficiency
        rows.append([name, flat, cdp, dtbl])
        cdp_gain.append(cdp - flat)
        dtbl_gain.append(dtbl - flat)
    return Experiment(
        "Figure 7",
        "DRAM Efficiency",
        ["benchmark", "Flat", "CDP", "DTBL"],
        rows,
        summary={
            "avg DRAM-efficiency gain CDP - flat": mean(cdp_gain),
            "avg DRAM-efficiency gain DTBL - flat": mean(dtbl_gain),
        },
        paper={
            "avg DRAM-efficiency gain CDP - flat": 0.029,
            "avg DRAM-efficiency gain DTBL - flat": 0.053,
        },
    )


def figure8_smx_occupancy(grid: GridResults) -> Experiment:
    """Fig. 8: SMX occupancy for CDPI / DTBLI / CDP / DTBL."""
    rows = []
    ratios = []
    cdp_drop = []
    dtbl_drop = []
    for name in grid.benchmarks():
        cdpi = grid.get(name, CDPI).stats.smx_occupancy_pct
        dtbli = grid.get(name, DTBLI).stats.smx_occupancy_pct
        cdp = grid.get(name, CDP).stats.smx_occupancy_pct
        dtbl = grid.get(name, DTBL).stats.smx_occupancy_pct
        rows.append([name, round(cdpi, 1), round(dtbli, 1), round(cdp, 1), round(dtbl, 1)])
        if cdpi > 0:
            ratios.append(dtbli / cdpi)
        cdp_drop.append(cdp - cdpi)
        dtbl_drop.append(dtbl - dtbli)
    return Experiment(
        "Figure 8",
        "SMX Occupancy (%)",
        ["benchmark", "CDPI", "DTBLI", "CDP", "DTBL"],
        rows,
        summary={
            "DTBLI / CDPI occupancy ratio (geomean)": geomean(ratios),
            "avg occupancy drop CDP vs CDPI (pp)": mean(cdp_drop),
            "avg occupancy drop DTBL vs DTBLI (pp)": mean(dtbl_drop),
        },
        paper={
            "DTBLI / CDPI occupancy ratio (geomean)": 1.24,
            "avg occupancy drop CDP vs CDPI (pp)": -10.7,
            "avg occupancy drop DTBL vs DTBLI (pp)": -5.2,
        },
    )


def figure9_waiting_time(grid: GridResults) -> Experiment:
    """Fig. 9: average waiting time per dynamic kernel / aggregated group."""
    rows = []
    ideal_deltas = []
    real_deltas = []
    for name in grid.benchmarks():
        cdpi = grid.get(name, CDPI).stats.avg_waiting_cycles
        dtbli = grid.get(name, DTBLI).stats.avg_waiting_cycles
        cdp = grid.get(name, CDP).stats.avg_waiting_cycles
        dtbl = grid.get(name, DTBL).stats.avg_waiting_cycles
        if cdp == 0 and dtbl == 0:
            continue  # no dynamic launches in this benchmark
        rows.append([name, round(cdpi), round(dtbli), round(cdp), round(dtbl)])
        if cdpi > 0:
            ideal_deltas.append((dtbli - cdpi) / cdpi)
        if cdp > 0:
            real_deltas.append((dtbl - cdp) / cdp)
    return Experiment(
        "Figure 9",
        "Average Waiting Time for a Kernel or an Aggregated Group (cycles)",
        ["benchmark", "CDPI", "DTBLI", "CDP", "DTBL"],
        rows,
        summary={
            "avg waiting-time change DTBLI vs CDPI": mean(ideal_deltas),
            "avg waiting-time change DTBL vs CDP": mean(real_deltas),
        },
        paper={
            "avg waiting-time change DTBLI vs CDPI": -0.188,
            "avg waiting-time change DTBL vs CDP": -0.241,
        },
    )


def figure10_memory_footprint(grid: GridResults) -> Experiment:
    """Fig. 10: memory footprint reduction of DTBL relative to CDP."""
    rows = []
    reductions = []
    for name in grid.benchmarks():
        cdp = grid.get(name, CDP).stats.peak_footprint_bytes
        dtbl = grid.get(name, DTBL).stats.peak_footprint_bytes
        if cdp == 0:
            continue
        reduction_pct = 100.0 * (cdp - dtbl) / cdp
        rows.append([name, cdp, dtbl, round(reduction_pct, 1)])
        reductions.append(reduction_pct)
    return Experiment(
        "Figure 10",
        "Memory Footprint Reduction of DTBL from CDP",
        ["benchmark", "CDP peak (B)", "DTBL peak (B)", "reduction (%)"],
        rows,
        summary={"avg footprint reduction (%)": mean(reductions)},
        paper={"avg footprint reduction (%)": 25.6},
    )


def figure11_speedup(grid: GridResults) -> Experiment:
    """Fig. 11: overall speedup over the flat implementation."""
    rows = []
    agg = {mode: [] for mode in DYNAMIC_MODES}
    for name in grid.benchmarks():
        row = [name]
        for mode in DYNAMIC_MODES:
            speedup = grid.speedup(name, mode)
            row.append(round(speedup, 2))
            agg[mode].append(speedup)
        rows.append(row)
    return Experiment(
        "Figure 11",
        "Overall Performance: Speedup over Flat Implementation",
        ["benchmark"] + [mode_column(mode) for mode in DYNAMIC_MODES],
        rows,
        summary={
            f"{mode_column(mode)} speedup (geomean)": geomean(agg[mode])
            for mode in DYNAMIC_MODES
        },
        paper={
            "CDPI speedup (geomean)": 1.43,
            "DTBLI speedup (geomean)": 1.63,
            "CDP speedup (geomean)": 0.86,
            "DTBL speedup (geomean)": 1.21,
        },
        note="Paper averages are arithmetic; geomean shown here is less "
        "sensitive to the scaled-down outliers (see EXPERIMENTS.md).",
    )


# ----------------------------------------------------------------------
# Figure 12: AGT-size sensitivity (its own sub-grid)
# ----------------------------------------------------------------------

def figure12_agt_sensitivity(
    benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = (512, 1024, 2048),
    scale: float = 1.0,
    latency_scale: float = DEFAULT_LATENCY_SCALE,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    core: Optional[str] = None,
) -> Experiment:
    """Fig. 12: DTBL performance sensitivity to the AGT size.

    Runs the DTBL mode under each AGT size and normalizes each
    benchmark's performance (1/cycles) to the 1024-entry baseline.
    The (benchmark x AGT size) sub-grid goes through the same
    fingerprint -> cache -> pool path as the main grid.  ``core``
    selects the execution core (all cores are statistic-exact, so the
    figure itself is core-independent — the knob exists so a sweep can
    share one cache population).
    """
    names = list(benchmarks) if benchmarks is not None else benchmark_names()

    def agt_config(size: int) -> GPUConfig:
        config = GPUConfig.k20c().with_agt_entries(size)
        if core:
            config = dataclasses.replace(config, core=core)
        return config

    specs = [
        JobSpec.create(
            name, DTBL, scale, latency_scale, config=agt_config(size),
        )
        for name in names
        for size in sizes
    ]
    runs = run_jobs(
        specs, jobs=jobs, cache=cache,
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
    )
    cycles_by_name: Dict[str, Dict[int, int]] = {name: {} for name in names}
    for spec, run in zip(specs, runs):
        cycles_by_name[spec.benchmark][spec.config.agt_entries] = run.cycles
        if verbose:
            print(
                f"  {spec.benchmark} AGT={spec.config.agt_entries}: "
                f"{run.cycles:,} cycles"
            )
    rows = []
    norm: Dict[int, List[float]] = {size: [] for size in sizes}
    for name in names:
        cycles = cycles_by_name[name]
        base = cycles.get(1024) or cycles[sizes[len(sizes) // 2]]
        row = [name]
        for size in sizes:
            normalized = base / cycles[size] if cycles[size] else 0.0
            row.append(round(normalized, 3))
            norm[size].append(normalized)
        rows.append(row)
    summary = {
        f"normalized speedup @ AGT {size} (geomean)": geomean(norm[size]) for size in sizes
    }
    paper = {}
    if 512 in sizes:
        paper["normalized speedup @ AGT 512 (geomean)"] = 1 / 1.31
    if 1024 in sizes:
        paper["normalized speedup @ AGT 1024 (geomean)"] = 1.0
    if 2048 in sizes:
        paper["normalized speedup @ AGT 2048 (geomean)"] = 1.20
    return Experiment(
        "Figure 12",
        "Performance Sensitivity to AGT Size (normalized to 1024 entries)",
        ["benchmark"] + [str(s) for s in sizes],
        rows,
        summary=summary,
        paper=paper,
    )


# ----------------------------------------------------------------------
# Section 4.3 overhead analysis
# ----------------------------------------------------------------------

def overhead_analysis(config: Optional[GPUConfig] = None) -> Experiment:
    """Section 4.3: on-chip SRAM overhead of the DTBL extension."""
    report = overhead_report(config or GPUConfig.k20c())
    return Experiment(
        "Section 4.3",
        "DTBL Hardware Overhead",
        ["quantity", "value"],
        [list(row) for row in report.rows()],
        summary={
            "AGT SRAM bytes": float(report.agt_sram_bytes),
            "extra register bytes": float(report.register_bytes),
        },
        paper={"AGT SRAM bytes": 20 * 1024, "extra register bytes": 1096},
    )


def run_all_figures(
    scale: float = 1.0,
    latency_scale: float = DEFAULT_LATENCY_SCALE,
    benchmarks: Optional[Sequence[str]] = None,
    verbose: bool = False,
    agt_benchmarks: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    config: Optional[GPUConfig] = None,
) -> List[Experiment]:
    """Regenerate every table and figure; returns them in paper order.

    ``jobs`` parallelizes the underlying sweeps across worker processes;
    ``cache`` persists every simulation result on disk;
    ``checkpoint_every``/``checkpoint_dir`` checkpoint long simulations
    for crash recovery (see :func:`repro.harness.runner.run_jobs`);
    ``config`` overrides the grid's GPU configuration (e.g. a non-default
    execution core).
    """
    grid = run_grid(
        benchmarks=benchmarks, scale=scale, latency_scale=latency_scale,
        verbose=verbose, jobs=jobs, cache=cache,
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
        config=config,
    )
    experiments = [
        table2_configuration(),
        table3_latency(),
        table4_benchmarks(),
        figure6_warp_activity(grid),
        figure7_dram_efficiency(grid),
        figure8_smx_occupancy(grid),
        figure9_waiting_time(grid),
        figure10_memory_footprint(grid),
        figure11_speedup(grid),
        figure12_agt_sensitivity(
            benchmarks=agt_benchmarks, scale=scale, latency_scale=latency_scale,
            verbose=verbose, jobs=jobs, cache=cache,
            checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
            core=config.core if config is not None else None,
        ),
        overhead_analysis(),
    ]
    return experiments
