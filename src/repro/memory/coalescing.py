"""The per-warp memory coalescing unit.

A warp's 32 lane addresses are mapped to 128-byte aligned segments; each
distinct segment becomes one memory transaction.  Consecutive word
addresses across the warp therefore coalesce into the minimum number of
transactions, while scattered addresses produce up to one transaction per
active lane — exactly the *memory divergence* behaviour the paper's flat
implementations suffer from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SEGMENT_WORDS, WARP_SIZE


@dataclass
class CoalescingStats:
    """Aggregate coalescer counters for one simulation run."""

    #: Warp-level memory instructions processed.
    warp_accesses: int = 0
    #: Total transactions (segments) generated.
    transactions: int = 0
    #: Total active lanes across all processed accesses.
    lanes: int = 0
    #: Histogram of transactions-per-access, index = transaction count.
    histogram: np.ndarray = field(
        default_factory=lambda: np.zeros(WARP_SIZE + 1, dtype=np.int64)
    )

    def record(self, lanes: int, transactions: int) -> None:
        self.warp_accesses += 1
        self.transactions += transactions
        self.lanes += lanes
        if transactions <= WARP_SIZE:
            self.histogram[transactions] += 1

    @property
    def average_transactions(self) -> float:
        """Mean transactions per warp memory access (1.0–2.0 is coalesced
        for 8-byte words; 32 is fully divergent)."""
        if not self.warp_accesses:
            return 0.0
        return self.transactions / self.warp_accesses

    def to_dict(self) -> dict:
        """All counters as a JSON-safe dictionary (exact round trip)."""
        return {
            "warp_accesses": self.warp_accesses,
            "transactions": self.transactions,
            "lanes": self.lanes,
            "histogram": [int(n) for n in self.histogram],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoalescingStats":
        histogram = np.asarray(data["histogram"], dtype=np.int64)
        if histogram.shape != (WARP_SIZE + 1,):
            raise ValueError(
                f"coalescing histogram must have {WARP_SIZE + 1} bins, "
                f"got {histogram.shape}"
            )
        return cls(
            warp_accesses=int(data["warp_accesses"]),
            transactions=int(data["transactions"]),
            lanes=int(data["lanes"]),
            histogram=histogram,
        )


def coalesce_address_list(addresses) -> list:
    """Fast-core variant of :func:`coalesce_addresses` for plain int lists.

    Produces the distinct segment ids in ascending order — the exact order
    ``np.unique`` gives — because downstream DRAM bank/row state and the
    L2's LRU depend on the order transactions are issued.
    """
    return sorted({addr // SEGMENT_WORDS for addr in addresses})


def coalesce_addresses(addresses: np.ndarray) -> np.ndarray:
    """Map active-lane word addresses to unique 128-byte segment ids.

    Parameters
    ----------
    addresses:
        int64 array of the word addresses of the *active* lanes only.

    Returns
    -------
    Sorted array of distinct segment indices (segment = addr // 16 words).
    """
    if addresses.size == 0:
        return addresses
    return np.unique(addresses // SEGMENT_WORDS)
