"""DRAM controller and the combined L2+DRAM memory subsystem.

The controller models banked DRAM with open-row (row-buffer) timing: a
transaction to a bank's open row is serviced in a short slot, a row miss
pays precharge+activate.  This is the mechanism behind the paper's *DRAM
efficiency* metric, which it defines (Section 5.2A) as::

    dram_efficiency = (n_rd + n_write) / n_activity

where ``n_rd``/``n_write`` are memory commands issued by the controller and
``n_activity`` is the number of cycles in which at least one memory request
is pending.  Coalesced, sequential access streams produce row hits and
back-to-back commands (high efficiency); scattered access streams produce
row misses and idle gaps (low efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SEGMENT_BYTES, GPUConfig
from .cache import Cache


@dataclass
class DramStats:
    """Counters backing the paper's Figure 7."""

    n_read: int = 0
    n_write: int = 0
    row_hits: int = 0
    row_misses: int = 0
    #: Cycles with at least one pending DRAM request (interval union).
    n_activity: int = 0

    @property
    def commands(self) -> int:
        return self.n_read + self.n_write

    @property
    def efficiency(self) -> float:
        """The paper's dram_efficiency; 0.0 when no DRAM traffic occurred."""
        if not self.n_activity:
            return 0.0
        return self.commands / self.n_activity

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """All counters as a JSON-safe dictionary (exact round trip)."""
        return {
            "n_read": self.n_read,
            "n_write": self.n_write,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "n_activity": self.n_activity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DramStats":
        return cls(
            n_read=int(data["n_read"]),
            n_write=int(data["n_write"]),
            row_hits=int(data["row_hits"]),
            row_misses=int(data["row_misses"]),
            n_activity=int(data["n_activity"]),
        )


class DramController:
    """Banked open-row DRAM with analytic (event-based) service timing."""

    def __init__(self, config: GPUConfig) -> None:
        self._config = config
        self._rows_per_segment = max(1, config.dram_row_bytes // SEGMENT_BYTES)
        self._banks = config.dram_banks
        # Plain Python lists: the service loop reads and writes single
        # scalar slots, where list indexing is several times cheaper
        # than ndarray element access.
        self._bank_next_free = [0] * self._banks
        self._bank_open_row = [-1] * self._banks
        self._bus_next_free = 0
        self.stats = DramStats()
        # Online interval-union state for n_activity.
        self._activity_end = 0

    def service(self, segment: int, is_write: bool, arrival: int) -> int:
        """Service one transaction; returns its data-return cycle.

        The shared command bus bounds throughput to one command per
        ``dram_bus_cycles``; each bank is additionally busy for the
        row-hit / row-miss slot, and the issuing warp sees the longer
        data-return latency.  ``arrival`` values must be non-decreasing
        across calls (the simulator processes events in time order),
        which lets the activity union be computed online.
        """
        cfg = self._config
        row = segment // self._rows_per_segment
        bank = row % self._banks
        start = max(arrival, self._bank_next_free[bank], self._bus_next_free)
        if self._bank_open_row[bank] == row:
            slot = cfg.dram_row_hit_cycles
            latency = cfg.dram_hit_latency
            self.stats.row_hits += 1
        else:
            slot = cfg.dram_row_miss_cycles
            latency = cfg.dram_miss_latency
            self.stats.row_misses += 1
            self._bank_open_row[bank] = row
        self._bus_next_free = start + cfg.dram_bus_cycles
        self._bank_next_free[bank] = start + slot
        completion = start + latency
        if is_write:
            self.stats.n_write += 1
        else:
            self.stats.n_read += 1
        # Union of [arrival, completion) intervals, processed in time order.
        overlap_start = max(arrival, self._activity_end)
        if completion > overlap_start:
            self.stats.n_activity += completion - overlap_start
            self._activity_end = completion
        return completion


class MemorySubsystem:
    """L2 tag store in front of the DRAM controller.

    ``warp_access`` is the single entry point used by the warp execution
    engine: it takes the coalesced segment list of one warp memory
    instruction and returns the cycle at which the slowest transaction
    completes (loads block the warp until then; stores are fire-and-forget
    but still generate traffic).
    """

    def __init__(self, config: GPUConfig) -> None:
        self._config = config
        self.l2 = Cache(config.l2_size, config.l2_line, config.l2_assoc)
        self.dram = DramController(config)

    def warp_access(self, segments: np.ndarray, is_write: bool, cycle: int) -> int:
        """Process one warp memory instruction's transactions."""
        l2_latency = self._config.l2_hit_latency
        transit = self._config.dram_base_latency
        completion = cycle + l2_latency
        for segment in segments:
            if self.l2.access(int(segment)):
                done = cycle + l2_latency
            else:
                done = self.dram.service(int(segment), is_write, cycle + l2_latency + transit)
            if done > completion:
                completion = done
        return int(completion)

    def warp_access_list(self, segments, is_write: bool, cycle: int) -> int:
        """Fast-core variant of :meth:`warp_access` for plain int lists.

        ``segments`` must be ascending (the order ``np.unique`` /
        :func:`~repro.memory.coalescing.coalesce_address_list` produce) so
        that DRAM state evolves identically to the reference path.

        The L2 probe is inlined here (same tag/LRU/stats semantics as
        :meth:`Cache.access <repro.memory.cache.Cache.access>`, covered
        by the differential suite): this is the hottest call chain in
        the fast core, and skipping a method call plus per-probe stats
        attribute churn per segment is a measurable win.
        """
        l2 = self.l2
        completion = cycle + self._config.l2_hit_latency
        arrival = completion + self._config.dram_base_latency
        service = self.dram.service
        sets = l2._sets
        num_sets = l2.num_sets
        assoc = l2.assoc
        cstats = l2.stats
        acc = hits = 0
        for segment in segments:
            ways = sets[segment % num_sets]
            tag = segment // num_sets
            acc += 1
            if tag in ways:
                del ways[tag]
                ways[tag] = None
                hits += 1
                continue
            if len(ways) >= assoc:
                del ways[next(iter(ways))]
                cstats.evictions += 1
            ways[tag] = None
            done = service(segment, is_write, arrival)
            if done > completion:
                completion = done
        cstats.accesses += acc
        cstats.hits += hits
        cstats.misses += acc - hits
        return completion

    def warp_access_batch(self, jobs, is_write: bool):
        """Service a group of warp accesses in one pass (vector core).

        ``jobs`` is a sequence of ``(segments, cycle)`` pairs for one
        grouped memory instruction — same ascending-segment contract as
        :meth:`warp_access_list`, and the pairs must be in global time
        order (ascending ``cycle``) because DRAM bank/row state and the
        L2's LRU evolve with access order.  Returns the per-job
        completion cycles.  Semantically identical to calling
        :meth:`warp_access_list` once per job; hoisting the L2 locals
        and stats flush across the whole group is the point.
        """
        l2 = self.l2
        l2_hit = self._config.l2_hit_latency
        transit = self._config.dram_base_latency
        service = self.dram.service
        sets = l2._sets
        num_sets = l2.num_sets
        assoc = l2.assoc
        cstats = l2.stats
        acc = hits = 0
        out = []
        for segments, cycle in jobs:
            completion = cycle + l2_hit
            arrival = completion + transit
            for segment in segments:
                ways = sets[segment % num_sets]
                tag = segment // num_sets
                acc += 1
                if tag in ways:
                    del ways[tag]
                    ways[tag] = None
                    hits += 1
                    continue
                if len(ways) >= assoc:
                    del ways[next(iter(ways))]
                    cstats.evictions += 1
                ways[tag] = None
                done = service(segment, is_write, arrival)
                if done > completion:
                    completion = done
            out.append(completion)
        cstats.accesses += acc
        cstats.hits += hits
        cstats.misses += acc - hits
        return out

    def read_latency(self, segment: int, cycle: int) -> int:
        """Latency path for a single internal read (e.g. AGT spill fetch)."""
        return self.warp_access(np.asarray([segment], dtype=np.int64), False, cycle)

    @property
    def dram_stats(self) -> DramStats:
        return self.dram.stats
