"""Simulated memory hierarchy: global memory, coalescer, caches, DRAM."""

from .global_memory import GlobalMemory
from .coalescing import coalesce_addresses, CoalescingStats
from .cache import Cache
from .dram import DramController, MemorySubsystem

__all__ = [
    "Cache",
    "CoalescingStats",
    "DramController",
    "GlobalMemory",
    "MemorySubsystem",
    "coalesce_addresses",
]
