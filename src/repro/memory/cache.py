"""A set-associative cache with LRU replacement.

Used for the L2 (global-memory accesses on our Kepler-like baseline bypass
the per-SMX L1, which is reserved for local data, so the L2 is the cache
that matters for the paper's workloads).  The cache is a *tag store only*:
data always lives in :class:`~repro.memory.global_memory.GlobalMemory`;
the cache decides hit/miss timing and tracks statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """Set-associative, write-allocate, LRU tag store.

    Addresses given to :meth:`access` are *segment* (line) indices, i.e.
    already divided by the line size, since the coalescer produces
    line-granular transactions.
    """

    def __init__(self, size_bytes: int, line_bytes: int, assoc: int) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or assoc <= 0:
            raise ConfigError("cache geometry must be positive")
        lines = size_bytes // line_bytes
        if lines % assoc:
            raise ConfigError("cache lines must divide evenly into sets")
        self.num_sets = lines // assoc
        if self.num_sets == 0:
            raise ConfigError("cache too small for its associativity")
        self.assoc = assoc
        self.line_bytes = line_bytes
        # Per set: tags as an insertion-ordered dict used as an LRU list
        # (first key = LRU, last key = MRU).  O(1) lookup/refresh versus
        # the O(assoc) list scan this store originally used; semantics
        # are identical (covered by the unit tests).
        self._sets: List[Dict[int, None]] = [{} for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, segment: int) -> bool:
        """Look up one line; returns True on hit.  Misses allocate."""
        set_idx = segment % self.num_sets
        tag = segment // self.num_sets
        ways = self._sets[set_idx]
        stats = self.stats
        stats.accesses += 1
        if tag in ways:
            del ways[tag]
            ways[tag] = None
            stats.hits += 1
            return True
        stats.misses += 1
        if len(ways) >= self.assoc:
            del ways[next(iter(ways))]
            stats.evictions += 1
        ways[tag] = None
        return False

    def flush(self) -> None:
        """Invalidate every line (does not reset statistics)."""
        for ways in self._sets:
            ways.clear()

    def contents_by_set(self) -> Dict[int, List[int]]:
        """Snapshot of resident tags per set (for tests)."""
        return {idx: list(ways) for idx, ways in enumerate(self._sets) if ways}
