"""Functional global memory: a flat word-addressable store with an allocator.

One word is 8 bytes and is visible both as an ``int64`` and as a ``float64``
through two NumPy views of the same buffer, so integer indices/flags and
floating-point payloads can share one address space exactly like a real
GPU's global memory.

Addresses used throughout the simulator are *word* indices into this store.
"""

from __future__ import annotations

import numpy as np

from ..config import WORD_BYTES
from ..errors import MemoryError_


class GlobalMemory:
    """Flat global memory with a bump allocator.

    Parameters
    ----------
    size_words:
        Capacity of the store in 8-byte words.  The default (4 Mi words =
        32 MB) is ample for the scaled-down workloads.
    """

    def __init__(self, size_words: int = 4 * 1024 * 1024) -> None:
        if size_words <= 0:
            raise MemoryError_("global memory size must be positive")
        self.size_words = int(size_words)
        self._buffer = np.zeros(self.size_words, dtype=np.int64)
        #: Integer view of the store (int64 per word).
        self.i = self._buffer
        #: Float view of the same bytes (float64 per word).
        self.f = self._buffer.view(np.float64)
        # Word 0 is reserved so that address 0 can act as a null pointer.
        self._next_free = 1

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, words: int) -> int:
        """Allocate ``words`` consecutive words; returns the base address."""
        if words <= 0:
            raise MemoryError_(f"allocation size must be positive, got {words}")
        base = self._next_free
        if base + words > self.size_words:
            raise MemoryError_(
                f"out of simulated global memory: requested {words} words, "
                f"{self.size_words - base} free"
            )
        self._next_free = base + words
        return base

    def alloc_array(self, values: np.ndarray) -> int:
        """Allocate and initialize from an int or float array."""
        arr = np.asarray(values)
        base = self.alloc(arr.size)
        if np.issubdtype(arr.dtype, np.floating):
            self.f[base : base + arr.size] = arr.ravel()
        else:
            self.i[base : base + arr.size] = arr.ravel()
        return base

    @property
    def words_in_use(self) -> int:
        """Words handed out by the allocator so far."""
        return self._next_free

    @property
    def bytes_in_use(self) -> int:
        return self.words_in_use * WORD_BYTES

    # ------------------------------------------------------------------
    # Bounds-checked scalar access (host-side convenience; the warp engine
    # uses the raw views for speed after a vectorized bounds check).
    # ------------------------------------------------------------------
    def read_int(self, addr: int) -> int:
        self.check_range(addr, 1)
        return int(self.i[addr])

    def write_int(self, addr: int, value: int) -> None:
        self.check_range(addr, 1)
        self.i[addr] = value

    def read_float(self, addr: int) -> float:
        self.check_range(addr, 1)
        return float(self.f[addr])

    def write_float(self, addr: int, value: float) -> None:
        self.check_range(addr, 1)
        self.f[addr] = value

    def read_ints(self, addr: int, count: int) -> np.ndarray:
        self.check_range(addr, count)
        return self.i[addr : addr + count].copy()

    def write_ints(self, addr: int, values: np.ndarray) -> None:
        arr = np.asarray(values, dtype=np.int64)
        self.check_range(addr, arr.size)
        self.i[addr : addr + arr.size] = arr

    def read_floats(self, addr: int, count: int) -> np.ndarray:
        self.check_range(addr, count)
        return self.f[addr : addr + count].copy()

    def write_floats(self, addr: int, values: np.ndarray) -> None:
        arr = np.asarray(values, dtype=np.float64)
        self.check_range(addr, arr.size)
        self.f[addr : addr + arr.size] = arr

    def check_range(self, addr: int, count: int = 1) -> None:
        """Raise :class:`MemoryError_` unless [addr, addr+count) is valid."""
        if addr < 0 or addr + count > self.size_words:
            raise MemoryError_(
                f"global memory access out of range: addr={addr} count={count} "
                f"size={self.size_words}"
            )
