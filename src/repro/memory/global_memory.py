"""Functional global memory: a flat word-addressable store with an allocator.

One word is 8 bytes and is visible both as an ``int64`` and as a ``float64``
through two NumPy views of the same buffer, so integer indices/flags and
floating-point payloads can share one address space exactly like a real
GPU's global memory.

Addresses used throughout the simulator are *word* indices into this store.
"""

from __future__ import annotations

import numpy as np

from ..config import WORD_BYTES
from ..errors import MemoryError_


class GlobalMemory:
    """Flat global memory with a bump allocator.

    Parameters
    ----------
    size_words:
        Capacity of the store in 8-byte words.  The default (4 Mi words =
        32 MB) is ample for the scaled-down workloads.
    """

    def __init__(self, size_words: int = 4 * 1024 * 1024) -> None:
        if size_words <= 0:
            raise MemoryError_("global memory size must be positive")
        self.size_words = int(size_words)
        self._buffer = np.zeros(self.size_words, dtype=np.int64)
        #: Integer view of the store (int64 per word).
        self.i = self._buffer
        #: Float view of the same bytes (float64 per word).
        self.f = self._buffer.view(np.float64)
        # Word 0 is reserved so that address 0 can act as a null pointer.
        self._next_free = 1
        #: Live allocations: base address -> word count.  Freed ranges are
        #: removed; the sanitizer keeps the dead-range shadow.
        self._live: dict = {}
        #: Optional allocation/host-write observer (the sanitizer).  Must
        #: provide ``on_alloc(base, words)``, ``on_free(base, words)`` and
        #: ``on_host_write(base, words)``.
        self.observer = None

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, words: int) -> int:
        """Allocate ``words`` consecutive words; returns the base address."""
        if words <= 0:
            raise MemoryError_(f"allocation size must be positive, got {words}")
        base = self._next_free
        if base + words > self.size_words:
            raise MemoryError_(
                f"out of simulated global memory: requested {words} words, "
                f"{self.size_words - base} free"
            )
        self._next_free = base + words
        self._live[base] = int(words)
        if self.observer is not None:
            self.observer.on_alloc(base, int(words))
        return base

    def free(self, base: int, words: int = None) -> None:
        """Free a previous :meth:`alloc`.

        Under the bump allocator only the most recent live allocation's
        words are actually reclaimed (``_next_free`` rolls back); freeing
        older allocations removes them from the live-range map but leaves
        the high-water mark in place.  Freeing an address that is not a
        live allocation base — including a second free of the same base —
        raises :class:`MemoryError_`.
        """
        extent = self._live.get(base)
        if extent is None:
            raise MemoryError_(
                f"free() of address {base}, which is not a live allocation "
                "(double free, interior pointer, or never allocated)"
            )
        if words is not None and int(words) != extent:
            raise MemoryError_(
                f"free() extent mismatch at address {base}: allocation is "
                f"{extent} words, free() passed {words}"
            )
        del self._live[base]
        if base + extent == self._next_free:
            self._next_free = base
        if self.observer is not None:
            self.observer.on_free(base, extent)

    def live_range(self, base: int):
        """Word count of the live allocation at ``base``, or None."""
        return self._live.get(base)

    def alloc_array(self, values: np.ndarray) -> int:
        """Allocate and initialize from an int or float array."""
        arr = np.asarray(values)
        base = self.alloc(arr.size)
        if np.issubdtype(arr.dtype, np.floating):
            self.f[base : base + arr.size] = arr.ravel()
        else:
            self.i[base : base + arr.size] = arr.ravel()
        if self.observer is not None:
            self.observer.on_host_write(base, arr.size)
        return base

    @property
    def words_in_use(self) -> int:
        """Words handed out by the allocator so far."""
        return self._next_free

    @property
    def bytes_in_use(self) -> int:
        return self.words_in_use * WORD_BYTES

    # ------------------------------------------------------------------
    # Bounds-checked scalar access (host-side convenience; the warp engine
    # uses the raw views for speed after a vectorized bounds check).
    # ------------------------------------------------------------------
    def read_int(self, addr: int) -> int:
        self.check_range(addr, 1)
        return int(self.i[addr])

    def write_int(self, addr: int, value: int) -> None:
        self.check_range(addr, 1)
        self.i[addr] = value
        if self.observer is not None:
            self.observer.on_host_write(addr, 1)

    def read_float(self, addr: int) -> float:
        self.check_range(addr, 1)
        return float(self.f[addr])

    def write_float(self, addr: int, value: float) -> None:
        self.check_range(addr, 1)
        self.f[addr] = value
        if self.observer is not None:
            self.observer.on_host_write(addr, 1)

    def read_ints(self, addr: int, count: int) -> np.ndarray:
        self.check_range(addr, count)
        return self.i[addr : addr + count].copy()

    def write_ints(self, addr: int, values: np.ndarray) -> None:
        arr = np.asarray(values, dtype=np.int64)
        self.check_range(addr, arr.size)
        self.i[addr : addr + arr.size] = arr
        if self.observer is not None:
            self.observer.on_host_write(addr, arr.size)

    def read_floats(self, addr: int, count: int) -> np.ndarray:
        self.check_range(addr, count)
        return self.f[addr : addr + count].copy()

    def write_floats(self, addr: int, values: np.ndarray) -> None:
        arr = np.asarray(values, dtype=np.float64)
        self.check_range(addr, arr.size)
        self.f[addr : addr + arr.size] = arr
        if self.observer is not None:
            self.observer.on_host_write(addr, arr.size)

    def check_range(self, addr: int, count: int = 1) -> None:
        """Raise :class:`MemoryError_` unless [addr, addr+count) is valid."""
        if addr < 0 or addr + count > self.size_words:
            raise MemoryError_(
                f"global memory access out of range: addr={addr} count={count} "
                f"size={self.size_words}"
            )
