"""Whole-application driver for the dynamic-parallelism passes.

:func:`transform_kernels` takes the kernels a workload built for plain
CDP and returns the kernel set for a compiler-optimized mode:

* every kernel is rewritten under its **original name** (so overflow
  fallbacks and host launches resolve unchanged), and
* one wrapper kernel per batched child is generated and itself pushed
  through the passes, to a fixpoint — a recursive child's wrapper may
  simply launch itself (e.g. ``amr_refine__agg``).

Unrecognized launch sites degrade to plain CDP launches; the transform
never fails a kernel, it only declines to optimize parts of it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ...sim.kernel import KernelFunction
from ..optimizer import _definalize
from .aggregate import aggregate_launches
from .options import DynoptOptions
from .serialize import serialize_small_launches
from .wrappers import build_wrapper, wrappable

#: mode value -> (aggregation flavor, wrapper suffix, serialize first?)
_FLAVORS = {
    "cdpa": ("agg", "__agg", True),
    "cons": ("cons", "__cons", False),
}


def transform_kernels(
    kernels: Sequence[KernelFunction],
    mode,
    options: DynoptOptions = None,
) -> List[KernelFunction]:
    """Apply the passes for ``mode`` (``ExecutionMode`` or its value)."""
    mode_value = getattr(mode, "value", mode)
    if mode_value not in _FLAVORS:
        raise ValueError(
            f"no dynopt pipeline for mode {mode_value!r} "
            f"(supported: {', '.join(sorted(_FLAVORS))})"
        )
    flavor, suffix, do_serialize = _FLAVORS[mode_value]
    options = options or DynoptOptions()
    by_name = {func.name: func for func in kernels}
    wrapper_blocks: Dict[str, int] = {}

    def can_wrap(child: str, block_size: int) -> bool:
        func = by_name.get(child)
        return func is not None and wrappable(func, flavor)

    def run_passes(program, base) -> Tuple[object, int, int]:
        """Serialize + aggregate one program; queue needed wrappers."""
        extra_local = 0
        if do_serialize:
            program, extra_local = serialize_small_launches(
                program, by_name, options
            )
        result = aggregate_launches(
            program,
            options,
            suffix=suffix,
            flavor=flavor,
            shared_base=base.shared_words,
            wrapper_blocks=wrapper_blocks,
            can_wrap=can_wrap,
        )
        for child, block_size in sorted(result.children.items()):
            if child + suffix not in built and child not in queued:
                queue.append((child, block_size))
                queued.add(child)
        return (
            result.program,
            base.shared_words + result.shared_words,
            max(base.local_words, extra_local),
        )

    built: Dict[str, Tuple[object, int, int]] = {}
    queue: List[Tuple[str, int]] = []
    queued = set()

    order: List[str] = []
    for func in kernels:
        built[func.name] = run_passes(_definalize(func.program), func)
        order.append(func.name)

    while queue:
        child, block_size = queue.pop(0)
        name = child + suffix
        if name in built:
            continue
        base = by_name[child]
        program = build_wrapper(name, base, block_size, flavor, options)
        if program is None:
            continue  # can_wrap should have prevented this
        built[name] = run_passes(program, base)
        order.append(name)

    return [
        KernelFunction(
            name=name,
            program=built[name][0],
            shared_words=built[name][1],
            local_words=built[name][2],
        )
        for name in order
    ]
