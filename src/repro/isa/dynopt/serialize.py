"""Threshold serialization of small child launches (Olabi et al.).

A CDP launch whose element count is provably below
``DynoptOptions.serial_threshold`` spends more cycles in the device
runtime than in the child kernel.  This pass wraps each recognizable
launch site in a runtime size check: small launches execute the child
body in an inlined per-thread loop, large ones keep the original
device launch (which the aggregation pass then batches).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..builder import KernelBuilder
from ..instructions import Imm, Special
from ..optimizer import _clone, _definalize
from ..program import Program
from .options import DynoptOptions
from .sites import find_launch_sites
from .splice import inlinable, splice_body, summarize_body

#: Specials an inlined child body may read: ``GTID`` becomes the loop
#: counter, ``PARAM`` the parent-held buffer base, ``NTID_X`` the static
#: block size.  Anything else (real thread/block geometry) has no
#: per-iteration equivalent, so such bodies are never inlined.
_ALLOWED = {Special.GTID, Special.PARAM, Special.NTID_X}


def serialize_small_launches(
    program: Program,
    kernels: Dict[str, object],
    options: DynoptOptions,
) -> Tuple[Program, int]:
    """Return (rewritten program, extra local words the host now needs).

    ``kernels`` maps kernel name to the registered
    :class:`~repro.sim.kernel.KernelFunction`; only sites whose child is
    registered, loop-free at the barrier level, and restricted to the
    supported specials are rewritten.  The pass is single-sweep: launch
    sites inside inlined bodies are left as plain CDP launches for the
    aggregation pass to batch.
    """
    candidates = []
    bodies: Dict[str, Program] = {}
    summaries = {}
    for site in find_launch_sites(program):
        if site.work is None or site.block_size is None:
            continue
        func = kernels.get(site.kernel)
        if func is None or func.shared_words or program.name == site.kernel:
            continue
        if site.kernel not in bodies:
            bodies[site.kernel] = _definalize(func.program)
            summaries[site.kernel] = summarize_body(bodies[site.kernel])
        if not inlinable(summaries[site.kernel], _ALLOWED):
            continue
        candidates.append(site)
    if not candidates:
        return program, 0

    highest = program.max_register_index()
    next_int = highest["int"] + 1
    next_flt = highest["flt"] + 1
    windows = {}
    for site in candidates:
        summary = summaries[site.kernel]
        windows[site.index] = (next_int, next_flt)
        next_int += summary.max_int + 1
        next_flt += summary.max_flt + 1

    kb = KernelBuilder(
        program.name,
        int_reg_start=next_int,
        flt_reg_start=next_flt,
        label_stem="ser",
    )
    out = kb.program
    position_labels: Dict[int, list] = {}
    for name, pc in program.labels.items():
        position_labels.setdefault(pc, []).append(name)
    by_index = {site.index: site for site in candidates}
    threshold = options.serial_threshold

    extra_local = 0
    pc = 0
    instrs = program.instructions
    while pc <= len(instrs):
        for name in position_labels.get(pc, ()):
            out.label(name)
        if pc == len(instrs):
            break
        site = by_index.get(pc)
        if site is None:
            out.emit(_clone(instrs[pc]))
            pc += 1
            continue

        int_shift, flt_shift = windows[site.index]
        body = bodies[site.kernel]
        func = kernels[site.kernel]
        extra_local = max(extra_local, func.local_words)
        prefix = f"i{site.index}_"

        def inline_loop(site=site, body=body, prefix=prefix,
                        int_shift=int_shift, flt_shift=flt_shift):
            counter = kb.mov(0)
            with kb.while_(lambda: kb.lt(counter, site.work)):
                splice_body(
                    out,
                    body,
                    label_prefix=prefix,
                    int_shift=int_shift,
                    flt_shift=flt_shift,
                    special_subst={
                        Special.GTID: counter,
                        Special.PARAM: site.param,
                        Special.NTID_X: Imm(site.block_size),
                    },
                )
                kb.iadd(counter, 1, dst=counter)

        def keep_launch(site=site):
            out.emit(_clone(site.stream))
            out.emit(_clone(site.launch))

        small = kb.lt(site.work, threshold)
        kb.if_else(small, inline_loop, keep_launch)
        pc += 2  # past the STREAM_CREATE / LAUNCH_DEVICE pair
    return out, extra_local
