"""Block-level launch aggregation and consolidation staging.

Rewrites every recognizable CDP launch site in a kernel so the block's
threads *stage* their launch requests instead of issuing them:

* a block leader allocates one global *launch table* per child kernel
  (``GET_PARAM_BUF``) and publishes its address through shared memory;
* each requesting thread claims a slot with an atomic cursor bump and
  stores its (size, param-buffer) record into shared memory;
* after a closing barrier the leader prefix-sums the staged sizes into
  the table and issues **one** batched ``LAUNCH_DEVICE`` of the child's
  generated wrapper kernel (``<child>__agg`` / ``<child>__cons``).

Launch-table ABI (global memory, one table per block and child)::

    word 0            atomic request cursor
    word 1            total size (blocks for agg, threads for cons)
    word 2 + 2*i      start of request i (prefix sum, same unit)
    word 3 + 2*i      parameter-buffer base of request i
    word 2 + 2*n      sentinel: total size again (scan terminator)

Requests past ``DynoptOptions.staging_capacity`` overflow to a plain
per-thread CDP launch, so the table size is a performance knob only.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..builder import KernelBuilder
from ..instructions import Opcode
from ..optimizer import _clone
from ..program import Program
from .options import DynoptOptions
from .sites import LaunchSite, find_launch_sites


@dataclasses.dataclass
class AggregateResult:
    program: Program
    #: Extra shared-memory words the rewritten kernel needs.
    shared_words: int
    #: Child kernels now launched through a wrapper: name -> block size.
    children: Dict[str, int]


def table_words(options: DynoptOptions) -> int:
    """Global words per launch table (header + records + sentinel)."""
    return 2 * options.staging_capacity + 3


def aggregate_launches(
    program: Program,
    options: DynoptOptions,
    *,
    suffix: str,
    flavor: str,
    shared_base: int = 0,
    wrapper_blocks: Optional[Dict[str, int]] = None,
    can_wrap: Optional[Callable[[str, int], bool]] = None,
) -> AggregateResult:
    """Stage launches per block; returns the rewritten program.

    ``flavor`` selects the staged unit: ``"agg"`` stages grid *blocks*
    (per-request blocks preserved, Olabi-style batching), ``"cons"``
    stages element counts so the wrapper packs *threads* densely
    (Wu/Becchi-style consolidation; requires a recovered work operand).

    ``wrapper_blocks`` records the block size each child's wrapper was
    generated for; a site launching the same child with a different
    block size is left as a plain CDP launch.  ``can_wrap`` lets the
    caller veto children whose body cannot be re-based under a batched
    launch.
    """
    if flavor not in ("agg", "cons"):
        raise ValueError(f"unknown aggregation flavor {flavor!r}")
    unchanged = AggregateResult(program, 0, {})
    instrs = program.instructions
    if not instrs or instrs[-1].op != Opcode.EXIT:
        return unchanged
    exit_pc = len(instrs) - 1
    if any(instr.op == Opcode.EXIT for instr in instrs[:exit_pc]):
        return unchanged  # early exits would skip the leader's flush
    if any(pc >= exit_pc for pc in program.labels.values()):
        return unchanged  # a jump could land on (or past) the EXIT

    groups: Dict[Tuple[str, int], List[LaunchSite]] = {}
    block_of: Dict[str, int] = dict(wrapper_blocks or {})
    for site in find_launch_sites(program):
        bs = site.block_size
        if bs is None:
            continue
        if flavor == "cons" and site.work is None:
            continue
        if block_of.setdefault(site.kernel, bs) != bs:
            continue
        if can_wrap is not None and not can_wrap(site.kernel, bs):
            continue
        groups.setdefault((site.kernel, bs), []).append(site)
    if not groups:
        return unchanged

    ordered = sorted(groups.items(), key=lambda kv: kv[1][0].index)
    cap = options.staging_capacity
    highest = program.max_register_index()
    kb = KernelBuilder(
        program.name,
        int_reg_start=highest["int"] + 1,
        flt_reg_start=highest["flt"] + 1,
        label_stem="agg",
    )
    out = kb.program

    # --- prologue: leader allocates one table per child, publishes it.
    table_slot = {g: shared_base + g for g in range(len(ordered))}
    record_base = {
        g: shared_base + len(ordered) + g * 2 * cap
        for g in range(len(ordered))
    }
    ltid = kb.tid()
    with kb.if_(kb.eq(ltid, 0)):
        for g in range(len(ordered)):
            table = kb.get_param_buffer(table_words(options))
            kb.st(table, 0, offset=0)
            kb.sts(table_slot[g], table)
    kb.bar()
    table_regs = [kb.lds(table_slot[g]) for g in range(len(ordered))]

    # --- body: replace each site with a staging sequence.
    site_group = {}
    for g, ((_, _), sites) in enumerate(ordered):
        for site in sites:
            site_group[site.index] = (g, site)
    position_labels: Dict[int, list] = {}
    for name, pc in program.labels.items():
        position_labels.setdefault(pc, []).append(name)

    pc = 0
    while pc < exit_pc:
        for name in position_labels.get(pc, ()):
            out.label(name)
        hit = site_group.get(pc)
        if hit is None:
            out.emit(_clone(instrs[pc]))
            pc += 1
            continue
        g, site = hit
        staged = site.grid_x if flavor == "agg" else site.work
        slot = kb.atom_add(table_regs[g], 1)

        def stage(g=g, site=site, staged=staged, slot=slot):
            record = kb.iadd(kb.imul(slot, 2), record_base[g])
            kb.sts(record, staged, offset=0)
            kb.sts(record, site.param, offset=1)

        def overflow(site=site):
            out.emit(_clone(site.stream))
            out.emit(_clone(site.launch))

        kb.if_else(kb.lt(slot, cap), stage, overflow)
        pc += 2  # past the STREAM_CREATE / LAUNCH_DEVICE pair

    # --- epilogue: leader prefix-sums the records and batch-launches.
    kb.bar()
    with kb.if_(kb.eq(ltid, 0)):
        for g, ((child, bs), _) in enumerate(ordered):
            table = table_regs[g]
            count = kb.imin(kb.ld(table), cap)
            running = kb.mov(0)
            with kb.for_range(0, count) as i:
                record = kb.iadd(kb.imul(i, 2), record_base[g])
                size = kb.lds(record, offset=0)
                param = kb.lds(record, offset=1)
                entry = kb.iadd(table, kb.imul(i, 2))
                kb.st(entry, running, offset=2)
                kb.st(entry, param, offset=3)
                kb.iadd(running, size, dst=running)
            kb.st(kb.iadd(table, kb.imul(count, 2)), running, offset=2)
            kb.st(table, running, offset=1)
            with kb.if_(kb.gt(running, 0)):
                kb.stream_create()
                if flavor == "agg":
                    grid = running
                else:
                    grid = kb.idiv(kb.iadd(running, bs - 1), bs)
                kb.launch_device(child + suffix, table, grid, bs)
    out.emit(_clone(instrs[exit_pc]))

    shared_words = len(ordered) * (1 + 2 * cap)
    children = {child: bs for (child, bs) in groups}
    if wrapper_blocks is not None:
        for child, bs in children.items():
            wrapper_blocks.setdefault(child, bs)
    return AggregateResult(out, shared_words, children)
