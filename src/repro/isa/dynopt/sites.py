"""Discovery of CDP launch sites in unfinalized programs.

A *launch site* is the canonical device-launch shape the workload layer
emits (see :func:`repro.workloads.common.emit_dynamic_launch`)::

    buf    = GET_PARAM_BUF n
    ST     buf, p_k, offset=k          # k = 0 .. n-1
    t      = IADD work, bs - 1
    blocks = IDIV t, bs
    stream = STREAM_CREATE
    LAUNCH_DEVICE child, a=buf, grid=(blocks, 1, 1), block=(bs, 1, 1)

The passes only need the final ``STREAM_CREATE`` / ``LAUNCH_DEVICE``
pair plus, when recoverable, the ``work`` operand feeding the grid
computation.  Anything that does not match stays untouched — the passes
degrade to plain CDP rather than guess.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from ..instructions import Imm, Instr, Opcode, Reg
from ..program import Program

#: How far behind a launch the grid-computation backtrack looks.  The
#: canonical site needs 2 instructions; the margin absorbs interleaved
#: parameter stores.
_BACKTRACK_WINDOW = 24

#: Opcodes that end a straight-line run for backtracking purposes.
_FLOW_OPS = frozenset({Opcode.BRA, Opcode.JOIN, Opcode.BAR, Opcode.EXIT})


@dataclasses.dataclass
class LaunchSite:
    """One ``STREAM_CREATE`` + ``LAUNCH_DEVICE`` pair."""

    index: int  #: pc of the STREAM_CREATE instruction
    stream: Instr
    launch: Instr
    kernel: str
    param: object  #: the launch's parameter-buffer operand (Reg)
    grid_x: object  #: grid.x operand (Reg or Imm)
    block_size: Optional[int]  #: static 1-D block.x, when fully immediate
    work: Optional[object]  #: recovered element-count operand, if any


def _static_dim(operand) -> Optional[int]:
    if isinstance(operand, Imm) and isinstance(operand.value, int):
        return operand.value
    return None


def _static_block(launch: Instr) -> Optional[int]:
    """block.x when the block shape is a static (bs, 1, 1), else None."""
    dims = launch.block_dims or ()
    if len(dims) != 3:
        return None
    bs = _static_dim(dims[0])
    if bs is None or bs <= 0:
        return None
    if _static_dim(dims[1]) != 1 or _static_dim(dims[2]) != 1:
        return None
    return bs


def _flat_grid(launch: Instr) -> bool:
    """True when grid.y and grid.z are the immediate 1."""
    dims = launch.grid_dims or ()
    return (
        len(dims) == 3
        and _static_dim(dims[1]) == 1
        and _static_dim(dims[2]) == 1
    )


def _same_reg(a, b) -> bool:
    return (
        isinstance(a, Reg)
        and isinstance(b, Reg)
        and a.bank == b.bank
        and a.idx == b.idx
    )


def _recover_work(
    program: Program,
    site_index: int,
    grid_x,
    block_size: Optional[int],
    label_pcs: Set[int],
):
    """Walk the grid computation back to the element-count operand.

    Matches ``blocks = IDIV(IADD(work, bs - 1), bs)`` emitted by the
    workload layer; returns the ``work`` operand (Reg or Imm) or None.
    """
    if block_size is None or not isinstance(grid_x, Reg):
        return None
    instrs = program.instructions
    lo = max(0, site_index - _BACKTRACK_WINDOW)

    def find_def(reg: Reg, below: int) -> Optional[Instr]:
        for j in range(below - 1, lo - 1, -1):
            instr = instrs[j]
            if instr.op in _FLOW_OPS:
                return None
            if _same_reg(instr.dst, reg):
                return instr
            if j in label_pcs:
                return None  # merge point: stop above it
        return None

    div = None
    div_pc = None
    for j in range(site_index - 1, lo - 1, -1):
        instr = instrs[j]
        if instr.op in _FLOW_OPS:
            return None
        if _same_reg(instr.dst, grid_x):
            div, div_pc = instr, j
            break
        if j in label_pcs:
            return None
    if div is None or div.op != Opcode.IDIV:
        return None
    if _static_dim(div.b) != block_size or not isinstance(div.a, Reg):
        return None
    add = find_def(div.a, div_pc)
    if add is None or add.op != Opcode.IADD:
        return None
    if _static_dim(add.b) != block_size - 1:
        return None
    work = add.a
    if isinstance(work, Reg):
        # The operand must still hold the same value at the launch.
        for j in range(div_pc + 1, site_index):
            if _same_reg(instrs[j].dst, work):
                return None
    return work


def find_launch_sites(program: Program) -> List[LaunchSite]:
    """All well-formed CDP launch sites in an unfinalized program."""
    label_pcs = set(program.labels.values())
    sites: List[LaunchSite] = []
    instrs = program.instructions
    for i, instr in enumerate(instrs):
        if instr.op != Opcode.STREAM_CREATE:
            continue
        if i + 1 >= len(instrs):
            continue
        launch = instrs[i + 1]
        if launch.op != Opcode.LAUNCH_DEVICE or not launch.kernel:
            continue
        if (i + 1) in label_pcs:
            continue  # control can enter between the pair: not a unit
        if not launch.grid_dims or not _flat_grid(launch):
            continue
        block_size = _static_block(launch)
        grid_x = launch.grid_dims[0]
        work = _recover_work(program, i, grid_x, block_size, label_pcs)
        sites.append(
            LaunchSite(
                index=i,
                stream=instr,
                launch=launch,
                kernel=launch.kernel,
                param=launch.a,
                grid_x=grid_x,
                block_size=block_size,
                work=work,
            )
        )
    return sites


def sites_by_index(sites) -> Dict[int, LaunchSite]:
    return {site.index: site for site in sites}
