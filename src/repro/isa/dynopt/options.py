"""Tunables for the dynamic-parallelism optimization passes."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DynoptOptions:
    """Knobs shared by the :mod:`repro.isa.dynopt` passes.

    The defaults are sized for the benchmark suite's parent blocks (64-128
    threads): the staging table fits one record per thread with headroom
    for multi-launch parents, while keeping the per-block shared-memory
    footprint (``1 + 2 * staging_capacity`` words per child kernel) low
    enough not to throttle occupancy on the K20c configuration.
    """

    #: Maximum launch records staged in shared memory per (block, child
    #: kernel).  Requests past the cap fall back to a plain per-thread
    #: CDP launch, so the cap affects performance, never correctness.
    staging_capacity: int = 176

    #: Child launches whose element count is provably below this many
    #: threads are serialized into an inlined loop in the parent
    #: (``CDP_AGG`` only, following Olabi et al.).  A serialized launch
    #: trades a whole child block for a per-thread loop, so the default
    #: only catches launches smaller than a warp's worth of threads —
    #: the workload DFP thresholds (24-32) already serialize most of
    #: that tail, leaving sub-block stragglers like AMR's fixed 16-cell
    #: refinements.
    serial_threshold: int = 32

    #: Words of table header per staged record (start block/thread and
    #: parameter-buffer base).  Fixed by the wrapper ABI; exposed so the
    #: tests can document the layout in one place.
    record_words: int = 2
