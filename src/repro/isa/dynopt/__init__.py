"""Compiler optimization passes for dynamic parallelism.

The software rivals to the paper's DTBL hardware: launch aggregation
with threshold serialization (Olabi et al., the ``cdpa`` mode) and
workload consolidation (Wu & Becchi, the ``cons`` mode), implemented as
IR-to-IR passes over unfinalized programs.  The workload layer applies
:func:`transform_kernels` automatically when one of the
compiler-optimized execution modes is selected.
"""

from .aggregate import AggregateResult, aggregate_launches, table_words
from .options import DynoptOptions
from .pipeline import transform_kernels
from .serialize import serialize_small_launches
from .sites import LaunchSite, find_launch_sites
from .wrappers import build_wrapper, wrappable

__all__ = [
    "AggregateResult",
    "DynoptOptions",
    "LaunchSite",
    "aggregate_launches",
    "build_wrapper",
    "find_launch_sites",
    "serialize_small_launches",
    "table_words",
    "transform_kernels",
    "wrappable",
]
