"""Generated child kernels that consume a batched launch table.

``<child>__agg`` (CDP_AGG) keeps the original per-request block shape:
every real block scans the table for the request that owns its block
index and re-bases the child's thread geometry inside that request.

``<child>__cons`` (CONSOLIDATED) packs the staged *element counts*
densely: every real thread scans for the request that owns its global
index, so tail threads of one request are back-filled by the next —
fewer, denser blocks (Wu & Becchi).

Both wrappers splice the child's *original* body with its ``PARAM`` /
``GTID`` (and for agg, block-geometry) reads substituted; the pipeline
then re-runs the dynopt passes over the wrapper so nested launches in
the body are themselves serialized/aggregated.
"""

from __future__ import annotations

from typing import Optional

from ..builder import KernelBuilder
from ..instructions import Special
from ..optimizer import _definalize
from ..program import Program
from .options import DynoptOptions
from .splice import splice_body, summarize_body

#: Geometry reads an agg wrapper can re-base (1:1 block mapping).
_AGG_SPECIALS = {
    Special.GTID,
    Special.PARAM,
    Special.TID_X,
    Special.NTID_X,
    Special.CTAID_X,
    Special.NCTAID_X,
}

#: A cons wrapper interleaves requests within blocks, so only
#: block-shape-independent reads survive the repacking.
_CONS_SPECIALS = {Special.GTID, Special.PARAM, Special.NTID_X}


def wrappable(func, flavor: str) -> bool:
    """Whether ``func``'s body can run under a batched launch table."""
    summary = summarize_body(func.program)
    if summary.exit_count != 1 or not summary.trailing_exit:
        return False
    if flavor == "agg":
        return summary.specials <= _AGG_SPECIALS
    return (
        summary.specials <= _CONS_SPECIALS
        and not summary.has_bar
        and func.shared_words == 0
    )


def build_wrapper(
    name: str,
    func,
    block_size: int,
    flavor: str,
    options: DynoptOptions,
) -> Optional[Program]:
    """Prologue + re-based child body, as an unfinalized program."""
    if not wrappable(func, flavor):
        return None
    body = _definalize(func.program)
    summary = summarize_body(body)
    kb = KernelBuilder(
        name,
        int_reg_start=summary.max_int + 1,
        flt_reg_start=summary.max_flt + 1,
        label_stem="wrp",
    )
    table = kb.param()

    def scan(owner):
        """Find the request whose half-open range contains ``owner``.

        Walks ``start_{r+1} <= owner``; the sentinel entry written by
        the flush guarantees termination.  Returns the record address.
        """
        index = kb.mov(0)
        next_start = kb.iadd(table, 4)
        with kb.while_(lambda: kb.le(kb.ld(next_start), owner)):
            kb.iadd(index, 1, dst=index)
            kb.iadd(next_start, 2, dst=next_start)
        return kb.iadd(table, kb.imul(index, 2))

    if flavor == "agg":
        cta = kb.ctaid()
        record = scan(cta)
        subst = {}
        if Special.PARAM in summary.specials:
            subst[Special.PARAM] = kb.ld(record, offset=3)
        needs_local = summary.specials & {
            Special.GTID, Special.CTAID_X, Special.NCTAID_X
        }
        if needs_local:
            start = kb.ld(record, offset=2)
            local_cta = kb.isub(cta, start)
            if Special.CTAID_X in summary.specials:
                subst[Special.CTAID_X] = local_cta
            if Special.GTID in summary.specials:
                subst[Special.GTID] = kb.iadd(
                    kb.imul(local_cta, kb.ntid()), kb.tid()
                )
            if Special.NCTAID_X in summary.specials:
                subst[Special.NCTAID_X] = kb.isub(
                    kb.ld(record, offset=4), start
                )
        splice_body(
            kb.program, body,
            label_prefix="", int_shift=0, flt_shift=0,
            special_subst=subst,
        )
        kb.exit()
        return kb.program

    # cons: thread-granular repacking behind an in-bounds guard.
    index = kb.gtid()
    total = kb.ld(table, offset=1)
    with kb.if_(kb.lt(index, total)):
        record = scan(index)
        subst = {}
        if Special.PARAM in summary.specials:
            subst[Special.PARAM] = kb.ld(record, offset=3)
        if Special.GTID in summary.specials:
            subst[Special.GTID] = kb.isub(index, kb.ld(record, offset=2))
        splice_body(
            kb.program, body,
            label_prefix="", int_shift=0, flt_shift=0,
            special_subst=subst,
        )
    kb.exit()
    return kb.program
