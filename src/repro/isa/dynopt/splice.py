"""Splicing child kernel bodies into other programs.

Both the serialization pass (inlining a child below the parent launch
site) and the wrapper generators (re-basing a child under a batched
launch) copy a child's instruction stream into a host program with:

* every register shifted into a private window above the host's,
* every label prefixed so repeated splices stay unique, and
* ``READ_SPECIAL`` reads rewritten to host-computed values (a child's
  ``GTID`` becomes a loop counter or a table-derived local id).

The splice refuses anything it cannot prove safe — callers treat a
refusal as "leave this site as a plain CDP launch".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set

from ..instructions import Bank, Instr, Opcode, Reg, Special
from ..optimizer import _clone
from ..program import Program


@dataclasses.dataclass(frozen=True)
class BodySummary:
    """Static facts that gate whether a body may be spliced."""

    specials: Set[Special]
    exit_count: int
    trailing_exit: bool
    has_bar: bool
    max_int: int
    max_flt: int


def summarize_body(program: Program) -> BodySummary:
    specials: Set[Special] = set()
    exit_count = 0
    has_bar = False
    for instr in program.instructions:
        if instr.op == Opcode.READ_SPECIAL and instr.special is not None:
            specials.add(instr.special)
        elif instr.op == Opcode.EXIT:
            exit_count += 1
        elif instr.op == Opcode.BAR:
            has_bar = True
    trailing_exit = (
        bool(program.instructions)
        and program.instructions[-1].op == Opcode.EXIT
    )
    highest = program.max_register_index()
    return BodySummary(
        specials=specials,
        exit_count=exit_count,
        trailing_exit=trailing_exit,
        has_bar=has_bar,
        max_int=highest["int"],
        max_flt=highest["flt"],
    )


def _shift_reg(reg, int_shift: int, flt_shift: int):
    if not isinstance(reg, Reg):
        return reg
    shift = int_shift if reg.bank == Bank.INT else flt_shift
    return Reg(reg.bank, reg.idx + shift)


def splice_body(
    out: Program,
    body: Program,
    *,
    label_prefix: str,
    int_shift: int,
    flt_shift: int,
    special_subst: Dict[Special, object],
    drop_trailing_exit: bool = True,
) -> None:
    """Append ``body``'s instructions to ``out`` (both unfinalized).

    ``special_subst`` maps a :class:`Special` to a host-space operand;
    matching ``READ_SPECIAL`` instructions become ``MOV``s from that
    operand.  Unmapped specials are copied through untouched — callers
    must have validated them against :func:`summarize_body` first.
    """
    instrs = body.instructions
    stop = len(instrs)
    if drop_trailing_exit and stop and instrs[-1].op == Opcode.EXIT:
        stop -= 1

    position_labels: Dict[int, list] = {}
    for name, pc in body.labels.items():
        position_labels.setdefault(min(pc, stop), []).append(name)

    def fix_label(value):
        return f"{label_prefix}{value}" if isinstance(value, str) else value

    for pc in range(stop + 1):
        for name in position_labels.get(pc, ()):
            out.label(f"{label_prefix}{name}")
        if pc == stop:
            break
        instr = instrs[pc]
        dst = _shift_reg(instr.dst, int_shift, flt_shift)
        if (
            instr.op == Opcode.READ_SPECIAL
            and instr.special in special_subst
        ):
            out.emit(
                Instr(Opcode.MOV, dst=dst, a=special_subst[instr.special])
            )
            continue
        overrides = {
            "dst": dst,
            "a": _shift_reg(instr.a, int_shift, flt_shift),
            "b": _shift_reg(instr.b, int_shift, flt_shift),
            "c": _shift_reg(instr.c, int_shift, flt_shift),
            "pred": _shift_reg(instr.pred, int_shift, flt_shift),
            "target": fix_label(instr.target),
            "reconv": fix_label(instr.reconv),
        }
        for dims_field in ("grid_dims", "block_dims"):
            dims = getattr(instr, dims_field)
            if dims:
                overrides[dims_field] = tuple(
                    _shift_reg(op, int_shift, flt_shift) for op in dims
                )
        out.emit(_clone(instr, **overrides))


def inlinable(summary: BodySummary, allowed: Set[Special]) -> bool:
    """Whether a body with this summary may be spliced at all."""
    return (
        summary.exit_count == 1
        and summary.trailing_exit
        and not summary.has_bar
        and summary.specials <= allowed
    )
