"""Structured-control-flow DSL for writing kernels in the simulated ISA.

The :class:`KernelBuilder` is the intended authoring surface for kernels:
it allocates registers, coerces Python ints/floats to immediates, and —
critically — emits the PDOM *reconvergence* annotations that the SIMT
stack requires, so hand-written kernels can never produce unreconvergeable
divergence.

Example
-------
A kernel that sums ``n`` values starting at ``base`` (both passed through
the parameter buffer) into ``out``::

    k = KernelBuilder("sum")
    param = k.param()
    n = k.ld(param, offset=0)
    base = k.ld(param, offset=1)
    out = k.ld(param, offset=2)
    acc = k.mov(0)
    with k.for_range(0, n) as i:
        value = k.ld(k.iadd(base, i))
        k.iadd(acc, value, dst=acc)
    k.atom_add(out, acc)
    program = k.build()
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence, Tuple, Union

from ..errors import AssemblyError
from .instructions import (
    Bank,
    Cmp,
    Dims3,
    Imm,
    Instr,
    Opcode,
    Operand,
    Reg,
    Special,
)
from .program import Program

Value = Union[Reg, Imm, int, float]


def _as_operand(value: Value) -> Operand:
    """Coerce a Python number to an immediate; pass registers through."""
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, (int, float)):
        return Imm(value)
    raise AssemblyError(f"cannot use {value!r} as an instruction operand")


def _dims3(dims: Union[int, Value, Sequence[Value]]) -> Dims3:
    """Coerce a scalar or a 1-3 element sequence into (x, y, z) operands."""
    if isinstance(dims, (Reg, Imm, int, float)):
        seq: Sequence[Value] = (dims,)
    else:
        seq = tuple(dims)
    if not 1 <= len(seq) <= 3:
        raise AssemblyError("launch dimensions need 1 to 3 components")
    padded = tuple(seq) + (1,) * (3 - len(seq))
    return (_as_operand(padded[0]), _as_operand(padded[1]), _as_operand(padded[2]))


class KernelBuilder:
    """Builds a finalized :class:`~repro.isa.program.Program`.

    All arithmetic helpers accept registers or Python numbers, allocate a
    fresh destination register unless ``dst=`` is given, and return the
    destination register so expressions compose naturally.
    """

    def __init__(
        self,
        name: str,
        *,
        int_reg_start: int = 0,
        flt_reg_start: int = 0,
        label_stem: str = "",
    ) -> None:
        self.program = Program(name)
        self._int_regs = itertools.count(int_reg_start)
        self._flt_regs = itertools.count(flt_reg_start)
        self._labels = itertools.count()
        self._label_stem = label_stem
        self._built: Optional[Program] = None

    # ------------------------------------------------------------------
    # Registers and labels
    # ------------------------------------------------------------------
    def ireg(self) -> Reg:
        """Allocate a fresh integer register."""
        return Reg(Bank.INT, next(self._int_regs))

    def freg(self) -> Reg:
        """Allocate a fresh float register."""
        return Reg(Bank.FLT, next(self._flt_regs))

    def _fresh_label(self, stem: str) -> str:
        return f".{self._label_stem}{stem}_{next(self._labels)}"

    def _emit(self, instr: Instr) -> int:
        return self.program.emit(instr)

    # ------------------------------------------------------------------
    # Special registers
    # ------------------------------------------------------------------
    def special(self, which: Special, dst: Optional[Reg] = None) -> Reg:
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.READ_SPECIAL, dst=dst, special=which))
        return dst

    def tid(self) -> Reg:
        """tid.x of the calling thread."""
        return self.special(Special.TID_X)

    def ctaid(self) -> Reg:
        """ctaid.x: the thread block's index within its kernel or group."""
        return self.special(Special.CTAID_X)

    def ntid(self) -> Reg:
        """ntid.x: threads per block in x."""
        return self.special(Special.NTID_X)

    def nctaid(self) -> Reg:
        """nctaid.x: blocks in x within this kernel or aggregated group."""
        return self.special(Special.NCTAID_X)

    def gtid(self) -> Reg:
        """Flattened 1D global thread id (ctaid.x * ntid.x + tid.x)."""
        return self.special(Special.GTID)

    def param(self) -> Reg:
        """Base word address of the parameter buffer."""
        return self.special(Special.PARAM)

    # ------------------------------------------------------------------
    # Integer / float ALU
    # ------------------------------------------------------------------
    def _binop(self, op: Opcode, a: Value, b: Value, dst: Optional[Reg], flt: bool) -> Reg:
        dst = dst or (self.freg() if flt else self.ireg())
        self._emit(Instr(op, dst=dst, a=_as_operand(a), b=_as_operand(b)))
        return dst

    def iadd(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a + b (int64)."""
        return self._binop(Opcode.IADD, a, b, dst, flt=False)

    def isub(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a - b (int64)."""
        return self._binop(Opcode.ISUB, a, b, dst, flt=False)

    def imul(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a * b (int64)."""
        return self._binop(Opcode.IMUL, a, b, dst, flt=False)

    def idiv(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a // b (floor division; b == 0 is guarded; SFU-class)."""
        return self._binop(Opcode.IDIV, a, b, dst, flt=False)

    def imod(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a % b (sign follows divisor; b == 0 is guarded; SFU-class)."""
        return self._binop(Opcode.IMOD, a, b, dst, flt=False)

    def imin(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = min(a, b)."""
        return self._binop(Opcode.IMIN, a, b, dst, flt=False)

    def imax(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = max(a, b)."""
        return self._binop(Opcode.IMAX, a, b, dst, flt=False)

    def iand(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a & b."""
        return self._binop(Opcode.IAND, a, b, dst, flt=False)

    def ior(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a | b."""
        return self._binop(Opcode.IOR, a, b, dst, flt=False)

    def ixor(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a ^ b."""
        return self._binop(Opcode.IXOR, a, b, dst, flt=False)

    def ishl(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a << b."""
        return self._binop(Opcode.ISHL, a, b, dst, flt=False)

    def ishr(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a >> b (arithmetic)."""
        return self._binop(Opcode.ISHR, a, b, dst, flt=False)

    def fadd(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a + b (float64)."""
        return self._binop(Opcode.FADD, a, b, dst, flt=True)

    def fsub(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a - b (float64)."""
        return self._binop(Opcode.FSUB, a, b, dst, flt=True)

    def fmul(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a * b (float64)."""
        return self._binop(Opcode.FMUL, a, b, dst, flt=True)

    def fdiv(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a / b (b == 0.0 is guarded; SFU-class)."""
        return self._binop(Opcode.FDIV, a, b, dst, flt=True)

    def fmin(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = min(a, b) (float64)."""
        return self._binop(Opcode.FMIN, a, b, dst, flt=True)

    def fmax(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = max(a, b) (float64)."""
        return self._binop(Opcode.FMAX, a, b, dst, flt=True)

    def _unop(self, op: Opcode, a: Value, dst: Optional[Reg], flt: bool) -> Reg:
        dst = dst or (self.freg() if flt else self.ireg())
        self._emit(Instr(op, dst=dst, a=_as_operand(a)))
        return dst

    def ineg(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = -a."""
        return self._unop(Opcode.INEG, a, dst, flt=False)

    def inot(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = ~a."""
        return self._unop(Opcode.INOT, a, dst, flt=False)

    def fneg(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = -a (float64)."""
        return self._unop(Opcode.FNEG, a, dst, flt=True)

    def fsqrt(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = sqrt(|a|) (SFU-class)."""
        return self._unop(Opcode.FSQRT, a, dst, flt=True)

    def fabs(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = |a| (float64)."""
        return self._unop(Opcode.FABS, a, dst, flt=True)

    def mov(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """Copy an int value / immediate into an int register."""
        return self._unop(Opcode.MOV, a, dst, flt=False)

    def fmov(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """Copy a float value / immediate into a float register."""
        return self._unop(Opcode.FMOV, a, dst, flt=True)

    def itof(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """Convert int64 to float64."""
        return self._unop(Opcode.ITOF, a, dst, flt=True)

    def ftoi(self, a: Value, dst: Optional[Reg] = None) -> Reg:
        """Convert float64 to int64 (truncation)."""
        return self._unop(Opcode.FTOI, a, dst, flt=False)

    # ------------------------------------------------------------------
    # Comparisons and select
    # ------------------------------------------------------------------
    def _setp(self, cmp: Cmp, a: Value, b: Value, flt: bool, dst: Optional[Reg]) -> Reg:
        dst = dst or self.ireg()
        op = Opcode.FSETP if flt else Opcode.SETP
        self._emit(Instr(op, dst=dst, a=_as_operand(a), b=_as_operand(b), cmp=cmp))
        return dst

    def lt(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a < b (int compare; 1/0 into an int register)."""
        return self._setp(Cmp.LT, a, b, False, dst)

    def le(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a <= b."""
        return self._setp(Cmp.LE, a, b, False, dst)

    def gt(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a > b."""
        return self._setp(Cmp.GT, a, b, False, dst)

    def ge(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a >= b."""
        return self._setp(Cmp.GE, a, b, False, dst)

    def eq(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a == b."""
        return self._setp(Cmp.EQ, a, b, False, dst)

    def ne(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a != b."""
        return self._setp(Cmp.NE, a, b, False, dst)

    def flt_(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a < b (float compare)."""
        return self._setp(Cmp.LT, a, b, True, dst)

    def fgt_(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a > b (float compare)."""
        return self._setp(Cmp.GT, a, b, True, dst)

    def fge_(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """Predicate: a >= b (float compare)."""
        return self._setp(Cmp.GE, a, b, True, dst)

    def selp(self, cond: Value, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = a if cond != 0 else b (int bank, branch-free)."""
        dst = dst or self.ireg()
        self._emit(
            Instr(
                Opcode.SELP,
                dst=dst,
                a=_as_operand(a),
                b=_as_operand(b),
                c=_as_operand(cond),
            )
        )
        return dst

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def ld(self, addr: Value, offset: int = 0, dst: Optional[Reg] = None) -> Reg:
        """Load an int64 word from global memory at ``addr + offset``."""
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.LD, dst=dst, a=_as_operand(addr), offset=offset))
        return dst

    def st(self, addr: Value, value: Value, offset: int = 0) -> None:
        """Store an int64 word to global memory at ``addr + offset``."""
        self._emit(
            Instr(Opcode.ST, a=_as_operand(addr), b=_as_operand(value), offset=offset)
        )

    def fld(self, addr: Value, offset: int = 0, dst: Optional[Reg] = None) -> Reg:
        """Load a float64 word from global memory."""
        dst = dst or self.freg()
        self._emit(Instr(Opcode.FLD, dst=dst, a=_as_operand(addr), offset=offset))
        return dst

    def fst(self, addr: Value, value: Value, offset: int = 0) -> None:
        """Store a float64 word to global memory."""
        self._emit(
            Instr(Opcode.FST, a=_as_operand(addr), b=_as_operand(value), offset=offset)
        )

    def lds(self, addr: Value, offset: int = 0, dst: Optional[Reg] = None) -> Reg:
        """Load an int64 word from the block's shared memory."""
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.LDS, dst=dst, a=_as_operand(addr), offset=offset))
        return dst

    def sts(self, addr: Value, value: Value, offset: int = 0) -> None:
        """Store an int64 word to the block's shared memory."""
        self._emit(
            Instr(Opcode.STS, a=_as_operand(addr), b=_as_operand(value), offset=offset)
        )

    def ldl(self, offset_expr: Value, offset: int = 0, dst: Optional[Reg] = None) -> Reg:
        """Load a word from per-thread local memory (L1-cached)."""
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.LDL, dst=dst, a=_as_operand(offset_expr), offset=offset))
        return dst

    def stl(self, offset_expr: Value, value: Value, offset: int = 0) -> None:
        """Store a word to per-thread local memory."""
        self._emit(
            Instr(
                Opcode.STL, a=_as_operand(offset_expr), b=_as_operand(value), offset=offset
            )
        )

    # ------------------------------------------------------------------
    # Warp-level primitives
    # ------------------------------------------------------------------
    def shfl_idx(self, value: Value, lane: Value, dst: Optional[Reg] = None) -> Reg:
        """Read ``value`` from the lane selected per-thread by ``lane``."""
        dst = dst or self.ireg()
        self._emit(
            Instr(Opcode.SHFL_IDX, dst=dst, a=_as_operand(value), b=_as_operand(lane))
        )
        return dst

    def shfl_down(self, value: Value, delta: int, dst: Optional[Reg] = None) -> Reg:
        """Read ``value`` from lane + delta (identity past the warp end)."""
        dst = dst or self.ireg()
        self._emit(
            Instr(Opcode.SHFL_DOWN, dst=dst, a=_as_operand(value), b=_as_operand(delta))
        )
        return dst

    def vote_any(self, pred: Value, dst: Optional[Reg] = None) -> Reg:
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.VOTE_ANY, dst=dst, a=_as_operand(pred)))
        return dst

    def vote_all(self, pred: Value, dst: Optional[Reg] = None) -> Reg:
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.VOTE_ALL, dst=dst, a=_as_operand(pred)))
        return dst

    def ballot(self, pred: Value, dst: Optional[Reg] = None) -> Reg:
        """Bitmask of active lanes whose predicate is non-zero."""
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.VOTE_BALLOT, dst=dst, a=_as_operand(pred)))
        return dst

    def atom_add(self, addr: Value, value: Value, dst: Optional[Reg] = None) -> Reg:
        return self._atom(Opcode.ATOM_ADD, addr, value, dst)

    def atom_min(self, addr: Value, value: Value, dst: Optional[Reg] = None) -> Reg:
        return self._atom(Opcode.ATOM_MIN, addr, value, dst)

    def atom_max(self, addr: Value, value: Value, dst: Optional[Reg] = None) -> Reg:
        return self._atom(Opcode.ATOM_MAX, addr, value, dst)

    def atom_or(self, addr: Value, value: Value, dst: Optional[Reg] = None) -> Reg:
        return self._atom(Opcode.ATOM_OR, addr, value, dst)

    def atom_exch(self, addr: Value, value: Value, dst: Optional[Reg] = None) -> Reg:
        return self._atom(Opcode.ATOM_EXCH, addr, value, dst)

    def atom_cas(
        self, addr: Value, compare: Value, value: Value, dst: Optional[Reg] = None
    ) -> Reg:
        """Atomic compare-and-swap; returns the old value."""
        dst = dst or self.ireg()
        self._emit(
            Instr(
                Opcode.ATOM_CAS,
                dst=dst,
                a=_as_operand(addr),
                b=_as_operand(compare),
                c=_as_operand(value),
            )
        )
        return dst

    def _atom(self, op: Opcode, addr: Value, value: Value, dst: Optional[Reg]) -> Reg:
        dst = dst or self.ireg()
        self._emit(Instr(op, dst=dst, a=_as_operand(addr), b=_as_operand(value)))
        return dst

    # ------------------------------------------------------------------
    # Control flow (structured; reconvergence points auto-inserted)
    # ------------------------------------------------------------------
    @contextmanager
    def if_(self, pred: Reg) -> Iterator[None]:
        """Execute the body only for lanes where ``pred`` is non-zero."""
        end = self._fresh_label("Lend")
        self._emit(
            Instr(Opcode.BRA, target=end, pred=pred, pred_sense=False, reconv=end)
        )
        yield
        self.program.label(end)
        self._emit(Instr(Opcode.JOIN))

    def if_else(
        self,
        pred: Reg,
        then_fn: Callable[[], None],
        else_fn: Callable[[], None],
    ) -> None:
        """Two-way divergence with a common reconvergence point."""
        else_label = self._fresh_label("Lelse")
        end = self._fresh_label("Lend")
        self._emit(
            Instr(Opcode.BRA, target=else_label, pred=pred, pred_sense=False, reconv=end)
        )
        then_fn()
        self._emit(Instr(Opcode.BRA, target=end))
        self.program.label(else_label)
        else_fn()
        self.program.label(end)
        self._emit(Instr(Opcode.JOIN))

    @contextmanager
    def while_(self, cond_fn: Callable[[], Reg]) -> Iterator[None]:
        """Loop while the predicate produced by ``cond_fn`` is non-zero.

        ``cond_fn`` is invoked once at build time and must *emit* the
        condition computation (it runs at the loop head every iteration).
        """
        head = self._fresh_label("Lwhile")
        end = self._fresh_label("Lwend")
        self.program.label(head)
        pred = cond_fn()
        self._emit(
            Instr(Opcode.BRA, target=end, pred=pred, pred_sense=False, reconv=end)
        )
        yield
        self._emit(Instr(Opcode.BRA, target=head))
        self.program.label(end)
        self._emit(Instr(Opcode.JOIN))

    @contextmanager
    def for_range(self, start: Value, stop: Value, step: int = 1) -> Iterator[Reg]:
        """``for i in range(start, stop, step)`` over a fresh register."""
        if step <= 0:
            raise AssemblyError("for_range step must be a positive constant")
        i = self.mov(start)
        head = self._fresh_label("Lfor")
        end = self._fresh_label("Lfend")
        self.program.label(head)
        pred = self.lt(i, stop)
        self._emit(
            Instr(Opcode.BRA, target=end, pred=pred, pred_sense=False, reconv=end)
        )
        yield i
        self.iadd(i, step, dst=i)
        self._emit(Instr(Opcode.BRA, target=head))
        self.program.label(end)
        self._emit(Instr(Opcode.JOIN))

    def bar(self) -> None:
        """Block-wide barrier (``__syncthreads``)."""
        self._emit(Instr(Opcode.BAR))

    def exit(self) -> None:
        """Terminate the warp (end of kernel)."""
        self._emit(Instr(Opcode.EXIT))

    def nop(self) -> None:
        """No operation (one issue slot)."""
        self._emit(Instr(Opcode.NOP))

    # ------------------------------------------------------------------
    # Device runtime
    # ------------------------------------------------------------------
    def stream_create(self, dst: Optional[Reg] = None) -> Reg:
        """cudaStreamCreateWithFlags (CDP only; Table 3 flat cost)."""
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.STREAM_CREATE, dst=dst))
        return dst

    def get_param_buffer(self, size_words: int, dst: Optional[Reg] = None) -> Reg:
        """cudaGetParameterBuffer: per-thread parameter buffer allocation."""
        if size_words <= 0:
            raise AssemblyError("parameter buffer size must be positive")
        dst = dst or self.ireg()
        self._emit(Instr(Opcode.GET_PARAM_BUF, dst=dst, size=size_words))
        return dst

    def launch_device(
        self,
        kernel: str,
        param: Reg,
        grid: Union[int, Value, Sequence[Value]],
        block: Union[int, Value, Sequence[Value]],
    ) -> None:
        """cudaLaunchDevice: CDP device-side kernel launch."""
        self._emit(
            Instr(
                Opcode.LAUNCH_DEVICE,
                a=param,
                kernel=kernel,
                grid_dims=_dims3(grid),
                block_dims=_dims3(block),
            )
        )

    def launch_agg(
        self,
        kernel: str,
        param: Reg,
        agg: Union[int, Value, Sequence[Value]],
        block: Union[int, Value, Sequence[Value]],
    ) -> None:
        """cudaLaunchAggGroup: DTBL aggregated-group launch."""
        self._emit(
            Instr(
                Opcode.LAUNCH_AGG,
                a=param,
                kernel=kernel,
                grid_dims=_dims3(agg),
                block_dims=_dims3(block),
            )
        )

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Finalize and return the program (idempotent)."""
        if self._built is None:
            self._built = self.program.finalize()
        return self._built

    @property
    def register_demand(self) -> Tuple[int, int]:
        """(int, float) registers allocated so far."""
        highest = self.program.max_register_index()
        return highest["int"] + 1, highest["flt"] + 1
