"""A small SASS-like instruction set for the simulated GPU.

Kernels executed by the simulator are written in this ISA, usually through
the structured-control-flow :class:`~repro.isa.builder.KernelBuilder` DSL,
which inserts the PDOM reconvergence annotations the SIMT stack needs.

Public surface:

* :class:`~repro.isa.instructions.Opcode`, :class:`~repro.isa.instructions.Reg`,
  :class:`~repro.isa.instructions.Imm`, :class:`~repro.isa.instructions.Special`,
  :class:`~repro.isa.instructions.Instr` — the instruction encoding.
* :class:`~repro.isa.program.Program` — an assembled, label-resolved kernel body.
* :class:`~repro.isa.builder.KernelBuilder` — the recommended way to write kernels.
"""

from .instructions import Cmp, Imm, Instr, Opcode, Reg, Special
from .program import Program
from .builder import KernelBuilder
from .asmparser import parse_program
from .optimizer import optimize, optimized_copy
from .regions import control_flow_leaders, straight_line_regions

__all__ = [
    "Cmp",
    "Imm",
    "Instr",
    "KernelBuilder",
    "Opcode",
    "Program",
    "Reg",
    "Special",
    "control_flow_leaders",
    "optimize",
    "optimized_copy",
    "parse_program",
    "straight_line_regions",
]
