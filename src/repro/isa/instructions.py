"""Instruction encoding for the simulated GPU's SASS-like ISA.

Design notes
------------
Registers live in two banks: ``INT`` (int64) and ``FLT`` (float64), matching
the simulator's 8-byte global-memory word.  Operands are either a
:class:`Reg` or an :class:`Imm`; instructions are plain :class:`Instr`
records dispatched by opcode in the warp execution engine.

Control flow uses explicit reconvergence annotations: every potentially
divergent branch carries the program counter of its immediate
post-dominator (``reconv``), which the PDOM SIMT stack uses to re-merge
lanes.  The :class:`~repro.isa.builder.KernelBuilder` emits these
automatically for structured code.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple, Union


class Opcode(enum.IntEnum):
    """All opcodes understood by the warp execution engine."""

    # Integer ALU
    IADD = enum.auto()
    ISUB = enum.auto()
    IMUL = enum.auto()
    IDIV = enum.auto()
    IMOD = enum.auto()
    IMIN = enum.auto()
    IMAX = enum.auto()
    IAND = enum.auto()
    IOR = enum.auto()
    IXOR = enum.auto()
    ISHL = enum.auto()
    ISHR = enum.auto()
    INEG = enum.auto()
    INOT = enum.auto()
    MOV = enum.auto()

    # Floating point ALU
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    FMIN = enum.auto()
    FMAX = enum.auto()
    FNEG = enum.auto()
    FSQRT = enum.auto()
    FABS = enum.auto()
    FMOV = enum.auto()

    # Conversions
    ITOF = enum.auto()
    FTOI = enum.auto()

    # Comparisons / select
    SETP = enum.auto()
    FSETP = enum.auto()
    SELP = enum.auto()

    # Global memory (INT / FLT views of the same word store)
    LD = enum.auto()
    ST = enum.auto()
    FLD = enum.auto()
    FST = enum.auto()

    # Shared memory
    LDS = enum.auto()
    STS = enum.auto()

    # Local memory (per-thread, global-memory backed, cached in L1)
    LDL = enum.auto()
    STL = enum.auto()

    # Warp-level primitives
    SHFL_IDX = enum.auto()
    SHFL_DOWN = enum.auto()
    VOTE_ANY = enum.auto()
    VOTE_ALL = enum.auto()
    VOTE_BALLOT = enum.auto()

    # Global-memory atomics (INT bank)
    ATOM_ADD = enum.auto()
    ATOM_MIN = enum.auto()
    ATOM_MAX = enum.auto()
    ATOM_OR = enum.auto()
    ATOM_EXCH = enum.auto()
    ATOM_CAS = enum.auto()

    # Control flow
    BRA = enum.auto()
    JOIN = enum.auto()
    BAR = enum.auto()
    EXIT = enum.auto()
    NOP = enum.auto()

    # Special-register access
    READ_SPECIAL = enum.auto()

    # Device runtime (CDP and DTBL)
    STREAM_CREATE = enum.auto()
    GET_PARAM_BUF = enum.auto()
    LAUNCH_DEVICE = enum.auto()
    LAUNCH_AGG = enum.auto()


class Special(enum.IntEnum):
    """Read-only special registers visible to every thread."""

    TID_X = enum.auto()
    TID_Y = enum.auto()
    TID_Z = enum.auto()
    NTID_X = enum.auto()
    NTID_Y = enum.auto()
    NTID_Z = enum.auto()
    CTAID_X = enum.auto()
    CTAID_Y = enum.auto()
    CTAID_Z = enum.auto()
    NCTAID_X = enum.auto()
    NCTAID_Y = enum.auto()
    NCTAID_Z = enum.auto()
    #: Base word address of the kernel's / aggregated group's parameter buffer.
    PARAM = enum.auto()
    #: Flattened global thread id: ctaid.x * ntid.x + tid.x (1D helper).
    GTID = enum.auto()


class Cmp(enum.IntEnum):
    """Comparison operators for SETP / FSETP."""

    LT = enum.auto()
    LE = enum.auto()
    GT = enum.auto()
    GE = enum.auto()
    EQ = enum.auto()
    NE = enum.auto()


class Bank(enum.IntEnum):
    """Register banks."""

    INT = 0
    FLT = 1


class Reg:
    """A register operand: a bank and an index within that bank."""

    __slots__ = ("bank", "idx")

    def __init__(self, bank: Bank, idx: int) -> None:
        self.bank = bank
        self.idx = idx

    def __repr__(self) -> str:
        prefix = "r" if self.bank == Bank.INT else "f"
        return f"%{prefix}{self.idx}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Reg) and other.bank == self.bank and other.idx == self.idx
        )

    def __hash__(self) -> int:
        return hash((self.bank, self.idx))


class Imm:
    """An immediate operand (int or float)."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, float]) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"#{self.value}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Imm) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("imm", self.value))


Operand = Union[Reg, Imm]

#: Launch dimensions as (x, y, z) operands.
Dims3 = Tuple[Operand, Operand, Operand]


class Instr:
    """One decoded instruction.

    Fields not used by an opcode are ``None``.  ``target`` and ``reconv``
    hold label *names* until :meth:`repro.isa.program.Program.finalize`
    rewrites them to instruction indices.
    """

    __slots__ = (
        "op",
        "dst",
        "a",
        "b",
        "c",
        "cmp",
        "target",
        "reconv",
        "pred",
        "pred_sense",
        "special",
        "kernel",
        "grid_dims",
        "block_dims",
        "size",
        "offset",
    )

    def __init__(
        self,
        op: Opcode,
        dst: Optional[Reg] = None,
        a: Optional[Operand] = None,
        b: Optional[Operand] = None,
        c: Optional[Operand] = None,
        cmp: Optional[Cmp] = None,
        target: Union[str, int, None] = None,
        reconv: Union[str, int, None] = None,
        pred: Optional[Reg] = None,
        pred_sense: bool = True,
        special: Optional[Special] = None,
        kernel: Optional[str] = None,
        grid_dims: Optional[Dims3] = None,
        block_dims: Optional[Dims3] = None,
        size: int = 0,
        offset: int = 0,
    ) -> None:
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b
        self.c = c
        self.cmp = cmp
        self.target = target
        self.reconv = reconv
        self.pred = pred
        self.pred_sense = pred_sense
        self.special = special
        self.kernel = kernel
        self.grid_dims = grid_dims
        self.block_dims = block_dims
        self.size = size
        self.offset = offset

    def __repr__(self) -> str:
        parts = [self.op.name.lower()]
        if self.dst is not None:
            parts.append(repr(self.dst))
        for operand in (self.a, self.b, self.c):
            if operand is not None:
                parts.append(repr(operand))
        if self.cmp is not None:
            parts.append(self.cmp.name.lower())
        if self.target is not None:
            parts.append(f"->{self.target}")
        if self.pred is not None:
            sense = "" if self.pred_sense else "!"
            parts.append(f"@{sense}{self.pred!r}")
        if self.special is not None:
            parts.append(self.special.name.lower())
        if self.kernel is not None:
            parts.append(f"kernel={self.kernel}")
        return " ".join(parts)


#: Global-memory read-modify-write atomics (each is both a read and a write).
ATOMIC_OPS = frozenset(
    {
        Opcode.ATOM_ADD,
        Opcode.ATOM_MIN,
        Opcode.ATOM_MAX,
        Opcode.ATOM_OR,
        Opcode.ATOM_EXCH,
        Opcode.ATOM_CAS,
    }
)

#: Opcodes that read or write global memory through the coalescer.
GLOBAL_MEMORY_OPS = frozenset({Opcode.LD, Opcode.ST, Opcode.FLD, Opcode.FST}) | ATOMIC_OPS

#: Opcodes that observe the value at a global address.
GLOBAL_READ_OPS = frozenset({Opcode.LD, Opcode.FLD}) | ATOMIC_OPS

#: Opcodes that mutate the value at a global address.
GLOBAL_WRITE_OPS = frozenset({Opcode.ST, Opcode.FST}) | ATOMIC_OPS

#: Shared-memory accesses (per-block scratchpad; never coalesced).
SHARED_READ_OPS = frozenset({Opcode.LDS})
SHARED_WRITE_OPS = frozenset({Opcode.STS})
SHARED_MEMORY_OPS = SHARED_READ_OPS | SHARED_WRITE_OPS

#: Opcodes whose result latency uses the SFU pipeline.
SFU_OPS = frozenset({Opcode.IDIV, Opcode.IMOD, Opcode.FDIV, Opcode.FSQRT})

#: Opcodes that may spawn dynamic work.
LAUNCH_OPS = frozenset({Opcode.LAUNCH_DEVICE, Opcode.LAUNCH_AGG})
