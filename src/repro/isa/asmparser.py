"""Text assembler: parse the ISA's assembly syntax into a Program.

The syntax is the inverse of :meth:`Program.disassemble` (which emits this
canonical form).  Grammar, one statement per line::

    .kernel NAME                         ; header (optional)
    label:                               ; label binding
    op [operands...] [keyword=value...]  ; instruction
    ; comment                            ; or # comment

Operands:

* ``%r3`` / ``%f2``       — int / float registers
* ``#42`` / ``#-1.5``     — immediates (bare numbers also accepted)
* ``->label``             — branch target
* ``@%r4`` / ``@!%r4``    — predicate (with sense)
* ``reconv=label``        — reconvergence point for divergent branches
* ``off=N``               — address offset for memory ops
* ``size=N``              — parameter-buffer size (get_param_buf)
* ``kernel=name``         — launch target
* ``grid=(x,y,z)`` / ``block=(x,y,z)`` — launch dimensions (register or
  immediate components)
* special-register names (``tid_x`` ...) for ``read_special``
* comparison names (``lt le gt ge eq ne``) for ``setp`` / ``fsetp``

Example::

    .kernel scale
    read_special %r0 gtid
    read_special %r1 param
    ld %r2 %r1 off=0
    setp %r3 %r0 %r2 lt
    bra ->end @!%r3 reconv=end
    ld %r4 %r1 off=1
    iadd %r5 %r4 %r0
    ld %r6 %r5
    imul %r7 %r6 #3
    ld %r8 %r1 off=2
    iadd %r9 %r8 %r0
    st %r9 %r7
    end:
    join
    exit
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import AssemblyError
from .instructions import Bank, Cmp, Imm, Instr, Opcode, Reg, Special
from .program import Program

_OPCODES = {op.name.lower(): op for op in Opcode}
_SPECIALS = {s.name.lower(): s for s in Special}
_CMPS = {c.name.lower(): c for c in Cmp}

_REG_RE = re.compile(r"^%([rf])(\d+)$")
_IMM_RE = re.compile(r"^#?(-?\d+(?:\.\d+)?(?:e-?\d+)?)$", re.IGNORECASE)
_LABEL_DEF_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")


def _parse_operand(token: str):
    match = _REG_RE.match(token)
    if match:
        bank = Bank.INT if match.group(1) == "r" else Bank.FLT
        return Reg(bank, int(match.group(2)))
    match = _IMM_RE.match(token)
    if match:
        text = match.group(1)
        value = float(text) if ("." in text or "e" in text.lower()) else int(text)
        return Imm(value)
    return None


def _parse_dims(text: str, line_no: int) -> Tuple:
    text = text.strip()
    if text.startswith("(") and text.endswith(")"):
        text = text[1:-1]
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not 1 <= len(parts) <= 3:
        raise AssemblyError(f"line {line_no}: launch dims need 1-3 components")
    operands = []
    for part in parts:
        operand = _parse_operand(part)
        if operand is None:
            raise AssemblyError(f"line {line_no}: bad dimension component {part!r}")
        operands.append(operand)
    while len(operands) < 3:
        operands.append(Imm(1))
    return tuple(operands)


def parse_program(text: str, default_name: str = "kernel") -> Program:
    """Parse assembly text into a finalized :class:`Program`."""
    program: Optional[Program] = None
    name = default_name

    pending_lines: List[Tuple[int, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split(";")[0]
        # '#' also begins immediates, so a comment '#' must follow
        # whitespace (or start the line) and be followed by whitespace.
        comment = re.search(r"(?:^|\s)#\s", stripped)
        if comment:
            stripped = stripped[: comment.start()]
        stripped = stripped.strip()
        if not stripped:
            continue
        pending_lines.append((line_no, stripped))

    # Header pass.
    body: List[Tuple[int, str]] = []
    for line_no, stripped in pending_lines:
        if stripped.startswith(".kernel"):
            parts = stripped.split()
            if len(parts) != 2:
                raise AssemblyError(f"line {line_no}: malformed .kernel header")
            name = parts[1]
            continue
        body.append((line_no, stripped))
    program = Program(name)

    for line_no, stripped in body:
        label = _LABEL_DEF_RE.match(stripped)
        if label:
            try:
                program.label(label.group(1))
            except AssemblyError as exc:
                raise AssemblyError(f"line {line_no}: {exc}") from None
            continue
        _parse_instruction(program, stripped, line_no)
    return program.finalize()


def _parse_instruction(program: Program, text: str, line_no: int) -> None:
    tokens = text.split()
    mnemonic = tokens[0].lower()
    opcode = _OPCODES.get(mnemonic)
    if opcode is None:
        raise AssemblyError(f"line {line_no}: unknown opcode {mnemonic!r}")

    operands = []
    target = None
    reconv = None
    pred = None
    pred_sense = True
    special = None
    cmp = None
    kernel = None
    grid_dims = None
    block_dims = None
    offset = 0
    size = 0

    for token in tokens[1:]:
        low = token.lower()
        if token.startswith("->"):
            target = token[2:]
        elif token.startswith("@"):
            spec = token[1:]
            if spec.startswith("!"):
                pred_sense = False
                spec = spec[1:]
            reg = _parse_operand(spec)
            if not isinstance(reg, Reg) or reg.bank != Bank.INT:
                raise AssemblyError(f"line {line_no}: bad predicate {token!r}")
            pred = reg
        elif low.startswith("reconv="):
            reconv = token.split("=", 1)[1]
        elif low.startswith("off="):
            offset = int(token.split("=", 1)[1])
        elif low.startswith("size="):
            size = int(token.split("=", 1)[1])
        elif low.startswith("kernel="):
            kernel = token.split("=", 1)[1]
        elif low.startswith("grid=") or low.startswith("agg="):
            grid_dims = _parse_dims(token.split("=", 1)[1], line_no)
        elif low.startswith("block="):
            block_dims = _parse_dims(token.split("=", 1)[1], line_no)
        elif low in _SPECIALS:
            special = _SPECIALS[low]
        elif low in _CMPS:
            cmp = _CMPS[low]
        else:
            operand = _parse_operand(token)
            if operand is None:
                raise AssemblyError(f"line {line_no}: bad operand {token!r}")
            operands.append(operand)

    dst = None
    srcs = operands
    if opcode in _DST_OPS:
        if not operands or not isinstance(operands[0], Reg):
            raise AssemblyError(
                f"line {line_no}: {mnemonic} needs a destination register"
            )
        dst = operands[0]
        srcs = operands[1:]

    a = srcs[0] if len(srcs) > 0 else None
    b = srcs[1] if len(srcs) > 1 else None
    c = srcs[2] if len(srcs) > 2 else None

    if opcode in (Opcode.SETP, Opcode.FSETP) and cmp is None:
        raise AssemblyError(f"line {line_no}: {mnemonic} needs a comparison")
    if opcode == Opcode.READ_SPECIAL and special is None:
        raise AssemblyError(f"line {line_no}: read_special needs a register name")
    if opcode == Opcode.BRA and target is None:
        raise AssemblyError(f"line {line_no}: bra needs a ->target")
    if opcode in (Opcode.LAUNCH_DEVICE, Opcode.LAUNCH_AGG):
        if kernel is None or grid_dims is None or block_dims is None:
            raise AssemblyError(
                f"line {line_no}: {mnemonic} needs kernel=, grid=/agg= and block="
            )
    if opcode == Opcode.SELP and c is None:
        # selp dst a b cond: condition is the third source
        raise AssemblyError(f"line {line_no}: selp needs dst, a, b, cond")

    program.emit(
        Instr(
            opcode,
            dst=dst,
            a=a,
            b=b,
            c=c,
            cmp=cmp,
            target=target,
            reconv=reconv,
            pred=pred,
            pred_sense=pred_sense,
            special=special,
            kernel=kernel,
            grid_dims=grid_dims,
            block_dims=block_dims,
            size=size,
            offset=offset,
        )
    )


#: Opcodes whose first operand is a destination register.
_DST_OPS = frozenset(
    {
        Opcode.IADD, Opcode.ISUB, Opcode.IMUL, Opcode.IDIV, Opcode.IMOD,
        Opcode.IMIN, Opcode.IMAX, Opcode.IAND, Opcode.IOR, Opcode.IXOR,
        Opcode.ISHL, Opcode.ISHR, Opcode.INEG, Opcode.INOT, Opcode.MOV,
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FMIN,
        Opcode.FMAX, Opcode.FNEG, Opcode.FSQRT, Opcode.FABS, Opcode.FMOV,
        Opcode.ITOF, Opcode.FTOI, Opcode.SETP, Opcode.FSETP, Opcode.SELP,
        Opcode.LD, Opcode.FLD, Opcode.LDS, Opcode.LDL,
        Opcode.ATOM_ADD, Opcode.ATOM_MIN, Opcode.ATOM_MAX, Opcode.ATOM_OR,
        Opcode.ATOM_EXCH, Opcode.ATOM_CAS,
        Opcode.READ_SPECIAL, Opcode.STREAM_CREATE, Opcode.GET_PARAM_BUF,
        Opcode.SHFL_IDX, Opcode.SHFL_DOWN,
        Opcode.VOTE_ANY, Opcode.VOTE_ALL, Opcode.VOTE_BALLOT,
    }
)
