"""Straight-line region discovery over finalized programs.

The fast core's superblock fusion (:mod:`repro.sim.fast_warp`) needs the
maximal straight-line spans of a program that control flow can only enter
at the top: no instruction inside the span is a branch target or a
reconvergence point, and every instruction falls through to the next one.
That is exactly the basic-block leader computation classic compilers run,
restricted here to *finalized* programs (labels already resolved to int
pcs by :meth:`repro.isa.program.Program.finalize`).

Which opcodes may live inside a region is the caller's policy (the fast
core only fuses ALU-class ops with no timing side effects), so discovery
takes a ``fusable`` predicate instead of hard-coding an opcode set.
"""

from __future__ import annotations

from typing import Callable, List, Set, Tuple

from .instructions import Instr


def control_flow_leaders(instructions) -> Set[int]:
    """Pcs where control can enter other than by falling through.

    Leaders are pc 0, every branch target, and every reconvergence pc
    (PDOM join points re-enter via the reconvergence-stack pop, which is
    an implicit control transfer just like a taken branch).  Instructions
    *following* a branch are not leaders here: a fall-through entry is a
    normal sequential continuation and does not break straight-line
    execution.
    """
    leaders: Set[int] = {0}
    for instr in instructions:
        if isinstance(instr.target, int):
            leaders.add(instr.target)
        if isinstance(instr.reconv, int):
            leaders.add(instr.reconv)
    return leaders


def straight_line_regions(
    instructions,
    fusable: Callable[[int, Instr], bool],
    min_length: int = 2,
) -> List[Tuple[int, int]]:
    """Maximal ``(start_pc, length)`` runs of fusable instructions.

    A run may *start* at a leader (entering a region at its first
    instruction is fine), but no interior pc may be one: a jump or a
    reconvergence pop landing mid-region would skip the region's earlier
    instructions.  Runs shorter than ``min_length`` are dropped — fusing
    a single instruction only adds dispatch overhead.
    """
    leaders = control_flow_leaders(instructions)
    regions: List[Tuple[int, int]] = []
    start = None
    for pc, instr in enumerate(instructions):
        if start is not None and pc in leaders:
            if pc - start >= min_length:
                regions.append((start, pc - start))
            start = None
        if fusable(pc, instr):
            if start is None:
                start = pc
        elif start is not None:
            if pc - start >= min_length:
                regions.append((start, pc - start))
            start = None
    if start is not None and len(instructions) - start >= min_length:
        regions.append((start, len(instructions) - start))
    return regions


def vectorizable_spans(
    instructions,
    fusable: Callable[[int, Instr], bool],
) -> List[Tuple[int, int]]:
    """Maximal straight-line spans for the vector core's row tables.

    Same discovery as :func:`straight_line_regions` but with
    ``min_length=1``: a group of warps amortizes dispatch cost across
    the *warp* axis, so even a single vectorizable instruction is worth
    a row.  The vector decode additionally emits a suffix row for every
    offset into each span returned here, so warps that single-stepped
    partway into a span can still group on the remainder.
    """
    return straight_line_regions(instructions, fusable, min_length=1)
