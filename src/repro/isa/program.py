"""Program container and label resolution (the "assembler")."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import AssemblyError
from .instructions import Instr, Opcode


class Program:
    """An ordered list of instructions plus a label table.

    A :class:`Program` is built incrementally (usually by
    :class:`~repro.isa.builder.KernelBuilder`) and must be
    :meth:`finalize`-d before execution, which resolves label names in
    branch ``target`` / ``reconv`` fields to instruction indices and runs
    basic well-formedness checks.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[Instr] = []
        self.labels: Dict[str, int] = {}
        self._finalized = False
        #: Fast-core decode cache, filled lazily by
        #: :func:`repro.sim.fast_warp.decode_program` after finalize.
        self._fast_table = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instr:
        return self.instructions[pc]

    @property
    def finalized(self) -> bool:
        return self._finalized

    def emit(self, instr: Instr) -> int:
        """Append an instruction; returns its pc."""
        if self._finalized:
            raise AssemblyError(f"program {self.name!r} is already finalized")
        self.instructions.append(instr)
        return len(self.instructions) - 1

    def label(self, name: str) -> None:
        """Bind ``name`` to the pc of the next emitted instruction."""
        if self._finalized:
            raise AssemblyError(f"program {self.name!r} is already finalized")
        if name in self.labels:
            raise AssemblyError(f"duplicate label {name!r} in program {self.name!r}")
        self.labels[name] = len(self.instructions)

    def resolve(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(
                f"undefined label {label!r} in program {self.name!r}"
            ) from None

    def finalize(self) -> "Program":
        """Resolve labels and validate; idempotent once successful."""
        if self._finalized:
            return self
        if not self.instructions or self.instructions[-1].op != Opcode.EXIT:
            # Guarantee that execution always terminates at a well-defined pc.
            self.instructions.append(Instr(Opcode.EXIT))
        n = len(self.instructions)
        for name, pc in self.labels.items():
            if not 0 <= pc <= n:
                raise AssemblyError(f"label {name!r} out of range in {self.name!r}")
        for pc, instr in enumerate(self.instructions):
            if isinstance(instr.target, str):
                instr.target = self.resolve(instr.target)
            if isinstance(instr.reconv, str):
                instr.reconv = self.resolve(instr.reconv)
            if instr.op == Opcode.BRA:
                if instr.target is None:
                    raise AssemblyError(f"pc {pc}: branch without target in {self.name!r}")
                if not 0 <= int(instr.target) < n:
                    raise AssemblyError(f"pc {pc}: branch target out of range")
                if instr.pred is not None and instr.reconv is None:
                    raise AssemblyError(
                        f"pc {pc}: conditional branch without reconvergence point "
                        f"in {self.name!r}; use the KernelBuilder structured forms"
                    )
        self._finalized = True
        return self

    def disassemble(self) -> str:
        """Human-readable listing with labels, for debugging and docs."""
        by_pc: Dict[int, List[str]] = {}
        for name, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(name)
        lines: List[str] = [f".kernel {self.name}"]
        for pc, instr in enumerate(self.instructions):
            for name in by_pc.get(pc, ()):
                lines.append(f"{name}:")
            lines.append(f"  {pc:4d}  {instr!r}")
        return "\n".join(lines)

    def to_assembly(self) -> str:
        """Emit canonical assembly text parseable by
        :func:`repro.isa.asmparser.parse_program`.

        Branch targets and reconvergence points get synthesized labels.
        Must be called on a finalized program (targets are pc indices).
        """
        from .instructions import Opcode, Reg

        if not self._finalized:
            raise AssemblyError("to_assembly requires a finalized program")
        # Collect every pc that needs a label.
        needed = set()
        for instr in self.instructions:
            if isinstance(instr.target, int):
                needed.add(instr.target)
            if isinstance(instr.reconv, int):
                needed.add(instr.reconv)
        labels = {pc: f"L{pc}" for pc in sorted(needed)}

        def operand_text(operand) -> str:
            return repr(operand).lstrip()  # %r3 / #42

        lines = [f".kernel {self.name}"]
        for pc, instr in enumerate(self.instructions):
            if pc in labels:
                lines.append(f"{labels[pc]}:")
            parts = [instr.op.name.lower()]
            for operand in (instr.dst, instr.a, instr.b, instr.c):
                if operand is not None:
                    parts.append(operand_text(operand))
            if instr.cmp is not None:
                parts.append(instr.cmp.name.lower())
            if instr.special is not None:
                parts.append(instr.special.name.lower())
            if instr.target is not None:
                parts.append(f"->{labels[int(instr.target)]}")
            if instr.pred is not None:
                sense = "" if instr.pred_sense else "!"
                parts.append(f"@{sense}{operand_text(instr.pred)}")
            if instr.reconv is not None:
                parts.append(f"reconv={labels[int(instr.reconv)]}")
            if instr.offset:
                parts.append(f"off={instr.offset}")
            if instr.size:
                parts.append(f"size={instr.size}")
            if instr.kernel is not None:
                parts.append(f"kernel={instr.kernel}")
            if instr.grid_dims is not None:
                dims = ",".join(operand_text(d) for d in instr.grid_dims)
                key = "agg" if instr.op == Opcode.LAUNCH_AGG else "grid"
                parts.append(f"{key}=({dims})")
            if instr.block_dims is not None:
                dims = ",".join(operand_text(d) for d in instr.block_dims)
                parts.append(f"block=({dims})")
            lines.append("    " + " ".join(parts))
        return "\n".join(lines) + "\n"

    def max_register_index(self) -> Dict[str, int]:
        """Highest register index used per bank (for resource accounting)."""
        from .instructions import Bank, Reg

        highest = {"int": -1, "flt": -1}

        def see(operand: Optional[object]) -> None:
            if isinstance(operand, Reg):
                key = "int" if operand.bank == Bank.INT else "flt"
                highest[key] = max(highest[key], operand.idx)

        for instr in self.instructions:
            for operand in (instr.dst, instr.a, instr.b, instr.c, instr.pred):
                see(operand)
            if instr.grid_dims:
                for operand in instr.grid_dims:
                    see(operand)
            if instr.block_dims:
                for operand in instr.block_dims:
                    see(operand)
        return highest
