"""Peephole optimizer for ISA programs.

Kernels built with the :class:`~repro.isa.builder.KernelBuilder` are
deliberately naive — every helper allocates a fresh register and emits
exactly what it was asked.  This module provides conservative,
semantics-preserving cleanups a backend would apply:

* **constant folding** — ALU ops whose operands are immediates (or
  registers holding known constants) are rewritten to ``mov dst, #value``;
* **dead-code elimination** — instructions writing registers that are
  never read (and with no side effects) are dropped;
* **identity simplification** — ``iadd x, 0`` / ``imul x, 1`` /
  ``imul x, 0`` and friends become moves or constants.

All passes are *intra-block*: analysis state resets at every label target
and branch, so control flow can never observe a difference.  Correctness
is property-tested against the unoptimized program on random inputs
(``tests/isa/test_optimizer.py``).

The optimizer operates on an **unfinalized** program (labels still
symbolic) and returns a new unfinalized program; run it between building
and :meth:`Program.finalize`, or use :func:`optimize_program` which
handles re-assembly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import AssemblyError
from .instructions import Imm, Instr, Opcode, Reg
from .program import Program

#: Foldable integer binary ops.
_INT_FOLD = {
    Opcode.IADD: lambda a, b: a + b,
    Opcode.ISUB: lambda a, b: a - b,
    Opcode.IMUL: lambda a, b: a * b,
    Opcode.IMIN: min,
    Opcode.IMAX: max,
    Opcode.IAND: lambda a, b: a & b,
    Opcode.IOR: lambda a, b: a | b,
    Opcode.IXOR: lambda a, b: a ^ b,
    Opcode.ISHL: lambda a, b: a << b,
    Opcode.ISHR: lambda a, b: a >> b,
}

#: Ops with no side effects whose dead results may be eliminated.
_PURE = frozenset(_INT_FOLD) | {
    Opcode.IDIV, Opcode.IMOD, Opcode.INEG, Opcode.INOT, Opcode.MOV,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FMIN,
    Opcode.FMAX, Opcode.FNEG, Opcode.FSQRT, Opcode.FABS, Opcode.FMOV,
    Opcode.ITOF, Opcode.FTOI, Opcode.SETP, Opcode.FSETP, Opcode.SELP,
    Opcode.READ_SPECIAL, Opcode.SHFL_IDX, Opcode.SHFL_DOWN,
    Opcode.VOTE_ANY, Opcode.VOTE_ALL, Opcode.VOTE_BALLOT,
}

_WRAP = 1 << 64


def _wrap64(value: int) -> int:
    return ((value + (1 << 63)) % _WRAP) - (1 << 63)


def _clone(instr: Instr, **overrides) -> Instr:
    fields = dict(
        dst=instr.dst, a=instr.a, b=instr.b, c=instr.c, cmp=instr.cmp,
        target=instr.target, reconv=instr.reconv, pred=instr.pred,
        pred_sense=instr.pred_sense, special=instr.special,
        kernel=instr.kernel, grid_dims=instr.grid_dims,
        block_dims=instr.block_dims, size=instr.size, offset=instr.offset,
    )
    op = overrides.pop("op", instr.op)
    fields.update(overrides)
    return Instr(op, **fields)


class _BlockState:
    """Known integer constants per register within one basic block."""

    def __init__(self) -> None:
        self.constants: Dict[Tuple[int, int], int] = {}

    def reset(self) -> None:
        self.constants.clear()

    def lookup(self, operand) -> Optional[int]:
        if isinstance(operand, Imm) and isinstance(operand.value, int):
            return operand.value
        if isinstance(operand, Reg):
            return self.constants.get((operand.bank, operand.idx))
        return None

    def kill(self, reg: Optional[Reg]) -> None:
        if reg is not None:
            self.constants.pop((reg.bank, reg.idx), None)

    def define(self, reg: Reg, value: Optional[int]) -> None:
        key = (reg.bank, reg.idx)
        if value is None:
            self.constants.pop(key, None)
        else:
            self.constants[key] = value


def constant_fold(program: Program) -> Program:
    """Fold constant integer arithmetic and simplify identities."""
    block_starts = set(program.labels.values())
    out = Program(program.name)
    state = _BlockState()
    label_at: Dict[int, List[str]] = {}
    for name, pc in program.labels.items():
        label_at.setdefault(pc, []).append(name)

    for pc, instr in enumerate(program.instructions):
        for name in label_at.get(pc, ()):  # control may join here
            out.label(name)
        if pc in block_starts:
            state.reset()

        new = instr
        if instr.op in _INT_FOLD and isinstance(instr.dst, Reg):
            a = state.lookup(instr.a)
            b = state.lookup(instr.b)
            if a is not None and b is not None:
                value = _wrap64(_INT_FOLD[instr.op](a, b))
                new = _clone(instr, op=Opcode.MOV, a=Imm(value), b=None)
            elif instr.op is Opcode.IADD and b == 0:
                new = _clone(instr, op=Opcode.MOV, b=None)
            elif instr.op is Opcode.IMUL and b == 1:
                new = _clone(instr, op=Opcode.MOV, b=None)
            elif instr.op is Opcode.IMUL and b == 0:
                new = _clone(instr, op=Opcode.MOV, a=Imm(0), b=None)

        # Track definitions.
        if isinstance(new.dst, Reg):
            if new.op is Opcode.MOV:
                state.define(new.dst, state.lookup(new.a))
            else:
                state.define(new.dst, None)
        # Branches end the block (fall-through may be joined by a jump).
        if new.op in (Opcode.BRA, Opcode.BAR, Opcode.JOIN):
            state.reset()
        out.emit(new)

    for name, pc in program.labels.items():
        if pc == len(program.instructions) and name not in out.labels:
            out.label(name)
    return out


def dead_code_elimination(program: Program) -> Program:
    """Drop pure instructions whose destinations are never read.

    Conservative: a single backward liveness pass over the whole program
    treating every register read anywhere (including in launch dims and
    predicates) as live.  Registers read by *no* instruction can never
    influence results regardless of control flow.
    """
    read: Set[Tuple[int, int]] = set()

    def mark(operand) -> None:
        if isinstance(operand, Reg):
            read.add((operand.bank, operand.idx))

    for instr in program.instructions:
        for operand in (instr.a, instr.b, instr.c, instr.pred):
            mark(operand)
        for dims in (instr.grid_dims, instr.block_dims):
            if dims:
                for operand in dims:
                    mark(operand)

    label_at: Dict[int, List[str]] = {}
    for name, pc in program.labels.items():
        label_at.setdefault(pc, []).append(name)

    out = Program(program.name)
    kept_any = False
    for pc, instr in enumerate(program.instructions):
        for name in label_at.get(pc, ()):
            out.label(name)
        if (
            instr.op in _PURE
            and isinstance(instr.dst, Reg)
            and (instr.dst.bank, instr.dst.idx) not in read
        ):
            continue  # dead
        out.emit(instr)
        kept_any = True
    if not kept_any:
        out.emit(Instr(Opcode.NOP))
    for name, pc in program.labels.items():
        if pc == len(program.instructions) and name not in out.labels:
            out.label(name)
    return out


def optimize(program: Program, passes: int = 2) -> Program:
    """Run the pass pipeline; input must be unfinalized."""
    if program.finalized:
        raise AssemblyError("optimize() needs an unfinalized program")
    current = program
    for _ in range(passes):
        current = constant_fold(current)
        current = dead_code_elimination(current)
    return current


def optimized_copy(program: Program, passes: int = 2) -> Program:
    """Optimize a *finalized* program, returning a new finalized one."""
    if not program.finalized:
        raise AssemblyError("optimized_copy() needs a finalized program")
    unfinalized = _definalize(program)
    return optimize(unfinalized, passes=passes).finalize()


def _definalize(program: Program) -> Program:
    """Rebuild an unfinalized copy with symbolic labels."""
    needed = set()
    for instr in program.instructions:
        if isinstance(instr.target, int):
            needed.add(instr.target)
        if isinstance(instr.reconv, int):
            needed.add(instr.reconv)
    names = {pc: f"L{pc}" for pc in needed}
    out = Program(program.name)
    for pc, instr in enumerate(program.instructions):
        if pc in names:
            out.label(names[pc])
        overrides = {}
        if isinstance(instr.target, int):
            overrides["target"] = names[instr.target]
        if isinstance(instr.reconv, int):
            overrides["reconv"] = names[instr.reconv]
        out.emit(_clone(instr, **overrides) if overrides else _clone(instr))
    for pc in needed:
        if pc == len(program.instructions) and names[pc] not in out.labels:
            out.label(names[pc])
    return out
