"""Persistent-threads rewrite: CDP launch sites become task-queue pushes.

The Atos-style persistent modes run no device launches at all.  This
pass takes the plain-CDP kernel set a workload built and produces:

* every kernel rewritten **under its original name**, with each
  canonical launch site (see :mod:`repro.isa.dynopt.sites`) replaced by
  a loop that enqueues one *block-task record* per child block onto the
  global MPMC queue (:mod:`repro.isa.taskqueue`); and
* one generated worker kernel that the runtime launches as a fixed
  resident grid: each block's leader claims a record, publishes it to
  the block through shared memory, and every thread below the record's
  block size runs the matching child body — spliced in with its
  geometry reads (``GTID``/``CTAID``/``NCTAID``/``NTID``/``PARAM``)
  substituted from the record, exactly the way the dynopt wrappers
  re-base bodies under a batched launch.

Because the worker splices the *rewritten* bodies, nested launches
(child-of-child) become enqueues from inside the worker itself; the
leader's ``FINISHED`` increment sits after the block-wide barrier, so a
task only counts as done once all of its child records are published —
which is what makes the queue's ``FINISHED == PUBLISHED`` quiescence
test a sound termination detector.

A record is ``(kernel id, param buffer, ctaid, nctaid, block size)``.
Unlike dynopt, this pass refuses loudly: a kernel that launches (or is
launched by) the rewritten graph but cannot be spliced would strand
queue records with no resident consumer, so it raises
:class:`PersistError` instead of degrading.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

from ..sim.kernel import KernelFunction
from .builder import KernelBuilder
from .instructions import Special
from .optimizer import _clone, _definalize
from .program import Program
from .dynopt.sites import find_launch_sites
from .dynopt.splice import inlinable, splice_body, summarize_body
from .taskqueue import (
    OFF_FINISHED,
    QueueLayout,
    emit_dequeue_async,
    emit_dequeue_sync,
    emit_enqueue,
)

#: Payload words per block-task record.
RECORD_WORDS = 5
#: Record field order.
REC_KID, REC_PARAM, REC_CTAID, REC_NCTAID, REC_BLOCK = range(RECORD_WORDS)

#: Shared-memory control slots the worker block uses per iteration.
WORKER_SHARED_WORDS = 6
_S_CMD, _S_KID, _S_PARAM, _S_CTAID, _S_NCTAID, _S_BS = range(6)

#: Geometry reads the worker can re-base from a record (the agg set).
_WORKER_SPECIALS = {
    Special.GTID,
    Special.PARAM,
    Special.TID_X,
    Special.NTID_X,
    Special.CTAID_X,
    Special.NCTAID_X,
}

DEFAULT_WORKER_NAME = "__persist_worker"


class PersistError(RuntimeError):
    """A kernel set cannot run under the persistent-threads rewrite."""


@dataclasses.dataclass
class PersistResult:
    """Everything the runtime needs to drive the rewritten kernel set."""

    kernels: List[KernelFunction]  #: rewritten set + generated worker
    worker: Optional[str]  #: worker kernel name (None: nothing to do)
    kernel_ids: Dict[str, int]  #: spliced kernel name -> record kid
    max_block: int  #: largest static child block size seen at a site


def _spliceable(func: KernelFunction, program: Program) -> bool:
    summary = summarize_body(program)
    return (
        func.shared_words == 0
        and inlinable(summary, _WORKER_SPECIALS)
    )


def _rewrite_sites(
    program: Program,
    queue: QueueLayout,
    kernel_ids: Dict[str, int],
    defect: Optional[str],
) -> tuple:
    """Replace known launch sites with enqueue loops.

    Returns ``(program, max_block)`` — the input program untouched when
    it has no rewritable sites.
    """
    instrs = program.instructions
    sites = {}
    max_block = 0
    for site in find_launch_sites(program):
        if site.kernel not in kernel_ids or site.block_size is None:
            continue
        sites[site.index] = site
        max_block = max(max_block, site.block_size)
    if not sites:
        return program, 0

    highest = program.max_register_index()
    kb = KernelBuilder(
        program.name,
        int_reg_start=highest["int"] + 1,
        flt_reg_start=highest["flt"] + 1,
        label_stem="pq",
    )
    out = kb.program
    position_labels: Dict[int, list] = {}
    for name, pc in program.labels.items():
        position_labels.setdefault(min(pc, len(instrs)), []).append(name)

    pc = 0
    while pc <= len(instrs):
        for name in position_labels.get(pc, ()):
            out.label(name)
        if pc == len(instrs):
            break
        site = sites.get(pc)
        if site is None:
            out.emit(_clone(instrs[pc]))
            pc += 1
            continue
        kid = kernel_ids[site.kernel]
        with kb.for_range(0, site.grid_x) as cta:
            emit_enqueue(
                kb,
                queue,
                [kid, site.param, cta, site.grid_x, site.block_size],
                defect=defect,
            )
        pc += 2  # past the STREAM_CREATE / LAUNCH_DEVICE pair
    return out, max_block


def _build_worker(
    name: str,
    bodies: Sequence[tuple],
    queue: QueueLayout,
    async_: bool,
) -> Program:
    """The resident worker: leader claims records, block runs bodies."""
    max_int = max(p.max_register_index()["int"] for _, p in bodies)
    max_flt = max(p.max_register_index()["flt"] for _, p in bodies)
    kb = KernelBuilder(
        name,
        int_reg_start=max_int + 1,
        flt_reg_start=max_flt + 1,
        label_stem="pw",
    )
    tid = kb.tid()
    leader = kb.eq(tid, 0)
    shared = kb.mov(0)
    with kb.if_(leader):
        kb.sts(shared, 1, offset=_S_CMD)
    kb.bar()
    with kb.while_(lambda: kb.ne(kb.lds(shared, offset=_S_CMD), 0)):
        # Every thread just read CMD in the loop condition; a barrier
        # opens a fresh epoch before the leader overwrites it.
        kb.bar()
        with kb.if_(leader):
            done = kb.mov(0)
            with kb.while_(lambda: kb.eq(done, 0)):

                def take(fields, ticket) -> None:
                    kb.sts(shared, fields[REC_KID], offset=_S_KID)
                    kb.sts(shared, fields[REC_PARAM], offset=_S_PARAM)
                    kb.sts(shared, fields[REC_CTAID], offset=_S_CTAID)
                    kb.sts(shared, fields[REC_NCTAID], offset=_S_NCTAID)
                    kb.sts(shared, fields[REC_BLOCK], offset=_S_BS)
                    kb.sts(shared, 1, offset=_S_CMD)
                    kb.mov(1, dst=done)

                if async_:
                    regs = emit_dequeue_async(kb, queue, take)
                else:
                    regs = emit_dequeue_sync(kb, queue, take)
                with kb.if_(kb.iand(kb.eq(done, 0), regs.quiescent)):
                    kb.sts(shared, 0, offset=_S_CMD)
                    kb.mov(1, dst=done)
        kb.bar()
        cmd = kb.lds(shared, offset=_S_CMD)
        with kb.if_(kb.ne(cmd, 0)):
            kid = kb.lds(shared, offset=_S_KID)
            param = kb.lds(shared, offset=_S_PARAM)
            ctaid = kb.lds(shared, offset=_S_CTAID)
            nctaid = kb.lds(shared, offset=_S_NCTAID)
            bs = kb.lds(shared, offset=_S_BS)
            with kb.if_(kb.lt(tid, bs)):
                gtid = kb.iadd(kb.imul(ctaid, bs), tid)
                for body_kid, body in bodies:
                    summary = summarize_body(body)
                    subst = {}
                    if Special.PARAM in summary.specials:
                        subst[Special.PARAM] = param
                    if Special.GTID in summary.specials:
                        subst[Special.GTID] = gtid
                    if Special.CTAID_X in summary.specials:
                        subst[Special.CTAID_X] = ctaid
                    if Special.NCTAID_X in summary.specials:
                        subst[Special.NCTAID_X] = nctaid
                    if Special.NTID_X in summary.specials:
                        subst[Special.NTID_X] = bs
                    with kb.if_(kb.eq(kid, body_kid)):
                        splice_body(
                            kb.program,
                            body,
                            label_prefix=f"k{body_kid}_",
                            int_shift=0,
                            flt_shift=0,
                            special_subst=subst,
                        )
        kb.bar()
        # FINISHED counts a task only after the closing barrier: every
        # child record the body enqueued is published by now, so the
        # F == P quiescence test can never run ahead of nested work.
        with kb.if_(kb.iand(leader, cmd)):
            kb.atom_add(queue.field(OFF_FINISHED), 1)
    kb.exit()
    return kb.program


def persist_transform(
    kernels: Sequence[KernelFunction],
    queue: QueueLayout,
    *,
    async_: bool = False,
    worker_name: str = DEFAULT_WORKER_NAME,
    defect: Optional[str] = None,
) -> PersistResult:
    """Rewrite a CDP kernel set for the persistent-threads runtime."""
    if queue.record_words != RECORD_WORDS:
        raise PersistError(
            f"persistent queue records need {RECORD_WORDS} words, the "
            f"queue provides {queue.record_words}"
        )
    by_name = {func.name: func for func in kernels}
    programs = {
        func.name: _definalize(func.program) for func in kernels
    }
    site_targets: Dict[str, Set[str]] = {
        name: {
            site.kernel
            for site in find_launch_sites(program)
            if site.block_size is not None
        }
        for name, program in programs.items()
    }

    # The splice set: every kernel with launch sites plus everything
    # transitively reachable as a launch target.
    spliced: Set[str] = {
        name for name, targets in site_targets.items() if targets
    }
    frontier = set().union(*site_targets.values()) if site_targets else set()
    while frontier - spliced:
        name = (frontier - spliced).pop()
        spliced.add(name)
        frontier |= site_targets.get(name, set())
    if not spliced:
        return PersistResult(list(kernels), None, {}, 0)

    missing = sorted(n for n in spliced if n not in by_name)
    if missing:
        raise PersistError(
            f"launch targets not in the kernel set: {', '.join(missing)}"
        )
    kernel_ids = {
        func.name: kid
        for kid, func in enumerate(f for f in kernels if f.name in spliced)
    }

    rewritten: Dict[str, Program] = {}
    max_block = 0
    for name in kernel_ids:
        program, block = _rewrite_sites(
            programs[name], queue, kernel_ids, defect
        )
        rewritten[name] = program
        max_block = max(max_block, block)

    bad = sorted(
        name
        for name in kernel_ids
        if not _spliceable(by_name[name], rewritten[name])
    )
    if bad:
        raise PersistError(
            "kernels cannot run as persistent block-tasks (barrier, "
            f"shared memory, early exit or exotic specials): {', '.join(bad)}"
        )

    bodies = [(kernel_ids[name], rewritten[name]) for name in kernel_ids]
    worker_program = _build_worker(worker_name, bodies, queue, async_)
    worker_local = max(by_name[name].local_words for name in kernel_ids)

    out: List[KernelFunction] = []
    for func in kernels:
        if func.name in rewritten:
            out.append(
                KernelFunction(
                    func.name,
                    rewritten[func.name],
                    shared_words=func.shared_words,
                    local_words=func.local_words,
                )
            )
        else:
            out.append(func)
    out.append(
        KernelFunction(
            worker_name,
            worker_program,
            shared_words=WORKER_SHARED_WORDS,
            local_words=worker_local,
        )
    )
    return PersistResult(out, worker_name, kernel_ids, max_block)
