"""Device-side bounded MPMC task-queue primitives (Atos-style).

A queue is a global-memory descriptor plus a ring of fixed-size records,
built entirely on the existing atomics — no new opcodes.  Layout::

    word 0   CAPACITY   number of records in the ring (static)
    word 1   RESERVED   producer tickets handed out (atom_add)
    word 2   PUBLISHED  completed publishes (atom_add; quiescence count)
    word 3   CLAIMED    consumer tickets handed out (CAS or atom_add)
    word 4   FINISHED   items fully processed (atom_add)
    word 5   HIGH_WATER max in-flight records seen (atom_max; footprint)
    word 6   DROPPED    bounded enqueues rejected at capacity
    word 7   (reserved)
    word 8+  ring: ``capacity`` records of ``1 + record_words`` words

Every record leads with a *sequence* word (Vyukov MPMC): slot ``i``
starts at sequence ``i``; the producer holding ticket ``t`` waits for
sequence ``t``, stores the payload, then publishes by writing ``t + 1``;
the consumer holding ticket ``t`` waits for ``t + 1``, reads the
payload, then releases the slot to the wrapping producer by writing
``t + capacity``.  The global ``PUBLISHED`` count alone cannot order
payloads — concurrent producers publish out of ticket order — so the
per-slot sequence is what makes a claim safe, while the counters drive
sizing and the ``FINISHED == PUBLISHED`` quiescence test (``FINISHED``
read *first*, so an in-flight item can never be double-counted into a
premature termination).

The ``defect`` knobs deliberately break one ordering each; they exist so
the sanitizer tests can prove the clean protocol is load-bearing.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from .builder import KernelBuilder
from .instructions import Reg

#: Descriptor field offsets (words from the queue base).
OFF_CAPACITY = 0
OFF_RESERVED = 1
OFF_PUBLISHED = 2
OFF_CLAIMED = 3
OFF_FINISHED = 4
OFF_HIGH_WATER = 5
OFF_DROPPED = 6
HEADER_WORDS = 8

#: Recognized ordering defects (see module docstring).
ENQUEUE_DEFECTS = ("plain-reserve", "publish-before-store")
DEQUEUE_DEFECTS = ("skip-empty-check",)


@dataclasses.dataclass(frozen=True)
class QueueLayout:
    """Host-side description of one queue; addresses bake as immediates."""

    base: int  #: descriptor base address in global memory
    capacity: int  #: ring size in records
    record_words: int  #: payload words per record (sequence word excluded)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.record_words < 1:
            raise ValueError(
                f"record_words must be >= 1, got {self.record_words}"
            )

    # ------------------------------------------------------------------
    # Host-side geometry
    # ------------------------------------------------------------------
    @property
    def stride(self) -> int:
        """Words per ring record (sequence word + payload)."""
        return 1 + self.record_words

    @property
    def storage(self) -> int:
        """Address of ring record 0."""
        return self.base + HEADER_WORDS

    @property
    def total_words(self) -> int:
        return HEADER_WORDS + self.capacity * self.stride

    def field(self, offset: int) -> int:
        """Address of one descriptor counter."""
        return self.base + offset

    def slot(self, ticket: int) -> int:
        """Address of the ring record serving ``ticket`` (its seq word)."""
        return self.storage + (ticket % self.capacity) * self.stride

    def init_image(self) -> np.ndarray:
        """Initial memory image: zero counters, ring sequences ``i``."""
        image = np.zeros(self.total_words, dtype=np.int64)
        image[OFF_CAPACITY] = self.capacity
        image[HEADER_WORDS :: self.stride] = np.arange(self.capacity)
        return image


def alloc_words(capacity: int, record_words: int) -> int:
    """Global words a queue of this shape needs."""
    return HEADER_WORDS + capacity * (1 + record_words)


# ----------------------------------------------------------------------
# Emitters.  All take a KernelBuilder mid-construction; control flow is
# structured, so they compose under if_/while_ like any other DSL code.
# ----------------------------------------------------------------------
def _emit_slot_addr(k: KernelBuilder, q: QueueLayout, ticket: Reg) -> Reg:
    index = k.imod(ticket, q.capacity)
    return k.iadd(q.storage, k.imul(index, q.stride))


def _emit_wait_seq(k: KernelBuilder, slot: Reg, want: Reg) -> None:
    """Spin until the slot's sequence word equals ``want``."""
    ready = k.mov(0)
    with k.while_(lambda: k.eq(ready, 0)):
        k.eq(k.ld(slot), want, dst=ready)


def emit_enqueue(
    k: KernelBuilder,
    q: QueueLayout,
    values: Sequence,
    defect: Optional[str] = None,
) -> Reg:
    """Reserve a ticket, store ``values``, publish.  Returns the ticket.

    Blocks (spins on the slot sequence) while the ring is full — the
    bounded queue applies backpressure rather than corrupting a slot
    whose consumer has not released it yet.
    """
    if len(values) != q.record_words:
        raise ValueError(
            f"queue records hold {q.record_words} words, got {len(values)}"
        )
    if defect not in (None,) + ENQUEUE_DEFECTS:
        raise ValueError(f"unknown enqueue defect {defect!r}")

    if defect == "plain-reserve":
        # BUG (seeded): non-atomic ticket reservation — concurrent
        # producers read the same ticket and race on one slot's payload.
        ticket = k.ld(q.field(OFF_RESERVED))
        k.st(q.field(OFF_RESERVED), k.iadd(ticket, 1))
    else:
        ticket = k.atom_add(q.field(OFF_RESERVED), 1)
    slot = _emit_slot_addr(k, q, ticket)
    _emit_wait_seq(k, slot, ticket)

    def store_payload() -> None:
        for i, value in enumerate(values):
            k.st(slot, value, offset=1 + i)

    def publish() -> None:
        k.atom_exch(slot, k.iadd(ticket, 1))
        k.atom_add(q.field(OFF_PUBLISHED), 1)

    if defect == "publish-before-store":
        # BUG (seeded): the release fence is dropped — the slot is
        # published before its payload lands, so a consumer can read
        # stale or uninitialized words.
        publish()
        store_payload()
    else:
        store_payload()
        inflight = k.isub(k.iadd(ticket, 1), k.ld(q.field(OFF_FINISHED)))
        k.atom_max(q.field(OFF_HIGH_WATER), inflight)
        publish()
    return ticket


def emit_try_enqueue(
    k: KernelBuilder,
    q: QueueLayout,
    values: Sequence,
    on_drop: Optional[Callable[[], None]] = None,
) -> Reg:
    """Enqueue unless the ring looks full; returns an ``ok`` predicate.

    The occupancy gate (``RESERVED - FINISHED < capacity``) races with
    concurrent producers, so a loser may still block briefly on the slot
    sequence — the gate bounds drops, the sequence guards correctness.
    Dropped records bump ``DROPPED`` and invoke ``on_drop``.
    """
    occupancy = k.isub(
        k.ld(q.field(OFF_RESERVED)), k.ld(q.field(OFF_FINISHED))
    )
    ok = k.lt(occupancy, q.capacity)

    def drop() -> None:
        k.atom_add(q.field(OFF_DROPPED), 1)
        if on_drop is not None:
            on_drop()

    k.if_else(ok, lambda: emit_enqueue(k, q, values), drop)
    return ok


@dataclasses.dataclass(frozen=True)
class DequeueRegs:
    """Registers a dequeue attempt leaves behind for the caller."""

    got: Reg  #: 1 when an item was claimed and consumed
    finished: Reg  #: FINISHED snapshot (read before ``published``)
    published: Reg  #: PUBLISHED snapshot
    quiescent: Reg  #: ``finished == published`` predicate


def emit_dequeue_sync(
    k: KernelBuilder,
    q: QueueLayout,
    on_item: Callable[[List[Reg], Reg], None],
    on_miss: Optional[Callable[[], None]] = None,
    defect: Optional[str] = None,
) -> DequeueRegs:
    """One synchronous dequeue attempt (CAS-claim of a published ticket).

    Claims only tickets below the ``PUBLISHED`` snapshot, so the claim
    counter never overshoots; a successful claim then waits on the slot
    sequence (publishes complete out of ticket order) before handing the
    payload registers and ticket to ``on_item``.  ``on_miss`` runs when
    nothing was claimed — empty snapshot or a lost CAS.  The caller owns
    the ``FINISHED`` increment: processing counts as done only when its
    side effects (child enqueues included) have landed.
    """
    if defect not in (None,) + DEQUEUE_DEFECTS:
        raise ValueError(f"unknown dequeue defect {defect!r}")
    finished = k.ld(q.field(OFF_FINISHED))  # F first —
    published = k.ld(q.field(OFF_PUBLISHED))  # — then P
    quiescent = k.eq(finished, published)
    got = k.mov(0)

    def consume(ticket: Reg) -> None:
        k.mov(1, dst=got)
        slot = _emit_slot_addr(k, q, ticket)
        if defect != "skip-empty-check":
            _emit_wait_seq(k, slot, k.iadd(ticket, 1))
        fields = [k.ld(slot, offset=1 + i) for i in range(q.record_words)]
        k.atom_exch(slot, k.iadd(ticket, q.capacity))  # release for wrap
        on_item(fields, ticket)

    if defect == "skip-empty-check":
        # BUG (seeded): claims unconditionally and skips the sequence
        # wait — an empty queue hands out a ticket whose record was
        # never written (uninitialized payload read).
        consume(k.atom_add(q.field(OFF_CLAIMED), 1))
    else:
        claimed = k.ld(q.field(OFF_CLAIMED))

        def attempt() -> None:
            prev = k.atom_cas(q.field(OFF_CLAIMED), claimed, k.iadd(claimed, 1))
            with k.if_(k.eq(prev, claimed)):
                consume(claimed)

        with k.if_(k.lt(claimed, published)):
            attempt()
    if on_miss is not None:
        with k.if_(k.eq(got, 0)):
            on_miss()
    return DequeueRegs(got, finished, published, quiescent)


def emit_dequeue_async(
    k: KernelBuilder,
    q: QueueLayout,
    on_item: Callable[[List[Reg], Reg], None],
    on_dead: Optional[Callable[[], None]] = None,
) -> DequeueRegs:
    """One asynchronous dequeue attempt (optimistic ticket + spin).

    Takes a ticket with a plain ``atom_add`` whenever the queue looks
    non-empty, then spins on the slot sequence until the ticket's item
    is published.  A ticket past the final publish count can never fill;
    the spin detects that (quiescent *and* ticket unpublished — with
    ``FINISHED`` read first the test cannot fire early) and abandons the
    ticket via ``on_dead``.  The fence here is per-iteration: every spin
    re-reads the atomically written counters, so progress by any other
    block is observed without a barrier.
    """
    finished = k.ld(q.field(OFF_FINISHED))  # F first —
    published = k.ld(q.field(OFF_PUBLISHED))  # — then P
    quiescent = k.eq(finished, published)
    got = k.mov(0)

    def claim() -> None:
        ticket = k.atom_add(q.field(OFF_CLAIMED), 1)
        slot = _emit_slot_addr(k, q, ticket)
        want = k.iadd(ticket, 1)
        waiting = k.mov(1)
        with k.while_(lambda: k.ne(waiting, 0)):
            ready = k.eq(k.ld(slot), want)

            def consume() -> None:
                k.mov(0, dst=waiting)
                k.mov(1, dst=got)
                fields = [
                    k.ld(slot, offset=1 + i) for i in range(q.record_words)
                ]
                k.atom_exch(slot, k.iadd(ticket, q.capacity))
                on_item(fields, ticket)

            def spin_or_abandon() -> None:
                fin_now = k.ld(q.field(OFF_FINISHED))  # F first —
                pub_now = k.ld(q.field(OFF_PUBLISHED))  # — then P
                dead = k.iand(
                    k.eq(fin_now, pub_now), k.ge(ticket, pub_now)
                )
                with k.if_(dead):
                    k.mov(0, dst=waiting)
                    if on_dead is not None:
                        on_dead()

            k.if_else(ready, consume, spin_or_abandon)

    with k.if_(k.lt(k.ld(q.field(OFF_CLAIMED)), published)):
        claim()
    return DequeueRegs(got, finished, published, quiescent)


def emit_size(k: KernelBuilder, q: QueueLayout) -> Reg:
    """Claimable items right now: ``max(PUBLISHED - CLAIMED, 0)``."""
    pending = k.isub(
        k.ld(q.field(OFF_PUBLISHED)), k.ld(q.field(OFF_CLAIMED))
    )
    return k.imax(pending, 0)
