"""Workload base class: the flat / CDP / DTBL implementation contract.

Every benchmark implements three variants of the same algorithm, mirroring
the paper's methodology (Section 5.1):

* **flat** — the nested structure is flattened and serialized within each
  thread;
* **CDP** — a device *kernel* is launched for any dynamically formed
  pocket of parallelism (DFP) with enough work, via
  ``cudaStreamCreateWithFlags`` + ``cudaGetParameterBuffer`` +
  ``cudaLaunchDevice``;
* **DTBL** — the same DFPs are launched as aggregated groups via
  ``cudaGetParameterBuffer`` + ``cudaLaunchAggGroup``.

Data structures and algorithms are identical across variants; only the
dynamic-launch mechanism differs (the paper's fair-comparison rule).
"""

from __future__ import annotations

import abc
import os
import warnings
from dataclasses import dataclass
from typing import List, Optional

from ..config import GPUConfig
from ..errors import WorkloadError
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from ..sim.sanitizer import SanitizerReport
from ..sim.stats import SimStats


@dataclass
class WorkloadResult:
    """Outcome of one simulated run."""

    name: str
    mode: ExecutionMode
    stats: SimStats
    #: Cycles spent in the measured (computation) portion.
    cycles: int
    #: Sanitizer findings, when the run was sanitized (always clean here:
    #: :meth:`Workload.execute` raises on findings); ``None`` otherwise.
    sanitizer: Optional["SanitizerReport"] = None

    def summary(self) -> dict:
        data = self.stats.summary()
        data["benchmark"] = self.name
        data["mode"] = self.mode.value
        return data


class Workload(abc.ABC):
    """One benchmark instance bound to a dataset.

    Subclasses implement kernel construction and the host-side driver; the
    base class owns device creation, registration, execution, and the
    correctness check against a pure-Python reference.
    """

    #: Short benchmark name, e.g. ``"bfs"``.
    app_name: str = "workload"
    #: Threads per dynamically launched thread block.
    child_block: int = 32
    #: Minimum DFP size that justifies a dynamic launch.
    child_threshold: int = 32

    def __init__(self, name: str, mode: ExecutionMode) -> None:
        self.name = name
        self.mode = mode

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_kernels(self) -> List[KernelFunction]:
        """All kernel functions this variant needs, ready to register."""

    @abc.abstractmethod
    def setup(self, device: Device) -> None:
        """Upload inputs and allocate outputs."""

    @abc.abstractmethod
    def run(self, device: Device) -> None:
        """Host-side driver: launch kernels and synchronize to completion."""

    @abc.abstractmethod
    def check(self, device: Device) -> None:
        """Compare device results against the pure-Python reference.

        Must raise :class:`~repro.errors.WorkloadError` on mismatch.
        """

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_spec(
        self,
        spec,
        on_checkpoint=None,
        memory_words: int = 4 * 1024 * 1024,
        max_cycles: Optional[int] = 500_000_000,
        optimize_kernels: bool = False,
    ) -> WorkloadResult:
        """Run this workload as described by a :class:`~repro.exec.JobSpec`.

        The canonical execution entry point: config, latency scale,
        verification and the whole checkpoint policy come from the spec
        (``<checkpoint_dir>/<fingerprint>.ckpt``, stamped with the spec's
        content fingerprint so a job never resumes from another job's
        checkpoint).  :func:`repro.exec.run_job` is a thin wrapper that
        also builds the workload from the spec.
        """
        if spec.mode is not self.mode:
            raise WorkloadError(
                f"{self.name}: spec mode {spec.mode.value!r} does not match "
                f"workload mode {self.mode.value!r}"
            )
        checkpoint_path = fingerprint = None
        if spec.checkpoint_dir is not None:
            from ..state import checkpoint_path_for

            fingerprint = spec.fingerprint()
            checkpoint_path = str(
                checkpoint_path_for(spec.checkpoint_dir, fingerprint)
            )
        return self._execute(
            config=spec.config,
            memory_words=memory_words,
            verify=spec.verify,
            max_cycles=max_cycles,
            latency_scale=spec.latency_scale,
            optimize_kernels=optimize_kernels,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_path=checkpoint_path,
            resume=spec.resume,
            on_checkpoint=on_checkpoint,
            checkpoint_fingerprint=fingerprint,
        )

    def execute(
        self,
        config: Optional[GPUConfig] = None,
        memory_words: int = 4 * 1024 * 1024,
        verify: bool = True,
        max_cycles: Optional[int] = 500_000_000,
        latency_scale: float = 1.0,
        optimize_kernels: bool = False,
        checkpoint_every: Optional[int] = None,
        checkpoint_path=None,
        resume: bool = False,
        on_checkpoint=None,
        checkpoint_fingerprint: Optional[str] = None,
    ) -> WorkloadResult:
        """Build, run and (optionally) verify this workload end to end.

        ``latency_scale`` shrinks the measured Table 3 launch latencies to
        match a scaled-down dataset (see ``LatencyModel.scaled``);
        ``optimize_kernels`` runs the peephole optimizer over every kernel
        before registration (results are still verified).

        The ``checkpoint_*``/``resume`` keywords are **deprecated**: the
        checkpoint policy lives on :class:`~repro.exec.JobSpec` now (see
        :meth:`execute_spec` and :func:`repro.exec.run_job`).  They keep
        working — ``checkpoint_every`` snapshots the simulator to
        ``checkpoint_path`` (and/or ``on_checkpoint``) every N cycles;
        with ``resume=True`` a valid checkpoint at ``checkpoint_path``
        fast-forwards the run to its saved cycle — but emit a
        :class:`DeprecationWarning`.
        """
        if (
            checkpoint_every is not None
            or checkpoint_path is not None
            or resume
            or checkpoint_fingerprint is not None
        ):
            warnings.warn(
                "passing checkpoint_every/checkpoint_path/resume/"
                "checkpoint_fingerprint to Workload.execute is deprecated; "
                "put the execution policy on a JobSpec and use "
                "Workload.execute_spec or repro.exec.run_job",
                DeprecationWarning,
                stacklevel=2,
            )
        return self._execute(
            config=config,
            memory_words=memory_words,
            verify=verify,
            max_cycles=max_cycles,
            latency_scale=latency_scale,
            optimize_kernels=optimize_kernels,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            resume=resume,
            on_checkpoint=on_checkpoint,
            checkpoint_fingerprint=checkpoint_fingerprint,
        )

    def _execute(
        self,
        config: Optional[GPUConfig],
        memory_words: int,
        verify: bool,
        max_cycles: Optional[int],
        latency_scale: float,
        optimize_kernels: bool,
        checkpoint_every: Optional[int],
        checkpoint_path,
        resume: bool,
        on_checkpoint,
        checkpoint_fingerprint: Optional[str],
    ) -> WorkloadResult:
        """The real end-to-end execution (shared by both entry points)."""
        device = Device(
            config=config or GPUConfig.k20c(),
            mode=self.mode,
            latency=self.mode.latency_model(latency_scale),
            memory_words=memory_words,
        )
        kernels = self.build_kernels()
        if self.mode.compiler_optimized:
            # CDP_AGG / CONSOLIDATED: the workload built plain CDP
            # kernels; rewrite them (and generate the batched-launch
            # wrappers) before registration.
            from ..isa.dynopt import transform_kernels

            kernels = transform_kernels(kernels, self.mode)
        persistent_runtime = None
        if self.mode.persistent:
            # PERSISTENT / PERSISTENT_ASYNC: rewrite the CDP launch
            # sites into task-queue pushes and intercept host launches
            # with a resident worker grid (see repro.runtime.persistent).
            from ..runtime.modes import ExecutionMode
            from ..runtime.persistent import PersistentRuntime

            persistent_runtime = PersistentRuntime(
                device,
                async_=self.mode is ExecutionMode.PERSISTENT_ASYNC,
            )
            kernels = persistent_runtime.transform(kernels)
        for func in kernels:
            if optimize_kernels:
                from ..isa.optimizer import optimized_copy
                from ..sim.kernel import KernelFunction

                func = KernelFunction(
                    func.name,
                    optimized_copy(func.program),
                    shared_words=func.shared_words,
                    local_words=func.local_words,
                )
            device.register(func)
        self.setup(device)
        if checkpoint_every:
            device.configure_checkpoint(
                checkpoint_every,
                path=checkpoint_path,
                on_checkpoint=on_checkpoint,
                fingerprint=checkpoint_fingerprint,
            )
        if resume and checkpoint_path is not None and os.path.exists(checkpoint_path):
            from ..state import (
                CheckpointError,
                load_checkpoint,
                prepare_resume,
                quarantine_checkpoint,
            )

            try:
                doc = load_checkpoint(
                    checkpoint_path, fingerprint=checkpoint_fingerprint
                )
                prepare_resume(device.gpu, doc)
            except CheckpointError:
                # Stale, corrupt or foreign checkpoint: set it aside and
                # run from the beginning.
                quarantine_checkpoint(checkpoint_path)
        self.run(device)
        device.synchronize(max_cycles=max_cycles)
        if persistent_runtime is not None:
            persistent_runtime.verify_drained()
        if (checkpoint_every or resume) and checkpoint_path is not None:
            try:
                os.unlink(checkpoint_path)
            except OSError:
                pass
        if verify:
            self.check(device)
        if device.sanitizing and not device.sanitizer_report().clean:
            raise WorkloadError(
                f"{self.name} ({self.mode.value}): sanitizer findings:\n"
                + device.sanitizer_report().format()
            )
        return WorkloadResult(
            name=self.name,
            mode=self.mode,
            stats=device.stats,
            cycles=device.stats.cycles,
            sanitizer=device.sanitizer_report() if device.sanitizing else None,
        )

    # ------------------------------------------------------------------
    # Helpers shared by the drivers
    # ------------------------------------------------------------------
    @staticmethod
    def grid_for(items: int, block: int) -> int:
        """Blocks needed to cover ``items`` work items."""
        return max(1, (items + block - 1) // block)

    def expect(self, condition: bool, message: str) -> None:
        if not condition:
            raise WorkloadError(f"{self.name} ({self.mode.value}): {message}")
