"""Shared kernel-construction helpers for the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..isa.builder import KernelBuilder, Value
from ..runtime import Device, ExecutionMode
from .datasets.graphs import Graph

#: Sentinel "infinite distance" for traversal workloads.
INF = 1 << 40


@dataclass
class DeviceGraph:
    """Addresses of a CSR graph uploaded to device memory."""

    indptr: int
    indices: int
    weights: int
    num_vertices: int
    num_edges: int


def upload_graph(device: Device, graph: Graph) -> DeviceGraph:
    """Copy a CSR graph into simulated global memory."""
    indptr = device.upload(graph.indptr)
    indices = device.upload(graph.indices) if graph.num_edges else device.alloc(1)
    weights = device.upload(graph.weights) if graph.weights is not None else 0
    return DeviceGraph(
        indptr=indptr,
        indices=indices,
        weights=weights,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    )


def emit_dynamic_launch(
    k: KernelBuilder,
    mode: ExecutionMode,
    child_name: str,
    child_params: Sequence[Value],
    work_items: Value,
    block_size: int,
) -> None:
    """Emit the CDP or DTBL launch sequence for one DFP.

    Fills a parameter buffer with ``child_params`` (int values/registers),
    computes the block count for ``work_items`` threads, and launches
    ``child_name`` with a device kernel (CDP, including the per-launch
    stream creation the paper's Fig. 3a code performs) or an aggregated
    group (DTBL).
    """
    buf = k.get_param_buffer(len(child_params))
    for offset, value in enumerate(child_params):
        k.st(buf, value, offset=offset)
    blocks = k.idiv(k.iadd(work_items, block_size - 1), block_size)
    if mode.uses_dtbl:
        k.launch_agg(child_name, buf, agg=blocks, block=block_size)
    elif mode.uses_cdp:
        k.stream_create()
        k.launch_device(child_name, buf, grid=blocks, block=block_size)
    else:
        raise ValueError(f"mode {mode} has no dynamic launch mechanism")


def emit_dfp(
    k: KernelBuilder,
    mode: ExecutionMode,
    count: Value,
    threshold: int,
    launch_fn: Callable[[], None],
    serial_fn: Callable[[], None],
) -> None:
    """The paper's implementation scheme for one DFP site.

    In flat mode the pocket of parallelism is always serialized within the
    thread.  In CDP/DTBL modes a dynamic launch replaces the serial loop
    whenever the pocket has at least ``threshold`` work items (launching
    tiny pockets costs more than it gains); smaller pockets stay serial.
    """
    if not mode.is_dynamic:
        serial_fn()
        return
    k.if_else(k.ge(count, threshold), launch_fn, serial_fn)
