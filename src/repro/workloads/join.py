"""Relational hash join (Table 4: uniform and gaussian key data).

Hash join in the multi-BSP style of Diamos et al. [12]: the build
relation R is partitioned into hash buckets (CSR layout, built host-side),
then a probe kernel assigns one thread per S tuple.  Scanning the probe
tuple's bucket — comparing keys and emitting joined pairs — is the DFP:
serial per thread in flat mode, a child launch per sufficiently large
bucket in CDP / DTBL.  Gaussian keys concentrate probes on a few long
buckets, the imbalance dynamic launches absorb.

The join result is materialized as (r_value + s_value) pair sums appended
to an output buffer, plus a global checksum, so flat and dynamic variants
can be compared bit-for-bit against a Python reference.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.builder import KernelBuilder
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from .base import Workload
from .common import emit_dfp, emit_dynamic_launch
from .datasets.relations import JoinInput

_NUM_BUCKETS = 64

_P = dict(
    SSIZE=0, SKEYS=1, SVALS=2, BPTR=3, BKEYS=4, BVALS=5, OUTCNT=6, CHECKSUM=7,
)
_C = dict(
    COUNT=0, BSTART=1, BKEYS=2, BVALS=3, SKEY=4, SVAL=5, OUTCNT=6, CHECKSUM=7,
)


def _emit_match(k: KernelBuilder, rkey, rval, skey, sval, outcnt, checksum) -> None:
    with k.if_(k.eq(rkey, skey)):
        k.atom_add(outcnt, 1)
        k.atom_add(checksum, k.iadd(rval, sval))


def build_join_child(block: int) -> KernelFunction:
    """One thread per build-side tuple in the probed bucket."""
    k = KernelBuilder("join_scan")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=_C["COUNT"])
    with k.if_(k.lt(gtid, count)):
        bstart = k.ld(param, offset=_C["BSTART"])
        bkeys = k.ld(param, offset=_C["BKEYS"])
        bvals = k.ld(param, offset=_C["BVALS"])
        skey = k.ld(param, offset=_C["SKEY"])
        sval = k.ld(param, offset=_C["SVAL"])
        outcnt = k.ld(param, offset=_C["OUTCNT"])
        checksum = k.ld(param, offset=_C["CHECKSUM"])
        slot = k.iadd(bstart, gtid)
        rkey = k.ld(k.iadd(bkeys, slot))
        rval = k.ld(k.iadd(bvals, slot))
        _emit_match(k, rkey, rval, skey, sval, outcnt, checksum)
    k.exit()
    return KernelFunction("join_scan", k.build())


def build_join_kernel(
    mode: ExecutionMode, threshold: int, block: int, num_keys: int
) -> KernelFunction:
    """Probe kernel: one thread per S tuple."""
    k = KernelBuilder("join_probe")
    gtid = k.gtid()
    param = k.param()
    ssize = k.ld(param, offset=_P["SSIZE"])
    with k.if_(k.lt(gtid, ssize)):
        skeys = k.ld(param, offset=_P["SKEYS"])
        svals = k.ld(param, offset=_P["SVALS"])
        bptr = k.ld(param, offset=_P["BPTR"])
        bkeys = k.ld(param, offset=_P["BKEYS"])
        bvals = k.ld(param, offset=_P["BVALS"])
        outcnt = k.ld(param, offset=_P["OUTCNT"])
        checksum = k.ld(param, offset=_P["CHECKSUM"])
        skey = k.ld(k.iadd(skeys, gtid))
        sval = k.ld(k.iadd(svals, gtid))
        # Range partitioning preserves key skew: duplicate-heavy keys land
        # in the same long bucket (the Diamos et al. partitioned join).
        bucket = k.idiv(k.imul(skey, _NUM_BUCKETS), num_keys)
        bucket_ptr = k.iadd(bptr, bucket)
        start = k.ld(bucket_ptr)
        end = k.ld(bucket_ptr, offset=1)
        count = k.isub(end, start)

        def serial() -> None:
            with k.for_range(start, end) as slot:
                rkey = k.ld(k.iadd(bkeys, slot))
                rval = k.ld(k.iadd(bvals, slot))
                _emit_match(k, rkey, rval, skey, sval, outcnt, checksum)

        def launch() -> None:
            emit_dynamic_launch(
                k,
                mode,
                "join_scan",
                [count, start, bkeys, bvals, skey, sval, outcnt, checksum],
                count,
                block,
            )

        emit_dfp(k, mode, count, threshold, launch, serial)
    k.exit()
    return KernelFunction("join_probe", k.build())


class JoinWorkload(Workload):
    """Bucketized hash join R ⋈ S on integer keys."""

    app_name = "join"
    parent_block = 128

    def __init__(
        self,
        name: str,
        mode: ExecutionMode,
        data: JoinInput,
        child_threshold: int = 32,
        child_block: int = 32,
    ) -> None:
        super().__init__(name, mode)
        self.data = data
        self.child_threshold = child_threshold
        self.child_block = child_block

    def build_kernels(self) -> List[KernelFunction]:
        kernels = [
            build_join_kernel(
                self.mode, self.child_threshold, self.child_block, self.data.num_keys
            )
        ]
        if self.mode.is_dynamic:
            kernels.append(build_join_child(self.child_block))
        return kernels

    def setup(self, device: Device) -> None:
        data = self.data
        # Host-side build phase: range-partition R into _NUM_BUCKETS buckets.
        buckets = data.r_keys * _NUM_BUCKETS // data.num_keys
        order = np.argsort(buckets, kind="stable")
        bptr = np.zeros(_NUM_BUCKETS + 1, dtype=np.int64)
        np.add.at(bptr, buckets + 1, 1)
        bptr = np.cumsum(bptr)
        self.bptr_addr = device.upload(bptr)
        self.bkeys_addr = device.upload(data.r_keys[order])
        self.bvals_addr = device.upload(data.r_values[order])
        self.skeys_addr = device.upload(data.s_keys)
        self.svals_addr = device.upload(data.s_values)
        self.outcnt_addr = device.alloc(1)
        self.checksum_addr = device.alloc(1)

    def run(self, device: Device) -> None:
        device.launch(
            "join_probe",
            grid=self.grid_for(self.data.s_size, self.parent_block),
            block=self.parent_block,
            params=[
                self.data.s_size,
                self.skeys_addr,
                self.svals_addr,
                self.bptr_addr,
                self.bkeys_addr,
                self.bvals_addr,
                self.outcnt_addr,
                self.checksum_addr,
            ],
        )

    # ------------------------------------------------------------------
    def reference(self) -> tuple:
        data = self.data
        count = 0
        checksum = 0
        by_key: dict = {}
        for key, value in zip(data.r_keys.tolist(), data.r_values.tolist()):
            by_key.setdefault(key, []).append(value)
        for key, value in zip(data.s_keys.tolist(), data.s_values.tolist()):
            for rval in by_key.get(key, ()):
                count += 1
                checksum += rval + value
        return count, checksum

    def check(self, device: Device) -> None:
        count, checksum = self.reference()
        got_count = device.read_int(self.outcnt_addr)
        got_checksum = device.read_int(self.checksum_addr)
        self.expect(got_count == count, f"join count {got_count} != {count}")
        self.expect(got_checksum == checksum, f"join checksum {got_checksum} != {checksum}")
