"""Regular-expression matching (Table 4: DARPA packets, random strings).

GRegex-style [37] DFA matching: the attack signatures are compiled into a
dense anchored DFA table (see :mod:`repro.workloads.regex_engine`) that
lives in global memory.  One parent thread handles one packet; every byte
position is a potential match start that must be verified by walking the
DFA over a bounded window.

The per-position verification sweep is the DFP: serialized inside the
packet's thread in flat mode (with a cheap first-byte prescreen before the
DFA walk), or launched as a child with one thread per position in CDP /
DTBL.  Packet lengths and prefix densities vary widely, so the flat
version is heavily imbalanced; random small-alphabet strings (regx_string)
trigger near-constant prefix hits — the paper's highest-DFP benchmark.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.builder import KernelBuilder, Value
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from .base import Workload
from .common import emit_dfp, emit_dynamic_launch
from .datasets.strings import PacketSet
from .regex_engine import Dfa, build_anchored_dfa

_P = dict(NPKT=0, OFFSETS=1, LENGTHS=2, BYTES=3, TABLE=4, ACCEPT=5, MATCHES=6)
_C = dict(COUNT=0, PSTART=1, BYTES=2, TABLE=3, ACCEPT=4, MATCHES=5, PKT=6, PLEN=7)


def _emit_verify(
    k: KernelBuilder,
    dfa: Dfa,
    pos: Value,
    pstart: Value,
    plen: Value,
    bytes_addr: Value,
    table: Value,
    accept: Value,
    matches_slot,
) -> None:
    """Walk the anchored DFA from ``pos``; count a match if accepted.

    The first symbol is prescreened (a root-table lookup) before the
    bounded verification loop runs, in both flat and child variants.
    """
    state = k.mov(0)
    first = k.ld(k.iadd(bytes_addr, k.iadd(pstart, pos)))
    k.ld(k.iadd(table, first), dst=state)  # root transition = prescreen
    matched = k.mov(0)
    j = k.mov(1)
    limit = k.imin(k.isub(plen, pos), dfa.max_pattern_len)

    def cond():
        live = k.ne(state, 1)
        pending = k.iand(k.lt(j, limit), k.eq(matched, 0))
        return k.iand(live, pending)

    # Check acceptance of the first-step state, then loop.
    k.ld(k.iadd(accept, state), dst=matched)
    with k.while_(cond):
        symbol = k.ld(k.iadd(bytes_addr, k.iadd(pstart, k.iadd(pos, j))))
        row = k.imul(state, dfa.alphabet)
        k.ld(k.iadd(table, k.iadd(row, symbol)), dst=state)
        with k.if_(k.ne(state, 1)):
            k.ld(k.iadd(accept, state), dst=matched)
        k.iadd(j, 1, dst=j)
    with k.if_(k.ne(matched, 0)):
        k.atom_add(matches_slot, 1)


def build_regx_child(dfa: Dfa, block: int) -> KernelFunction:
    """One thread per byte position of the packet."""
    k = KernelBuilder("regx_verify")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=_C["COUNT"])
    with k.if_(k.lt(gtid, count)):
        pstart = k.ld(param, offset=_C["PSTART"])
        bytes_addr = k.ld(param, offset=_C["BYTES"])
        table = k.ld(param, offset=_C["TABLE"])
        accept = k.ld(param, offset=_C["ACCEPT"])
        matches = k.ld(param, offset=_C["MATCHES"])
        pkt = k.ld(param, offset=_C["PKT"])
        plen = k.ld(param, offset=_C["PLEN"])
        _emit_verify(
            k, dfa, gtid, pstart, plen, bytes_addr, table, accept, k.iadd(matches, pkt)
        )
    k.exit()
    return KernelFunction("regx_verify", k.build())


def build_regx_kernel(
    mode: ExecutionMode, dfa: Dfa, threshold: int, block: int
) -> KernelFunction:
    """One thread per packet."""
    k = KernelBuilder("regx_scan")
    gtid = k.gtid()
    param = k.param()
    npkt = k.ld(param, offset=_P["NPKT"])
    with k.if_(k.lt(gtid, npkt)):
        offsets = k.ld(param, offset=_P["OFFSETS"])
        lengths = k.ld(param, offset=_P["LENGTHS"])
        bytes_addr = k.ld(param, offset=_P["BYTES"])
        table = k.ld(param, offset=_P["TABLE"])
        accept = k.ld(param, offset=_P["ACCEPT"])
        matches = k.ld(param, offset=_P["MATCHES"])
        pstart = k.ld(k.iadd(offsets, gtid))
        plen = k.ld(k.iadd(lengths, gtid))

        def serial() -> None:
            with k.for_range(0, plen) as pos:
                _emit_verify(
                    k, dfa, pos, pstart, plen, bytes_addr, table, accept,
                    k.iadd(matches, gtid),
                )

        def launch() -> None:
            emit_dynamic_launch(
                k,
                mode,
                "regx_verify",
                [plen, pstart, bytes_addr, table, accept, matches, gtid, plen],
                plen,
                block,
            )

        emit_dfp(k, mode, plen, threshold, launch, serial)
    k.exit()
    return KernelFunction("regx_scan", k.build())


class RegexWorkload(Workload):
    """Multi-pattern DFA matching over a packet collection."""

    app_name = "regx"
    parent_block = 64

    def __init__(
        self,
        name: str,
        mode: ExecutionMode,
        packets: PacketSet,
        child_threshold: int = 32,
        child_block: int = 32,
    ) -> None:
        super().__init__(name, mode)
        self.packets = packets
        self.child_threshold = child_threshold
        self.child_block = child_block
        self.dfa = build_anchored_dfa(packets.patterns, packets.alphabet)

    def build_kernels(self) -> List[KernelFunction]:
        kernels = [
            build_regx_kernel(self.mode, self.dfa, self.child_threshold, self.child_block)
        ]
        if self.mode.is_dynamic:
            kernels.append(build_regx_child(self.dfa, self.child_block))
        return kernels

    def setup(self, device: Device) -> None:
        packets = self.packets
        lengths = np.array([len(p) for p in packets.packets], dtype=np.int64)
        offsets = np.zeros(len(lengths), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        blob = np.concatenate(packets.packets)
        self.offsets_addr = device.upload(offsets)
        self.lengths_addr = device.upload(lengths)
        self.bytes_addr = device.upload(blob)
        # Remap the anchored alphabet: regx_string uses lowercase letters,
        # darpa full bytes; the table is indexed by raw symbol either way.
        self.table_addr = device.upload(self.dfa.transitions)
        self.accept_addr = device.upload(self.dfa.accepting)
        self.matches_addr = device.alloc(packets.count)

    def run(self, device: Device) -> None:
        device.launch(
            "regx_scan",
            grid=self.grid_for(self.packets.count, self.parent_block),
            block=self.parent_block,
            params=[
                self.packets.count,
                self.offsets_addr,
                self.lengths_addr,
                self.bytes_addr,
                self.table_addr,
                self.accept_addr,
                self.matches_addr,
            ],
        )

    # ------------------------------------------------------------------
    def reference_counts(self) -> np.ndarray:
        return np.array(
            [
                sum(
                    1
                    for start in range(len(packet))
                    if self.dfa.matches_at(packet, start)
                )
                for packet in self.packets.packets
            ],
            dtype=np.int64,
        )

    def check(self, device: Device) -> None:
        got = device.download_ints(self.matches_addr, self.packets.count)
        expected = self.reference_counts()
        mismatches = int((got != expected).sum())
        self.expect(
            mismatches == 0, f"{mismatches} per-packet match counts differ"
        )
