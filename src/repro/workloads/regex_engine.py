"""A small pattern-matching engine: patterns → NFA → dense DFA tables.

This is the substrate the REGX benchmark consumes (the paper's GRegex
engine [37] is a DFA-table GPU matcher).  Patterns support a practical
regex subset:

* literal characters;
* ``.`` — any symbol in the alphabet;
* ``[abc]`` / ``[a-z0-9]`` — character classes (with ``^`` negation);
* ``\\.`` etc. — escapes for the metacharacters.

Each pattern compiles to a per-position symbol-set NFA; the engine then
runs textbook subset construction to a dense ``states × alphabet``
transition table plus an accepting-state bitmap, laid out for upload into
simulated global memory.  Two entry points:

* :func:`build_anchored_dfa` — matches any pattern starting exactly at
  the walk's first symbol (what the per-position verifier kernels use;
  state 1 is a trap state, so walks stop early on mismatch);
* :func:`build_ac_dfa` — the unanchored scanner (``Σ* (p1|p2|...)``,
  Aho-Corasick-equivalent for literal patterns), used by the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..errors import WorkloadError

#: One NFA position: (pattern index, offset within the pattern).
_Position = Tuple[int, int]


@dataclass
class Dfa:
    """Dense-table DFA over the byte alphabet [0, alphabet)."""

    #: transitions[state * alphabet + symbol] -> next state
    transitions: "object"
    #: 1 where the state signals at least one pattern match
    accepting: "object"
    alphabet: int
    num_states: int
    #: Length of the longest pattern (bounds verification windows).
    max_pattern_len: int
    #: True when built anchored (state 1 is the trap state).
    anchored: bool = True

    def step(self, state: int, symbol: int) -> int:
        return int(self.transitions[state * self.alphabet + symbol])

    def matches_at(self, text: Sequence[int], start: int) -> bool:
        """Anchored check: does any pattern match starting at ``start``?"""
        state = 0
        limit = min(len(text), start + self.max_pattern_len)
        for pos in range(start, limit):
            state = self.step(state, int(text[pos]))
            if self.anchored and state == 1:
                return False
            if self.accepting[state]:
                return True
        return False


def parse_pattern(pattern: str, alphabet: int) -> List[FrozenSet[int]]:
    """Compile one pattern into per-position symbol sets."""
    if not pattern:
        raise WorkloadError("empty pattern")
    full = frozenset(range(alphabet))
    sets: List[FrozenSet[int]] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\":
            if i + 1 >= len(pattern):
                raise WorkloadError(f"pattern {pattern!r}: dangling escape")
            sets.append(frozenset({ord(pattern[i + 1])}))
            i += 2
        elif ch == ".":
            sets.append(full)
            i += 1
        elif ch == "[":
            end = pattern.find("]", i + 1)
            if end < 0:
                raise WorkloadError(f"pattern {pattern!r}: unterminated class")
            body = pattern[i + 1 : end]
            negate = body.startswith("^")
            if negate:
                body = body[1:]
            if not body:
                raise WorkloadError(f"pattern {pattern!r}: empty class")
            members = set()
            j = 0
            while j < len(body):
                if j + 2 < len(body) and body[j + 1] == "-":
                    lo, hi = ord(body[j]), ord(body[j + 2])
                    if lo > hi:
                        raise WorkloadError(f"pattern {pattern!r}: bad range")
                    members.update(range(lo, hi + 1))
                    j += 3
                else:
                    members.add(ord(body[j]))
                    j += 1
            chosen = full - frozenset(members) if negate else frozenset(members)
            if not chosen:
                raise WorkloadError(f"pattern {pattern!r}: class matches nothing")
            sets.append(frozenset(chosen))
            i = end + 1
        else:
            sets.append(frozenset({ord(ch)}))
            i += 1
    for symbol_set in sets:
        if any(s >= alphabet or s < 0 for s in symbol_set):
            raise WorkloadError(
                f"pattern {pattern!r} uses symbols outside the alphabet"
            )
    return sets


def _determinize(
    patterns: Sequence[str], alphabet: int, unanchored: bool
) -> Dfa:
    """Subset construction over the per-position NFA."""
    import numpy as np

    if not patterns:
        raise WorkloadError("need at least one pattern")
    compiled = [parse_pattern(p, alphabet) for p in patterns]

    start: FrozenSet[_Position] = frozenset(
        (idx, 0) for idx in range(len(compiled))
    )

    def is_accepting(positions: FrozenSet[_Position]) -> bool:
        return any(offset == len(compiled[idx]) for idx, offset in positions)

    def advance(positions: FrozenSet[_Position], symbol: int) -> FrozenSet[_Position]:
        result = set()
        for idx, offset in positions:
            if offset < len(compiled[idx]) and symbol in compiled[idx][offset]:
                result.add((idx, offset + 1))
        if unanchored:
            # Σ* self-loop: a fresh match can begin at every symbol.
            for idx in range(len(compiled)):
                if symbol in compiled[idx][0]:
                    result.add((idx, 1))
                result.add((idx, 0))
        return frozenset(result)

    dead: FrozenSet[_Position] = frozenset()
    # State 0 is the start; state 1 the dead/trap state (kept even for
    # unanchored automata, where it is unreachable, so layouts match).
    state_ids: Dict[FrozenSet[_Position], int] = {start: 0, dead: 1}
    order: List[FrozenSet[_Position]] = [start, dead]
    worklist = [start]
    transitions: List[List[int]] = []

    while worklist:
        positions = worklist.pop()
        sid = state_ids[positions]
        while len(transitions) <= sid:
            transitions.append([1] * alphabet)
        row = transitions[sid]
        if positions == dead:
            continue
        for symbol in range(alphabet):
            nxt = advance(positions, symbol)
            nid = state_ids.get(nxt)
            if nid is None:
                nid = len(order)
                state_ids[nxt] = nid
                order.append(nxt)
                worklist.append(nxt)
            row[symbol] = nid
    while len(transitions) < len(order):
        transitions.append([1] * alphabet)

    num_states = len(order)
    table = np.asarray(transitions, dtype=np.int64).reshape(num_states * alphabet)
    accepting = np.asarray(
        [1 if is_accepting(positions) else 0 for positions in order], dtype=np.int64
    )
    return Dfa(
        transitions=table,
        accepting=accepting,
        alphabet=alphabet,
        num_states=num_states,
        max_pattern_len=max(len(c) for c in compiled),
        anchored=not unanchored,
    )


def build_anchored_dfa(patterns: Sequence[str], alphabet: int = 256) -> Dfa:
    """DFA matching any pattern anchored at the first walked symbol."""
    return _determinize(patterns, alphabet, unanchored=False)


def build_ac_dfa(patterns: Sequence[str], alphabet: int = 256) -> Dfa:
    """Unanchored scanner DFA (``Σ* (p1|p2|...)``): a single forward pass
    reports a match at every position where some pattern *ends*."""
    return _determinize(patterns, alphabet, unanchored=True)


def count_matches(dfa: Dfa, text: Sequence[int], patterns: Sequence[str]) -> int:
    """Reference matcher: number of positions where a pattern starts
    (evaluated with bounded anchored walks, like the verifier kernels)."""
    count = 0
    for start in range(len(text)):
        if dfa.matches_at(text, start):
            count += 1
    return count
