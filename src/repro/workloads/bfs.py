"""Breadth-first search (Table 4: citation network, USA road, cage15).

Level-synchronous BFS with an atomically built next frontier.  The flat
variant expands each frontier vertex's neighbor list serially within its
thread; the CDP / DTBL variants launch a child (kernel / aggregated group)
with one thread per outgoing edge whenever a vertex's degree reaches the
launch threshold — the paper's Fig. 2b pattern, where expansion TBs
coalesce onto the vertex-expansion kernel.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from ..isa.builder import KernelBuilder
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from .base import Workload
from .common import INF, emit_dfp, emit_dynamic_launch, upload_graph
from .datasets.graphs import Graph

#: Parameter layout of the top-level kernel (word offsets).
_P_FSIZE, _P_FRONTIER, _P_INDPTR, _P_INDICES, _P_DIST, _P_OUT, _P_COUNT, _P_LEVEL = range(8)
#: Parameter layout of the expansion child.
_C_COUNT, _C_ESTART, _C_INDICES, _C_DIST, _C_OUT, _C_CNT, _C_LEVEL = range(7)


def _emit_visit(k: KernelBuilder, u, dist, out, count, level) -> None:
    """Claim vertex ``u`` (CAS on its distance) and enqueue it if won."""
    old = k.atom_cas(k.iadd(dist, u), INF, level)
    with k.if_(k.eq(old, INF)):
        slot = k.atom_add(count, 1)
        k.st(k.iadd(out, slot), u)


def build_bfs_child(block: int) -> KernelFunction:
    """One thread per edge of the expanded vertex."""
    k = KernelBuilder("bfs_expand")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=_C_COUNT)
    with k.if_(k.lt(gtid, count)):
        estart = k.ld(param, offset=_C_ESTART)
        indices = k.ld(param, offset=_C_INDICES)
        dist = k.ld(param, offset=_C_DIST)
        out = k.ld(param, offset=_C_OUT)
        cnt = k.ld(param, offset=_C_CNT)
        level = k.ld(param, offset=_C_LEVEL)
        u = k.ld(k.iadd(indices, k.iadd(estart, gtid)))
        _emit_visit(k, u, dist, out, cnt, level)
    k.exit()
    return KernelFunction("bfs_expand", k.build())


def build_bfs_warp_kernel() -> KernelFunction:
    """Warp-level cooperative expansion (the Merrill et al. [23] flavour
    the paper's flat BFS baseline uses).

    One *warp* per frontier vertex: the lanes stride over the vertex's
    neighbor list together, so a high-degree vertex is expanded by 32
    lanes instead of one — warp-level load balance without any dynamic
    launch.  Available through ``BfsWorkload(expansion="warp")`` as the
    alternative flat baseline (see the Fig. 6/11 ablation bench).
    """
    k = KernelBuilder("bfs_level")
    gtid = k.gtid()
    param = k.param()
    fsize = k.ld(param, offset=_P_FSIZE)
    warp_id = k.ishr(gtid, 5)
    lane = k.iand(gtid, 31)
    with k.if_(k.lt(warp_id, fsize)):
        frontier = k.ld(param, offset=_P_FRONTIER)
        indptr = k.ld(param, offset=_P_INDPTR)
        indices = k.ld(param, offset=_P_INDICES)
        dist = k.ld(param, offset=_P_DIST)
        out = k.ld(param, offset=_P_OUT)
        cnt = k.ld(param, offset=_P_COUNT)
        level = k.ld(param, offset=_P_LEVEL)
        v = k.ld(k.iadd(frontier, warp_id))
        vptr = k.iadd(indptr, v)
        start = k.ld(vptr)
        end = k.ld(vptr, offset=1)
        e = k.iadd(start, lane)
        with k.while_(lambda: k.lt(e, end)):
            u = k.ld(k.iadd(indices, e))
            _emit_visit(k, u, dist, out, cnt, level)
            k.iadd(e, 32, dst=e)
    k.exit()
    return KernelFunction("bfs_level", k.build())


def build_bfs_kernel(mode: ExecutionMode, threshold: int, block: int) -> KernelFunction:
    """Top-level BFS kernel: one thread per frontier vertex."""
    k = KernelBuilder("bfs_level")
    gtid = k.gtid()
    param = k.param()
    fsize = k.ld(param, offset=_P_FSIZE)
    with k.if_(k.lt(gtid, fsize)):
        frontier = k.ld(param, offset=_P_FRONTIER)
        indptr = k.ld(param, offset=_P_INDPTR)
        indices = k.ld(param, offset=_P_INDICES)
        dist = k.ld(param, offset=_P_DIST)
        out = k.ld(param, offset=_P_OUT)
        cnt = k.ld(param, offset=_P_COUNT)
        level = k.ld(param, offset=_P_LEVEL)
        v = k.ld(k.iadd(frontier, gtid))
        vptr = k.iadd(indptr, v)
        start = k.ld(vptr)
        end = k.ld(vptr, offset=1)
        degree = k.isub(end, start)

        def serial() -> None:
            with k.for_range(start, end) as e:
                u = k.ld(k.iadd(indices, e))
                _emit_visit(k, u, dist, out, cnt, level)

        def launch() -> None:
            emit_dynamic_launch(
                k,
                mode,
                "bfs_expand",
                [degree, start, indices, dist, out, cnt, level],
                degree,
                block,
            )

        emit_dfp(k, mode, degree, threshold, launch, serial)
    k.exit()
    return KernelFunction("bfs_level", k.build())


class BfsWorkload(Workload):
    """Level-synchronous BFS over a CSR graph."""

    app_name = "bfs"
    parent_block = 128

    def __init__(
        self,
        name: str,
        mode: ExecutionMode,
        graph: Graph,
        source: int = 0,
        child_threshold: int = 32,
        child_block: int = 32,
        expansion: str = "thread",
    ) -> None:
        """``expansion`` selects the flat baseline: "thread" (serial
        per-thread neighbor loops), "warp" (cooperative warp-level
        expansion) or "persistent" (Gupta et al. persistent threads over a
        software worklist); the latter two are FLAT-mode-only baselines."""
        super().__init__(name, mode)
        if expansion not in ("thread", "warp", "persistent"):
            raise ValueError(f"unknown expansion strategy {expansion!r}")
        if expansion != "thread" and mode.is_dynamic:
            raise ValueError(f"{expansion}-expansion is a flat-only baseline")
        self.graph = graph
        self.source = source
        self.child_threshold = child_threshold
        self.child_block = child_block
        self.expansion = expansion

    # ------------------------------------------------------------------
    def build_kernels(self) -> List[KernelFunction]:
        if self.expansion == "warp":
            return [build_bfs_warp_kernel()]
        if self.expansion == "persistent":
            # The worklist kernel bakes the queue descriptor's address
            # into its IR, so it is built (and registered) lazily by
            # ``_run_persistent`` once ``setup`` has allocated the queue.
            return []
        kernels = [build_bfs_kernel(self.mode, self.child_threshold, self.child_block)]
        if self.mode.is_dynamic:
            kernels.append(build_bfs_child(self.child_block))
        return kernels

    def setup(self, device: Device) -> None:
        graph = self.graph
        self.dgraph = upload_graph(device, graph)
        n = graph.num_vertices
        dist0 = np.full(n, INF, dtype=np.int64)
        dist0[self.source] = 0
        self.dist_addr = device.upload(dist0)
        if self.expansion == "persistent":
            import dataclasses

            from ..isa.taskqueue import QueueLayout

            self.inflag_addr = device.upload(np.zeros(n, dtype=np.int64))
            shape = QueueLayout(0, max(4 * n, 1024), record_words=1)
            base = int(device.upload(shape.init_image()))
            self.queue = dataclasses.replace(shape, base=base)
            return
        self.frontier_a = device.alloc(n + 1)
        self.frontier_b = device.alloc(n + 1)
        self.count_addr = device.alloc(1)
        device.write_int(self.frontier_a, self.source)

    def _run_persistent(self, device: Device) -> None:
        """Single launch of resident workers over the software worklist."""
        from ..isa.taskqueue import OFF_PUBLISHED, OFF_RESERVED
        from .persistent import build_bfs_persistent_kernel

        queue = self.queue
        device.register(build_bfs_persistent_kernel(queue))
        # Publish the source vertex from the host: payload, then the
        # slot's sequence word, then the counters (the device is idle,
        # so these are ordinary host initialization).
        slot = queue.slot(0)
        device.write_int(slot + 1, self.source)
        device.write_int(slot, 1)  # sequence: ticket 0 published
        device.write_int(queue.field(OFF_RESERVED), 1)
        device.write_int(queue.field(OFF_PUBLISHED), 1)
        device.write_int(self.inflag_addr + self.source, 1)
        # Enough resident workers to fill a good share of the machine
        # without drowning the worklist in spinners.
        device.launch(
            "bfs_persistent",
            grid=13,
            block=64,
            params=[
                self.dgraph.indptr,
                self.dgraph.indices,
                self.dist_addr,
                self.inflag_addr,
            ],
        )
        device.synchronize()

    def run(self, device: Device) -> None:
        if self.expansion == "persistent":
            self._run_persistent(device)
            return
        fsize = 1
        level = 1
        fin, fout = self.frontier_a, self.frontier_b
        while fsize:
            device.write_int(self.count_addr, 0)
            threads = fsize * 32 if self.expansion == "warp" else fsize
            device.launch(
                "bfs_level",
                grid=self.grid_for(threads, self.parent_block),
                block=self.parent_block,
                params=[
                    fsize,
                    fin,
                    self.dgraph.indptr,
                    self.dgraph.indices,
                    self.dist_addr,
                    fout,
                    self.count_addr,
                    level,
                ],
            )
            device.synchronize()
            fsize = device.read_int(self.count_addr)
            fin, fout = fout, fin
            level += 1
            self.expect(level < 10_000, "BFS failed to converge")

    # ------------------------------------------------------------------
    def reference_distances(self) -> np.ndarray:
        graph = self.graph
        dist = np.full(graph.num_vertices, INF, dtype=np.int64)
        dist[self.source] = 0
        queue = deque([self.source])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if dist[u] == INF:
                    dist[u] = dist[v] + 1
                    queue.append(int(u))
        return dist

    def check(self, device: Device) -> None:
        got = device.download_ints(self.dist_addr, self.graph.num_vertices)
        expected = self.reference_distances()
        mismatches = int((got != expected).sum())
        self.expect(mismatches == 0, f"{mismatches} BFS distances differ from reference")
