"""Product recommendation — item-based collaborative filtering (Table 4:
MovieLens data).

The similarity-accumulation skeleton of item-based CF (Nadungodage et
al. [25]): for every item ``i``, iterate over the users who rated ``i``
and accumulate ``r_ui * r_uj`` contributions across each such user's other
rated items.  One parent thread per item; the per-item sweep over its
raters is the DFP.  Item popularity is power-law distributed, so rater
lists range from empty to hundreds of users — and the dynamically
launched children are *coarse-grained* (each child thread still loops
over one user's rating list), which is why the paper sees only small
occupancy/waiting-time changes for pre.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.builder import KernelBuilder, Value
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from .base import Workload
from .common import emit_dfp, emit_dynamic_launch
from .datasets.ratings import RatingSet

_P = dict(
    NITEMS=0, IPTR=1, IUSERS=2, IRATINGS=3, UPTR=4, URATINGS=5, SIM=6,
)
_C = dict(
    COUNT=0, RSTART=1, IUSERS=2, IRATINGS=3, UPTR=4, URATINGS=5, SIMSLOT=6,
)


def _emit_user_sweep(
    k: KernelBuilder,
    rater_slot: Value,
    iusers: Value,
    iratings: Value,
    uptr: Value,
    uratings: Value,
    sim_slot,
) -> None:
    """Accumulate r_ui * r_uj over every rating j of the rater at ``slot``."""
    user = k.ld(k.iadd(iusers, rater_slot))
    r_ui = k.ld(k.iadd(iratings, rater_slot))
    user_ptr = k.iadd(uptr, user)
    ustart = k.ld(user_ptr)
    uend = k.ld(user_ptr, offset=1)
    acc = k.mov(0)
    with k.for_range(ustart, uend) as j:
        r_uj = k.ld(k.iadd(uratings, j))
        k.iadd(acc, k.imul(r_ui, r_uj), dst=acc)
    k.atom_add(sim_slot, acc)


def build_pre_child(block: int) -> KernelFunction:
    """One thread per rater of the item."""
    k = KernelBuilder("pre_sweep")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=_C["COUNT"])
    with k.if_(k.lt(gtid, count)):
        rstart = k.ld(param, offset=_C["RSTART"])
        iusers = k.ld(param, offset=_C["IUSERS"])
        iratings = k.ld(param, offset=_C["IRATINGS"])
        uptr = k.ld(param, offset=_C["UPTR"])
        uratings = k.ld(param, offset=_C["URATINGS"])
        sim_slot = k.ld(param, offset=_C["SIMSLOT"])
        _emit_user_sweep(
            k, k.iadd(rstart, gtid), iusers, iratings, uptr, uratings, sim_slot
        )
    k.exit()
    return KernelFunction("pre_sweep", k.build())


def build_pre_kernel(mode: ExecutionMode, threshold: int, block: int) -> KernelFunction:
    """One thread per item."""
    k = KernelBuilder("pre_items")
    gtid = k.gtid()
    param = k.param()
    nitems = k.ld(param, offset=_P["NITEMS"])
    with k.if_(k.lt(gtid, nitems)):
        iptr = k.ld(param, offset=_P["IPTR"])
        iusers = k.ld(param, offset=_P["IUSERS"])
        iratings = k.ld(param, offset=_P["IRATINGS"])
        uptr = k.ld(param, offset=_P["UPTR"])
        uratings = k.ld(param, offset=_P["URATINGS"])
        sim = k.ld(param, offset=_P["SIM"])
        item_ptr = k.iadd(iptr, gtid)
        rstart = k.ld(item_ptr)
        rend = k.ld(item_ptr, offset=1)
        raters = k.isub(rend, rstart)
        sim_slot = k.iadd(sim, gtid)

        def serial() -> None:
            with k.for_range(rstart, rend) as slot:
                _emit_user_sweep(k, slot, iusers, iratings, uptr, uratings, sim_slot)

        def launch() -> None:
            emit_dynamic_launch(
                k,
                mode,
                "pre_sweep",
                [raters, rstart, iusers, iratings, uptr, uratings, sim_slot],
                raters,
                block,
            )

        emit_dfp(k, mode, raters, threshold, launch, serial)
    k.exit()
    return KernelFunction("pre_items", k.build())


class RecommendationWorkload(Workload):
    """Item-based CF similarity accumulation."""

    app_name = "pre"
    parent_block = 64

    def __init__(
        self,
        name: str,
        mode: ExecutionMode,
        ratings: RatingSet,
        child_threshold: int = 32,
        child_block: int = 32,
    ) -> None:
        super().__init__(name, mode)
        self.ratings = ratings
        self.child_threshold = child_threshold
        self.child_block = child_block

    def build_kernels(self) -> List[KernelFunction]:
        kernels = [build_pre_kernel(self.mode, self.child_threshold, self.child_block)]
        if self.mode.is_dynamic:
            kernels.append(build_pre_child(self.child_block))
        return kernels

    def setup(self, device: Device) -> None:
        data = self.ratings
        self.iptr_addr = device.upload(data.item_indptr)
        self.iusers_addr = device.upload(data.item_users)
        self.iratings_addr = device.upload(data.item_ratings)
        self.uptr_addr = device.upload(data.user_indptr)
        self.uratings_addr = device.upload(data.user_ratings)
        self.sim_addr = device.alloc(data.num_items)

    def run(self, device: Device) -> None:
        device.launch(
            "pre_items",
            grid=self.grid_for(self.ratings.num_items, self.parent_block),
            block=self.parent_block,
            params=[
                self.ratings.num_items,
                self.iptr_addr,
                self.iusers_addr,
                self.iratings_addr,
                self.uptr_addr,
                self.uratings_addr,
                self.sim_addr,
            ],
        )

    # ------------------------------------------------------------------
    def reference_similarity(self) -> np.ndarray:
        data = self.ratings
        sim = np.zeros(data.num_items, dtype=np.int64)
        for item in range(data.num_items):
            lo, hi = data.item_indptr[item], data.item_indptr[item + 1]
            for slot in range(lo, hi):
                user = data.item_users[slot]
                r_ui = data.item_ratings[slot]
                ulo, uhi = data.user_indptr[user], data.user_indptr[user + 1]
                sim[item] += int(r_ui) * int(data.user_ratings[ulo:uhi].sum())
        return sim

    def check(self, device: Device) -> None:
        got = device.download_ints(self.sim_addr, self.ratings.num_items)
        expected = self.reference_similarity()
        mismatches = int((got != expected).sum())
        self.expect(mismatches == 0, f"{mismatches} similarity sums differ")
