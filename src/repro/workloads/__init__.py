"""The paper's benchmark applications (Table 4), reimplemented for the
simulator in flat / CDP / DTBL variants, plus their synthetic datasets.
"""

from .base import Workload, WorkloadResult
from .registry import BENCHMARKS, get_benchmark, benchmark_names

__all__ = [
    "BENCHMARKS",
    "Workload",
    "WorkloadResult",
    "benchmark_names",
    "get_benchmark",
]
