"""Greedy graph coloring (Table 4: citation, graph500, cage15).

Jones–Plassmann style: every round, each uncolored vertex checks whether
it holds the highest random priority among its uncolored neighbors
(phase A, the DFP — the neighbor scan is serialized per thread in flat
mode and launched as a child in CDP / DTBL), and locally-maximal vertices
take the round's color (phase B, a uniform kernel).  Rounds repeat until
every vertex is colored.

For balanced-degree inputs (graph500) the flat implementation is already
well balanced, so the dynamic variants mostly add launch overhead — the
paper's explanation for clr_graph500's slowdown.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.builder import KernelBuilder
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from .base import Workload
from .common import emit_dfp, emit_dynamic_launch, upload_graph
from .datasets.graphs import Graph

_UNCOLORED = -1

_P = dict(WSIZE=0, WORKLIST=1, INDPTR=2, INDICES=3, COLORS=4, PRIO=5, FLAGS=6)
_C = dict(COUNT=0, ESTART=1, INDICES=2, COLORS=3, PRIO=4, FLAGS=5, MYPRIO=6, V=7)
_B = dict(WSIZE=0, WORKLIST=1, COLORS=2, FLAGS=3, OUT=4, CNT=5, ROUND=6)


def _emit_check(k: KernelBuilder, u, colors, prio, flags, my_prio, v) -> None:
    """Clear v's local-max flag if neighbor u is uncolored w/ higher priority."""
    ucolor = k.ld(k.iadd(colors, u))
    uprio = k.ld(k.iadd(prio, u))
    higher = k.iand(k.eq(ucolor, _UNCOLORED), k.gt(uprio, my_prio))
    with k.if_(higher):
        k.st(k.iadd(flags, v), 0)


def build_clr_child(block: int) -> KernelFunction:
    """One thread per neighbor of the checked vertex."""
    k = KernelBuilder("clr_check")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=_C["COUNT"])
    with k.if_(k.lt(gtid, count)):
        estart = k.ld(param, offset=_C["ESTART"])
        indices = k.ld(param, offset=_C["INDICES"])
        colors = k.ld(param, offset=_C["COLORS"])
        prio = k.ld(param, offset=_C["PRIO"])
        flags = k.ld(param, offset=_C["FLAGS"])
        my_prio = k.ld(param, offset=_C["MYPRIO"])
        v = k.ld(param, offset=_C["V"])
        u = k.ld(k.iadd(indices, k.iadd(estart, gtid)))
        _emit_check(k, u, colors, prio, flags, my_prio, v)
    k.exit()
    return KernelFunction("clr_check", k.build())


def build_clr_phase_a(mode: ExecutionMode, threshold: int, block: int) -> KernelFunction:
    """Phase A: decide local priority maxima over the uncolored worklist."""
    k = KernelBuilder("clr_phase_a")
    gtid = k.gtid()
    param = k.param()
    wsize = k.ld(param, offset=_P["WSIZE"])
    with k.if_(k.lt(gtid, wsize)):
        worklist = k.ld(param, offset=_P["WORKLIST"])
        indptr = k.ld(param, offset=_P["INDPTR"])
        indices = k.ld(param, offset=_P["INDICES"])
        colors = k.ld(param, offset=_P["COLORS"])
        prio = k.ld(param, offset=_P["PRIO"])
        flags = k.ld(param, offset=_P["FLAGS"])
        v = k.ld(k.iadd(worklist, gtid))
        k.st(k.iadd(flags, v), 1)
        my_prio = k.ld(k.iadd(prio, v))
        vptr = k.iadd(indptr, v)
        start = k.ld(vptr)
        end = k.ld(vptr, offset=1)
        degree = k.isub(end, start)

        def serial() -> None:
            with k.for_range(start, end) as e:
                u = k.ld(k.iadd(indices, e))
                _emit_check(k, u, colors, prio, flags, my_prio, v)

        def launch() -> None:
            emit_dynamic_launch(
                k,
                mode,
                "clr_check",
                [degree, start, indices, colors, prio, flags, my_prio, v],
                degree,
                block,
            )

        emit_dfp(k, mode, degree, threshold, launch, serial)
    k.exit()
    return KernelFunction("clr_phase_a", k.build())


def build_clr_phase_b() -> KernelFunction:
    """Phase B: color flagged vertices, rebuild the uncolored worklist."""
    k = KernelBuilder("clr_phase_b")
    gtid = k.gtid()
    param = k.param()
    wsize = k.ld(param, offset=_B["WSIZE"])
    with k.if_(k.lt(gtid, wsize)):
        worklist = k.ld(param, offset=_B["WORKLIST"])
        colors = k.ld(param, offset=_B["COLORS"])
        flags = k.ld(param, offset=_B["FLAGS"])
        out = k.ld(param, offset=_B["OUT"])
        cnt = k.ld(param, offset=_B["CNT"])
        round_color = k.ld(param, offset=_B["ROUND"])
        v = k.ld(k.iadd(worklist, gtid))
        flag = k.ld(k.iadd(flags, v))
        k.if_else(
            k.ne(flag, 0),
            lambda: k.st(k.iadd(colors, v), round_color),
            lambda: k.st(k.iadd(out, k.atom_add(cnt, 1)), v),
        )
    k.exit()
    return KernelFunction("clr_phase_b", k.build())


class ColoringWorkload(Workload):
    """Iterative independent-set coloring."""

    app_name = "clr"
    parent_block = 128

    def __init__(
        self,
        name: str,
        mode: ExecutionMode,
        graph: Graph,
        child_threshold: int = 32,
        child_block: int = 32,
        seed: int = 53,
    ) -> None:
        super().__init__(name, mode)
        self.graph = graph
        self.child_threshold = child_threshold
        self.child_block = child_block
        rng = np.random.default_rng(seed)
        self.priorities = rng.permutation(graph.num_vertices).astype(np.int64)

    def build_kernels(self) -> List[KernelFunction]:
        kernels = [
            build_clr_phase_a(self.mode, self.child_threshold, self.child_block),
            build_clr_phase_b(),
        ]
        if self.mode.is_dynamic:
            kernels.append(build_clr_child(self.child_block))
        return kernels

    def setup(self, device: Device) -> None:
        graph = self.graph
        n = graph.num_vertices
        self.dgraph = upload_graph(device, graph)
        self.colors_addr = device.upload(np.full(n, _UNCOLORED, dtype=np.int64))
        self.prio_addr = device.upload(self.priorities)
        self.flags_addr = device.alloc(n)
        self.worklist_a = device.upload(np.arange(n, dtype=np.int64))
        self.worklist_b = device.alloc(n)
        self.count_addr = device.alloc(1)

    def run(self, device: Device) -> None:
        wsize = self.graph.num_vertices
        round_color = 0
        wl_in, wl_out = self.worklist_a, self.worklist_b
        while wsize:
            grid = self.grid_for(wsize, self.parent_block)
            device.launch(
                "clr_phase_a",
                grid=grid,
                block=self.parent_block,
                params=[
                    wsize,
                    wl_in,
                    self.dgraph.indptr,
                    self.dgraph.indices,
                    self.colors_addr,
                    self.prio_addr,
                    self.flags_addr,
                ],
            )
            device.synchronize()
            device.write_int(self.count_addr, 0)
            device.launch(
                "clr_phase_b",
                grid=grid,
                block=self.parent_block,
                params=[
                    wsize,
                    wl_in,
                    self.colors_addr,
                    self.flags_addr,
                    wl_out,
                    self.count_addr,
                    round_color,
                ],
            )
            device.synchronize()
            new_size = device.read_int(self.count_addr)
            self.expect(new_size < wsize, "coloring made no progress")
            wsize = new_size
            wl_in, wl_out = wl_out, wl_in
            round_color += 1
        self.rounds = round_color

    # ------------------------------------------------------------------
    def reference_colors(self) -> np.ndarray:
        """The same deterministic Jones-Plassmann rounds in pure Python."""
        graph = self.graph
        n = graph.num_vertices
        colors = np.full(n, _UNCOLORED, dtype=np.int64)
        prio = self.priorities
        worklist = list(range(n))
        round_color = 0
        while worklist:
            chosen = []
            remaining = []
            for v in worklist:
                is_max = True
                for u in graph.neighbors(v):
                    if colors[u] == _UNCOLORED and prio[u] > prio[v]:
                        is_max = False
                        break
                (chosen if is_max else remaining).append(v)
            for v in chosen:
                colors[v] = round_color
            worklist = remaining
            round_color += 1
        return colors

    def check(self, device: Device) -> None:
        got = device.download_ints(self.colors_addr, self.graph.num_vertices)
        expected = self.reference_colors()
        mismatches = int((got != expected).sum())
        self.expect(mismatches == 0, f"{mismatches} colors differ from reference")
        # And the defining invariant: adjacent uncolored-pair-free.
        for v in range(self.graph.num_vertices):
            for u in self.graph.neighbors(v):
                if int(u) != v:
                    self.expect(
                        got[v] != got[u] or got[v] == _UNCOLORED,
                        f"adjacent vertices {v},{u} share color {got[v]}",
                    )
