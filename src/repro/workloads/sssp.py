"""Single-source shortest path (Table 4: citation, flight, cage15).

Frontier-driven Bellman-Ford: each round relaxes all outgoing edges of the
frontier vertices with an atomic min on the tentative distances; vertices
whose distance improved are enqueued once (claim flag) for the next round.
The neighbor-relaxation loop is the DFP: serial per thread in flat mode,
a dynamically launched child (one thread per edge) in CDP / DTBL.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ..isa.builder import KernelBuilder
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from .base import Workload
from .common import INF, emit_dfp, emit_dynamic_launch, upload_graph
from .datasets.graphs import Graph

_P = dict(
    FSIZE=0, FRONTIER=1, INDPTR=2, INDICES=3, WEIGHTS=4, DIST=5, INFLAG=6,
    OUT=7, COUNT=8,
)
_C = dict(
    COUNT=0, ESTART=1, INDICES=2, WEIGHTS=3, DIST=4, INFLAG=5, OUT=6, CNT=7,
    BASEDIST=8,
)


def _emit_relax(k: KernelBuilder, u, new_dist, dist, inflag, out, count) -> None:
    """Relax edge into ``u``; enqueue ``u`` once per round if improved."""
    old = k.atom_min(k.iadd(dist, u), new_dist)
    with k.if_(k.lt(new_dist, old)):
        claimed = k.atom_cas(k.iadd(inflag, u), 0, 1)
        with k.if_(k.eq(claimed, 0)):
            slot = k.atom_add(count, 1)
            k.st(k.iadd(out, slot), u)


def build_sssp_child(block: int) -> KernelFunction:
    """One thread per outgoing edge of the relaxed vertex."""
    k = KernelBuilder("sssp_relax")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=_C["COUNT"])
    with k.if_(k.lt(gtid, count)):
        estart = k.ld(param, offset=_C["ESTART"])
        indices = k.ld(param, offset=_C["INDICES"])
        weights = k.ld(param, offset=_C["WEIGHTS"])
        dist = k.ld(param, offset=_C["DIST"])
        inflag = k.ld(param, offset=_C["INFLAG"])
        out = k.ld(param, offset=_C["OUT"])
        cnt = k.ld(param, offset=_C["CNT"])
        base = k.ld(param, offset=_C["BASEDIST"])
        e = k.iadd(estart, gtid)
        u = k.ld(k.iadd(indices, e))
        w = k.ld(k.iadd(weights, e))
        _emit_relax(k, u, k.iadd(base, w), dist, inflag, out, cnt)
    k.exit()
    return KernelFunction("sssp_relax", k.build())


def build_sssp_kernel(mode: ExecutionMode, threshold: int, block: int) -> KernelFunction:
    k = KernelBuilder("sssp_round")
    gtid = k.gtid()
    param = k.param()
    fsize = k.ld(param, offset=_P["FSIZE"])
    with k.if_(k.lt(gtid, fsize)):
        frontier = k.ld(param, offset=_P["FRONTIER"])
        indptr = k.ld(param, offset=_P["INDPTR"])
        indices = k.ld(param, offset=_P["INDICES"])
        weights = k.ld(param, offset=_P["WEIGHTS"])
        dist = k.ld(param, offset=_P["DIST"])
        inflag = k.ld(param, offset=_P["INFLAG"])
        out = k.ld(param, offset=_P["OUT"])
        cnt = k.ld(param, offset=_P["COUNT"])
        v = k.ld(k.iadd(frontier, gtid))
        k.st(k.iadd(inflag, v), 0)  # v may be re-enqueued by a later round
        vptr = k.iadd(indptr, v)
        start = k.ld(vptr)
        end = k.ld(vptr, offset=1)
        degree = k.isub(end, start)
        dv = k.ld(k.iadd(dist, v))

        def serial() -> None:
            with k.for_range(start, end) as e:
                u = k.ld(k.iadd(indices, e))
                w = k.ld(k.iadd(weights, e))
                _emit_relax(k, u, k.iadd(dv, w), dist, inflag, out, cnt)

        def launch() -> None:
            emit_dynamic_launch(
                k,
                mode,
                "sssp_relax",
                [degree, start, indices, weights, dist, inflag, out, cnt, dv],
                degree,
                block,
            )

        emit_dfp(k, mode, degree, threshold, launch, serial)
    k.exit()
    return KernelFunction("sssp_round", k.build())


class SsspWorkload(Workload):
    """Frontier Bellman-Ford SSSP over a weighted CSR graph."""

    app_name = "sssp"
    parent_block = 128

    def __init__(
        self,
        name: str,
        mode: ExecutionMode,
        graph: Graph,
        source: int = 0,
        child_threshold: int = 32,
        child_block: int = 32,
    ) -> None:
        super().__init__(name, mode)
        assert graph.weights is not None, "SSSP needs an edge-weighted graph"
        self.graph = graph
        self.source = source
        self.child_threshold = child_threshold
        self.child_block = child_block

    def build_kernels(self) -> List[KernelFunction]:
        kernels = [build_sssp_kernel(self.mode, self.child_threshold, self.child_block)]
        if self.mode.is_dynamic:
            kernels.append(build_sssp_child(self.child_block))
        return kernels

    def setup(self, device: Device) -> None:
        graph = self.graph
        self.dgraph = upload_graph(device, graph)
        n = graph.num_vertices
        dist0 = np.full(n, INF, dtype=np.int64)
        dist0[self.source] = 0
        self.dist_addr = device.upload(dist0)
        self.inflag_addr = device.upload(np.zeros(n, dtype=np.int64))
        capacity = max(4 * n, 1024)
        self.frontier_a = device.alloc(capacity)
        self.frontier_b = device.alloc(capacity)
        self.capacity = capacity
        self.count_addr = device.alloc(1)
        device.write_int(self.frontier_a, self.source)

    def run(self, device: Device) -> None:
        fsize = 1
        rounds = 0
        fin, fout = self.frontier_a, self.frontier_b
        while fsize:
            device.write_int(self.count_addr, 0)
            device.launch(
                "sssp_round",
                grid=self.grid_for(fsize, self.parent_block),
                block=self.parent_block,
                params=[
                    fsize,
                    fin,
                    self.dgraph.indptr,
                    self.dgraph.indices,
                    self.dgraph.weights,
                    self.dist_addr,
                    self.inflag_addr,
                    fout,
                    self.count_addr,
                ],
            )
            device.synchronize()
            fsize = device.read_int(self.count_addr)
            self.expect(fsize <= self.capacity, "frontier overflow")
            fin, fout = fout, fin
            rounds += 1
            self.expect(rounds < 10_000, "SSSP failed to converge")

    # ------------------------------------------------------------------
    def reference_distances(self) -> np.ndarray:
        graph = self.graph
        dist = np.full(graph.num_vertices, INF, dtype=np.int64)
        dist[self.source] = 0
        heap = [(0, self.source)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            weights = graph.edge_weights(v)
            for u, w in zip(graph.neighbors(v), weights):
                nd = d + int(w)
                if nd < dist[u]:
                    dist[u] = nd
                    heapq.heappush(heap, (nd, int(u)))
        return dist

    def check(self, device: Device) -> None:
        got = device.download_ints(self.dist_addr, self.graph.num_vertices)
        expected = self.reference_distances()
        mismatches = int((got != expected).sum())
        self.expect(mismatches == 0, f"{mismatches} SSSP distances differ from reference")
