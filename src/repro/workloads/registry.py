"""The benchmark registry: Table 4's application/input configurations.

Each entry maps a benchmark id (e.g. ``bfs_citation``) to a factory that
builds the corresponding :class:`~repro.workloads.base.Workload` for a
given execution mode.  ``scale`` < 1.0 shrinks the dataset for fast test
runs; 1.0 is the default evaluation size.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import WorkloadError
from ..runtime import ExecutionMode
from .base import Workload

#: name -> factory(mode, scale) -> Workload
BENCHMARKS: Dict[str, Callable[[ExecutionMode, float], Workload]] = {}


def register_benchmark(name: str):
    """Decorator: register a ``(mode, scale) -> Workload`` factory."""

    def wrap(factory):
        if name in BENCHMARKS:
            raise WorkloadError(f"duplicate benchmark {name!r}")
        BENCHMARKS[name] = factory
        return factory

    return wrap


def get_benchmark(name: str, mode: ExecutionMode, scale: float = 1.0) -> Workload:
    try:
        factory = BENCHMARKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(BENCHMARKS))}"
        ) from None
    return factory(mode, scale)


def benchmark_names() -> List[str]:
    return sorted(BENCHMARKS)


def _scaled(base: int, scale: float, minimum: int = 32) -> int:
    return max(minimum, int(base * scale))


# ----------------------------------------------------------------------
# Table 4 configurations
# ----------------------------------------------------------------------

@register_benchmark("bfs_citation")
def _bfs_citation(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .bfs import BfsWorkload
    from .datasets.graphs import citation_network

    return BfsWorkload("bfs_citation", mode, citation_network(n=_scaled(1200, scale)))


@register_benchmark("bfs_usa_road")
def _bfs_usa_road(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .bfs import BfsWorkload
    from .datasets.graphs import usa_road

    return BfsWorkload("bfs_usa_road", mode, usa_road(n=_scaled(1600, scale)))


@register_benchmark("bfs_cage15")
def _bfs_cage15(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .bfs import BfsWorkload
    from .datasets.graphs import cage15_like

    return BfsWorkload("bfs_cage15", mode, cage15_like(n=_scaled(1100, scale)))


@register_benchmark("sssp_citation")
def _sssp_citation(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .sssp import SsspWorkload
    from .datasets.graphs import citation_network

    return SsspWorkload(
        "sssp_citation", mode, citation_network(n=_scaled(900, scale), weighted=True)
    )


@register_benchmark("sssp_flight")
def _sssp_flight(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .sssp import SsspWorkload
    from .datasets.graphs import flight_network

    return SsspWorkload(
        "sssp_flight", mode, flight_network(n=_scaled(700, scale), weighted=True)
    )


@register_benchmark("sssp_cage15")
def _sssp_cage15(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .sssp import SsspWorkload
    from .datasets.graphs import cage15_like

    return SsspWorkload(
        "sssp_cage15", mode, cage15_like(n=_scaled(900, scale), weighted=True)
    )


@register_benchmark("clr_citation")
def _clr_citation(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .clr import ColoringWorkload
    from .datasets.graphs import citation_network

    return ColoringWorkload(
        "clr_citation", mode, citation_network(n=_scaled(1000, scale), seed=3)
    )


@register_benchmark("clr_graph500")
def _clr_graph500(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .clr import ColoringWorkload
    from .datasets.graphs import graph500_like

    return ColoringWorkload("clr_graph500", mode, graph500_like(n=_scaled(1000, scale)))


@register_benchmark("clr_cage15")
def _clr_cage15(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .clr import ColoringWorkload
    from .datasets.graphs import cage15_like

    return ColoringWorkload("clr_cage15", mode, cage15_like(n=_scaled(900, scale), seed=5))


@register_benchmark("amr")
def _amr(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .amr import AmrWorkload
    from .datasets.mesh import amr_grid

    side = max(8, int(28 * (scale**0.5)))
    return AmrWorkload("amr", mode, amr_grid(side=side))


@register_benchmark("bht")
def _bht(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .bht import BarnesHutWorkload
    from .datasets.points import random_points

    return BarnesHutWorkload("bht", mode, random_points(n=_scaled(700, scale)))


@register_benchmark("regx_darpa")
def _regx_darpa(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .regx import RegexWorkload
    from .datasets.strings import darpa_packets

    return RegexWorkload("regx_darpa", mode, darpa_packets(n=_scaled(700, scale)))


@register_benchmark("regx_string")
def _regx_string(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .regx import RegexWorkload
    from .datasets.strings import random_strings

    return RegexWorkload("regx_string", mode, random_strings(n=_scaled(800, scale)))


@register_benchmark("pre_movielens")
def _pre_movielens(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .pre import RecommendationWorkload
    from .datasets.ratings import movielens_like

    return RecommendationWorkload(
        "pre_movielens",
        mode,
        movielens_like(
            num_users=_scaled(420, scale),
            num_items=_scaled(512, scale, 16),
            avg_ratings=12,
        ),
    )


@register_benchmark("join_uniform")
def _join_uniform(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .join import JoinWorkload
    from .datasets.relations import join_tables

    return JoinWorkload(
        "join_uniform",
        mode,
        join_tables("uniform", r_size=_scaled(1600, scale), s_size=_scaled(1200, scale)),
    )


@register_benchmark("join_gaussian")
def _join_gaussian(mode: ExecutionMode, scale: float = 1.0) -> Workload:
    from .join import JoinWorkload
    from .datasets.relations import join_tables

    return JoinWorkload(
        "join_gaussian",
        mode,
        join_tables("gaussian", r_size=_scaled(1600, scale), s_size=_scaled(1200, scale)),
    )
