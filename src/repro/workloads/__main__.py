"""Command-line entry point: run one benchmark and print its counters.

Usage::

    python -m repro.workloads bfs_citation --mode dtbl
    python -m repro.workloads join_gaussian --mode flat cdp dtbl --scale 0.5
    python -m repro.workloads bht --jobs 3          # one worker per mode
    python -m repro.workloads --list

Like the harness, runs go through :mod:`repro.exec`: the requested modes
become :class:`~repro.exec.JobSpec`\\ s (built by ``JobSpec.from_args``
from the shared flag set in :mod:`repro.exec.cli`), execute in parallel
under ``--jobs``, and results persist in the on-disk cache
(``--cache-dir``, default ``.repro-cache/``) unless ``--no-cache``.
"""

from __future__ import annotations

import argparse
import os
import sys

import json

from ..exec import (
    JobSpec,
    ResultCache,
    SweepEngine,
    add_execution_flags,
    add_job_flags,
    run_job,
    validate_execution_flags,
)
from ..exec.pool import _resumable
from ..runtime import ExecutionMode
from ..sim import profiler as _profiler
from ..sim.stats import SimStats
from .registry import benchmark_names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Run one Table 4 benchmark on the simulated GPU.",
    )
    parser.add_argument("benchmark", nargs="?", help="benchmark id (see --list)")
    parser.add_argument("--mode", nargs="*", default=["flat", "cdp", "dtbl"],
                        choices=[mode.value for mode in ExecutionMode],
                        help="execution modes (default: flat cdp dtbl)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the reference-result check")
    add_job_flags(parser)
    add_execution_flags(parser, profile_json=True)
    parser.add_argument("--list", action="store_true", help="list benchmarks")
    args = parser.parse_args(argv)

    if args.list or not args.benchmark:
        for name in benchmark_names():
            print(name)
        return 0
    checkpoint_dir = validate_execution_flags(parser, args)

    profiler = None
    if args.profile:
        # Only in-process simulations are observed: pin one worker and
        # bypass the cache so every mode actually simulates here.
        args.jobs = 1
        args.cache = False
        profiler = _profiler.activate()
    if args.sanitize:
        # The env switch reaches every GPU the workload constructs; a
        # finding raises WorkloadError out of the run with the report.
        os.environ["REPRO_SANITIZE"] = "1"

    cache = ResultCache(args.cache_dir) if args.cache else None
    jobs = [
        JobSpec.from_args(
            args,
            args.benchmark,
            ExecutionMode.parse(mode_name),
            checkpoint_dir=checkpoint_dir,
        )
        for mode_name in args.mode
    ]

    payloads = {}
    missing = []
    for job in jobs:
        key = job.fingerprint()
        payload = cache.load(key) if cache is not None else None
        if payload is None:
            missing.append(job)
        else:
            payloads[key] = payload
    if missing:
        if args.jobs > 1 and len(missing) > 1:
            engine = SweepEngine(max_workers=args.jobs)
            fresh = engine.run(missing)
        else:
            fresh = [
                run_job(_resumable(job)).to_payload() for job in missing
            ]
        for job, payload in zip(missing, fresh):
            key = job.fingerprint()
            payloads[key] = payload
            if cache is not None:
                cache.store(key, payload)

    baseline = None
    for job in jobs:
        stats = SimStats.from_dict(payloads[job.fingerprint()]["stats"])
        if baseline is None:
            baseline = stats.cycles
        print(f"== {args.benchmark} [{job.mode.value}]")
        print(f"   cycles            {stats.cycles:,}")
        print(f"   speedup vs first  {baseline / stats.cycles:.2f}x")
        for key, value in stats.summary().items():
            if key == "cycles":
                continue
            if isinstance(value, float):
                print(f"   {key:18s}{value:.3f}")
            else:
                print(f"   {key:18s}{value}")
    if profiler is not None:
        _profiler.deactivate()
        print()
        print(profiler.report())
        if args.profile_json:
            with open(args.profile_json, "w", encoding="utf-8") as fh:
                json.dump(profiler.to_dict(), fh, indent=2)
            print(f"[profile] wrote {args.profile_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
