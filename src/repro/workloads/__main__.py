"""Command-line entry point: run one benchmark and print its counters.

Usage::

    python -m repro.workloads bfs_citation --mode dtbl
    python -m repro.workloads join_gaussian --mode flat cdp dtbl --scale 0.5
    python -m repro.workloads --list
"""

from __future__ import annotations

import argparse
import sys

from ..runtime import ExecutionMode
from .registry import benchmark_names, get_benchmark


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Run one Table 4 benchmark on the simulated GPU.",
    )
    parser.add_argument("benchmark", nargs="?", help="benchmark id (see --list)")
    parser.add_argument("--mode", nargs="*", default=["flat", "cdp", "dtbl"],
                        help="execution modes (flat cdp cdpi dtbl dtbli)")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale")
    parser.add_argument("--latency-scale", type=float, default=0.25,
                        help="Table 3 launch-latency scale")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the reference-result check")
    parser.add_argument("--list", action="store_true", help="list benchmarks")
    args = parser.parse_args(argv)

    if args.list or not args.benchmark:
        for name in benchmark_names():
            print(name)
        return 0

    baseline = None
    for mode_name in args.mode:
        mode = ExecutionMode.from_name(mode_name)
        workload = get_benchmark(args.benchmark, mode, args.scale)
        result = workload.execute(
            latency_scale=args.latency_scale, verify=not args.no_verify
        )
        stats = result.stats
        if baseline is None:
            baseline = stats.cycles
        print(f"== {args.benchmark} [{mode.value}]")
        print(f"   cycles            {stats.cycles:,}")
        print(f"   speedup vs first  {baseline / stats.cycles:.2f}x")
        for key, value in stats.summary().items():
            if key == "cycles":
                continue
            if isinstance(value, float):
                print(f"   {key:18s}{value:.3f}")
            else:
                print(f"   {key:18s}{value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
