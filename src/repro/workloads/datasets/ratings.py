"""MovieLens-like rating data for the product-recommendation benchmark.

Item popularity is power-law distributed (a few blockbusters, a long
tail), so the per-item rater lists that drive the dynamically launched
similarity computations vary from a handful to hundreds of users — the
paper's coarse-grained DFP case (average ≈ 1500 threads per launch).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np


@dataclass
class RatingSet:
    """User-item ratings in both item-major and user-major CSR forms."""

    num_users: int
    num_items: int
    #: item -> (indptr, user ids, ratings)
    item_indptr: np.ndarray
    item_users: np.ndarray
    item_ratings: np.ndarray
    #: user -> (indptr, item ids, ratings)
    user_indptr: np.ndarray
    user_items: np.ndarray
    user_ratings: np.ndarray

    @property
    def num_ratings(self) -> int:
        return len(self.item_users)


def movielens_like(
    num_users: int = 360,
    num_items: int = 160,
    avg_ratings: int = 18,
    popularity_exponent: float = 0.65,
    seed: int = 43,
) -> RatingSet:
    """Power-law item popularity, uniform users.

    ``popularity_exponent`` controls the skew of the item popularity
    (higher = heavier blockbusters); the default keeps the most popular
    item's rater list within an order of magnitude of the median, as in
    the rating-count distribution of the MovieLens catalogues.
    """
    rng = np.random.default_rng(seed)
    popularity = 1.0 / np.arange(1, num_items + 1) ** popularity_exponent
    popularity /= popularity.sum()
    pairs = set()
    total = num_users * avg_ratings
    while len(pairs) < total:
        users = rng.integers(0, num_users, size=total)
        items = rng.choice(num_items, size=total, p=popularity)
        pairs.update(zip(users.tolist(), items.tolist()))
    pair_list = sorted(pairs)[:total]
    users = np.array([u for u, _ in pair_list], dtype=np.int64)
    items = np.array([i for _, i in pair_list], dtype=np.int64)
    ratings = rng.integers(1, 6, size=len(pair_list)).astype(np.int64)

    def csr(keys: np.ndarray, vals_a: np.ndarray, vals_b: np.ndarray, nkeys: int):
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        indptr = np.zeros(nkeys + 1, dtype=np.int64)
        np.add.at(indptr, sorted_keys + 1, 1)
        indptr = np.cumsum(indptr)
        return indptr, vals_a[order], vals_b[order]

    item_indptr, item_users, item_ratings = csr(items, users, ratings, num_items)
    user_indptr, user_items, user_ratings = csr(users, items, ratings, num_users)
    return RatingSet(
        num_users=num_users,
        num_items=num_items,
        item_indptr=item_indptr,
        item_users=item_users,
        item_ratings=item_ratings,
        user_indptr=user_indptr,
        user_items=user_items,
        user_ratings=user_ratings,
    )
