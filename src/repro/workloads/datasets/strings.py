"""Packet / string inputs for the regular-expression benchmark.

* :func:`darpa_packets` stands in for the DARPA intrusion-detection
  network traces: structured packets where only some protocols contain
  pattern-prefix bytes, so candidate-match density varies a lot between
  packets.
* :func:`random_strings` stands in for the paper's random string
  collection: a small alphabet makes pattern prefixes frequent, so almost
  every string spawns dynamic verification work (the paper's highest-DFP
  benchmark, regx_string).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class PacketSet:
    """Byte strings encoded as int arrays plus the patterns to match."""

    packets: List[np.ndarray]
    patterns: List[str]
    alphabet: int

    @property
    def count(self) -> int:
        return len(self.packets)


_PROTOCOL_HEADERS = [b"GET ", b"POST", b"HELO", b"USER", b"\x00\x01\x02\x03"]


def darpa_packets(
    n: int = 360, min_len: int = 48, max_len: int = 200, seed: int = 37
) -> PacketSet:
    """Structured packets: a protocol header followed by payload bytes.

    Payloads of the text protocols embed occurrences of attack-signature
    fragments with protocol-dependent probability, giving per-packet
    candidate counts from zero to dozens.
    """
    rng = np.random.default_rng(seed)
    patterns = ["USER root", "GET /etc/"]
    packets: List[np.ndarray] = []
    for _ in range(n):
        proto = rng.integers(0, len(_PROTOCOL_HEADERS))
        header = _PROTOCOL_HEADERS[proto]
        length = int(rng.integers(min_len, max_len))
        body = rng.integers(32, 127, size=length).astype(np.int64)
        if proto < 4:  # text protocols: seed signature fragments
            for _ in range(int(rng.integers(0, 14))):
                frag = patterns[int(rng.integers(0, len(patterns)))][: int(rng.integers(1, 9))]
                pos = int(rng.integers(0, max(1, length - len(frag))))
                body[pos : pos + len(frag)] = np.frombuffer(
                    frag.encode(), dtype=np.uint8
                ).astype(np.int64)
        head = np.frombuffer(header, dtype=np.uint8).astype(np.int64)
        packets.append(np.concatenate([head, body]))
    return PacketSet(packets=packets, patterns=patterns, alphabet=256)


def random_strings(
    n: int = 320, min_len: int = 64, max_len: int = 220, alphabet: int = 8, seed: int = 41
) -> PacketSet:
    """Small-alphabet random strings: pattern prefixes occur constantly."""
    rng = np.random.default_rng(seed)
    letters = "abcdefghijklmnop"[:alphabet]
    patterns = [letters[0] + letters[1] + letters[2] + letters[1], letters[2] + letters[0] * 2]
    packets = [
        rng.integers(ord("a"), ord("a") + alphabet, size=int(rng.integers(min_len, max_len))).astype(np.int64)
        for _ in range(n)
    ]
    # The DFA's symbol space is the byte range the packets actually use
    # (lowercase ASCII), not the logical letter count.
    return PacketSet(packets=packets, patterns=patterns, alphabet=128)
