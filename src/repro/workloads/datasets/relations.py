"""Relations for the hash-join benchmark.

The paper evaluates join on uniformly distributed and gaussian
(skewed) key data.  Uniform keys yield small, even hash buckets; gaussian
keys concentrate probes on a few hot buckets with long match lists — the
imbalance that dynamic launches absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class JoinInput:
    """Build relation R and probe relation S, keys plus payload values."""

    r_keys: np.ndarray
    r_values: np.ndarray
    s_keys: np.ndarray
    s_values: np.ndarray
    num_keys: int

    @property
    def r_size(self) -> int:
        return len(self.r_keys)

    @property
    def s_size(self) -> int:
        return len(self.s_keys)


def join_tables(
    distribution: str = "uniform",
    r_size: int = 1600,
    s_size: int = 1200,
    num_keys: int = 400,
    seed: int = 47,
) -> JoinInput:
    """Generate R ⋈ S input with the requested key distribution."""
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        r_keys = rng.integers(0, num_keys, size=r_size)
        s_keys = rng.integers(0, num_keys, size=s_size)
    elif distribution == "gaussian":
        center = num_keys / 2.0
        sigma = num_keys / 14.0
        r_keys = np.clip(rng.normal(center, sigma, r_size), 0, num_keys - 1).astype(int)
        s_keys = np.clip(rng.normal(center, sigma, s_size), 0, num_keys - 1).astype(int)
    else:
        raise ValueError(f"unknown key distribution {distribution!r}")
    return JoinInput(
        r_keys=r_keys.astype(np.int64),
        r_values=rng.integers(0, 1000, size=r_size).astype(np.int64),
        s_keys=s_keys.astype(np.int64),
        s_values=rng.integers(0, 1000, size=s_size).astype(np.int64),
        num_keys=num_keys,
    )
