"""Synthetic graph generators (CSR) for BFS, SSSP and graph coloring.

Each generator imitates the degree-distribution *shape* of the paper's
input (Table 4) at simulator-friendly scale:

* :func:`citation_network` — DIMACS citation network: power-law degrees
  with pronounced hubs (heavy warp imbalance in flat implementations);
* :func:`usa_road` — USA road network: planar lattice, degree 2–4, large
  diameter (DFP rarely exceeds the launch threshold);
* :func:`cage15_like` — cage15 DNA-electrophoresis matrix: moderate,
  fairly uniform degrees but *widely scattered* neighbor ids (memory
  divergence dominates in flat implementations);
* :func:`graph500_like` — Graph500 logn20 as the paper characterizes it
  for coloring: balanced vertex degrees ("relatively small variance");
* :func:`flight_network` — global flight network: most airports have very
  few routes, a handful of hubs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class Graph:
    """A directed graph in CSR form, optionally edge-weighted."""

    indptr: np.ndarray
    indices: np.ndarray
    weights: Optional[np.ndarray] = None
    name: str = "graph"

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        assert self.weights is not None
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def validate(self) -> None:
        assert self.indptr[0] == 0
        assert self.indptr[-1] == len(self.indices)
        assert (np.diff(self.indptr) >= 0).all()
        if self.num_edges:
            assert self.indices.min() >= 0
            assert self.indices.max() < self.num_vertices
        if self.weights is not None:
            assert len(self.weights) == self.num_edges


def _csr_from_adjacency(
    adjacency: List[np.ndarray],
    name: str,
    rng: Optional[np.random.Generator] = None,
    weighted: bool = False,
) -> Graph:
    n = len(adjacency)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for v, neighbors in enumerate(adjacency):
        indptr[v + 1] = indptr[v] + len(neighbors)
    indices = np.concatenate([np.asarray(a, dtype=np.int64) for a in adjacency]) if n else np.empty(0, np.int64)
    weights = None
    if weighted:
        assert rng is not None
        weights = rng.integers(1, 16, size=len(indices)).astype(np.int64)
    graph = Graph(indptr=indptr, indices=indices, weights=weights, name=name)
    graph.validate()
    return graph


def citation_network(
    n: int = 1200, attach: int = 3, seed: int = 7, weighted: bool = False
) -> Graph:
    """Preferential-attachment graph: power-law in-degree with hubs.

    Edges are symmetrized so traversals reach the whole component, like a
    citation network viewed as an undirected co-citation structure.
    """
    rng = np.random.default_rng(seed)
    targets: List[List[int]] = [[] for _ in range(n)]
    # Repeated-nodes preferential attachment (Barabási–Albert flavour).
    repeated: List[int] = [0]
    for v in range(1, n):
        m = min(attach, v)
        chosen = set()
        while len(chosen) < m:
            if rng.random() < 0.75 and repeated:
                candidate = repeated[rng.integers(0, len(repeated))]
            else:
                candidate = int(rng.integers(0, v))
            if candidate != v:
                chosen.add(candidate)
        for u in chosen:
            targets[v].append(u)
            targets[u].append(v)
            repeated.extend((u, v))
    adjacency = [np.unique(np.asarray(a, dtype=np.int64)) for a in targets]
    return _csr_from_adjacency(adjacency, "citation", rng, weighted)


def usa_road(n: int = 1600, seed: int = 11, weighted: bool = False) -> Graph:
    """Road-network stand-in: a jittered 2D lattice, degree 2–4."""
    rng = np.random.default_rng(seed)
    side = int(np.sqrt(n))
    n = side * side
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for y in range(side):
        for x in range(side):
            v = y * side + x
            if x + 1 < side and rng.random() < 0.97:
                u = v + 1
                adjacency[v].append(u)
                adjacency[u].append(v)
            if y + 1 < side and rng.random() < 0.97:
                u = v + side
                adjacency[v].append(u)
                adjacency[u].append(v)
    arrays = [np.unique(np.asarray(a, dtype=np.int64)) for a in adjacency]
    return _csr_from_adjacency(arrays, "usa_road", rng, weighted)


def cage15_like(
    n: int = 1100, degree_lo: int = 12, degree_hi: int = 40, seed: int = 13,
    weighted: bool = False,
) -> Graph:
    """cage15-style sparse matrix: moderate degrees, scattered columns.

    Neighbor ids are drawn from the whole id range so that sibling threads
    in a flat warp touch far-apart vertex data (non-coalesced), while a
    dynamically launched child reads its CSR slice contiguously.
    """
    rng = np.random.default_rng(seed)
    half: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        deg = max(1, int(rng.integers(degree_lo, degree_hi + 1)) // 2)
        neighbors = rng.choice(n, size=deg, replace=False)
        for u in neighbors[neighbors != v]:
            half[v].append(int(u))
            half[int(u)].append(v)
        # Keep the graph connected enough for traversals.
        if v:
            half[v].append(v - 1)
            half[v - 1].append(v)
    adjacency = [np.unique(np.asarray(a, dtype=np.int64)) for a in half]
    return _csr_from_adjacency(adjacency, "cage15", rng, weighted)


def graph500_like(n: int = 1100, degree: int = 16, seed: int = 17) -> Graph:
    """Balanced-degree graph for coloring (the paper's graph500 behaviour:
    small degree variance, so flat implementations are already balanced)."""
    rng = np.random.default_rng(seed)
    half: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        deg = max(1, int(rng.integers(degree - 2, degree + 3)) // 2)
        neighbors = rng.choice(n, size=deg, replace=False)
        for u in neighbors[neighbors != v]:
            half[v].append(int(u))
            half[int(u)].append(v)
    adjacency = [np.unique(np.asarray(a, dtype=np.int64)) for a in half]
    return _csr_from_adjacency(adjacency, "graph500", rng, False)


def flight_network(
    n: int = 700, hubs: Optional[int] = None, seed: int = 23, weighted: bool = False
) -> Graph:
    """Flight network: most airports have 1–3 routes to regional hubs.

    The paper notes that for sssp_flight "most of the vertices in the
    input graphs have very low vertex degree" so DFP rarely occurs; the
    generator keeps even the hub degrees mostly below the warp-size launch
    threshold (regional hubs, not mega-hubs).
    """
    rng = np.random.default_rng(seed)
    if hubs is None:
        hubs = max(8, n // 14)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    hub_ids = set(int(h) for h in rng.choice(n, size=hubs, replace=False))
    hub_arr = np.fromiter(hub_ids, dtype=np.int64)
    # Sparse hub backbone.
    for hub in hub_ids:
        for other in rng.choice(hub_arr, size=2, replace=False):
            if int(other) != hub:
                adjacency[hub].append(int(other))
                adjacency[int(other)].append(hub)
    for v in range(n):
        if v in hub_ids:
            continue
        # Each airport connects to 1-2 nearby hubs; a few to a random peer.
        for hub in rng.choice(hub_arr, size=int(rng.integers(1, 3)), replace=False):
            adjacency[v].append(int(hub))
            adjacency[int(hub)].append(v)
        if rng.random() < 0.15:
            peer = int(rng.integers(0, n))
            if peer != v:
                adjacency[v].append(peer)
                adjacency[peer].append(v)
    arrays = [np.unique(np.asarray(a, dtype=np.int64)) for a in adjacency]
    return _csr_from_adjacency(arrays, "flight", rng, weighted)
