"""Random point sets for the Barnes–Hut tree benchmark.

Points are drawn from a mixture of gaussian clusters (as in typical n-body
initial conditions), which makes quadtree leaf populations uneven — the
source of dynamically formed parallelism in BHT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PointSet:
    """2D bodies with masses for the Barnes–Hut benchmark."""

    x: np.ndarray
    y: np.ndarray
    mass: np.ndarray

    @property
    def count(self) -> int:
        return len(self.x)


def random_points(n: int = 1400, clusters: int = 6, seed: int = 31) -> PointSet:
    """Gaussian-mixture point cloud in the unit square."""
    rng = np.random.default_rng(seed)
    xs = []
    ys = []
    per = n // clusters
    for c in range(clusters):
        cx, cy = rng.uniform(0.15, 0.85, size=2)
        sigma = rng.uniform(0.02, 0.12)
        count = per if c < clusters - 1 else n - per * (clusters - 1)
        xs.append(np.clip(rng.normal(cx, sigma, count), 0.0, 1.0))
        ys.append(np.clip(rng.normal(cy, sigma, count), 0.0, 1.0))
    return PointSet(
        x=np.concatenate(xs),
        y=np.concatenate(ys),
        mass=rng.uniform(0.5, 2.0, n),
    )
