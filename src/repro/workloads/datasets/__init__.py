"""Synthetic dataset generators standing in for the paper's inputs.

Each generator is seeded and deterministic, and reproduces the *property*
of the original input that the paper's result depends on — degree
distribution shape, key skew, match density — at a size the pure-Python
simulator can run in seconds (see DESIGN.md, "Substitutions").
"""

from .graphs import (
    Graph,
    cage15_like,
    citation_network,
    flight_network,
    graph500_like,
    usa_road,
)
from .mesh import amr_grid
from .points import random_points
from .ratings import movielens_like
from .relations import join_tables
from .strings import darpa_packets, random_strings

__all__ = [
    "Graph",
    "amr_grid",
    "cage15_like",
    "citation_network",
    "darpa_packets",
    "flight_network",
    "graph500_like",
    "join_tables",
    "movielens_like",
    "random_points",
    "random_strings",
    "usa_road",
]
