"""AMR input: a 2D energy field with hot spots (combustion-simulation
stand-in, cf. the paper's Kuhl thermodynamic-explosion dataset).

Cells whose energy exceeds the refinement threshold are recursively
subdivided; hot spots make refinement spatially clustered and highly
imbalanced across threads — exactly the irregularity AMR exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class AmrGrid:
    """Initial level-0 grid for adaptive mesh refinement."""

    #: Cell energies, flattened row-major (side * side values).
    energy: np.ndarray
    side: int
    #: Refine a cell when its energy exceeds this.
    threshold: float
    #: Energy decay factor per refinement level.
    decay: float
    #: Maximum refinement depth below the root grid.
    max_depth: int

    @property
    def num_cells(self) -> int:
        return self.side * self.side


def amr_grid(
    side: int = 28,
    hot_spots: int = 5,
    threshold: float = 1.2,
    decay: float = 0.52,
    max_depth: int = 2,
    seed: int = 29,
) -> AmrGrid:
    """Generate a level-0 grid whose energy field has gaussian hot spots."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:side, 0:side]
    energy = np.full((side, side), 0.08)
    for _ in range(hot_spots):
        cx, cy = rng.uniform(0, side, size=2)
        amplitude = rng.uniform(2.0, 5.0)
        sigma = rng.uniform(1.0, float(side) / 7.0)
        energy += amplitude * np.exp(-((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * sigma**2))
    return AmrGrid(
        energy=energy.ravel().astype(np.float64),
        side=side,
        threshold=threshold,
        decay=decay,
        max_depth=max_depth,
    )
