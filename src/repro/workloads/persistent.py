"""Persistent-threads BFS: the Section 6 related-work baseline.

Gupta et al. [15] launch just enough thread blocks to fill the GPU and
keep them resident for the kernel's lifetime, pulling dynamically
generated tasks from a globally visible software worklist — the software
alternative to DTBL's hardware-managed thread-block launching.

This implementation is an asynchronous single-kernel BFS built on the
shared MPMC queue primitives in :mod:`repro.isa.taskqueue` (the same
ring the ``persistent`` / ``persistent-async`` execution modes use for
block-tasks, here with one-word vertex records and per-thread claims):

* a producer reserves a ticket, waits on the slot sequence, stores the
  vertex and publishes (``emit_enqueue``); the per-slot sequence word —
  not the global publish count — is what orders the payload against a
  claim, because concurrent producers publish out of ticket order.
* each persistent thread loops :func:`~repro.isa.taskqueue
  .emit_dequeue_async`: an optimistic ticket claim, a spin on the slot
  sequence, and dead-ticket recovery once the queue quiesces.
* relaxation is *monotone* (``atom_min`` plus a queued-flag claim, the
  asynchronous Bellman-Ford formulation): out-of-order processing may
  improve a distance repeatedly, re-enqueueing the vertex, and converges
  to exact BFS hop counts.  A CAS-once visit (as in the level-synchronous
  variants) would lock in wrong distances under asynchrony.
* quiescence = ``FINISHED == PUBLISHED`` **with FINISHED read first**:
  any in-flight item is already counted by the later publish read while
  its finish increment cannot yet be visible to the earlier read, so a
  stale-publish race can never declare termination early.

The queue descriptor is allocated by the workload's ``setup`` and its
address baked into the kernel as immediates, so the kernel is built (and
registered) lazily by ``BfsWorkload._run_persistent`` rather than from
``build_kernels``.  Exposed through ``BfsWorkload(expansion=
"persistent")`` (FLAT mode only) and compared against DTBL in
``benchmarks/test_ablation_persistent.py``.
"""

from __future__ import annotations

from ..isa.builder import KernelBuilder
from ..isa.taskqueue import (
    OFF_FINISHED,
    QueueLayout,
    emit_dequeue_async,
    emit_enqueue,
)
from ..sim.kernel import KernelFunction

#: Parameter layout (word offsets).  The worklist lives in the queue
#: descriptor whose address is baked into the kernel, not passed here.
PARAMS = dict(INDPTR=0, INDICES=1, DIST=2, INFLAG=3)


def build_bfs_persistent_kernel(queue: QueueLayout) -> KernelFunction:
    """One persistent thread per worker; workers loop until quiescence."""
    if queue.record_words != 1:
        raise ValueError("the persistent BFS worklist holds 1-word records")
    k = KernelBuilder("bfs_persistent")
    param = k.param()
    indptr = k.ld(param, offset=PARAMS["INDPTR"])
    indices = k.ld(param, offset=PARAMS["INDICES"])
    dist = k.ld(param, offset=PARAMS["DIST"])
    inflag = k.ld(param, offset=PARAMS["INFLAG"])

    def emit_relax(u, next_dist) -> None:
        old = k.atom_min(k.iadd(dist, u), next_dist)
        with k.if_(k.lt(next_dist, old)):
            claimed = k.atom_cas(k.iadd(inflag, u), 0, 1)
            with k.if_(k.eq(claimed, 0)):
                emit_enqueue(k, queue, [u])

    def process(fields, ticket) -> None:
        v = fields[0]
        k.st(k.iadd(inflag, v), 0)  # v may be re-enqueued on improvement
        vptr = k.iadd(indptr, v)
        start = k.ld(vptr)
        end = k.ld(vptr, offset=1)
        dv = k.ld(k.iadd(dist, v))
        next_dist = k.iadd(dv, 1)
        with k.for_range(start, end) as e:
            u = k.ld(k.iadd(indices, e))
            emit_relax(u, next_dist)
        k.atom_add(queue.field(OFF_FINISHED), 1)

    running = k.mov(1)
    with k.while_(lambda: k.ne(running, 0)):
        regs = emit_dequeue_async(k, queue, process)
        with k.if_(k.iand(k.eq(regs.got, 0), regs.quiescent)):
            k.mov(0, dst=running)
    k.exit()
    return KernelFunction("bfs_persistent", k.build())
