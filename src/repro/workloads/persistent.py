"""Persistent-threads BFS: the Section 6 related-work baseline.

Gupta et al. [15] launch just enough thread blocks to fill the GPU and
keep them resident for the kernel's lifetime, pulling dynamically
generated tasks from a globally visible software worklist — the software
alternative to DTBL's hardware-managed thread-block launching.

This implementation is an asynchronous single-kernel BFS:

* the worklist is a global array with counters ``R`` (reserved publish
  slots), ``P`` (published items), ``C`` (claim tickets) and ``F``
  (finished items).  A producer reserves a slot with ``atom_add(R)``,
  stores the vertex, then publishes with ``atom_add(P)``; program order
  makes the item visible before the publish count covers it.
* each persistent thread loops: check quiescence, otherwise claim a
  ticket with ``atom_add(C)`` and wait until the ticket's item appears.
* relaxation is *monotone* (``atom_min`` plus a queued-flag claim, the
  asynchronous Bellman-Ford formulation): out-of-order processing may
  improve a distance repeatedly, re-enqueueing the vertex, and converges
  to exact BFS hop counts.  A CAS-once visit (as in the level-synchronous
  variants) would lock in wrong distances under asynchrony.
* quiescence = ``F == P`` **with F read first**: any in-flight item is
  already counted by the later P read while its F increment cannot yet
  be visible to the earlier F read, so a stale-P race can never declare
  termination early.

Exposed through ``BfsWorkload(expansion="persistent")`` (FLAT mode only)
and compared against DTBL in ``benchmarks/test_ablation_persistent.py``.
"""

from __future__ import annotations

from ..isa.builder import KernelBuilder
from ..sim.kernel import KernelFunction

#: Parameter layout (word offsets).
PARAMS = dict(
    INDPTR=0, INDICES=1, DIST=2, INFLAG=3, WORKLIST=4, R=5, P=6, C=7, F=8,
)


def build_bfs_persistent_kernel() -> KernelFunction:
    """One persistent thread per worker; workers loop until quiescence."""
    k = KernelBuilder("bfs_persistent")
    param = k.param()
    indptr = k.ld(param, offset=PARAMS["INDPTR"])
    indices = k.ld(param, offset=PARAMS["INDICES"])
    dist = k.ld(param, offset=PARAMS["DIST"])
    inflag = k.ld(param, offset=PARAMS["INFLAG"])
    worklist = k.ld(param, offset=PARAMS["WORKLIST"])
    r_ctr = k.ld(param, offset=PARAMS["R"])
    p_ctr = k.ld(param, offset=PARAMS["P"])
    c_ctr = k.ld(param, offset=PARAMS["C"])
    f_ctr = k.ld(param, offset=PARAMS["F"])

    def emit_relax(u, next_dist) -> None:
        old = k.atom_min(k.iadd(dist, u), next_dist)
        with k.if_(k.lt(next_dist, old)):
            claimed = k.atom_cas(k.iadd(inflag, u), 0, 1)
            with k.if_(k.eq(claimed, 0)):
                slot = k.atom_add(r_ctr, 1)
                k.st(k.iadd(worklist, slot), u)
                k.atom_add(p_ctr, 1)

    def emit_process(ticket, waiting) -> None:
        k.mov(0, dst=waiting)
        v = k.ld(k.iadd(worklist, ticket))
        k.st(k.iadd(inflag, v), 0)  # v may be re-enqueued on improvement
        vptr = k.iadd(indptr, v)
        start = k.ld(vptr)
        end = k.ld(vptr, offset=1)
        dv = k.ld(k.iadd(dist, v))
        next_dist = k.iadd(dv, 1)
        with k.for_range(start, end) as e:
            u = k.ld(k.iadd(indices, e))
            emit_relax(u, next_dist)
        k.atom_add(f_ctr, 1)

    running = k.mov(1)
    with k.while_(lambda: k.ne(running, 0)):
        finished = k.ld(f_ctr)       # F first —
        published = k.ld(p_ctr)      # — then P (termination-race-free)
        quiescent = k.eq(finished, published)

        def claim() -> None:
            ticket = k.atom_add(c_ctr, 1)
            waiting = k.mov(1)
            with k.while_(lambda: k.ne(waiting, 0)):
                pub_now = k.ld(p_ctr)
                ready = k.lt(ticket, pub_now)

                def spin_or_exit() -> None:
                    fin_now = k.ld(f_ctr)
                    pub_again = k.ld(p_ctr)
                    dead_ticket = k.iand(
                        k.eq(fin_now, pub_again), k.ge(ticket, pub_again)
                    )
                    with k.if_(dead_ticket):
                        # This ticket can never be filled; stop waiting
                        # (the outer loop will observe quiescence).
                        k.mov(0, dst=waiting)

                k.if_else(ready, lambda: emit_process(ticket, waiting), spin_or_exit)

        k.if_else(quiescent, lambda: k.mov(0, dst=running), claim)
    k.exit()
    return KernelFunction("bfs_persistent", k.build())
