"""Barnes–Hut n-body (Table 4: random data points).

Host-side quadtree construction (Burtscher & Pingali build their tree on
the GPU; the phase the paper's dynamic launches target is the force
computation, so the build is a documented host-side substitution — see
DESIGN.md).  The force kernel assigns one thread per body, which walks
the quadtree with an explicit per-thread stack in *local memory*
(L1-cached, as on real GPUs):

* far internal nodes pass the opening criterion and contribute via their
  centroid (a handful of FLOPs);
* near leaves must be expanded body-by-body — the DFP.  Leaf populations
  (up to the leaf capacity, ~ warp size: the paper's bht children average
  33 threads) are launched as children in CDP / DTBL and serialized in
  flat mode.

Interactions accumulate a fixed-point (x1e6) potential per body through
per-interaction atomic adds, making flat / CDP / DTBL results and the
Python reference bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..isa.builder import KernelBuilder
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from .base import Workload
from .common import emit_dfp, emit_dynamic_launch
from .datasets.points import PointSet

#: Fixed-point scale for accumulated potentials.
_SCALE = 1_000_000.0
#: Plummer-style softening to avoid singular contributions.
_EPS = 1e-4
#: Barnes-Hut opening parameter (larger = more approximation).
_THETA = 0.6
#: Per-thread traversal stack slots (local memory, L1-cached).
_STACK_DEPTH = 48

_P = dict(
    NBODIES=0, BX=1, BY=2, BMASS=3, NTYPE=4, NCHILD=5, NBSTART=6, NBCOUNT=7,
    NCX=8, NCY=9, NMASS=10, NSIZE=11, POT=12,
)
_C = dict(COUNT=0, BSTART=1, BX=2, BY=3, BMASS=4, TARGET=5, POT=6)


@dataclass
class QuadTree:
    """Array-form quadtree over a unit square, leaf ranges contiguous."""

    node_type: np.ndarray  # 1 = leaf
    children: np.ndarray  # (nodes, 4), -1 when absent
    body_start: np.ndarray
    body_count: np.ndarray
    cx: np.ndarray
    cy: np.ndarray
    mass: np.ndarray
    size: np.ndarray
    order: np.ndarray  # permutation: sorted position -> original body id

    @property
    def num_nodes(self) -> int:
        return len(self.node_type)


def build_quadtree(points: PointSet, leaf_capacity: int = 40) -> QuadTree:
    """Recursive quadtree build with contiguous leaf body ranges."""
    node_type: List[int] = []
    children: List[List[int]] = []
    body_start: List[int] = []
    body_count: List[int] = []
    cxs: List[float] = []
    cys: List[float] = []
    masses: List[float] = []
    sizes: List[float] = []
    order: List[int] = []

    def add_node() -> int:
        node_type.append(0)
        children.append([-1, -1, -1, -1])
        body_start.append(0)
        body_count.append(0)
        cxs.append(0.0)
        cys.append(0.0)
        masses.append(0.0)
        sizes.append(0.0)
        return len(node_type) - 1

    def build(ids: np.ndarray, x0: float, y0: float, size: float, depth: int) -> int:
        node = add_node()
        total_mass = float(points.mass[ids].sum())
        sizes[node] = size
        masses[node] = total_mass
        if total_mass > 0:
            cxs[node] = float((points.x[ids] * points.mass[ids]).sum() / total_mass)
            cys[node] = float((points.y[ids] * points.mass[ids]).sum() / total_mass)
        if len(ids) <= leaf_capacity or depth > 24:
            node_type[node] = 1
            body_start[node] = len(order)
            body_count[node] = len(ids)
            order.extend(int(i) for i in ids)
            return node
        half = size / 2.0
        mx, my = x0 + half, y0 + half
        right = points.x[ids] >= mx
        top = points.y[ids] >= my
        quadrants = (
            ids[~right & ~top],
            ids[right & ~top],
            ids[~right & top],
            ids[right & top],
        )
        offsets = ((x0, y0), (mx, y0), (x0, my), (mx, my))
        for q, (qids, (qx, qy)) in enumerate(zip(quadrants, offsets)):
            if len(qids):
                children[node][q] = build(qids, qx, qy, half, depth + 1)
        return node

    build(np.arange(points.count), 0.0, 0.0, 1.0, 0)
    return QuadTree(
        node_type=np.asarray(node_type, dtype=np.int64),
        children=np.asarray(children, dtype=np.int64),
        body_start=np.asarray(body_start, dtype=np.int64),
        body_count=np.asarray(body_count, dtype=np.int64),
        cx=np.asarray(cxs, dtype=np.float64),
        cy=np.asarray(cys, dtype=np.float64),
        mass=np.asarray(masses, dtype=np.float64),
        size=np.asarray(sizes, dtype=np.float64),
        order=np.asarray(order, dtype=np.int64),
    )


def _emit_interaction(
    k: KernelBuilder, xi, yi, xj, yj, mj, pot_slot
) -> None:
    """pot += trunc(SCALE * mj / (dx^2 + dy^2 + EPS))."""
    dx = k.fsub(xj, xi)
    dy = k.fsub(yj, yi)
    r2 = k.fadd(k.fadd(k.fmul(dx, dx), k.fmul(dy, dy)), _EPS)
    contrib = k.ftoi(k.fdiv(k.fmul(mj, _SCALE), r2))
    k.atom_add(pot_slot, contrib)


def build_bht_child(block: int) -> KernelFunction:
    """One thread per body of the opened leaf."""
    k = KernelBuilder("bht_leaf")
    gtid = k.gtid()
    param = k.param()
    count = k.ld(param, offset=_C["COUNT"])
    with k.if_(k.lt(gtid, count)):
        bstart = k.ld(param, offset=_C["BSTART"])
        bx = k.ld(param, offset=_C["BX"])
        by = k.ld(param, offset=_C["BY"])
        bmass = k.ld(param, offset=_C["BMASS"])
        target = k.ld(param, offset=_C["TARGET"])
        pot = k.ld(param, offset=_C["POT"])
        j = k.iadd(bstart, gtid)
        with k.if_(k.ne(j, target)):
            xi = k.fld(k.iadd(bx, target))
            yi = k.fld(k.iadd(by, target))
            xj = k.fld(k.iadd(bx, j))
            yj = k.fld(k.iadd(by, j))
            mj = k.fld(k.iadd(bmass, j))
            _emit_interaction(k, xi, yi, xj, yj, mj, k.iadd(pot, target))
    k.exit()
    return KernelFunction("bht_leaf", k.build())


def build_bht_kernel(mode: ExecutionMode, threshold: int, block: int) -> KernelFunction:
    """One thread per body: stack-based quadtree traversal."""
    k = KernelBuilder("bht_force")
    gtid = k.gtid()
    param = k.param()
    nbodies = k.ld(param, offset=_P["NBODIES"])
    with k.if_(k.lt(gtid, nbodies)):
        bx = k.ld(param, offset=_P["BX"])
        by = k.ld(param, offset=_P["BY"])
        bmass = k.ld(param, offset=_P["BMASS"])
        ntype = k.ld(param, offset=_P["NTYPE"])
        nchild = k.ld(param, offset=_P["NCHILD"])
        nbstart = k.ld(param, offset=_P["NBSTART"])
        nbcount = k.ld(param, offset=_P["NBCOUNT"])
        ncx = k.ld(param, offset=_P["NCX"])
        ncy = k.ld(param, offset=_P["NCY"])
        nmass = k.ld(param, offset=_P["NMASS"])
        nsize = k.ld(param, offset=_P["NSIZE"])
        pot = k.ld(param, offset=_P["POT"])

        xi = k.fld(k.iadd(bx, gtid))
        yi = k.fld(k.iadd(by, gtid))
        pot_slot = k.iadd(pot, gtid)
        # Per-thread traversal stack in local memory (L1-cached, as real
        # GPU local memory is on this Kepler-like baseline).
        sp = k.mov(1)
        k.stl(0, 0)  # push the root at local word 0

        with k.while_(lambda: k.gt(sp, 0)):
            k.iadd(sp, -1, dst=sp)
            node = k.ldl(sp)
            is_leaf = k.ld(k.iadd(ntype, node))

            def handle_leaf() -> None:
                bstart = k.ld(k.iadd(nbstart, node))
                count = k.ld(k.iadd(nbcount, node))

                def serial() -> None:
                    with k.for_range(0, count) as idx:
                        j = k.iadd(bstart, idx)
                        with k.if_(k.ne(j, gtid)):
                            xj = k.fld(k.iadd(bx, j))
                            yj = k.fld(k.iadd(by, j))
                            mj = k.fld(k.iadd(bmass, j))
                            _emit_interaction(k, xi, yi, xj, yj, mj, pot_slot)

                def launch() -> None:
                    emit_dynamic_launch(
                        k,
                        mode,
                        "bht_leaf",
                        [count, bstart, bx, by, bmass, gtid, pot],
                        count,
                        block,
                    )

                emit_dfp(k, mode, count, threshold, launch, serial)

            def handle_internal() -> None:
                cx = k.fld(k.iadd(ncx, node))
                cy = k.fld(k.iadd(ncy, node))
                size = k.fld(k.iadd(nsize, node))
                dx = k.fsub(cx, xi)
                dy = k.fsub(cy, yi)
                r2 = k.fadd(k.fadd(k.fmul(dx, dx), k.fmul(dy, dy)), _EPS)
                far = k.flt_(k.fmul(size, size), k.fmul(_THETA * _THETA, r2))

                def approximate() -> None:
                    mj = k.fld(k.iadd(nmass, node))
                    contrib = k.ftoi(k.fdiv(k.fmul(mj, _SCALE), r2))
                    k.atom_add(pot_slot, contrib)

                def open_node() -> None:
                    child_base = k.imul(node, 4)
                    for q in range(4):
                        child = k.ld(k.iadd(nchild, child_base), offset=q)
                        with k.if_(k.ge(child, 0)):
                            k.stl(sp, child)
                            k.iadd(sp, 1, dst=sp)

                k.if_else(far, approximate, open_node)

            k.if_else(is_leaf, handle_leaf, handle_internal)
    k.exit()
    return KernelFunction("bht_force", k.build(), local_words=_STACK_DEPTH)


class BarnesHutWorkload(Workload):
    """Barnes-Hut potential computation over a quadtree."""

    app_name = "bht"
    parent_block = 64

    def __init__(
        self,
        name: str,
        mode: ExecutionMode,
        points: PointSet,
        leaf_capacity: int = 40,
        child_threshold: int = 24,
        child_block: int = 32,
    ) -> None:
        super().__init__(name, mode)
        self.points = points
        self.leaf_capacity = leaf_capacity
        self.child_threshold = child_threshold
        self.child_block = child_block
        self.tree = build_quadtree(points, leaf_capacity)

    def build_kernels(self) -> List[KernelFunction]:
        kernels = [build_bht_kernel(self.mode, self.child_threshold, self.child_block)]
        if self.mode.is_dynamic:
            kernels.append(build_bht_child(self.child_block))
        return kernels

    def setup(self, device: Device) -> None:
        tree = self.tree
        points = self.points
        order = tree.order
        n = points.count
        self.bx_addr = device.upload(points.x[order])
        self.by_addr = device.upload(points.y[order])
        self.bmass_addr = device.upload(points.mass[order])
        self.ntype_addr = device.upload(tree.node_type)
        self.nchild_addr = device.upload(tree.children.ravel())
        self.nbstart_addr = device.upload(tree.body_start)
        self.nbcount_addr = device.upload(tree.body_count)
        self.ncx_addr = device.upload(tree.cx)
        self.ncy_addr = device.upload(tree.cy)
        self.nmass_addr = device.upload(tree.mass)
        self.nsize_addr = device.upload(tree.size)
        self.pot_addr = device.alloc(n)

    def run(self, device: Device) -> None:
        device.launch(
            "bht_force",
            grid=self.grid_for(self.points.count, self.parent_block),
            block=self.parent_block,
            params=[
                self.points.count,
                self.bx_addr,
                self.by_addr,
                self.bmass_addr,
                self.ntype_addr,
                self.nchild_addr,
                self.nbstart_addr,
                self.nbcount_addr,
                self.ncx_addr,
                self.ncy_addr,
                self.nmass_addr,
                self.nsize_addr,
                self.pot_addr,
            ],
        )

    # ------------------------------------------------------------------
    def reference_potentials(self) -> np.ndarray:
        tree = self.tree
        points = self.points
        order = tree.order
        x = points.x[order]
        y = points.y[order]
        mass = points.mass[order]
        n = points.count
        pot = np.zeros(n, dtype=np.int64)
        theta2 = _THETA * _THETA
        for i in range(n):
            stack = [0]
            while stack:
                node = stack.pop()
                dx = tree.cx[node] - x[i]
                dy = tree.cy[node] - y[i]
                r2 = dx * dx + dy * dy + _EPS
                if tree.node_type[node] == 1:
                    start = int(tree.body_start[node])
                    for j in range(start, start + int(tree.body_count[node])):
                        if j == i:
                            continue
                        ddx = x[j] - x[i]
                        ddy = y[j] - y[i]
                        rr = ddx * ddx + ddy * ddy + _EPS
                        pot[i] += int(mass[j] * _SCALE / rr)
                elif tree.size[node] * tree.size[node] < theta2 * r2:
                    pot[i] += int(tree.mass[node] * _SCALE / r2)
                else:
                    # Mirror the kernel's push order (q = 0..3) and LIFO pop.
                    for q in range(4):
                        child = int(tree.children[node, q])
                        if child >= 0:
                            stack.append(child)
        return pot

    def check(self, device: Device) -> None:
        got = device.download_ints(self.pot_addr, self.points.count)
        expected = self.reference_potentials()
        mismatches = int((got != expected).sum())
        self.expect(mismatches == 0, f"{mismatches} potentials differ from reference")
