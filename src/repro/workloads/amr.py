"""Adaptive mesh refinement (Table 4: combustion-simulation input).

The paper's Fig. 2a pattern: a native kernel processes the level-0 grid,
and each thread whose cell meets the refinement criterion spawns nested
work for the cell's subgrid — recursively, with every aggregated group
coalescing back onto the same refinement kernel.

Physics stand-in: each cell carries an energy value; "processing" a cell
is a short fixed-point smoothing loop, and a cell refines when its energy
exceeds a threshold.  A refined cell produces ``REFINE_FACTOR`` subcells
whose energies derive deterministically from the parent energy and a hash
of the subcell coordinates, so the flat (serialized recursion), CDP, and
DTBL variants produce bit-identical refinement trees, checkable against a
Python reference.

Outputs: per-level refined-cell counters and a fixed-point (x1000) energy
checksum accumulated per processed cell.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.builder import KernelBuilder, Value
from ..runtime import Device, ExecutionMode
from ..sim.kernel import KernelFunction
from .base import Workload
from .common import emit_dynamic_launch
from .datasets.mesh import AmrGrid

#: Subcells per refined cell (a 4x4 subgrid).
REFINE_FACTOR = 16
#: Hash constants for deterministic pseudo-random subcell energy jitter.
_HASH_MUL = 2654435761
_HASH_MASK = 1023

_P = dict(NCELLS=0, ENERGY=1, COUNTS=2, CHECKSUM=3, THRESH_MILLI=4)
_C = dict(
    PARENT_MILLI=0, PARENT_ID=1, LEVEL=2, COUNTS=3, CHECKSUM=4, THRESH_MILLI=5,
)


def _child_energy_milli(k: KernelBuilder, parent_milli: Value, child_id: Value, decay_milli: int):
    """Deterministic subcell energy in fixed-point (x1000), matching
    :meth:`AmrWorkload._ref_child_energy`."""
    hashed = k.iand(k.imul(child_id, _HASH_MUL), _HASH_MASK)
    # jitter in [700, 1700) per mille
    jitter = k.iadd(700, hashed)
    decayed = k.idiv(k.imul(parent_milli, decay_milli), 1000)
    return k.idiv(k.imul(decayed, jitter), 1000)


def _emit_process_cell(k: KernelBuilder, energy_milli: Value, checksum) -> None:
    """The per-cell 'physics': a short smoothing loop on the energy."""
    acc = k.mov(energy_milli)
    with k.for_range(0, 4):
        acc = k.idiv(k.imul(acc, 995), 1000, dst=acc)
    k.atom_add(checksum, acc)


class AmrWorkload(Workload):
    """Recursive AMR over a 2D energy grid."""

    app_name = "amr"
    parent_block = 64

    def __init__(
        self,
        name: str,
        mode: ExecutionMode,
        grid: AmrGrid,
        child_block: int = 16,
    ) -> None:
        super().__init__(name, mode)
        if grid.max_depth != 2:
            # The flat variant statically unrolls the serialized recursion
            # two levels deep (the paper's flattening); deeper grids would
            # need a worklist formulation.
            raise ValueError("AmrWorkload supports max_depth == 2")
        self.grid = grid
        self.child_block = child_block
        self.decay_milli = int(round(grid.decay * 1000))
        self.thresh_milli = int(round(grid.threshold * 1000))

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _emit_refinement(self, k: KernelBuilder, energy_milli, cell_id, level, counts, checksum, thresh) -> None:
        """Count the refinement and either recurse serially (flat) or
        launch the subgrid as a child (CDP / DTBL)."""
        refine = k.iand(k.ge(energy_milli, thresh), k.lt(level, self.grid.max_depth))
        with k.if_(refine):
            k.atom_add(k.iadd(counts, level), 1)
            child_base = k.imul(cell_id, REFINE_FACTOR)
            next_level = k.iadd(level, 1)
            if self.mode.is_dynamic:
                emit_dynamic_launch(
                    k,
                    self.mode,
                    "amr_refine",
                    [energy_milli, cell_id, next_level, counts, checksum, thresh],
                    REFINE_FACTOR,
                    self.child_block,
                )
            else:
                # Flat: the nested levels are serialized inside the thread.
                self._emit_serial_subtree(
                    k, energy_milli, child_base, next_level, counts, checksum, thresh
                )

    def _emit_serial_subtree(self, k, parent_milli, child_base, level_reg, counts, checksum, thresh) -> None:
        """Serially process one refinement level (and recurse one deeper).

        The static recursion depth is bounded by ``grid.max_depth``; the
        innermost level never refines further because ``level`` reaches
        the bound, mirroring the refine predicate.
        """
        with k.for_range(0, REFINE_FACTOR) as i:
            child_id = k.iadd(child_base, i)
            e1 = _child_energy_milli(k, parent_milli, child_id, self.decay_milli)
            _emit_process_cell(k, e1, checksum)
            refine1 = k.iand(k.ge(e1, thresh), k.lt(level_reg, self.grid.max_depth))
            with k.if_(refine1):
                k.atom_add(k.iadd(counts, level_reg), 1)
                gbase = k.imul(child_id, REFINE_FACTOR)
                next_level = k.iadd(level_reg, 1)
                with k.for_range(0, REFINE_FACTOR) as j:
                    gchild = k.iadd(gbase, j)
                    e2 = _child_energy_milli(k, e1, gchild, self.decay_milli)
                    _emit_process_cell(k, e2, checksum)
                    # Level-2 cells sit at max_depth and never refine.

    def _build_root(self) -> KernelFunction:
        k = KernelBuilder("amr_root")
        gtid = k.gtid()
        param = k.param()
        ncells = k.ld(param, offset=_P["NCELLS"])
        with k.if_(k.lt(gtid, ncells)):
            energy = k.ld(param, offset=_P["ENERGY"])
            counts = k.ld(param, offset=_P["COUNTS"])
            checksum = k.ld(param, offset=_P["CHECKSUM"])
            thresh = k.ld(param, offset=_P["THRESH_MILLI"])
            e = k.ld(k.iadd(energy, gtid))
            _emit_process_cell(k, e, checksum)
            level = k.mov(0)
            self._emit_refinement(k, e, gtid, level, counts, checksum, thresh)
        k.exit()
        return KernelFunction("amr_root", k.build())

    def _build_child(self) -> KernelFunction:
        """Subgrid kernel: one thread per subcell; may recurse via launch."""
        k = KernelBuilder("amr_refine")
        gtid = k.gtid()
        param = k.param()
        with k.if_(k.lt(gtid, REFINE_FACTOR)):
            parent_milli = k.ld(param, offset=_C["PARENT_MILLI"])
            parent_id = k.ld(param, offset=_C["PARENT_ID"])
            level = k.ld(param, offset=_C["LEVEL"])
            counts = k.ld(param, offset=_C["COUNTS"])
            checksum = k.ld(param, offset=_C["CHECKSUM"])
            thresh = k.ld(param, offset=_C["THRESH_MILLI"])
            child_id = k.iadd(k.imul(parent_id, REFINE_FACTOR), gtid)
            e = _child_energy_milli(k, parent_milli, child_id, self.decay_milli)
            _emit_process_cell(k, e, checksum)
            refine = k.iand(k.ge(e, thresh), k.lt(level, self.grid.max_depth))
            with k.if_(refine):
                k.atom_add(k.iadd(counts, level), 1)
                emit_dynamic_launch(
                    k,
                    self.mode,
                    "amr_refine",
                    [e, child_id, k.iadd(level, 1), counts, checksum, thresh],
                    REFINE_FACTOR,
                    self.child_block,
                )
        k.exit()
        return KernelFunction("amr_refine", k.build())

    def build_kernels(self) -> List[KernelFunction]:
        kernels = [self._build_root()]
        if self.mode.is_dynamic:
            kernels.append(self._build_child())
        return kernels

    # ------------------------------------------------------------------
    def setup(self, device: Device) -> None:
        energy_milli = np.round(self.grid.energy * 1000).astype(np.int64)
        self.energy_addr = device.upload(energy_milli)
        self.counts_addr = device.upload(np.zeros(self.grid.max_depth + 1, dtype=np.int64))
        self.checksum_addr = device.alloc(1)

    def run(self, device: Device) -> None:
        device.launch(
            "amr_root",
            grid=self.grid_for(self.grid.num_cells, self.parent_block),
            block=self.parent_block,
            params=[
                self.grid.num_cells,
                self.energy_addr,
                self.counts_addr,
                self.checksum_addr,
                self.thresh_milli,
            ],
        )

    # ------------------------------------------------------------------
    # Reference
    # ------------------------------------------------------------------
    @staticmethod
    def _ref_child_energy(parent_milli: int, child_id: int, decay_milli: int) -> int:
        hashed = (child_id * _HASH_MUL) & _HASH_MASK
        jitter = 700 + hashed
        decayed = (parent_milli * decay_milli) // 1000
        return (decayed * jitter) // 1000

    @staticmethod
    def _ref_process(energy_milli: int) -> int:
        acc = energy_milli
        for _ in range(4):
            acc = (acc * 995) // 1000
        return acc

    def reference(self) -> tuple:
        counts = [0] * (self.grid.max_depth + 1)
        checksum = 0
        thresh = self.thresh_milli
        energy_milli = np.round(self.grid.energy * 1000).astype(np.int64)

        def visit(e: int, cell_id: int, level: int) -> None:
            nonlocal checksum
            checksum += self._ref_process(e)
            if e >= thresh and level < self.grid.max_depth:
                counts[level] += 1
                for i in range(REFINE_FACTOR):
                    child_id = cell_id * REFINE_FACTOR + i
                    visit(self._ref_child_energy(e, child_id, self.decay_milli), child_id, level + 1)

        for cell, e in enumerate(energy_milli.tolist()):
            visit(int(e), cell, 0)
        return counts, checksum

    def check(self, device: Device) -> None:
        counts, checksum = self.reference()
        got_counts = device.download_ints(self.counts_addr, self.grid.max_depth + 1).tolist()
        got_checksum = device.read_int(self.checksum_addr)
        self.expect(
            got_counts == counts, f"refinement counts {got_counts} != {counts}"
        )
        self.expect(got_checksum == checksum, f"energy checksum {got_checksum} != {checksum}")
