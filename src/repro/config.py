"""Simulator configuration: the paper's Table 2 and Table 3.

:class:`GPUConfig` models the GPGPU-Sim configuration the paper uses
(Table 2: a Tesla K20c / GK110) plus the timing parameters of our memory
system and the DTBL extension.  :class:`LatencyModel` holds the measured
device-runtime API latencies (Table 3) in the paper's per-warp linear form
``b + A * x`` where ``x`` is the number of threads in the warp invoking the
call.

Both classes are frozen dataclasses; derive variants with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import asdict, dataclass, fields, replace
from typing import Optional

from .errors import ConfigError

#: Valid :attr:`GPUConfig.core` selections.
_CORES = frozenset({"reference", "fast", "vector"})

#: Number of threads in a warp (SIMD width).  Fixed by the architecture.
WARP_SIZE = 32

#: Size of one simulated global-memory word in bytes (int64/float64 views).
WORD_BYTES = 8

#: Size of one coalesced memory segment (transaction) in bytes.
SEGMENT_BYTES = 128

#: Words per coalesced segment.
SEGMENT_WORDS = SEGMENT_BYTES // WORD_BYTES


@dataclass(frozen=True)
class LatencyModel:
    """Device-runtime API latencies in SMX cycles (paper Table 3).

    ``cudaGetParameterBuffer`` and ``cudaLaunchDevice`` follow the paper's
    per-warp linear model ``b + A * x``; the others are flat costs.
    An *ideal* model (all zeros) gives the paper's CDPI / DTBLI modes.
    """

    #: cudaStreamCreateWithFlags flat cost (CDP only).
    stream_create: int = 7165
    #: cudaGetParameterBuffer per-warp initialization cost ``b``.
    param_buffer_base: int = 8023
    #: cudaGetParameterBuffer per-calling-thread cost ``A``.
    param_buffer_per_thread: int = 129
    #: cudaLaunchDevice per-warp initialization cost ``b`` (CDP only).
    launch_device_base: int = 12187
    #: cudaLaunchDevice per-calling-thread cost ``A`` (CDP only).
    launch_device_per_thread: int = 1592
    #: Kernel dispatch latency from the KMU to the Kernel Distributor.
    kernel_dispatch: int = 283
    #: DTBL: per-entry KDE search cost; pipelined, <= 32 cycles per warp.
    kde_search_per_entry: int = 1
    #: DTBL: AGT free-entry probe via the hash function (single cycle).
    agt_probe: int = 1

    def param_buffer_cycles(self, calling_threads: int) -> int:
        """Per-warp cost of ``cudaGetParameterBuffer`` for ``x`` callers."""
        if calling_threads <= 0:
            return 0
        return self.param_buffer_base + self.param_buffer_per_thread * calling_threads

    def launch_device_cycles(self, calling_threads: int) -> int:
        """Per-warp cost of ``cudaLaunchDevice`` for ``x`` callers."""
        if calling_threads <= 0:
            return 0
        return self.launch_device_base + self.launch_device_per_thread * calling_threads

    def kde_search_cycles(self, kde_entries: int) -> int:
        """Pipelined eligible-kernel search over the Kernel Distributor."""
        return self.kde_search_per_entry * kde_entries

    @classmethod
    def measured_k20c(cls) -> "LatencyModel":
        """The paper's Table 3 numbers, measured on a Tesla K20c."""
        return cls()

    def scaled(self, factor: float) -> "LatencyModel":
        """Scale the launch-path latencies by ``factor``.

        The benchmark harness runs workloads scaled down by orders of
        magnitude relative to the paper's inputs; the GPU's latency-hiding
        slack shrinks with them.  Scaling the Table 3 constants by the same
        factor keeps the launch-overhead-to-work ratio representative while
        preserving every CDP:DTBL cost *ratio* (see DESIGN.md).  The
        pipelined KDE search and single-cycle AGT probe are architectural
        constants and are not scaled.
        """
        if factor <= 0:
            raise ConfigError("latency scale factor must be positive")

        def s(value: int) -> int:
            return max(0, int(round(value * factor)))

        return LatencyModel(
            stream_create=s(self.stream_create),
            param_buffer_base=s(self.param_buffer_base),
            param_buffer_per_thread=s(self.param_buffer_per_thread),
            launch_device_base=s(self.launch_device_base),
            launch_device_per_thread=s(self.launch_device_per_thread),
            kernel_dispatch=s(self.kernel_dispatch),
            kde_search_per_entry=self.kde_search_per_entry,
            agt_probe=self.agt_probe,
        )

    @classmethod
    def ideal(cls) -> "LatencyModel":
        """Zero launch overhead: the paper's CDPI / DTBLI configurations."""
        return cls(
            stream_create=0,
            param_buffer_base=0,
            param_buffer_per_thread=0,
            launch_device_base=0,
            launch_device_per_thread=0,
            kernel_dispatch=0,
            kde_search_per_entry=0,
            agt_probe=0,
        )


@dataclass(frozen=True)
class GPUConfig:
    """Architecture parameters (paper Table 2 plus timing-model knobs)."""

    # ----- Table 2 -------------------------------------------------------
    #: SMX core clock in MHz (used only for reporting; timing is in cycles).
    smx_clock_mhz: int = 706
    #: Memory clock in MHz (used only for reporting).
    memory_clock_mhz: int = 2600
    #: Number of streaming multiprocessors.
    num_smx: int = 13
    #: Maximum resident thread blocks per SMX.
    max_resident_blocks: int = 16
    #: Maximum resident threads per SMX.
    max_resident_threads: int = 2048
    #: 32-bit registers per SMX.
    registers_per_smx: int = 65536
    #: L1 cache size per SMX in bytes.
    l1_size: int = 16 * 1024
    #: Shared memory size per SMX in bytes.
    shared_mem_size: int = 48 * 1024
    #: Maximum concurrently executing kernels (= HWQs = KDE entries).
    max_concurrent_kernels: int = 32

    # ----- SMX pipeline ---------------------------------------------------
    #: Warp schedulers per SMX; each may issue one instruction per cycle.
    issue_width: int = 4
    #: Warp scheduling policy: "gto" (greedy-then-oldest, the paper's
    #: configuration) or "rr" (loose round-robin ablation).
    warp_scheduler: str = "gto"
    #: Result latency of a simple ALU instruction, in cycles.
    alu_latency: int = 10
    #: Result latency of an SFU-class instruction (div, sqrt), in cycles.
    sfu_latency: int = 20
    #: Shared-memory access latency, in cycles (conflict-free).
    shared_latency: int = 30
    #: Shared-memory banks; an n-way bank conflict serializes n accesses.
    shared_banks: int = 32
    #: L1 hit latency for local-memory accesses, in cycles.
    l1_hit_latency: int = 35
    #: L1 associativity (local-memory cache).
    l1_assoc: int = 4
    #: Maximum per-thread local-memory words a kernel may declare.
    max_local_words: int = 64
    #: Barrier re-check granularity, in cycles.
    barrier_latency: int = 5

    # ----- Memory system --------------------------------------------------
    #: L2 total size in bytes.  The real GK110 has 1.5 MB; the default here
    #: is scaled down by the same factor as the workload datasets so that
    #: the working-set-to-L2 ratio (which drives the paper's DRAM-behaviour
    #: results) is representative.  See DESIGN.md, "Substitutions".
    l2_size: int = 96 * 1024
    #: L2 associativity.
    l2_assoc: int = 8
    #: L2 line size in bytes (= one coalesced segment).
    l2_line: int = SEGMENT_BYTES
    #: L2 hit latency in SMX cycles.
    l2_hit_latency: int = 120
    #: Extra latency from L2 miss to DRAM service start.
    dram_base_latency: int = 220
    #: Shared command-bus occupancy per transaction (throughput bound:
    #: at most one command per ``dram_bus_cycles``).
    dram_bus_cycles: int = 2
    #: Bank busy slot for a row-buffer hit (throughput).
    dram_row_hit_cycles: int = 2
    #: Bank busy slot for a row-buffer miss (precharge+activate; ~tRC).
    dram_row_miss_cycles: int = 24
    #: Data-return latency for a row-buffer hit (what the warp waits for).
    dram_hit_latency: int = 20
    #: Data-return latency for a row-buffer miss.
    dram_miss_latency: int = 60
    #: DRAM row size in bytes.
    dram_row_bytes: int = 2048
    #: Number of independent DRAM banks in the controller model.  Few banks
    #: with a long row-miss slot make scattered streams throughput-poor
    #: relative to coalesced row-hit streams (~4x), matching the dynamic
    #: range of the paper's Fig. 7.
    dram_banks: int = 4

    # ----- DTBL extension (Section 4) --------------------------------------
    #: Aggregated Group Table entries (Fig. 12 sweeps 512/1024/2048).
    agt_entries: int = 1024
    #: Section 4.3's rejected alternative: schedule every aggregated group
    #: independently from the KDE (no TB coalescing, no AGT).  Pair with a
    #: larger ``max_concurrent_kernels`` to emulate the enlarged KDE.
    dtbl_no_coalescing: bool = False
    #: Per-kernel context setup on an SMX (function load, register /
    #: shared-memory partitioning) charged when a block of a kernel not
    #: currently resident on that SMX arrives.  Coalesced aggregated TBs
    #: share their kernel's context — one of DTBL's §4.2 benefits.
    context_setup_cycles: int = 40
    #: On-chip SRAM bytes per AGT entry (Section 4.3).
    agt_entry_bytes: int = 20
    #: Extra KDE/FCFS/SSCR/TBCR register bytes (Section 4.3).
    dtbl_register_bytes: int = 1096

    # ----- Simulator execution core ----------------------------------------
    #: Execution core selection: ``"reference"`` (the per-instruction
    #: oracle interpreter, :mod:`repro.sim.warp`), ``"fast"`` (pre-decoded
    #: per-opcode kernels plus the event-driven scheduler,
    #: :mod:`repro.sim.fast_warp`) or ``"vector"`` (the fast core plus
    #: cross-warp SoA group dispatch, :mod:`repro.sim.vector_warp`).  All
    #: three are stat-exact with one another; ``None`` resolves to the
    #: legacy ``fast_core`` flag, defaulting to ``"fast"``.
    core: Optional[str] = None
    #: Deprecated boolean predecessor of :attr:`core` (``True`` -> "fast",
    #: ``False`` -> "reference").  Setting it without ``core`` emits a
    #: DeprecationWarning; setting both to conflicting values is an error.
    #: Use :attr:`execution_core` to read the resolved selection.
    fast_core: Optional[bool] = None
    #: Enable the execution sanitizer (:mod:`repro.sim.sanitizer`): shadow-
    #: state data-race detection, out-of-bounds / use-after-free checks
    #: against the allocator's live-range map, uninitialized-read tracking,
    #: barrier-divergence detection and device-launch argument validation.
    #: Purely observational — simulation results and statistics are
    #: unchanged; findings accumulate in ``gpu.sanitizer.report``.  Also
    #: switchable globally via the ``REPRO_SANITIZE`` environment variable.
    sanitize: bool = False

    # ----- Launch bookkeeping ----------------------------------------------
    #: Global-memory bytes reserved per pending device-launched kernel
    #: (kernel record, stream state, saved configuration).
    cdp_pending_kernel_bytes: int = 2048
    #: Global-memory bytes reserved per pending aggregated group
    #: (configuration only; parameters are counted separately).
    dtbl_pending_group_bytes: int = 256

    def __post_init__(self) -> None:
        if self.core is not None and self.core not in _CORES:
            raise ConfigError(
                f"core must be one of {sorted(_CORES)}, got {self.core!r}"
            )
        if self.fast_core is not None:
            legacy = "fast" if self.fast_core else "reference"
            if self.core is None:
                warnings.warn(
                    "GPUConfig.fast_core is deprecated; use "
                    f"core={legacy!r} instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
            elif self.core != legacy and not (
                self.core == "vector" and self.fast_core
            ):
                raise ConfigError(
                    f"core={self.core!r} conflicts with "
                    f"fast_core={self.fast_core!r}"
                )
        if self.num_smx <= 0:
            raise ConfigError("num_smx must be positive")
        if self.max_resident_threads % WARP_SIZE:
            raise ConfigError("max_resident_threads must be a multiple of the warp size")
        if self.agt_entries & (self.agt_entries - 1):
            raise ConfigError("agt_entries must be a power of two (hash is a mask)")
        if self.issue_width <= 0:
            raise ConfigError("issue_width must be positive")
        if self.warp_scheduler not in ("gto", "rr"):
            raise ConfigError("warp_scheduler must be 'gto' or 'rr'")
        if self.l2_line != SEGMENT_BYTES:
            raise ConfigError("l2_line must equal the coalescing segment size")

    # ------------------------------------------------------------------
    # Serialization / identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All fields as a JSON-safe dictionary (exact round trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GPUConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`ConfigError` (a stale cache entry from
        a different code version must not be silently reinterpreted);
        missing keys take the current defaults.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown GPUConfig fields: {sorted(unknown)}"
            )
        return cls(**data)

    def fingerprint(self) -> str:
        """Deterministic content hash of this configuration.

        A pure function of the field values: stable across processes,
        interpreter restarts and machines, and sensitive to every field
        (each one can change simulation output or reported metrics).
        Used as the configuration component of experiment cache keys —
        see :mod:`repro.exec.fingerprint`.
        """
        doc = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )
        return hashlib.sha256(f"GPUConfig:{doc}".encode("utf-8")).hexdigest()

    @property
    def execution_core(self) -> str:
        """The resolved core selection: "reference", "fast" or "vector".

        ``core`` wins when set; otherwise the deprecated ``fast_core``
        boolean maps to "fast"/"reference"; with neither set the default
        is the fast core.
        """
        if self.core is not None:
            return self.core
        if self.fast_core is not None:
            return "fast" if self.fast_core else "reference"
        return "fast"

    @property
    def max_resident_warps(self) -> int:
        """Maximum resident warps per SMX (2048 threads -> 64 warps)."""
        return self.max_resident_threads // WARP_SIZE

    @property
    def agt_sram_bytes(self) -> int:
        """On-chip SRAM consumed by the AGT (Section 4.3 overhead)."""
        return self.agt_entries * self.agt_entry_bytes

    def with_agt_entries(self, entries: int) -> "GPUConfig":
        """Return a copy with a different AGT size (Fig. 12 sweep)."""
        return replace(self, agt_entries=entries)

    @classmethod
    def k20c(cls) -> "GPUConfig":
        """The paper's baseline configuration (Table 2)."""
        return cls()

    @classmethod
    def small(cls) -> "GPUConfig":
        """A scaled-down GPU for fast unit tests (2 SMXs, small caches)."""
        return cls(
            num_smx=2,
            max_resident_blocks=8,
            max_resident_threads=512,
            registers_per_smx=16384,
            l2_size=64 * 1024,
            agt_entries=64,
        )
