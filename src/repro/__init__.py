"""repro: a reproduction of "Dynamic Thread Block Launch" (ISCA 2015).

A pure-Python cycle-level GPU simulator (Kepler/GK110-like baseline) with
three execution models for dynamically formed parallelism:

* **flat** — nested work serialized within each thread;
* **CDP** — device-side kernel launches with the paper's measured launch
  latencies;
* **DTBL** — the paper's contribution: device-side *thread block* launches
  coalesced onto existing kernels through the Aggregated Group Table.

Quick start::

    from repro import Device, ExecutionMode, KernelBuilder, KernelFunction

Batch execution goes through :class:`JobSpec` — the one canonical job
description consumed by ``python -m repro.harness``,
``python -m repro.workloads``, the :class:`SweepEngine` worker pool and
the ``python -m repro.serve`` daemon alike::

    from repro import ExecutionMode, JobSpec, run_job

    spec = JobSpec.create("bfs_citation", ExecutionMode.DTBL,
                          scale=0.1, latency_scale=0.25)
    result = run_job(spec)          # JobResult; result.stats is SimStats

See ``examples/quickstart.py``, ``docs/serving.md`` and README.md.
"""

# Defined before the subpackage imports: repro.exec reads it for the
# cache-key code salt while this module is still initializing.
__version__ = "1.1.0"

from .config import GPUConfig, LatencyModel, WARP_SIZE
from .errors import ReproError
from .isa import KernelBuilder, Program
from .runtime import Device, DeviceArray, Event, ExecutionMode, Stream
from .sim import GPU, KernelFunction, SanitizerFinding, SanitizerReport, SimStats
from .exec import (
    JobResult,
    JobSpec,
    ResultCache,
    SpecError,
    SweepEngine,
    run_job,
)

__all__ = [
    # Host API
    "Device",
    "DeviceArray",
    "Event",
    "ExecutionMode",
    "Stream",
    # Simulator
    "GPU",
    "GPUConfig",
    "KernelBuilder",
    "KernelFunction",
    "LatencyModel",
    "Program",
    "ReproError",
    "SanitizerFinding",
    "SanitizerReport",
    "SimStats",
    "WARP_SIZE",
    # Job execution (see repro.exec for the full surface)
    "JobResult",
    "JobSpec",
    "ResultCache",
    "SpecError",
    "SweepEngine",
    "run_job",
    "__version__",
]
