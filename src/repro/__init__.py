"""repro: a reproduction of "Dynamic Thread Block Launch" (ISCA 2015).

A pure-Python cycle-level GPU simulator (Kepler/GK110-like baseline) with
three execution models for dynamically formed parallelism:

* **flat** — nested work serialized within each thread;
* **CDP** — device-side kernel launches with the paper's measured launch
  latencies;
* **DTBL** — the paper's contribution: device-side *thread block* launches
  coalesced onto existing kernels through the Aggregated Group Table.

Quick start::

    from repro import Device, ExecutionMode, KernelBuilder, KernelFunction

See ``examples/quickstart.py`` and README.md.
"""

from .config import GPUConfig, LatencyModel, WARP_SIZE
from .errors import ReproError
from .isa import KernelBuilder, Program
from .runtime import Device, DeviceArray, Event, ExecutionMode, Stream
from .sim import GPU, KernelFunction, SanitizerFinding, SanitizerReport, SimStats

__version__ = "1.0.0"

__all__ = [
    "Device",
    "DeviceArray",
    "Event",
    "ExecutionMode",
    "Stream",
    "GPU",
    "GPUConfig",
    "KernelBuilder",
    "KernelFunction",
    "LatencyModel",
    "Program",
    "ReproError",
    "SanitizerFinding",
    "SanitizerReport",
    "SimStats",
    "WARP_SIZE",
    "__version__",
]
