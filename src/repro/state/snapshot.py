"""Capture and restore the complete mid-flight simulator state.

Design
------
A checkpoint is a plain-Python *document*: a header (format version,
code-version salt, optional job fingerprint, run index, cycle, GPU
config, sanitize flag) plus a ``state`` dictionary holding every mutable
piece of the simulation.  Restore does **not** rebuild a GPU from
nothing — it is applied to a GPU produced by *replaying the host
program deterministically from scratch* (same kernels registered, same
allocations, same host launches in the same order).  The replay supplies
everything a pickle could not faithfully carry — kernel functions,
decoded programs, the host program's live spec/Event handles — and the
checkpoint overwrites all simulator-side state in place, so a resumed
run is bit-identical to an uninterrupted one in both execution cores.

Object identity is preserved through three registries:

* **launch records** — every :class:`~repro.sim.stats.LaunchRecord` is
  appended to ``stats.launches`` at creation, so a record reference
  anywhere (KDE entry, AGE, pending device launch, host spec, pending
  event) serializes as its index into that list;
* **aggregated group entries** — every reachable
  :class:`~repro.dtbl.agt.AggregatedGroupEntry` (NAGEI chains, LAGEI
  tails, AGT slots, resident aggregated TBs) is collected into one
  deduplicated table and referenced by table index, so the NAGEI/LAGEI
  ``next`` links re-form the exact same chain;
* **host launch specs** — :class:`~repro.sim.hwq.HostLaunchSpec` carries
  a monotonic ``seq`` assigned by :meth:`GPU.host_launch`; the replayed
  host program re-creates specs with identical seqs, and the restore
  patches queue membership and dispatch records back onto those live
  objects (the host program's :class:`~repro.runtime.host_api.Event`
  handles keep working across a resume).

Pending events serialize as their ``(cycle, seq, kind, payload)``
description and are rebuilt through :meth:`GPU._event_fn` — the same
factory live scheduling uses — so restored and live events execute
identical code.  Ad-hoc events (``kind=None``) and attached tracers make
a state uncheckpointable and raise :class:`CheckpointError`.

On-disk format: a magic prefix, then zlib-compressed pickle (protocol 4)
of the document.  Writes are atomic (unique temp file in the target
directory + ``os.replace``, the :mod:`repro.exec.cache` idiom); loads
that fail for any reason raise :class:`CheckpointError`, and callers
quarantine the file to ``<name>.corrupt`` and fall back to a fresh run.
The header's salt is :data:`repro.exec.fingerprint.CODE_VERSION`, so a
checkpoint written by different simulator code is rejected as stale
rather than restored into subtly different semantics.
"""

from __future__ import annotations

import heapq
import os
import pickle
import tempfile
import zlib
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..dtbl.agt import AggregatedGroupEntry
from ..exec.fingerprint import CODE_VERSION
from ..sim.hwq import HostLaunchSpec
from ..sim.kernel_distributor import KDEEntry
from ..sim.kmu import DeviceLaunchSpec
from ..sim.sanitizer import SanitizerReport
from ..sim.stats import LaunchRecord
from ..sim.thread_block import ThreadBlock

#: On-disk / in-memory checkpoint document format version.
CHECKPOINT_FORMAT = 1

#: File magic for checkpoint files.
MAGIC = b"REPRO-CKPT\x00"

#: Default directory for CLI/sweep checkpoints.
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"


class CheckpointError(Exception):
    """A checkpoint cannot be captured, read, or restored.

    Raised for uncheckpointable state (ad-hoc events, attached tracer),
    unreadable or truncated files, stale code salts, and mismatches
    between the checkpoint and the replayed host program.
    """


# ======================================================================
# Capture
# ======================================================================
def capture_document(gpu, fingerprint: Optional[str] = None) -> dict:
    """Snapshot ``gpu`` into a self-describing checkpoint document.

    ``fingerprint`` optionally binds the checkpoint to one
    :meth:`~repro.exec.jobspec.JobSpec.fingerprint`, so a sweep
    worker never resumes from another job's file.
    """
    if gpu.tracer is not None:
        raise CheckpointError(
            "cannot checkpoint with a tracer/profiler attached: tracer "
            "state is not serializable"
        )
    return {
        "format": CHECKPOINT_FORMAT,
        "salt": CODE_VERSION,
        "fingerprint": fingerprint,
        "run_index": gpu._run_index,
        "cycle": gpu.cycle,
        "config": gpu.config.to_dict(),
        "memory_words": gpu.memory.size_words,
        "sanitize": gpu.sanitizer is not None,
        "state": _capture_state(gpu),
    }


def _record_index(records: Dict[int, int], record) -> Optional[int]:
    if record is None:
        return None
    index = records.get(id(record))
    if index is None:
        raise CheckpointError(
            "launch record not registered in stats.launches; "
            "checkpoint invariant violated"
        )
    return index


def _capture_state(gpu) -> dict:
    stats = gpu.stats
    records: Dict[int, int] = {id(r): i for i, r in enumerate(stats.launches)}

    # -------------------- aggregated group registry -------------------
    ages: List[AggregatedGroupEntry] = []
    age_ids: Dict[int, int] = {}

    def reg_age(age: Optional[AggregatedGroupEntry]) -> Optional[int]:
        if age is None:
            return None
        key = id(age)
        index = age_ids.get(key)
        if index is None:
            index = len(ages)
            age_ids[key] = index
            ages.append(age)
            reg_age(age.next)
        return index

    for entry in gpu.distributor.active_entries():
        reg_age(entry.nagei)
        reg_age(entry.lagei)
    for slot in gpu.scheduler.agt._slots:
        reg_age(slot)
    for smx in gpu.smxs:
        for tb in smx.blocks:
            reg_age(tb.age)

    age_state = [
        {
            "agg_dims": age.agg_dims,
            "param_addr": age.param_addr,
            "next": age_ids[id(age.next)] if age.next is not None else None,
            "next_block": age.next_block,
            "exe_blocks": age.exe_blocks,
            "in_agt": age.in_agt,
            "agt_index": age.agt_index,
            "gate_until": age.gate_until,
            "fetch_issued": age.fetch_issued,
            "record": _record_index(records, age.record),
        }
        for age in ages
    ]

    # -------------------- kernel distributor --------------------------
    kde_state = [
        {
            "index": entry.index,
            "func": entry.func.name,
            "grid_dims": entry.grid_dims,
            "block_dims": entry.block_dims,
            "param_addr": entry.param_addr,
            "next_block": entry.next_block,
            "exe_blocks": entry.exe_blocks,
            "nagei": age_ids[id(entry.nagei)] if entry.nagei is not None else None,
            "lagei": age_ids[id(entry.lagei)] if entry.lagei is not None else None,
            "agg_exe_blocks": entry.agg_exe_blocks,
            "marked": entry.marked,
            "ever_marked": entry.ever_marked,
            "record": _record_index(records, entry.record),
            "stream_id": entry.stream_id,
        }
        for entry in gpu.distributor.active_entries()
    ]

    # -------------------- SMXs, thread blocks, warps ------------------
    warp_refs: Dict[int, tuple] = {}
    smx_state = []
    for smx in gpu.smxs:
        blocks = []
        for tb_index, tb in enumerate(smx.blocks):
            warps = []
            for warp_index, warp in enumerate(tb.warps):
                warp_refs[id(warp)] = (smx.smx_id, tb_index, warp_index)
                warps.append(
                    {
                        "regs_i": warp.regs_i.copy(),
                        "regs_f": warp.regs_f.copy(),
                        "stack": [
                            [frame[0], frame[1], np.array(frame[2], dtype=bool)]
                            + list(frame[3:])
                            for frame in warp.stack
                        ],
                        "ready_cycle": warp.ready_cycle,
                        "finished": warp.finished,
                        "at_barrier": warp.at_barrier,
                        "age": warp.age,
                    }
                )
            blocks.append(
                {
                    "func": tb.func.name,
                    "grid_dims": tb.grid_dims,
                    "block_dims": tb.block_dims,
                    "block_linear_index": tb.block_linear_index,
                    "param_addr": tb.param_addr,
                    "kde": tb.kde_entry.index,
                    "age": age_ids[id(tb.age)] if tb.age is not None else None,
                    "shared": tb.shared.copy(),
                    "alive_warps": tb._alive_warps,
                    "barrier_arrivals": tb._barrier_arrivals,
                    "san_uid": tb.san_uid,
                    "slots": [w.context_slot for w in tb.warps],
                    "warps": warps,
                }
            )
        smx_state.append(
            {
                "free_threads": smx.free_threads,
                "free_blocks": smx.free_blocks,
                "free_regs": smx.free_regs,
                "free_shared": smx.free_shared,
                "free_warp_slots": smx.free_warp_slots,
                "resident_warps": smx.resident_warps,
                "seq": smx._seq,
                "free_slots": list(smx._free_slots),
                "l1": _capture_cache(smx.l1),
                "blocks": blocks,
            }
        )

    # -------------------- ready heaps ---------------------------------
    # Fast core: serialize the GPU-wide heap's live entries verbatim —
    # the (sched, ready) pair matters because budget-deferred entries
    # (sched > ready) exist at checkpoint boundaries and their sched
    # keys order same-cycle issue across SMXs.  Stale lazy-deletion
    # entries are dropped; the issue loop guarantees the head is
    # stale-free whenever the loop computes its next visited cycle, so
    # dropping non-head stale entries (which are pop-and-discard no-ops)
    # cannot change any observable ordering.
    gheap_state = None
    if gpu._gheap is not None:
        gheap_state = []
        for sched, smx_id, ready, age_key, warp in gpu._gheap:
            if warp.finished or warp.at_barrier or ready != warp.ready_cycle:
                continue
            gheap_state.append((sched, smx_id, ready, age_key, warp_refs[id(warp)]))

    # -------------------- pending events ------------------------------
    events = []
    for cycle, seq, _fn, kind, payload in gpu._events:
        events.append((cycle, seq, kind, _encode_payload(records, kind, payload)))

    # -------------------- KMU / HWQs ----------------------------------
    hq = gpu.kmu.host_queues
    kmu_state = {
        "busy_until": gpu.kmu._busy_until,
        "dispatch_scheduled": gpu.kmu._dispatch_scheduled,
        "reserved_entries": gpu.kmu._reserved_entries,
        "hwqs": [
            {
                "pending": [_spec_seq(spec) for spec in hwq.pending],
                "head_inflight": hwq.head_inflight,
            }
            for hwq in hq.hwqs
        ],
        "stream_to_hwq": dict(hq._stream_to_hwq),
        "next_stream": hq._next_stream,
        "device_pending": [
            (
                spec.kernel_name,
                spec.grid_dims,
                spec.block_dims,
                spec.param_addr,
                _record_index(records, spec.record),
            )
            for spec in gpu.kmu.device_pending
        ],
    }

    # Host spec dispatch records, for every spec ever launched: the
    # replayed host program re-creates the same specs (same seqs), and
    # restore patches their record references so Event handles created
    # before the checkpoint still resolve after a resume.
    spec_records = {
        seq: _record_index(records, spec.record)
        for seq, spec in gpu._specs_by_seq.items()
    }

    scheduler = gpu.scheduler
    memsys = gpu.memsys
    return {
        "memory": {
            "buffer": gpu.memory.i.copy(),
            "next_free": gpu.memory._next_free,
            "live": dict(gpu.memory._live),
        },
        "stats": {
            "counters": {
                name: getattr(stats, name) for name in stats._COUNTER_FIELDS
            },
            "coalescing": stats.coalescing.to_dict(),
            "launches": [record.to_dict() for record in stats.launches],
        },
        "dram": {
            "stats": memsys.dram.stats.to_dict(),
            "bank_next_free": list(memsys.dram._bank_next_free),
            "bank_open_row": list(memsys.dram._bank_open_row),
            "bus_next_free": memsys.dram._bus_next_free,
            "activity_end": memsys.dram._activity_end,
        },
        "l2": _capture_cache(memsys.l2),
        "ages": age_state,
        "kde": {
            "entries": kde_state,
            "occupied": gpu.distributor.occupied,
            "peak_occupied": gpu.distributor.peak_occupied,
        },
        "scheduler": {
            "fcfs": [entry.index for entry in scheduler.fcfs],
            "agt_slots": [
                age_ids[id(slot)] if slot is not None else None
                for slot in scheduler.agt._slots
            ],
            "agt_occupied": scheduler.agt.occupied,
            "agt_peak_occupied": scheduler.agt.peak_occupied,
            "distribute_scheduled": scheduler._distribute_scheduled,
            "gate_retries": sorted(scheduler._gate_retries),
            "smx_cursor": scheduler._smx_cursor,
        },
        "kmu": kmu_state,
        "runtime": {
            "stream_counter": gpu.runtime._stream_counter,
            "param_sizes": dict(gpu.runtime._param_sizes),
        },
        "spec_records": spec_records,
        "smxs": smx_state,
        "gheap": gheap_state,
        "events": events,
        "gpu": {
            "cycle": gpu.cycle,
            "active_warps": gpu.active_warps,
            "event_seq": gpu._event_seq,
            "launch_seq": gpu._launch_seq,
            "smx_ready_at": list(gpu._smx_ready_at),
            "local_arenas": list(gpu._local_arenas),
        },
        "sanitizer": _capture_sanitizer(gpu.sanitizer),
    }


def _spec_seq(spec: HostLaunchSpec) -> int:
    if spec.seq < 0:
        raise CheckpointError(
            "host launch spec without a seq id; checkpoint invariant violated"
        )
    return spec.seq


def _capture_cache(cache) -> dict:
    stats = cache.stats
    return {
        "sets": [list(ways) for ways in cache._sets],
        "stats": (stats.accesses, stats.hits, stats.misses, stats.evictions),
    }


def _encode_payload(records: Dict[int, int], kind: Optional[str], payload):
    if kind in ("device_launch_batch", "agg_launch_batch"):
        return tuple(payload)
    if kind == "kmu_activate":
        if isinstance(payload, HostLaunchSpec):
            return ("host", _spec_seq(payload))
        return (
            "device",
            payload.kernel_name,
            payload.grid_dims,
            payload.block_dims,
            payload.param_addr,
            _record_index(records, payload.record),
        )
    if kind in ("kmu_retry", "distribute"):
        return None
    if kind == "gate_retry":
        return int(payload)
    raise CheckpointError(
        f"pending event of kind {kind!r} is not checkpointable"
    )


def _capture_sanitizer(san) -> Optional[dict]:
    if san is None:
        return None
    return {
        "report": san.report.to_dict(),
        "addressable": san._addressable.copy(),
        "freed": san._freed.copy(),
        "init": san._init.copy(),
        "w_block": san._w_block.copy(),
        "w_thread": san._w_thread.copy(),
        "w_epoch": san._w_epoch.copy(),
        "w_atomic": san._w_atomic.copy(),
        "w_cycle": san._w_cycle.copy(),
        "w_value": san._w_value.copy(),
        "r_block": san._r_block.copy(),
        "r_thread": san._r_thread.copy(),
        "r_epoch": san._r_epoch.copy(),
        "r_atomic": san._r_atomic.copy(),
        "r_cycle": san._r_cycle.copy(),
        "alive": san._alive.copy(),
        "start": san._start.copy(),
        "fence": san._fence.copy(),
        "uids": san._uids,
        "epochs": dict(san._epochs),
        "shared": {
            uid: tuple(arr.copy() for arr in arrays)
            for uid, arrays in san._shared.items()
        },
        "bar_seen": list(san._bar_seen),
    }


# ======================================================================
# Restore
# ======================================================================
def restore_document(gpu, doc: dict) -> None:
    """Overwrite ``gpu``'s state with a checkpoint document.

    ``gpu`` must come from a deterministic replay of the same host
    program: same config, same memory size, same sanitize setting, same
    registered kernels and the same host launches issued so far.
    """
    _validate_header(gpu, doc)
    state = doc["state"]
    if state["gpu"]["launch_seq"] != gpu._launch_seq:
        raise CheckpointError(
            f"host launch replay mismatch: checkpoint saw "
            f"{state['gpu']['launch_seq']} host launches, replay made "
            f"{gpu._launch_seq}"
        )
    for name in {entry["func"] for entry in state["kde"]["entries"]}:
        if name not in gpu.kernels:
            raise CheckpointError(f"kernel {name!r} not registered in replay")
    _restore_state(gpu, state)


def prepare_resume(gpu, doc: dict) -> None:
    """Arm ``gpu`` to restore ``doc`` when the matching run begins.

    The replayed host program re-executes earlier :meth:`GPU.run` calls
    normally; the run whose index matches the checkpoint's consumes the
    pending restore at entry and continues from the checkpointed cycle.
    """
    _validate_header(gpu, doc)
    if doc["run_index"] <= gpu._run_index:
        raise CheckpointError(
            f"checkpoint targets run {doc['run_index']} but the replay is "
            f"already past run {gpu._run_index}"
        )
    gpu._pending_resume = (doc["run_index"], doc)


def _validate_header(gpu, doc: dict) -> None:
    if doc.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {doc.get('format')!r}"
        )
    if doc.get("salt") != CODE_VERSION:
        raise CheckpointError(
            f"stale checkpoint: written by {doc.get('salt')!r}, "
            f"running {CODE_VERSION!r}"
        )
    if doc.get("config") != gpu.config.to_dict():
        raise CheckpointError("checkpoint GPU config differs from the replay")
    if doc.get("memory_words") != gpu.memory.size_words:
        raise CheckpointError("checkpoint memory size differs from the replay")
    if doc.get("sanitize") != (gpu.sanitizer is not None):
        raise CheckpointError(
            "checkpoint sanitize setting differs from the replay"
        )
    if gpu.tracer is not None:
        raise CheckpointError("cannot restore with a tracer/profiler attached")


def _restore_state(gpu, state: dict) -> None:
    stats = gpu.stats

    # -------------------- memory --------------------------------------
    mem = state["memory"]
    gpu.memory.i[:] = mem["buffer"]
    gpu.memory._next_free = mem["next_free"]
    gpu.memory._live = dict(mem["live"])

    # -------------------- statistics ----------------------------------
    for name, value in state["stats"]["counters"].items():
        setattr(stats, name, value)
    co = state["stats"]["coalescing"]
    stats.coalescing.warp_accesses = co["warp_accesses"]
    stats.coalescing.transactions = co["transactions"]
    stats.coalescing.lanes = co["lanes"]
    stats.coalescing.histogram[:] = np.asarray(co["histogram"], dtype=np.int64)
    launches = [LaunchRecord.from_dict(d) for d in state["stats"]["launches"]]
    stats.launches = launches

    # -------------------- memory system -------------------------------
    dram = gpu.memsys.dram
    ds = state["dram"]["stats"]
    dram.stats.n_read = ds["n_read"]
    dram.stats.n_write = ds["n_write"]
    dram.stats.row_hits = ds["row_hits"]
    dram.stats.row_misses = ds["row_misses"]
    dram.stats.n_activity = ds["n_activity"]
    dram._bank_next_free = list(state["dram"]["bank_next_free"])
    dram._bank_open_row = list(state["dram"]["bank_open_row"])
    dram._bus_next_free = state["dram"]["bus_next_free"]
    dram._activity_end = state["dram"]["activity_end"]
    _restore_cache(gpu.memsys.l2, state["l2"])

    # -------------------- aggregated groups ---------------------------
    ages: List[AggregatedGroupEntry] = []
    for data in state["ages"]:
        age = AggregatedGroupEntry(
            data["agg_dims"],
            data["param_addr"],
            launches[data["record"]] if data["record"] is not None else None,
        )
        age.next_block = data["next_block"]
        age.exe_blocks = data["exe_blocks"]
        age.in_agt = data["in_agt"]
        age.agt_index = data["agt_index"]
        age.gate_until = data["gate_until"]
        age.fetch_issued = data["fetch_issued"]
        ages.append(age)
    for age, data in zip(ages, state["ages"]):
        if data["next"] is not None:
            age.next = ages[data["next"]]

    # -------------------- kernel distributor --------------------------
    distributor = gpu.distributor
    distributor._entries = [None] * distributor.num_entries
    for data in state["kde"]["entries"]:
        entry = KDEEntry(
            data["index"],
            gpu.kernels[data["func"]],
            data["grid_dims"],
            data["block_dims"],
            data["param_addr"],
            launches[data["record"]] if data["record"] is not None else None,
            data["stream_id"],
        )
        entry.next_block = data["next_block"]
        entry.exe_blocks = data["exe_blocks"]
        entry.nagei = ages[data["nagei"]] if data["nagei"] is not None else None
        entry.lagei = ages[data["lagei"]] if data["lagei"] is not None else None
        entry.agg_exe_blocks = data["agg_exe_blocks"]
        entry.marked = data["marked"]
        entry.ever_marked = data["ever_marked"]
        distributor._entries[entry.index] = entry
    distributor.occupied = state["kde"]["occupied"]
    distributor.peak_occupied = state["kde"]["peak_occupied"]

    # -------------------- scheduler / AGT -----------------------------
    scheduler = gpu.scheduler
    sched = state["scheduler"]
    scheduler.fcfs.clear()
    scheduler.fcfs.extend(distributor._entries[index] for index in sched["fcfs"])
    agt = scheduler.agt
    agt._slots = [
        ages[index] if index is not None else None
        for index in sched["agt_slots"]
    ]
    agt.occupied = sched["agt_occupied"]
    agt.peak_occupied = sched["agt_peak_occupied"]
    scheduler._distribute_scheduled = sched["distribute_scheduled"]
    scheduler._gate_retries = set(sched["gate_retries"])
    scheduler._smx_cursor = sched["smx_cursor"]

    # -------------------- KMU / HWQs ----------------------------------
    kmu = gpu.kmu
    km = state["kmu"]
    kmu._busy_until = km["busy_until"]
    kmu._dispatch_scheduled = km["dispatch_scheduled"]
    kmu._reserved_entries = km["reserved_entries"]
    hq = kmu.host_queues
    for hwq, data in zip(hq.hwqs, km["hwqs"]):
        hwq.pending.clear()
        hwq.pending.extend(gpu._specs_by_seq[seq] for seq in data["pending"])
        hwq.head_inflight = data["head_inflight"]
    hq._stream_to_hwq = dict(km["stream_to_hwq"])
    hq._next_stream = km["next_stream"]
    kmu.device_pending.clear()
    for kernel_name, grid, block, param_addr, record in km["device_pending"]:
        kmu.device_pending.append(
            DeviceLaunchSpec(
                kernel_name,
                grid,
                block,
                param_addr,
                launches[record] if record is not None else None,
            )
        )

    # Patch dispatch records back onto the replayed host specs so the
    # host program's Event handles resolve after the resume.
    for seq, record in state["spec_records"].items():
        spec = gpu._specs_by_seq.get(seq)
        if spec is None:
            raise CheckpointError(
                f"replay did not produce host launch seq {seq}"
            )
        spec.record = launches[record] if record is not None else None

    # -------------------- device runtime ------------------------------
    gpu.runtime._stream_counter = state["runtime"]["stream_counter"]
    gpu.runtime._param_sizes = dict(state["runtime"]["param_sizes"])

    # -------------------- SMXs ----------------------------------------
    for smx, data in zip(gpu.smxs, state["smxs"]):
        smx.free_threads = data["free_threads"]
        smx.free_blocks = data["free_blocks"]
        smx.free_regs = data["free_regs"]
        smx.free_shared = data["free_shared"]
        smx.free_warp_slots = data["free_warp_slots"]
        smx.resident_warps = data["resident_warps"]
        smx._seq = data["seq"]
        smx._free_slots = list(data["free_slots"])
        _restore_cache(smx.l1, data["l1"])
        smx.blocks = []
        smx._ready_heap = []
        for tb_data in data["blocks"]:
            func = gpu.kernels[tb_data["func"]]
            age_index = tb_data["age"]
            tb = ThreadBlock(
                smx,
                func,
                tb_data["grid_dims"],
                tb_data["block_dims"],
                tb_data["block_linear_index"],
                tb_data["param_addr"],
                distributor._entries[tb_data["kde"]],
                ages[age_index] if age_index is not None else None,
                list(tb_data["slots"]),
            )
            tb.shared[:] = tb_data["shared"]
            tb._alive_warps = tb_data["alive_warps"]
            tb._barrier_arrivals = tb_data["barrier_arrivals"]
            tb.san_uid = tb_data["san_uid"]
            for warp, w in zip(tb.warps, tb_data["warps"]):
                warp.regs_i[:] = w["regs_i"]
                warp.regs_f[:] = w["regs_f"]
                warp.stack = [
                    [frame[0], frame[1], np.array(frame[2], dtype=bool)]
                    + list(frame[3:])
                    for frame in w["stack"]
                ]
                warp.ready_cycle = w["ready_cycle"]
                warp.finished = w["finished"]
                warp.at_barrier = w["at_barrier"]
                warp.age = w["age"]
            smx.blocks.append(tb)

    # -------------------- ready heaps ---------------------------------
    if state["gheap"] is not None:
        gheap = []
        for sched_c, smx_id, ready, age_key, ref in state["gheap"]:
            ref_smx, tb_index, warp_index = ref
            warp = gpu.smxs[ref_smx].blocks[tb_index].warps[warp_index]
            gheap.append((sched_c, smx_id, ready, age_key, warp))
        heapq.heapify(gheap)
        gpu._gheap = gheap
    else:
        gpu._gheap = None
        # Reference core: one live entry per runnable warp reproduces
        # the lazily-deduplicated heaps exactly (stale entries are
        # pop-and-discard no-ops in tick()/next_ready_cycle()).
        for smx in gpu.smxs:
            for tb in smx.blocks:
                for warp in tb.warps:
                    if not warp.finished and not warp.at_barrier:
                        heapq.heappush(
                            smx._ready_heap,
                            (warp.ready_cycle, warp.age, warp),
                        )

    # -------------------- pending events ------------------------------
    events = []
    for cycle, seq, kind, payload in state["events"]:
        payload = _decode_payload(gpu, launches, kind, payload)
        events.append((cycle, seq, gpu._event_fn(kind, payload), kind, payload))
    heapq.heapify(events)
    gpu._events = events

    # -------------------- sanitizer -----------------------------------
    _restore_sanitizer(gpu.sanitizer, state["sanitizer"])

    # -------------------- GPU scalars ---------------------------------
    g = state["gpu"]
    gpu.cycle = g["cycle"]
    gpu.active_warps = g["active_warps"]
    gpu._event_seq = g["event_seq"]
    gpu._launch_seq = g["launch_seq"]
    gpu._smx_ready_at = list(g["smx_ready_at"])
    gpu._local_arenas = list(g["local_arenas"])


def _restore_cache(cache, data: dict) -> None:
    cache._sets = [dict.fromkeys(tags) for tags in data["sets"]]
    accesses, hits, misses, evictions = data["stats"]
    cache.stats.accesses = accesses
    cache.stats.hits = hits
    cache.stats.misses = misses
    cache.stats.evictions = evictions


def _decode_payload(gpu, launches, kind: Optional[str], payload):
    if kind == "kmu_activate":
        if payload[0] == "host":
            spec = gpu._specs_by_seq.get(payload[1])
            if spec is None:
                raise CheckpointError(
                    f"replay did not produce host launch seq {payload[1]}"
                )
            return spec
        _tag, kernel_name, grid, block, param_addr, record = payload
        return DeviceLaunchSpec(
            kernel_name,
            grid,
            block,
            param_addr,
            launches[record] if record is not None else None,
        )
    return payload


def _restore_sanitizer(san, data: Optional[dict]) -> None:
    if (san is None) != (data is None):
        raise CheckpointError(
            "checkpoint sanitize setting differs from the replay"
        )
    if san is None:
        return
    san.report = SanitizerReport.from_dict(data["report"])
    san._addressable = data["addressable"].copy()
    san._freed = data["freed"].copy()
    san._init = data["init"].copy()
    san._w_block = data["w_block"].copy()
    san._w_thread = data["w_thread"].copy()
    san._w_epoch = data["w_epoch"].copy()
    san._w_atomic = data["w_atomic"].copy()
    san._w_cycle = data["w_cycle"].copy()
    san._w_value = data["w_value"].copy()
    san._r_block = data["r_block"].copy()
    san._r_thread = data["r_thread"].copy()
    san._r_epoch = data["r_epoch"].copy()
    san._r_atomic = data["r_atomic"].copy()
    san._r_cycle = data["r_cycle"].copy()
    san._alive = data["alive"].copy()
    san._start = data["start"].copy()
    san._fence = data["fence"].copy()
    san._uids = data["uids"]
    san._epochs = dict(data["epochs"])
    san._shared = {
        uid: tuple(arr.copy() for arr in arrays)
        for uid, arrays in data["shared"].items()
    }
    san._bar_seen = set(data["bar_seen"])


# ======================================================================
# File I/O
# ======================================================================
def checkpoint_path_for(directory, fingerprint: str) -> Path:
    """Canonical checkpoint file path for a job fingerprint."""
    return Path(directory) / f"{fingerprint}.ckpt"


def save_checkpoint(path, doc: dict) -> None:
    """Atomically write a checkpoint document to ``path``.

    The temporary file lives in the target directory so ``os.replace``
    is a same-filesystem atomic rename (readers and concurrent writers
    never observe a torn file).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = MAGIC + zlib.compress(
        pickle.dumps(doc, protocol=4), 1
    )
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.stem[:12]}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path, fingerprint: Optional[str] = None) -> dict:
    """Read and validate a checkpoint document from ``path``.

    Raises :class:`CheckpointError` for missing, truncated, corrupt,
    wrong-format, stale-salt or wrong-fingerprint files — callers decide
    whether to quarantine and fall back to a fresh run.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not raw.startswith(MAGIC):
        raise CheckpointError(f"{path} is not a checkpoint file")
    try:
        doc = pickle.loads(zlib.decompress(raw[len(MAGIC):]))
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format in {path}: "
            f"{doc.get('format') if isinstance(doc, dict) else type(doc)!r}"
        )
    if doc.get("salt") != CODE_VERSION:
        raise CheckpointError(
            f"stale checkpoint {path}: written by {doc.get('salt')!r}, "
            f"running {CODE_VERSION!r}"
        )
    if fingerprint is not None and doc.get("fingerprint") not in (None, fingerprint):
        raise CheckpointError(
            f"checkpoint {path} belongs to a different job "
            f"({doc.get('fingerprint')!r})"
        )
    return doc


def quarantine_checkpoint(path) -> Optional[Path]:
    """Move an unusable checkpoint aside to ``<name>.corrupt``.

    Returns the quarantine path, or ``None`` when the file was already
    gone (another worker may have quarantined it first).
    """
    path = Path(path)
    target = path.with_suffix(path.suffix + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target
