"""Deterministic checkpoint/restore of a mid-flight simulation.

:mod:`repro.state.snapshot` serializes the *complete* simulator state —
global memory and allocator, per-SMX thread blocks and warps, the Kernel
Distributor, KMU and HWQ queues, AGT entries and spilled group
descriptors, pending launch records, statistics, and the pending event
heap — to a versioned, code-salted document that can be written
atomically to disk and restored bit-identically into a replayed host
program (see ``docs/architecture.md``, "Checkpoint & resume").
"""

from .snapshot import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    capture_document,
    checkpoint_path_for,
    load_checkpoint,
    prepare_resume,
    quarantine_checkpoint,
    restore_document,
    save_checkpoint,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "capture_document",
    "checkpoint_path_for",
    "load_checkpoint",
    "prepare_resume",
    "quarantine_checkpoint",
    "restore_document",
    "save_checkpoint",
]
