"""The aggregation operation command (Section 4.2, "Launching Aggregated
Groups").

When one or more threads of a warp invoke ``cudaLaunchAggGroup`` in the
same dynamic instruction, the SMX combines their launches into a single
aggregation operation command carrying one :class:`AggLaunchRequest` per
launching lane.  The SMX scheduler then runs the Fig. 5 procedure on each
request (implemented in
:meth:`repro.sim.smx_scheduler.SMXScheduler.process_aggregation`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.kernel import LaunchDims


@dataclass(frozen=True)
class AggLaunchRequest:
    """One lane's aggregated-group launch within an aggregation command."""

    #: Name of the kernel function the new TBs execute (and may coalesce to).
    kernel_name: str
    #: Word address of the group's parameter buffer.
    param_addr: int
    #: Aggregated-group dimensions (number of TBs per axis).
    agg_dims: LaunchDims
    #: Thread-block dimensions; must match the eligible kernel's.
    block_dims: LaunchDims
    #: Hardware thread index of the launching lane (drives the AGT hash).
    hw_tid: int
