"""The Aggregated Group Table (AGT) and Aggregated Group Entries (AGE).

Section 4.2: the AGT is an on-chip table tracking every pending aggregated
group.  Free-entry lookup uses the paper's hash, ``ind = hw_tid &
(AGT_size - 1)`` — a single-cycle probe of one slot.  If the probed slot is
busy the group's information stays in global memory instead ("spilled");
when the SMX scheduler later reaches a spilled group it must first fetch
the information from DRAM, paying a memory-traffic-dependent penalty.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from ..sim.kernel import LaunchDims, dims_total
from ..sim.stats import LaunchRecord


class AggregatedGroupEntry:
    """One aggregated group: dimensions, parameters, and scheduling state.

    Mirrors the paper's AGE fields: the three-dimensional aggregated-group
    size (``AggDim``), the parameter address (``Param``), the link to the
    next group coalesced to the same kernel (``Next``), and the count of
    TBs in execution (``ExeBL``).
    """

    __slots__ = (
        "agg_dims",
        "param_addr",
        "next",
        "total_blocks",
        "next_block",
        "exe_blocks",
        "in_agt",
        "agt_index",
        "gate_until",
        "fetch_issued",
        "record",
    )

    def __init__(self, agg_dims: LaunchDims, param_addr: int, record: LaunchRecord) -> None:
        self.agg_dims = agg_dims
        self.param_addr = param_addr
        self.next: Optional["AggregatedGroupEntry"] = None
        self.total_blocks = dims_total(agg_dims)
        self.next_block = 0
        self.exe_blocks = 0
        #: True while this group's information is held on-chip in the AGT.
        self.in_agt = False
        self.agt_index: Optional[int] = None
        #: For spilled groups: cycle at which the DRAM fetch of the group
        #: information completes (None until the fetch is issued).
        self.gate_until: Optional[int] = None
        self.fetch_issued = False
        self.record = record

    @property
    def fully_distributed(self) -> bool:
        return self.next_block >= self.total_blocks

    @property
    def done(self) -> bool:
        return self.fully_distributed and self.exe_blocks == 0


class AggregatedGroupTable:
    """Fixed-size on-chip AGT with single-probe hash allocation."""

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("AGT size must be a positive power of two")
        self.size = entries
        self._slots: List[Optional[AggregatedGroupEntry]] = [None] * entries
        self.occupied = 0
        self.peak_occupied = 0

    def hash_index(self, hw_tid: int) -> int:
        """The paper's hash: ``ind = hw_tid & (AGT_size - 1)``."""
        return hw_tid & (self.size - 1)

    def try_alloc(self, hw_tid: int, age: AggregatedGroupEntry) -> bool:
        """Probe the hashed slot once; on success the group lives on-chip."""
        index = self.hash_index(hw_tid)
        if self._slots[index] is not None:
            return False
        self._slots[index] = age
        age.in_agt = True
        age.agt_index = index
        self.occupied += 1
        if self.occupied > self.peak_occupied:
            self.peak_occupied = self.occupied
        return True

    def free(self, age: AggregatedGroupEntry) -> None:
        """Release a group's slot once all of its TBs completed."""
        if age.agt_index is None:
            return
        assert self._slots[age.agt_index] is age
        self._slots[age.agt_index] = None
        age.agt_index = None
        age.in_agt = False
        self.occupied -= 1

    def slot(self, index: int) -> Optional[AggregatedGroupEntry]:
        return self._slots[index]
