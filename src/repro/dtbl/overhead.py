"""Section 4.3 hardware-overhead model.

The paper quantifies DTBL's on-chip cost: new KDE fields (NAGEI, LAGEI),
the FCFS controller's first-marked flag, SSCR/TBCR AGEI fields — 1096 bytes
total — plus the AGT itself at 20 bytes per entry (20 KB for 1024 entries,
about 0.5% of the SMX shared-memory+register area).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GPUConfig


@dataclass(frozen=True)
class OverheadReport:
    """On-chip SRAM cost of the DTBL extension for a given configuration."""

    agt_entries: int
    agt_entry_bytes: int
    agt_sram_bytes: int
    register_bytes: int
    total_bytes: int
    #: AGT SRAM as a fraction of total SMX shared memory + register file.
    fraction_of_smx_storage: float

    def rows(self) -> list:
        """Table rows for the overhead bench/report."""
        return [
            ("AGT entries", self.agt_entries),
            ("AGT bytes/entry", self.agt_entry_bytes),
            ("AGT SRAM (bytes)", self.agt_sram_bytes),
            ("KDE/FCFS/SSCR/TBCR fields (bytes)", self.register_bytes),
            ("Total (bytes)", self.total_bytes),
            ("Fraction of SMX storage", round(self.fraction_of_smx_storage, 5)),
        ]


def overhead_report(config: GPUConfig) -> OverheadReport:
    """Compute the Section 4.3 overhead numbers for ``config``."""
    agt_bytes = config.agt_sram_bytes
    # Register file: 65536 x 32-bit registers per SMX, plus shared memory.
    smx_storage = config.num_smx * (
        config.registers_per_smx * 4 + config.shared_mem_size
    )
    total = agt_bytes + config.dtbl_register_bytes
    return OverheadReport(
        agt_entries=config.agt_entries,
        agt_entry_bytes=config.agt_entry_bytes,
        agt_sram_bytes=agt_bytes,
        register_bytes=config.dtbl_register_bytes,
        total_bytes=total,
        fraction_of_smx_storage=agt_bytes / smx_storage,
    )
