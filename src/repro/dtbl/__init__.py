"""The paper's contribution: Dynamic Thread Block Launch (Section 4).

* :mod:`repro.dtbl.agt` — the Aggregated Group Table and its entries;
* :mod:`repro.dtbl.aggregation` — the aggregation-operation command and
  thread-block coalescing procedure (Fig. 5);
* :mod:`repro.dtbl.overhead` — the Section 4.3 hardware-overhead model.

The scheduling half of DTBL lives in
:class:`repro.sim.smx_scheduler.SMXScheduler`, which consumes the data
structures defined here.
"""

from .agt import AggregatedGroupEntry, AggregatedGroupTable
from .aggregation import AggLaunchRequest
from .overhead import OverheadReport, overhead_report

__all__ = [
    "AggLaunchRequest",
    "AggregatedGroupEntry",
    "AggregatedGroupTable",
    "OverheadReport",
    "overhead_report",
]
