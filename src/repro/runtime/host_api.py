"""The user-facing Device API.

A :class:`Device` wraps one :class:`~repro.sim.gpu.GPU` instance with a
CUDA-runtime-flavoured host interface: memory allocation, host/device
copies, kernel registration, launches, and synchronization.

Example
-------
::

    from repro import Device, ExecutionMode

    dev = Device(mode=ExecutionMode.DTBL)
    dev.register(my_kernel_function)
    data = dev.upload(np.arange(1024))
    dev.launch("my_kernel", grid=4, block=256, params=[data, 1024])
    dev.synchronize()
    print(dev.stats.summary())
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..config import GPUConfig, LatencyModel
from ..sim.gpu import GPU
from ..sim.kernel import KernelFunction
from ..sim.stats import SimStats
from .modes import ExecutionMode


class Device:
    """A simulated GPU device with a host-API surface."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        mode: ExecutionMode = ExecutionMode.FLAT,
        latency: Optional[LatencyModel] = None,
        memory_words: int = 4 * 1024 * 1024,
    ) -> None:
        self.mode = mode
        self.gpu = GPU(
            config=config,
            latency=latency if latency is not None else mode.latency_model(),
            memory_words=memory_words,
        )
        self._events: dict = {}

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def alloc(self, words: int) -> int:
        """cudaMalloc: allocate ``words`` 8-byte words; returns the address."""
        return self.gpu.memory.alloc(words)

    def upload(self, values: np.ndarray) -> int:
        """Allocate and copy a host array to the device; returns the address."""
        return self.gpu.memory.alloc_array(np.asarray(values))

    def download_ints(self, addr: int, count: int) -> np.ndarray:
        return self.gpu.memory.read_ints(addr, count)

    def download_floats(self, addr: int, count: int) -> np.ndarray:
        return self.gpu.memory.read_floats(addr, count)

    def write_int(self, addr: int, value: int) -> None:
        self.gpu.memory.write_int(addr, value)

    def read_int(self, addr: int) -> int:
        return self.gpu.memory.read_int(addr)

    def memset(self, addr: int, value: int, words: int) -> None:
        """cudaMemset (word-granular): fill [addr, addr+words) with value."""
        self.gpu.memory.check_range(addr, words)
        self.gpu.memory.i[addr : addr + words] = value

    def copy_device(self, dst: int, src: int, words: int) -> None:
        """cudaMemcpyDeviceToDevice (word-granular)."""
        memory = self.gpu.memory
        memory.check_range(src, words)
        memory.check_range(dst, words)
        memory.i[dst : dst + words] = memory.i[src : src + words].copy()

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def register(self, func: KernelFunction) -> KernelFunction:
        return self.gpu.register_kernel(func)

    def launch(
        self,
        kernel_name: str,
        grid,
        block,
        params: Sequence[Union[int, float]] = (),
        stream: int = 0,
    ) -> int:
        """Host-side kernel launch; returns the parameter buffer address."""
        return self.gpu.host_launch(kernel_name, grid, block, params, stream)

    def synchronize(self, max_cycles: Optional[int] = 200_000_000) -> SimStats:
        """cudaDeviceSynchronize: run the simulation until the GPU drains."""
        return self.gpu.run(max_cycles=max_cycles)

    def attach_tracer(self, tracer) -> None:
        """Attach an execution tracer (see :mod:`repro.sim.tracing`)."""
        self.gpu.tracer = tracer

    # ------------------------------------------------------------------
    # Events (cudaEvent-style cycle markers; host API is synchronous, so
    # record after the synchronize whose span you want to measure)
    # ------------------------------------------------------------------
    def record_event(self, name: str) -> int:
        """Record the current simulated cycle under ``name``."""
        cycle = self.gpu.cycle
        self._events[name] = cycle
        return cycle

    def elapsed_cycles(self, start: str, end: str) -> int:
        """Cycles between two recorded events (cudaEventElapsedTime)."""
        try:
            return self._events[end] - self._events[start]
        except KeyError as exc:
            raise KeyError(f"event {exc.args[0]!r} was never recorded") from None

    # ------------------------------------------------------------------
    @property
    def stats(self) -> SimStats:
        return self.gpu.stats

    @property
    def cycles(self) -> int:
        return self.gpu.cycle
