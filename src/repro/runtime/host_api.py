"""The user-facing Device API.

A :class:`Device` wraps one :class:`~repro.sim.gpu.GPU` instance with a
CUDA-runtime-shaped host interface: memory allocation (:class:`DeviceArray`
handles that round-trip dtype and shape), :class:`Stream` objects with
per-stream launch/synchronize, kernel launches returning :class:`Event`
handles, and device-wide synchronization.

Example
-------
::

    from repro import Device, ExecutionMode

    with Device(mode=ExecutionMode.DTBL) as dev:
        dev.register(my_kernel_function)
        data = dev.upload(np.arange(1024))
        out = dev.alloc(1024)
        evt = dev.launch("my_kernel", grid=4, block=256, params=[data, out, 1024])
        evt.wait()
        print(evt.elapsed_cycles(), out.download()[:8])

:class:`DeviceArray` and :class:`Event` subclass :class:`int` (the device
address / the parameter-buffer address), so code written against the old
address-passing API keeps working unchanged.
"""

from __future__ import annotations

import operator
from typing import Optional, Sequence, Union

import numpy as np

import dataclasses

from ..config import GPUConfig, LatencyModel
from ..errors import ConfigError, DeviceError, MemoryError_, SimulationError
from ..sim.gpu import GPU
from ..sim.kernel import KernelFunction
from ..sim.sanitizer import SanitizerReport
from ..sim.stats import SimStats
from .modes import ExecutionMode

#: Default watchdog for synchronize()/wait().
DEFAULT_MAX_CYCLES = 200_000_000


class DeviceArray(int):
    """A device allocation: an :class:`int` address plus dtype and shape.

    Behaves exactly like the raw word address in arithmetic and kernel
    parameters (it *is* the address), while :meth:`download` restores the
    uploaded array's dtype and shape without the caller re-supplying word
    counts.
    """

    # int subclasses cannot carry __slots__; attributes live in __dict__.

    def __new__(cls, addr, device, shape, dtype, words):
        self = super().__new__(cls, addr)
        self._device = device
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.words = int(words)
        return self

    @property
    def addr(self) -> int:
        """The base word address of the allocation."""
        return int(self)

    @property
    def size(self) -> int:
        """Number of elements (== words; one element per 8-byte word)."""
        return self.words

    def download(self) -> np.ndarray:
        """Copy back to the host, restoring dtype and shape.

        Raises :class:`~repro.errors.MemoryError_` once the array has been
        passed to :meth:`Device.free`.
        """
        if getattr(self, "_freed", False):
            raise MemoryError_(
                f"download() of freed DeviceArray at address {int(self)}"
            )
        memory = self._device._memory()
        if np.issubdtype(self.dtype, np.floating):
            flat = memory.read_floats(self.addr, self.words)
        else:
            flat = memory.read_ints(self.addr, self.words)
        return flat.astype(self.dtype, copy=False).reshape(self.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceArray(addr={int(self)}, shape={self.shape}, "
            f"dtype={self.dtype})"
        )


class Event(int):
    """Handle for one host kernel launch (cudaEvent-flavoured).

    Subclasses :class:`int` with the launch's parameter-buffer address —
    the old :meth:`Device.launch` return value — so existing callers that
    treated the result as an address are unaffected.
    """

    def __new__(cls, device, spec):
        self = super().__new__(cls, spec.param_addr)
        self._device = device
        self._spec = spec
        return self

    @property
    def record(self):
        """The :class:`~repro.sim.stats.LaunchRecord`, once dispatched."""
        return self._spec.record

    @property
    def done(self) -> bool:
        """True once the launch has fully completed."""
        record = self._spec.record
        return record is not None and record.completed_cycle is not None

    def wait(self, max_cycles: Optional[int] = DEFAULT_MAX_CYCLES) -> "Event":
        """Run the simulation until this launch completes (cudaEventSynchronize).

        The host API is synchronous, so this drains the whole device — the
        same as :meth:`Device.synchronize` — but returns ``self`` for
        chaining and asserts this particular launch finished.
        """
        if not self.done:
            self._device.synchronize(max_cycles=max_cycles)
        if not self.done:
            raise SimulationError(
                f"launch of {self._spec.kernel_name!r} did not complete"
            )
        return self

    def elapsed_cycles(self) -> int:
        """Cycles from enqueue-side dispatch to completion of this launch."""
        record = self._spec.record
        if record is None or record.completed_cycle is None:
            raise SimulationError(
                f"launch of {self._spec.kernel_name!r} has not completed; "
                "call .wait() or Device.synchronize() first"
            )
        return record.completed_cycle - record.launch_cycle

    def sanitizer_report(self) -> SanitizerReport:
        """Sanitizer findings whose cycle falls in this launch's window.

        The window is [launch cycle, completion cycle] (open-ended while
        the launch is in flight), so findings from other launches running
        concurrently in that interval are included too — per-launch
        attribution finer than a cycle window would require tracking which
        KDE entry each block came from.  Requires ``Device(sanitize=True)``.
        """
        san = self._device.gpu.sanitizer
        if san is None:
            raise ConfigError(
                "sanitizer is not enabled; create the device with "
                "Device(sanitize=True) or GPUConfig(sanitize=True)"
            )
        record = self._spec.record
        if record is None:
            return san.report
        window = SanitizerReport()
        hi = record.completed_cycle
        for finding in san.report.findings:
            if finding.cycle >= record.launch_cycle and (
                hi is None or finding.cycle <= hi
            ):
                window.add(finding)
        return window


class Stream:
    """A software stream (cudaStream): launches in one stream serialize."""

    __slots__ = ("_device", "id")

    def __init__(self, device: "Device", stream_id: int) -> None:
        self._device = device
        self.id = int(stream_id)

    def launch(
        self,
        kernel_name: str,
        grid,
        block,
        params: Sequence[Union[int, float]] = (),
    ) -> Event:
        """Launch a kernel into this stream; returns its :class:`Event`."""
        return self._device.launch(kernel_name, grid, block, params, stream=self)

    def synchronize(self, max_cycles: Optional[int] = DEFAULT_MAX_CYCLES) -> SimStats:
        """Drain this stream (the synchronous host API drains the device)."""
        return self._device.synchronize(max_cycles=max_cycles)

    def __int__(self) -> int:
        return self.id

    def __index__(self) -> int:
        return self.id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream(id={self.id})"


class Device:
    """A simulated GPU device with a host-API surface.

    Usable as a context manager: ``with Device(...) as dev: ...`` closes the
    device on exit, after which further operations raise
    :class:`~repro.errors.DeviceError`.
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        mode: ExecutionMode = ExecutionMode.FLAT,
        latency: Optional[LatencyModel] = None,
        memory_words: int = 4 * 1024 * 1024,
        sanitize: Optional[bool] = None,
    ) -> None:
        _validate_mode_latency(mode, latency)
        if sanitize is not None:
            config = dataclasses.replace(
                config if config is not None else GPUConfig.k20c(),
                sanitize=bool(sanitize),
            )
        self.mode = mode
        self.gpu = GPU(
            config=config,
            latency=latency if latency is not None else mode.latency_model(),
            memory_words=memory_words,
        )
        self._named_events: dict = {}
        self._launch_interceptor = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Device":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Release the device; further operations raise DeviceError."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise DeviceError("operation on a closed Device")

    def _memory(self):
        self._check_open()
        return self.gpu.memory

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def alloc(self, words: int, dtype=np.int64) -> DeviceArray:
        """cudaMalloc: allocate ``words`` 8-byte words.

        Returns a :class:`DeviceArray` (an ``int`` address with dtype/shape
        metadata for :meth:`download`).
        """
        addr = self._memory().alloc(words)
        return DeviceArray(addr, self, (int(words),), dtype, words)

    def upload(self, values: np.ndarray) -> DeviceArray:
        """Allocate and copy a host array to the device.

        The returned :class:`DeviceArray` remembers the array's dtype and
        shape; ``array.download()`` restores both.
        """
        arr = np.asarray(values)
        memory = self._memory()
        addr = memory.alloc_array(arr)
        return DeviceArray(addr, self, arr.shape, arr.dtype, arr.size)

    def download(
        self,
        array,
        count: Optional[int] = None,
        dtype=None,
    ) -> np.ndarray:
        """Copy device data back to the host.

        With a :class:`DeviceArray`, dtype and shape round-trip
        automatically and ``count``/``dtype`` must not be passed.  With a
        raw address, ``count`` is required and ``dtype`` selects the view
        (default int64).
        """
        self._check_open()
        if isinstance(array, DeviceArray):
            if count is not None or dtype is not None:
                raise TypeError(
                    "count/dtype are derived from the DeviceArray; "
                    "pass a raw address to override them"
                )
            return array.download()
        if count is None:
            raise TypeError("download(addr, count) requires count for raw addresses")
        addr = operator.index(array)
        np_dtype = np.dtype(dtype if dtype is not None else np.int64)
        if np.issubdtype(np_dtype, np.floating):
            flat = self.gpu.memory.read_floats(addr, count)
        else:
            flat = self.gpu.memory.read_ints(addr, count)
        return flat.astype(np_dtype, copy=False)

    def free(self, array) -> None:
        """cudaFree.

        The simulator's global memory uses a bump allocator, so only the
        most recent live allocation's words are actually reclaimed; freeing
        older allocations removes them from the live-range map but leaves
        the high-water mark in place (footprint statistics intentionally
        track the peak).  Freeing a :class:`DeviceArray` twice raises
        :class:`~repro.errors.MemoryError_`, as does a later
        :meth:`DeviceArray.download`; with the sanitizer enabled, kernel
        accesses to the freed range are reported as use-after-free.
        """
        memory = self._memory()
        if isinstance(array, DeviceArray):
            if getattr(array, "_freed", False):
                raise MemoryError_(
                    f"double free of DeviceArray at address {int(array)}"
                )
            memory.free(array.addr, array.words)
            array._freed = True
        # Raw addresses carry no extent; accept and ignore (the old API had
        # no free at all, so this is strictly more than before).

    def download_ints(self, addr: int, count: int) -> np.ndarray:
        self._check_open()
        return self.gpu.memory.read_ints(addr, count)

    def download_floats(self, addr: int, count: int) -> np.ndarray:
        self._check_open()
        return self.gpu.memory.read_floats(addr, count)

    def write_int(self, addr: int, value: int) -> None:
        self._memory().write_int(addr, value)

    def read_int(self, addr: int) -> int:
        return self._memory().read_int(addr)

    def memset(self, addr: int, value: int, words: int) -> None:
        """cudaMemset (word-granular): fill [addr, addr+words) with value."""
        memory = self._memory()
        memory.check_range(addr, words)
        memory.i[addr : addr + words] = value
        if memory.observer is not None:
            memory.observer.on_host_write(addr, words)

    def copy_device(self, dst: int, src: int, words: int) -> None:
        """cudaMemcpyDeviceToDevice (word-granular)."""
        memory = self._memory()
        memory.check_range(src, words)
        memory.check_range(dst, words)
        memory.i[dst : dst + words] = memory.i[src : src + words].copy()
        if memory.observer is not None:
            memory.observer.on_host_write(dst, words)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def stream(self) -> Stream:
        """cudaStreamCreate: a new software stream with a unique id."""
        self._check_open()
        return Stream(self, self.gpu.kmu.host_queues.create_stream())

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def register(self, func: KernelFunction) -> KernelFunction:
        self._check_open()
        return self.gpu.register_kernel(func)

    def launch(
        self,
        kernel_name: str,
        grid,
        block,
        params: Sequence[Union[int, float]] = (),
        stream: Union[int, Stream] = 0,
    ) -> Event:
        """Host-side kernel launch; returns an :class:`Event` handle.

        The Event compares equal to the parameter-buffer address (the old
        return value) and adds ``.wait()`` / ``.elapsed_cycles()``.
        """
        self._check_open()
        if self._launch_interceptor is not None:
            handled = self._launch_interceptor(
                kernel_name, grid, block, params, operator.index(stream)
            )
            if handled is not None:
                return handled
        spec = self.gpu.host_launch(
            kernel_name, grid, block, params, operator.index(stream)
        )
        return Event(self, spec)

    def install_launch_interceptor(self, interceptor) -> None:
        """Route host launches through ``interceptor`` first.

        ``interceptor(kernel_name, grid, block, params, stream)`` either
        returns an :class:`Event` (the launch was handled — e.g. the
        persistent runtime turned it into task-queue records plus a
        worker launch) or ``None`` to fall through to the normal path.
        Pass ``None`` to uninstall.
        """
        self._launch_interceptor = interceptor

    def synchronize(
        self, max_cycles: Optional[int] = DEFAULT_MAX_CYCLES
    ) -> SimStats:
        """cudaDeviceSynchronize: run the simulation until the GPU drains."""
        self._check_open()
        return self.gpu.run(max_cycles=max_cycles)

    def attach_tracer(self, tracer) -> None:
        """Attach an execution tracer (see :mod:`repro.sim.tracing`)."""
        self._check_open()
        self.gpu.tracer = tracer

    def configure_checkpoint(
        self,
        every: Optional[int],
        path=None,
        on_checkpoint=None,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Enable periodic state checkpointing (see :mod:`repro.state`).

        Every ``every`` simulated cycles the full simulator state is
        captured and written atomically to ``path`` (when given) and/or
        passed to ``on_checkpoint(document)``.  The configuration lives on
        the device so it covers every internal ``synchronize()`` a
        workload driver performs, not just one call.  ``fingerprint``
        stamps the files so a sweep job never resumes from another job's
        checkpoint.  Pass ``every=None`` to disable.
        """
        self._check_open()
        gpu = self.gpu
        gpu._checkpoint_every = every
        gpu._checkpoint_path = path
        gpu._on_checkpoint = on_checkpoint
        gpu._checkpoint_fingerprint = fingerprint

    # ------------------------------------------------------------------
    # Named cycle markers (legacy cudaEvent-style API; prefer the Event
    # handles returned by launch())
    # ------------------------------------------------------------------
    def record_event(self, name: str) -> int:
        """Record the current simulated cycle under ``name``."""
        self._check_open()
        cycle = self.gpu.cycle
        self._named_events[name] = cycle
        return cycle

    def elapsed_cycles(self, start: str, end: str) -> int:
        """Cycles between two recorded named events."""
        try:
            return self._named_events[end] - self._named_events[start]
        except KeyError as exc:
            raise KeyError(f"event {exc.args[0]!r} was never recorded") from None

    # ------------------------------------------------------------------
    # Sanitizer
    # ------------------------------------------------------------------
    @property
    def sanitizing(self) -> bool:
        """True iff the execution sanitizer is attached to this device."""
        return not self._closed and self.gpu.sanitizer is not None

    def sanitizer_report(self) -> SanitizerReport:
        """All sanitizer findings so far (requires ``sanitize=True``)."""
        self._check_open()
        san = self.gpu.sanitizer
        if san is None:
            raise ConfigError(
                "sanitizer is not enabled; create the device with "
                "Device(sanitize=True) or GPUConfig(sanitize=True)"
            )
        return san.report

    # ------------------------------------------------------------------
    @property
    def stats(self) -> SimStats:
        return self.gpu.stats

    @property
    def cycles(self) -> int:
        return self.gpu.cycle


def _validate_mode_latency(
    mode: ExecutionMode, latency: Optional[LatencyModel]
) -> None:
    """Reject contradictory mode/latency combinations.

    The old API silently honoured a user-passed ``latency`` even when it
    contradicted ``mode`` — e.g. ``Device(mode=ExecutionMode.CDP_IDEAL,
    latency=LatencyModel.measured_k20c())`` simulated measured latencies
    while reporting itself (and its stats) as an *ideal* configuration.
    """
    if latency is None:
        return
    ideal_model = LatencyModel.ideal()
    if mode.ideal and latency != ideal_model:
        raise ConfigError(
            f"mode {mode.value!r} is an ideal (zero-launch-latency) "
            "configuration but a non-ideal LatencyModel was passed; drop "
            f"the latency argument or use mode {mode.value[:-1]!r}"
        )
    if mode.is_dynamic and not mode.ideal and latency == ideal_model:
        hint = (
            f"; use mode {mode.value + 'i'!r} for the ideal configuration"
            if not (mode.compiler_optimized or mode.persistent)
            else ""
        )
        raise ConfigError(
            f"mode {mode.value!r} models measured launch latencies but an "
            f"all-zero (ideal) LatencyModel was passed{hint}"
        )
