"""The persistent-threads runtime (Atos baseline): resident workers.

:class:`PersistentRuntime` owns the global task queue and turns every
host launch of a rewritten kernel into queue traffic:

* at construction it allocates and initializes the queue descriptor,
  then :meth:`transform` runs the :mod:`repro.isa.persist` rewrite over
  the workload's kernel set (queue addresses bake into the IR as
  immediates) and installs a launch interceptor on the device;
* each intercepted launch first drains any outstanding work (the queue
  is one shared structure — drains serialize), verifies the previous
  drain's counters, seeds one published record per requested block, and
  launches the generated worker kernel as a fixed grid sized to SMX
  occupancy instead of the requested kernel;
* :meth:`verify_drained` asserts the queue invariants
  (``RESERVED == PUBLISHED == FINISHED``, nothing dropped, high-water
  within capacity) — a dropped fence or a stranded record fails loudly
  rather than silently under-computing.

Host seeding writes records directly (payload then sequence word, then
the ``RESERVED``/``PUBLISHED`` counters) while the device is idle, so
the sanitizer sees ordinary host initialization.  Tickets run
monotonically across drains within one execution: the ring's sequence
words stay consistent without re-initializing the storage each drain.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..isa.persist import (
    DEFAULT_WORKER_NAME,
    RECORD_WORDS,
    PersistResult,
    persist_transform,
)
from ..isa.taskqueue import (
    OFF_CLAIMED,
    OFF_DROPPED,
    OFF_FINISHED,
    OFF_HIGH_WATER,
    OFF_PUBLISHED,
    OFF_RESERVED,
    QueueLayout,
)
from ..sim.kernel import KernelFunction


class PersistentRuntimeError(RuntimeError):
    """The task queue violated a drain invariant."""


def _total(dims) -> int:
    """Flatten an int or (x, y, z) launch dimension into a count."""
    if isinstance(dims, (tuple, list)):
        return int(np.prod([int(d) for d in dims])) if dims else 1
    return int(dims)


class PersistentRuntime:
    """Queue-backed execution of a rewritten kernel set on one device."""

    def __init__(
        self,
        device,
        *,
        async_: bool = False,
        capacity: int = 16384,
        workers_per_smx: int = 1,
        defect: Optional[str] = None,
    ) -> None:
        self.device = device
        self.async_ = async_
        self.workers_per_smx = workers_per_smx
        self._defect = defect
        shape = QueueLayout(0, capacity, RECORD_WORDS)
        base = int(device.upload(shape.init_image()))
        self.queue = dataclasses.replace(shape, base=base)
        self._result: Optional[PersistResult] = None
        self._reserved = 0  # host-side mirror of the RESERVED counter

    # ------------------------------------------------------------------
    # Kernel-set rewrite
    # ------------------------------------------------------------------
    def transform(
        self, kernels: Sequence[KernelFunction]
    ) -> Sequence[KernelFunction]:
        """Rewrite ``kernels`` and hook this runtime into the device."""
        self._result = persist_transform(
            kernels, self.queue, async_=self.async_, defect=self._defect
        )
        if self._result.worker is not None:
            self.device.install_launch_interceptor(self._intercept)
        return self._result.kernels

    @property
    def worker_name(self) -> str:
        return self._result.worker if self._result else DEFAULT_WORKER_NAME

    @property
    def kernel_ids(self) -> Dict[str, int]:
        return dict(self._result.kernel_ids) if self._result else {}

    # ------------------------------------------------------------------
    # Launch interception
    # ------------------------------------------------------------------
    def _intercept(self, kernel_name, grid, block, params, stream):
        result = self._result
        if result is None or kernel_name not in result.kernel_ids:
            return None  # not ours: the worker itself, or a flat helper
        # The queue is one shared structure: finish outstanding work
        # before reseeding it, and check the previous drain's books.
        self.device.synchronize()
        self.verify_drained()

        blocks = _total(grid)
        block_threads = _total(block)
        kid = result.kernel_ids[kernel_name]
        param_addr = self.device.gpu.write_params(tuple(params))
        for cta in range(blocks):
            self._seed_record(
                (kid, param_addr, cta, blocks, block_threads)
            )
        queue = self.queue
        self.device.write_int(queue.field(OFF_RESERVED), self._reserved)
        self.device.write_int(queue.field(OFF_PUBLISHED), self._reserved)
        # Cancel dead async tickets from the previous drain: CLAIMED may
        # have overshot PUBLISHED (optimistic claims abandoned at
        # quiescence), and a stale overshoot would gate the new drain's
        # claims shut forever.  Every prior ticket is settled (drained,
        # verified above), so rewinding to the publish count re-aligns
        # claim tickets with the records seeded below.
        self.device.write_int(
            queue.field(OFF_CLAIMED), self._reserved - blocks
        )

        workers = self.device.gpu.config.num_smx * self.workers_per_smx
        worker_block = max(result.max_block, block_threads)
        return self.device.launch(
            result.worker,
            grid=workers,
            block=worker_block,
            stream=stream,
        )

    def _seed_record(self, values) -> None:
        """Publish one record from the host (device idle)."""
        queue = self.queue
        ticket = self._reserved
        slot = queue.slot(ticket)
        for i, value in enumerate(values):
            self.device.write_int(slot + 1 + i, int(value))
        self.device.write_int(slot, ticket + 1)  # sequence: published
        self._reserved += 1

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        queue = self.queue
        read = self.device.read_int
        return {
            "reserved": read(queue.field(OFF_RESERVED)),
            "published": read(queue.field(OFF_PUBLISHED)),
            "finished": read(queue.field(OFF_FINISHED)),
            "high_water": read(queue.field(OFF_HIGH_WATER)),
            "dropped": read(queue.field(OFF_DROPPED)),
        }

    def verify_drained(self) -> None:
        """Raise unless every published record was processed exactly.

        Device-side enqueues (child records) advance ``RESERVED`` past
        the host's seed count, so the invariant is the counters agreeing
        with *each other*; the host mirror then adopts the device's
        ticket position so the next drain seeds from the right slot.
        """
        if self._result is None or self._result.worker is None:
            return
        c = self.counters()
        if not (c["reserved"] == c["published"] == c["finished"]):
            raise PersistentRuntimeError(
                "task queue not drained: "
                f"reserved={c['reserved']} published={c['published']} "
                f"finished={c['finished']}"
            )
        if c["reserved"] < self._reserved:
            raise PersistentRuntimeError(
                f"task queue lost records: reserved={c['reserved']} "
                f"below the {self._reserved} seeded so far"
            )
        self._reserved = c["reserved"]
        if c["dropped"]:
            raise PersistentRuntimeError(
                f"task queue dropped {c['dropped']} records"
            )
        if c["high_water"] > self.queue.capacity:
            raise PersistentRuntimeError(
                f"task queue high-water {c['high_water']} exceeds "
                f"capacity {self.queue.capacity}"
            )
