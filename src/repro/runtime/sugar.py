"""CUDA-style host launch syntax.

The paper leaves a ``<<<grid, block>>>``-like surface as future work
(Section 5.1); this module provides the host-side equivalent for the
simulator: a :class:`HostKernel` bound to a device supports
``kernel[grid, block](*params)``, mirroring Numba/CUDA-Python syntax.

Example::

    from repro.runtime.sugar import bind

    saxpy = bind(device, saxpy_func)
    saxpy[16, 256](n, a, x_addr, y_addr, out_addr)
    device.synchronize()
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from ..errors import LaunchError
from ..sim.kernel import KernelFunction
from .host_api import Device

Dims = Union[int, Sequence[int]]


class ConfiguredLaunch:
    """A kernel with launch geometry chosen; call it with parameters."""

    __slots__ = ("_device", "_name", "_grid", "_block", "_stream")

    def __init__(self, device: Device, name: str, grid: Dims, block: Dims, stream: int) -> None:
        self._device = device
        self._name = name
        self._grid = grid
        self._block = block
        self._stream = stream

    def __call__(self, *params: Union[int, float]) -> int:
        """Launch; returns the parameter-buffer address."""
        return self._device.launch(
            self._name, grid=self._grid, block=self._block,
            params=list(params), stream=self._stream,
        )


class HostKernel:
    """A registered kernel with ``kernel[grid, block]`` launch syntax."""

    __slots__ = ("_device", "_func")

    def __init__(self, device: Device, func: KernelFunction) -> None:
        self._device = device
        self._func = func

    @property
    def name(self) -> str:
        return self._func.name

    def __getitem__(self, config: Tuple) -> ConfiguredLaunch:
        if not isinstance(config, tuple) or not 2 <= len(config) <= 3:
            raise LaunchError(
                "launch configuration must be kernel[grid, block] or "
                "kernel[grid, block, stream]"
            )
        grid, block = config[0], config[1]
        stream = config[2] if len(config) == 3 else 0
        return ConfiguredLaunch(self._device, self._func.name, grid, block, stream)

    def __repr__(self) -> str:
        return f"<HostKernel {self._func.name!r}>"


def bind(device: Device, func: KernelFunction) -> HostKernel:
    """Register ``func`` on ``device`` (if new) and return the sugar handle."""
    if func.name not in device.gpu.kernels:
        device.register(func)
    elif device.gpu.kernels[func.name] is not func:
        raise LaunchError(
            f"a different kernel named {func.name!r} is already registered"
        )
    return HostKernel(device, func)
