"""Host-side runtime: execution modes and the user-facing Device API."""

from .modes import ExecutionMode
from .host_api import Device, DeviceArray, Event, Stream
from .persistent import PersistentRuntime, PersistentRuntimeError
from .sugar import HostKernel, bind

__all__ = [
    "Device",
    "DeviceArray",
    "Event",
    "ExecutionMode",
    "HostKernel",
    "PersistentRuntime",
    "PersistentRuntimeError",
    "Stream",
    "bind",
]
