"""Host-side runtime: execution modes and the user-facing Device API."""

from .modes import ExecutionMode
from .host_api import Device
from .sugar import HostKernel, bind

__all__ = ["Device", "ExecutionMode", "HostKernel", "bind"]
