"""Execution modes evaluated in the paper (Section 5).

* ``FLAT`` — the original implementation: nested parallelism flattened and
  serialized within each thread.
* ``CDP`` / ``CDP_IDEAL`` — device-side *kernel* launches (CUDA Dynamic
  Parallelism), with measured / zero launch latencies.
* ``DTBL`` / ``DTBL_IDEAL`` — the paper's aggregated-group launches, with
  measured / zero launch latencies.
"""

from __future__ import annotations

import enum

from ..config import LatencyModel


class ExecutionMode(enum.Enum):
    FLAT = "flat"
    CDP = "cdp"
    CDP_IDEAL = "cdpi"
    DTBL = "dtbl"
    DTBL_IDEAL = "dtbli"

    @property
    def uses_cdp(self) -> bool:
        return self in (ExecutionMode.CDP, ExecutionMode.CDP_IDEAL)

    @property
    def uses_dtbl(self) -> bool:
        return self in (ExecutionMode.DTBL, ExecutionMode.DTBL_IDEAL)

    @property
    def is_dynamic(self) -> bool:
        return self is not ExecutionMode.FLAT

    @property
    def ideal(self) -> bool:
        return self in (ExecutionMode.CDP_IDEAL, ExecutionMode.DTBL_IDEAL)

    def latency_model(self, scale: float = 1.0) -> LatencyModel:
        """The launch-latency model this mode runs under.

        ``scale`` < 1 shrinks the measured Table 3 launch latencies for
        scaled-down workloads (see :meth:`LatencyModel.scaled`); it has no
        effect on the ideal modes, which are all-zero by definition.
        """
        if self.ideal:
            return LatencyModel.ideal()
        model = LatencyModel.measured_k20c()
        if scale != 1.0:
            model = model.scaled(scale)
        return model

    @classmethod
    def from_name(cls, name: str) -> "ExecutionMode":
        for mode in cls:
            if mode.value == name.lower():
                return mode
        raise ValueError(f"unknown execution mode {name!r}")
