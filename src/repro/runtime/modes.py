"""Execution modes evaluated in the paper (Section 5) and its rivals.

* ``FLAT`` — the original implementation: nested parallelism flattened and
  serialized within each thread.
* ``CDP`` / ``CDP_IDEAL`` — device-side *kernel* launches (CUDA Dynamic
  Parallelism), with measured / zero launch latencies.
* ``DTBL`` / ``DTBL_IDEAL`` — the paper's aggregated-group launches, with
  measured / zero launch latencies.
* ``CDP_AGG`` — CDP rewritten by the :mod:`repro.isa.dynopt` compiler
  passes: child launches below a thread-count threshold are serialized
  into the parent, the rest are aggregated per block into one batched
  launch (Olabi et al., *A Compiler Framework for Optimizing Dynamic
  Parallelism on GPUs*).
* ``CONSOLIDATED`` — CDP rewritten so per-thread child work is
  consolidated into fewer, densely packed kernels (Wu & Becchi,
  *Compiler-Assisted Workload Consolidation*).
* ``PERSISTENT`` / ``PERSISTENT_ASYNC`` — no device launches at all: a
  fixed grid of resident worker blocks pulls block-tasks from a global
  MPMC queue (Atos / persistent-threads).  Launch sites become queue
  pushes via the :mod:`repro.isa.persist` rewrite; the sync variant
  claims published tickets with a CAS, the async variant takes
  optimistic tickets and recovers dead ones at quiescence.

The software-optimized modes run on the plain CDP device runtime — the
transformation happens entirely in the IR, so they use the measured CDP
launch latencies.  The persistent modes run no dynamic launches but keep
the measured latency model for their one host launch per drain.
"""

from __future__ import annotations

import enum
from typing import Tuple

from ..config import LatencyModel


class ExecutionMode(enum.Enum):
    FLAT = "flat"
    CDP = "cdp"
    CDP_IDEAL = "cdpi"
    DTBL = "dtbl"
    DTBL_IDEAL = "dtbli"
    CDP_AGG = "cdpa"
    CONSOLIDATED = "cons"
    PERSISTENT = "persistent"
    PERSISTENT_ASYNC = "persistent-async"

    @property
    def uses_cdp(self) -> bool:
        """True when kernels are built with CDP-style device launches.

        The compiler-optimized modes start from the same CDP kernel shape
        (the dynopt passes rewrite it afterwards), so they count here —
        and so do the persistent modes, whose runtime rewrites the same
        launch sites into task-queue pushes.
        """
        return self in (
            ExecutionMode.CDP,
            ExecutionMode.CDP_IDEAL,
            ExecutionMode.CDP_AGG,
            ExecutionMode.CONSOLIDATED,
            ExecutionMode.PERSISTENT,
            ExecutionMode.PERSISTENT_ASYNC,
        )

    @property
    def uses_dtbl(self) -> bool:
        return self in (ExecutionMode.DTBL, ExecutionMode.DTBL_IDEAL)

    @property
    def compiler_optimized(self) -> bool:
        """True for modes produced by the :mod:`repro.isa.dynopt` passes."""
        return self in (ExecutionMode.CDP_AGG, ExecutionMode.CONSOLIDATED)

    @property
    def persistent(self) -> bool:
        """True for the resident-worker task-queue modes (Atos)."""
        return self in (
            ExecutionMode.PERSISTENT,
            ExecutionMode.PERSISTENT_ASYNC,
        )

    @property
    def is_dynamic(self) -> bool:
        return self is not ExecutionMode.FLAT

    @property
    def ideal(self) -> bool:
        return self in (ExecutionMode.CDP_IDEAL, ExecutionMode.DTBL_IDEAL)

    def latency_model(self, scale: float = 1.0) -> LatencyModel:
        """The launch-latency model this mode runs under.

        ``scale`` < 1 shrinks the measured Table 3 launch latencies for
        scaled-down workloads (see :meth:`LatencyModel.scaled`); it has no
        effect on the ideal modes, which are all-zero by definition.
        """
        if self.ideal:
            return LatencyModel.ideal()
        model = LatencyModel.measured_k20c()
        if scale != 1.0:
            model = model.scaled(scale)
        return model

    @classmethod
    def parse(cls, name: str) -> "ExecutionMode":
        """Look a mode up by its short name (case-insensitive).

        Raises :class:`ValueError` listing the valid names, so CLI users
        see the whole menu instead of guessing.
        """
        for mode in cls:
            if mode.value == name.lower():
                return mode
        valid = ", ".join(mode.value for mode in cls)
        raise ValueError(
            f"unknown execution mode {name!r} (valid modes: {valid})"
        )

    # Backwards-compatible alias; ``parse`` is the canonical spelling.
    @classmethod
    def from_name(cls, name: str) -> "ExecutionMode":
        return cls.parse(name)

    @classmethod
    def comparison_order(cls) -> Tuple["ExecutionMode", ...]:
        """Canonical mode order for comparison grids and figures.

        Baseline first, then the paper's modes ideal-to-measured, then the
        compiler-optimized rivals, then the persistent-threads rivals —
        the order the Fig. 11 columns use.
        """
        return (
            cls.FLAT,
            cls.CDP_IDEAL,
            cls.DTBL_IDEAL,
            cls.CDP,
            cls.DTBL,
            cls.CDP_AGG,
            cls.CONSOLIDATED,
            cls.PERSISTENT,
            cls.PERSISTENT_ASYNC,
        )
