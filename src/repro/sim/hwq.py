"""Software streams and Hardware Work Queues (HWQs).

Host-launched kernels are submitted through software streams (CUDA
streams); streams map onto a fixed number of HWQs (Hyper-Q, 32 on GK110).
Kernels in one stream execute in order: once a stream's head kernel is
dispatched, the KMU stops inspecting that queue until the head completes
(Section 2.2).  If there are more streams than HWQs, streams share a HWQ
and are serialized against each other.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional


class HostLaunchSpec:
    """A host-side kernel launch queued in a stream.

    ``record`` is filled in by the KMU at dispatch time with the launch's
    :class:`~repro.sim.stats.LaunchRecord`, which backs the host API's
    :class:`~repro.runtime.host_api.Event` handles.
    """

    __slots__ = (
        "kernel_name", "grid_dims", "block_dims", "param_addr", "stream_id",
        "record", "seq",
    )

    def __init__(self, kernel_name, grid_dims, block_dims, param_addr, stream_id):
        self.kernel_name = kernel_name
        self.grid_dims = grid_dims
        self.block_dims = block_dims
        self.param_addr = param_addr
        self.stream_id = stream_id
        self.record = None
        #: Monotonic id assigned by :meth:`repro.sim.gpu.GPU.host_launch`;
        #: checkpoints use it to re-identify the spec after a restore.
        self.seq = -1


class HardwareWorkQueue:
    """One HWQ: a FIFO of launches from the streams mapped onto it."""

    __slots__ = ("index", "pending", "head_inflight")

    def __init__(self, index: int) -> None:
        self.index = index
        self.pending: Deque[HostLaunchSpec] = deque()
        #: True while the dispatched head kernel has not completed.
        self.head_inflight = False

    @property
    def inspectable(self) -> bool:
        return bool(self.pending) and not self.head_inflight


class HostQueues:
    """Maps software streams to HWQs and feeds the KMU."""

    def __init__(self, num_hwq: int) -> None:
        self.num_hwq = num_hwq
        self.hwqs: List[HardwareWorkQueue] = [
            HardwareWorkQueue(i) for i in range(num_hwq)
        ]
        self._stream_to_hwq: Dict[int, int] = {}
        self._next_stream = 0

    def create_stream(self) -> int:
        stream_id = self._next_stream
        self._next_stream += 1
        # Streams map round-robin onto HWQs; excess streams serialize.
        self._stream_to_hwq[stream_id] = stream_id % self.num_hwq
        return stream_id

    def hwq_for_stream(self, stream_id: int) -> HardwareWorkQueue:
        if stream_id not in self._stream_to_hwq:
            self._stream_to_hwq[stream_id] = stream_id % self.num_hwq
        return self.hwqs[self._stream_to_hwq[stream_id]]

    def enqueue(self, spec: HostLaunchSpec) -> None:
        self.hwq_for_stream(spec.stream_id).pending.append(spec)

    def next_dispatchable(self) -> Optional[HostLaunchSpec]:
        """Head kernel of the first inspectable HWQ, if any."""
        for hwq in self.hwqs:
            if hwq.inspectable:
                return hwq.pending[0]
        return None

    def mark_dispatched(self, spec: HostLaunchSpec) -> None:
        hwq = self.hwq_for_stream(spec.stream_id)
        assert hwq.pending and hwq.pending[0] is spec
        hwq.pending.popleft()
        hwq.head_inflight = True

    def head_completed(self, stream_id: Optional[int]) -> None:
        """Called when a host kernel finishes; re-opens its HWQ."""
        if stream_id is None:
            return
        self.hwq_for_stream(stream_id).head_inflight = False

    @property
    def any_pending(self) -> bool:
        return any(hwq.pending for hwq in self.hwqs)
